"""Tests for the k-wise independent hash families."""

import numpy as np
import pytest

from repro.hashing.kwise import KWiseHash, KWiseSignHash, TabulationHash


class TestKWiseHash:
    def test_deterministic(self):
        h1 = KWiseHash(4, np.random.default_rng(7))
        h2 = KWiseHash(4, np.random.default_rng(7))
        for x in (0, 1, 999, 123456):
            assert h1(x) == h2(x)

    def test_output_range(self):
        h = KWiseHash(3, np.random.default_rng(0), out_bits=16)
        values = [h(x) for x in range(500)]
        assert all(0 <= v < 2**16 for v in values)

    def test_distinct_seeds_differ(self):
        h1 = KWiseHash(4, np.random.default_rng(1))
        h2 = KWiseHash(4, np.random.default_rng(2))
        assert any(h1(x) != h2(x) for x in range(32))

    def test_roughly_uniform(self):
        h = KWiseHash(2, np.random.default_rng(3), out_bits=8)
        counts = np.bincount([h(x) for x in range(8000)], minlength=256)
        # Mean 31.25 per bucket; allow generous Chernoff-style slack.
        assert counts.max() < 90
        assert counts.min() > 2

    def test_pairwise_collision_rate(self):
        h = KWiseHash(2, np.random.default_rng(4), out_bits=12)
        values = [h(x) for x in range(1000)]
        collisions = len(values) - len(set(values))
        # Expected ~ C(1000,2)/4096 ~ 122; allow wide slack.
        assert collisions < 400

    def test_hash_many_matches_scalar(self):
        h = KWiseHash(5, np.random.default_rng(5), out_bits=32)
        xs = np.array([3, 99, 12345, 0], dtype=np.int64)
        assert list(h.hash_many(xs)) == [h(int(x)) for x in xs]

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            KWiseHash(0, rng)
        with pytest.raises(ValueError):
            KWiseHash(2, rng, out_bits=0)
        with pytest.raises(ValueError):
            KWiseHash(2, rng, out_bits=62)

    def test_space_accounting(self):
        h = KWiseHash(4, np.random.default_rng(0))
        assert h.space_bits() == 4 * 61


class TestKWiseSignHash:
    def test_outputs_plus_minus_one(self):
        s = KWiseSignHash(4, np.random.default_rng(0))
        assert set(s(x) for x in range(200)) <= {-1, 1}

    def test_roughly_balanced(self):
        s = KWiseSignHash(4, np.random.default_rng(1))
        total = sum(s(x) for x in range(4000))
        assert abs(total) < 400  # ~6 sigma for fair signs


class TestTabulationHash:
    def test_deterministic_and_range(self):
        t1 = TabulationHash(np.random.default_rng(9), out_bits=20)
        t2 = TabulationHash(np.random.default_rng(9), out_bits=20)
        for x in (0, 1, 77, 2**31 - 1):
            assert t1(x) == t2(x)
            assert 0 <= t1(x) < 2**20

    def test_invalid_out_bits(self):
        with pytest.raises(ValueError):
            TabulationHash(np.random.default_rng(0), out_bits=65)


class TestVectorizedHashing:
    def test_hash_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        xs = np.concatenate([
            rng.integers(0, 2**40, size=512),
            np.array([0, 1, 2, (1 << 61) - 2]),
        ])
        for k in (1, 2, 4, 8):
            for out_bits in (61, 32, 16):
                h = KWiseHash(k, np.random.default_rng(k), out_bits=out_bits)
                scalar = np.array([h(int(x)) for x in xs], dtype=np.uint64)
                assert np.array_equal(h.hash_many(xs), scalar), (k, out_bits)

    def test_sign_many_matches_scalar(self):
        rng = np.random.default_rng(1)
        xs = rng.integers(0, 2**40, size=512)
        s = KWiseSignHash(4, np.random.default_rng(2))
        scalar = np.array([s(int(x)) for x in xs], dtype=np.float64)
        assert np.array_equal(s.sign_many(xs), scalar)
        assert set(np.unique(s.sign_many(xs))) <= {-1.0, 1.0}
