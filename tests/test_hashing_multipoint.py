"""Tests for batched/multipoint polynomial evaluation (Proposition 5.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.field import MERSENNE_P, poly_eval
from repro.hashing.multipoint import (
    BatchedHasher,
    multipoint_eval,
    poly_mod,
    poly_mul,
)

small = st.integers(min_value=0, max_value=10**6)


class TestPolyMul:
    def test_simple(self):
        # (1 + x) * (2 + x) = 2 + 3x + x^2
        assert poly_mul([1, 1], [2, 1]) == [2, 3, 1]

    def test_empty(self):
        assert poly_mul([], [1, 2]) == []

    @given(
        st.lists(small, min_size=1, max_size=5),
        st.lists(small, min_size=1, max_size=5),
        small,
    )
    def test_evaluation_homomorphism(self, a, b, x):
        lhs = poly_eval(poly_mul(a, b), x)
        rhs = (poly_eval(a, x) * poly_eval(b, x)) % MERSENNE_P
        assert lhs == rhs


class TestPolyMod:
    def test_requires_monic(self):
        with pytest.raises(ValueError):
            poly_mod([1, 2, 3], [1, 2])  # modulus not monic

    def test_zero_modulus(self):
        with pytest.raises(ZeroDivisionError):
            poly_mod([1], [])

    @given(st.lists(small, min_size=1, max_size=6), small)
    def test_mod_linear_is_evaluation(self, coeffs, r):
        # a(x) mod (x - r) == a(r)   (remainder theorem)
        residue = poly_mod(coeffs, [(-r) % MERSENNE_P, 1])
        value = residue[0] if residue else 0
        assert value == poly_eval(coeffs, r)


class TestMultipointEval:
    @given(
        st.lists(small, min_size=1, max_size=7),
        st.lists(small, min_size=1, max_size=9),
    )
    def test_matches_direct_evaluation(self, coeffs, points):
        assert multipoint_eval(coeffs, points) == [
            poly_eval(coeffs, x) for x in points
        ]

    def test_empty_points(self):
        assert multipoint_eval([1, 2, 3], []) == []

    def test_single_point(self):
        assert multipoint_eval([5, 1], [10]) == [15]

    def test_odd_point_counts(self):
        # Exercises the ragged product tree (carried nodes).
        coeffs = [3, 1, 4, 1, 5]
        for count in (1, 3, 5, 7, 11):
            pts = list(range(count))
            assert multipoint_eval(coeffs, pts) == [
                poly_eval(coeffs, x) for x in pts
            ]


class TestBatchedHasher:
    def test_batches_released_in_order(self):
        coeffs = [7, 3, 1]
        bh = BatchedHasher(coeffs, batch_size=3)
        out = []
        for x in range(7):
            out.extend(bh.push(x))
        out.extend(bh.flush())
        assert [item for item, _ in out] == list(range(7))
        assert [v for _, v in out] == [poly_eval(coeffs, x) for x in range(7)]

    def test_pending_count(self):
        bh = BatchedHasher([1, 1], batch_size=4)
        bh.push(1)
        bh.push(2)
        assert bh.pending_count == 2
        bh.push(3)
        bh.push(4)
        assert bh.pending_count == 0

    def test_delay_bounded_by_batch(self):
        bh = BatchedHasher([1, 2, 3], batch_size=5)
        for x in range(4):
            assert bh.push(x) == []
        ready = bh.push(4)
        assert len(ready) == 5

    def test_flush_empty(self):
        bh = BatchedHasher([1], batch_size=2)
        assert bh.flush() == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchedHasher([1], batch_size=0)
