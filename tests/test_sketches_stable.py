"""Tests for the p-stable Fp sketches, including the CMS sampler itself."""

import math

import numpy as np
import pytest

from repro.sketches.stable import (
    PStableSketch,
    sample_symmetric_stable,
    stable_median_abs,
)
from repro.streams.frequency import FrequencyVector


class TestCMSSampler:
    def test_p1_is_cauchy(self):
        # Median |Cauchy| = tan(pi/4) = 1.
        x = sample_symmetric_stable(1.0, np.random.default_rng(0), 200_000)
        assert float(np.median(np.abs(x))) == pytest.approx(1.0, rel=0.02)

    def test_p2_is_gaussian_variance_2(self):
        x = sample_symmetric_stable(2.0, np.random.default_rng(1), 200_000)
        assert float(np.var(x)) == pytest.approx(2.0, rel=0.05)

    def test_symmetry(self):
        for p in (0.5, 1.3, 2.0):
            x = sample_symmetric_stable(p, np.random.default_rng(2), 100_000)
            # Median of a symmetric law is 0.
            assert abs(float(np.median(x))) < 0.05

    def test_stability_property(self):
        # X1 + X2 ~ 2^(1/p) X for p-stable laws: compare median |.|.
        p = 1.5
        rng = np.random.default_rng(3)
        x1 = sample_symmetric_stable(p, rng, 150_000)
        x2 = sample_symmetric_stable(p, rng, 150_000)
        lhs = float(np.median(np.abs(x1 + x2)))
        rhs = 2 ** (1 / p) * float(np.median(np.abs(x1)))
        assert lhs == pytest.approx(rhs, rel=0.05)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            sample_symmetric_stable(0.0, np.random.default_rng(0), 10)
        with pytest.raises(ValueError):
            sample_symmetric_stable(2.5, np.random.default_rng(0), 10)


class TestStableMedian:
    def test_known_anchors(self):
        assert stable_median_abs(1.0) == 1.0
        # p=2: sqrt(2) * Phi^{-1}(3/4) ~ 0.95387.
        assert stable_median_abs(2.0) == pytest.approx(0.9539, rel=0.01)

    def test_cached(self):
        assert stable_median_abs(1.5) is stable_median_abs(1.5) or (
            stable_median_abs(1.5) == stable_median_abs(1.5)
        )


class TestPStableSketch:
    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5, 2.0])
    def test_norm_accuracy(self, p):
        sketch = PStableSketch(p, k=600, seed=17)
        truth = FrequencyVector()
        rng = np.random.default_rng(4)
        for _ in range(1500):
            item = int(rng.integers(0, 100))
            sketch.update(item)
            truth.update(item)
        assert sketch.query() == pytest.approx(truth.lp(p), rel=0.15)

    def test_moment_mode(self):
        sketch = PStableSketch(2.0, k=600, seed=18, return_moment=True)
        truth = FrequencyVector()
        for i in range(200):
            sketch.update(i % 20)
            truth.update(i % 20)
        assert sketch.query() == pytest.approx(truth.fp(2), rel=0.3)

    def test_turnstile_deletions(self):
        sketch = PStableSketch(1.0, k=400, seed=19)
        sketch.update(0, 100)
        sketch.update(1, 50)
        sketch.update(0, -100)
        assert sketch.query() == pytest.approx(50.0, rel=0.2)

    def test_deterministic_columns(self):
        s1 = PStableSketch(1.5, k=32, seed=7)
        s2 = PStableSketch(1.5, k=32, seed=7)
        for i in (3, 99, 12345):
            assert np.array_equal(s1._column(i), s2._column(i))

    def test_cache_equivalence(self):
        cached = PStableSketch(1.0, k=64, seed=8, cache_columns=True)
        uncached = PStableSketch(1.0, k=64, seed=8, cache_columns=False)
        for i in [1, 1, 2, 3, 1]:
            cached.update(i)
            uncached.update(i)
        assert cached.query() == pytest.approx(uncached.query(), rel=1e-12)

    def test_for_accuracy_sizing(self):
        s = PStableSketch.for_accuracy(1.0, 0.1, 0.05, np.random.default_rng(5))
        assert s.k >= 1 / 0.1**2

    def test_space_charges_counters_and_seed(self):
        s = PStableSketch(1.0, k=100, seed=1)
        assert s.space_bits() == 100 * 64 + 128

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PStableSketch(0.0, k=4, seed=0)
        with pytest.raises(ValueError):
            PStableSketch(2.5, k=4, seed=0)
        with pytest.raises(ValueError):
            PStableSketch(1.0, k=0, seed=0)
