"""Tests for epsilon-rounding (Definitions 3.1 / 3.7)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rounding import RoundedSequence, num_rounded_values, round_to_power

positive = st.floats(min_value=1e-6, max_value=1e12, allow_nan=False)
eps_values = st.floats(min_value=0.01, max_value=0.9)


class TestRoundToPower:
    def test_zero(self):
        assert round_to_power(0.0, 0.1) == 0.0

    def test_exact_powers_fixed(self):
        eps = 0.5
        for ell in (-3, 0, 1, 5):
            x = 1.5**ell
            assert round_to_power(x, eps) == pytest.approx(x)

    @given(positive, eps_values)
    def test_result_is_power(self, x, eps):
        y = round_to_power(x, eps)
        ell = math.log(y) / math.log1p(eps)
        assert abs(ell - round(ell)) < 1e-6

    @given(positive, eps_values)
    def test_half_eps_approximation(self, x, eps):
        """Section 3: [x]_eps is a (1 + eps/2)-approximation of x."""
        y = round_to_power(x, eps)
        ratio = max(y / x, x / y)
        assert ratio <= 1 + eps / 2 + 1e-9

    @given(positive, eps_values)
    def test_sign_symmetry(self, x, eps):
        assert round_to_power(-x, eps) == -round_to_power(x, eps)

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            round_to_power(1.0, 0.0)


class TestNumRoundedValues:
    def test_grows_with_range(self):
        assert num_rounded_values(0.1, 1e6) > num_rounded_values(0.1, 1e3)

    def test_grows_with_precision(self):
        assert num_rounded_values(0.01, 1e6) > num_rounded_values(0.1, 1e6)

    def test_matches_count_formula(self):
        eps, t = 0.5, 100.0
        powers = 2 * math.ceil(math.log(t) / math.log1p(eps)) + 1
        assert num_rounded_values(eps, t) == 2 * powers + 1

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            num_rounded_values(0.1, 0.5)


class TestRoundedSequence:
    def test_holds_while_in_band(self):
        rs = RoundedSequence(0.2)
        first = rs.push(100.0)
        # 5% drift stays inside the 20% band: published value unchanged.
        assert rs.push(105.0) == first
        assert rs.push(95.0) == first
        assert rs.changes == 1

    def test_switches_when_out_of_band(self):
        rs = RoundedSequence(0.1)
        rs.push(100.0)
        second = rs.push(200.0)
        assert second != 100.0
        assert rs.changes == 2

    def test_change_count_tracks_growth(self):
        rs = RoundedSequence(0.5)
        for v in (1, 3, 9, 27, 81, 243):
            rs.push(float(v))
        # Each tripling clearly leaves the 50% band: one change per step.
        # (A doubling would sit exactly on the (1-eps) boundary, which the
        # closed band keeps — so x3 is the clean growth rate to test.)
        assert rs.changes == 6

    @given(st.lists(positive, min_size=1, max_size=40), eps_values)
    def test_published_always_in_band(self, values, eps):
        rs = RoundedSequence(eps)
        for v in values:
            out = rs.push(v)
            assert (1 - eps) * v - 1e-9 <= out <= (1 + eps) * v + 1e-9

    def test_current_before_first_push(self):
        assert RoundedSequence(0.1).current is None

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            RoundedSequence(0.0)
