"""Tests for the deterministic exact baselines (Table 1 deterministic column)."""

import numpy as np
import pytest

from repro.sketches.exact import (
    ExactDistinctCounter,
    ExactEntropyCounter,
    ExactHeavyHitters,
    ExactMomentCounter,
    deterministic_f0_lower_bound_bits,
    deterministic_l2hh_lower_bound_bits,
)


class TestExactDistinct:
    def test_counts_distinct(self):
        c = ExactDistinctCounter()
        for i in [1, 2, 2, 3, 1]:
            c.update(i)
        assert c.query() == 3.0

    def test_deletion(self):
        c = ExactDistinctCounter()
        c.update(1, 2)
        c.update(1, -2)
        assert c.query() == 0.0

    def test_space_grows_with_support(self):
        c = ExactDistinctCounter()
        before = c.space_bits()
        for i in range(100):
            c.update(i)
        assert c.space_bits() >= before + 99 * 64


class TestExactMoment:
    @pytest.mark.parametrize("p", [0, 1, 2, 3])
    def test_matches_direct_computation(self, p):
        c = ExactMomentCounter(p)
        freqs = {0: 3, 1: 1, 2: 2}
        for item, count in freqs.items():
            c.update(item, count)
        expected = sum(v**p for v in freqs.values()) if p > 0 else len(freqs)
        assert c.query() == pytest.approx(expected)

    def test_norm_mode(self):
        c = ExactMomentCounter(2, return_norm=True)
        c.update(0, 3)
        c.update(1, 4)
        assert c.query() == pytest.approx(5.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            ExactMomentCounter(-1)


class TestExactEntropy:
    def test_uniform(self):
        c = ExactEntropyCounter()
        for i in range(4):
            c.update(i)
        assert c.query() == pytest.approx(2.0)

    def test_empty(self):
        assert ExactEntropyCounter().query() == 0.0


class TestExactHeavyHitters:
    def test_recovers_planted(self):
        hh = ExactHeavyHitters(eps=0.5, p=2)
        hh.update(0, 100)
        for i in range(1, 20):
            hh.update(i, 1)
        assert 0 in hh.heavy_hitters()
        assert hh.point_query(0) == 100.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ExactHeavyHitters(eps=0.0)
        with pytest.raises(ValueError):
            ExactHeavyHitters(eps=0.5, p=0)

    def test_query_counts_set(self):
        hh = ExactHeavyHitters(eps=0.9, p=2)
        hh.update(0, 10)
        assert hh.query() == 1.0


class TestLowerBounds:
    def test_f0_bound_is_linear(self):
        assert deterministic_f0_lower_bound_bits(1 << 16) == 1 << 16

    def test_l2hh_bound_is_sqrt(self):
        assert deterministic_l2hh_lower_bound_bits(1 << 16) == 1 << 8


class TestInsertionOnlyGuard:
    def test_process_update_rejects_deletion_on_insertion_only(self):
        from repro.sketches.kmv import KMVSketch

        sketch = KMVSketch(4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sketch.process_update(1, -1)
