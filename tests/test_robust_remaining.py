"""Tests for robust heavy hitters, entropy, bounded deletion, crypto F0."""

import numpy as np
import pytest

from repro.robust.bounded_deletion import RobustBoundedDeletionFp
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.entropy import RobustEntropy
from repro.robust.heavy_hitters import RobustHeavyHitters
from repro.streams.frequency import FrequencyVector
from repro.streams.generators import (
    bounded_deletion_stream,
    planted_heavy_hitters_stream,
)


class TestRobustHeavyHitters:
    @pytest.fixture(scope="class")
    def planted_run(self):
        rng = np.random.default_rng(0)
        hh = RobustHeavyHitters(n=2048, m=3000, eps=0.25, rng=rng, copies=10)
        ups = planted_heavy_hitters_stream(
            2048, 3000, np.random.default_rng(1), heavy_items=6, heavy_mass=0.55
        )
        truth = FrequencyVector()
        for u in ups:
            truth.update(u.item, u.delta)
            hh.update(u.item, u.delta)
        return hh, truth

    def test_finds_all_planted_heavies(self, planted_run):
        hh, truth = planted_run
        assert truth.l2_heavy_hitters(hh.eps) <= hh.heavy_hitters()

    def test_no_far_below_threshold_items(self, planted_run):
        hh, truth = planted_run
        floor = (hh.eps / 4) * truth.lp(2)
        assert all(truth[i] >= floor for i in hh.heavy_hitters())

    def test_point_queries_accurate_for_heavies(self, planted_run):
        hh, truth = planted_run
        bound = 2 * hh.eps * truth.lp(2)
        for i in truth.l2_heavy_hitters(hh.eps):
            assert abs(hh.point_query(i) - truth[i]) <= bound

    def test_l2_estimate_tracks_norm(self, planted_run):
        hh, truth = planted_run
        assert hh.l2_estimate() == pytest.approx(truth.lp(2), rel=0.3)

    def test_epochs_bounded(self, planted_run):
        hh, _ = planted_run
        import math

        assert hh.epochs <= math.log(3000) / math.log1p(0.125 / 2) + 8

    def test_untracked_point_query_is_zero(self):
        hh = RobustHeavyHitters(n=64, m=10, eps=0.5,
                                rng=np.random.default_rng(2), copies=4)
        assert hh.point_query(42) == 0.0

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            RobustHeavyHitters(n=16, m=10, eps=0.0,
                               rng=np.random.default_rng(0))


class TestRobustEntropy:
    def test_tracks_uniformising_stream(self):
        algo = RobustEntropy(n=1024, m=2500, eps=0.4,
                             rng=np.random.default_rng(3), copies=24)
        truth = FrequencyVector()
        worst = 0.0
        for i in range(2500):
            item = i % 128
            truth.update(item, 1)
            out = algo.process_update(item, 1)
            if i >= 100:
                worst = max(worst, abs(out - truth.shannon_entropy()))
        assert worst <= 0.4

    def test_tracks_skewed_stream(self):
        algo = RobustEntropy(n=512, m=2000, eps=0.5,
                             rng=np.random.default_rng(4), copies=24)
        rng = np.random.default_rng(5)
        truth = FrequencyVector()
        worst = 0.0
        for i in range(2000):
            item = 0 if rng.random() < 0.7 else int(rng.integers(1, 512))
            truth.update(item, 1)
            out = algo.process_update(item, 1)
            if i >= 200:
                worst = max(worst, abs(out - truth.shannon_entropy()))
        assert worst <= 0.5

    def test_paper_copies_reported(self):
        algo = RobustEntropy(n=1 << 12, m=1 << 12, eps=0.2,
                             rng=np.random.default_rng(6), copies=8)
        assert algo.paper_copies > algo.copies

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            RobustEntropy(n=16, m=10, eps=0.0, rng=np.random.default_rng(0))


class TestRobustBoundedDeletion:
    @pytest.mark.parametrize("alpha", [2.0, 8.0])
    def test_tracks_f1_under_deletions(self, alpha):
        ups = bounded_deletion_stream(
            128, 1200, np.random.default_rng(int(alpha)), alpha=alpha, p=1.0
        )
        algo = RobustBoundedDeletionFp(
            p=1.0, n=128, m=1200, eps=0.35, alpha=alpha,
            rng=np.random.default_rng(7),
        )
        truth = FrequencyVector()
        worst = 0.0
        for t, u in enumerate(ups):
            truth.update(u.item, u.delta)
            out = algo.process_update(u.item, u.delta)
            g = truth.fp(1)
            if t >= 100 and g > 20:
                worst = max(worst, abs(out - g) / g)
        assert worst <= 0.4

    def test_flip_bound_grows_with_alpha(self):
        a2 = RobustBoundedDeletionFp(p=1.0, n=256, m=100, eps=0.3, alpha=2.0,
                                     rng=np.random.default_rng(8))
        a16 = RobustBoundedDeletionFp(p=1.0, n=256, m=100, eps=0.3, alpha=16.0,
                                      rng=np.random.default_rng(9))
        assert a16.flip_bound > a2.flip_bound

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RobustBoundedDeletionFp(p=0.5, n=16, m=10, eps=0.1, alpha=2, rng=rng)
        with pytest.raises(ValueError):
            RobustBoundedDeletionFp(p=1.0, n=16, m=10, eps=0.1, alpha=0.5,
                                    rng=rng)


class TestCryptoDistinct:
    def test_tracks_fresh_items(self):
        algo = CryptoRobustDistinctElements(n=1 << 14, eps=0.15,
                                            rng=np.random.default_rng(10))
        truth = FrequencyVector()
        worst = 0.0
        for i in range(4000):
            truth.update(i, 1)
            out = algo.process_update(i, 1)
            if i >= 100:
                worst = max(worst, abs(out - truth.f0()) / truth.f0())
        assert worst <= 0.2

    def test_duplicates_leak_nothing(self):
        """The Theorem 10.1 state property survives the PRP preprocessing."""
        algo = CryptoRobustDistinctElements(n=1 << 10, eps=0.3,
                                            rng=np.random.default_rng(11))
        for i in range(200):
            algo.update(i)
        before = algo.state_fingerprint()
        for i in range(200):
            algo.update(i)
        assert algo.state_fingerprint() == before

    def test_space_overhead_is_just_the_key(self):
        charged = CryptoRobustDistinctElements(
            n=1 << 10, eps=0.3, rng=np.random.default_rng(12),
            oracle_mode=False,
        )
        oracle = CryptoRobustDistinctElements(
            n=1 << 10, eps=0.3, rng=np.random.default_rng(12),
            oracle_mode=True,
        )
        assert charged.space_bits() - oracle.space_bits() == 128

    def test_hll_base(self):
        algo = CryptoRobustDistinctElements(
            n=1 << 12, eps=0.1, rng=np.random.default_rng(13), base="hll"
        )
        for i in range(3000):
            algo.update(i)
        assert algo.query() == pytest.approx(3000, rel=0.25)

    def test_rejects_deletions(self):
        algo = CryptoRobustDistinctElements(n=64, eps=0.5,
                                            rng=np.random.default_rng(14))
        with pytest.raises(ValueError):
            algo.update(1, -1)

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            CryptoRobustDistinctElements(n=64, eps=0.5,
                                         rng=np.random.default_rng(0),
                                         base="bloom")
