"""Tests for the stream-class validators (previously untested).

The validators gate experiment inputs: a stream claiming to be in a
model class (insertion-only, (n, m, M)-conforming, alpha-bounded
deletion) is checked before the theorems' promises are invoked.
"""

import numpy as np
import pytest

from repro.streams.frequency import FrequencyVector
from repro.streams.generators import bounded_deletion_stream
from repro.streams.model import StreamParameters, Update
from repro.streams.validators import (
    StreamValidationError,
    check_bounded_deletion,
    function_trajectory,
    validate_bounded_deletion,
    validate_insertion_only,
    validate_parameters,
)


class TestInsertionOnly:
    def test_accepts_positive_deltas(self):
        validate_insertion_only([Update(1, 1), Update(2, 5)])

    def test_rejects_zero_and_negative(self):
        with pytest.raises(StreamValidationError, match="delta=0"):
            validate_insertion_only([Update(1, 1), Update(2, 0)])
        with pytest.raises(StreamValidationError, match="delta=-1"):
            validate_insertion_only([Update(1, -1)])

    def test_error_names_the_offending_position(self):
        with pytest.raises(StreamValidationError, match="update 2"):
            validate_insertion_only(
                [Update(0, 1), Update(1, 1), Update(2, -3)]
            )

    def test_empty_stream_is_fine(self):
        validate_insertion_only([])


class TestParameters:
    def test_conforming_stream(self):
        params = StreamParameters(n=16, m=10, M=3)
        validate_parameters([Update(0, 1), Update(15, 2), Update(0, -1)],
                            params)

    def test_item_outside_universe(self):
        params = StreamParameters(n=4, m=10)
        with pytest.raises(ValueError, match="outside universe"):
            validate_parameters([Update(4, 1)], params)
        with pytest.raises(ValueError, match="outside universe"):
            validate_parameters([Update(-1, 1)], params)

    def test_frequency_bound_checked_per_prefix(self):
        params = StreamParameters(n=8, m=10, M=2)
        # |f_3| hits 3 > M at step 2 even though later deletions lower it.
        stream = [Update(3, 2), Update(3, 1), Update(3, -2)]
        with pytest.raises(StreamValidationError, match="at step 1"):
            validate_parameters(stream, params)

    def test_negative_frequency_magnitude_also_bounded(self):
        params = StreamParameters(n=8, m=10, M=2)
        with pytest.raises(StreamValidationError):
            validate_parameters([Update(1, -3)], params)

    def test_length_bound(self):
        params = StreamParameters(n=8, m=2, M=10)
        with pytest.raises(StreamValidationError, match="exceeds m"):
            validate_parameters(
                [Update(0, 1), Update(1, 1), Update(2, 1)], params
            )


class TestBoundedDeletion:
    def test_insertion_only_always_passes(self):
        stream = [Update(i % 5, 1) for i in range(50)]
        assert check_bounded_deletion(stream, alpha=1.0)
        validate_bounded_deletion(stream, alpha=1.0)

    def test_violation_detected(self):
        # Insert then delete everything: F1(f) -> 0 while F1(h) grows.
        stream = [Update(0, 1), Update(1, 1), Update(0, -1), Update(1, -1)]
        assert not check_bounded_deletion(stream, alpha=2.0)
        with pytest.raises(StreamValidationError, match="bounded-deletion"):
            validate_bounded_deletion(stream, alpha=2.0)

    def test_generator_streams_conform_by_construction(self):
        rng = np.random.default_rng(0)
        stream = bounded_deletion_stream(64, 600, rng, alpha=4.0)
        assert check_bounded_deletion(stream, alpha=4.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            check_bounded_deletion([], alpha=0.5)

    def test_checked_at_every_prefix_not_just_the_end(self):
        # Ends conforming, but a middle prefix violates alpha = 1.5.
        stream = [
            Update(0, 1), Update(1, 1),
            Update(0, -1), Update(1, -1),  # f = 0 here, h = 4
            Update(2, 1), Update(3, 1), Update(4, 1), Update(5, 1),
        ]
        assert not check_bounded_deletion(stream, alpha=1.5)


class TestFunctionTrajectory:
    def test_tracks_f0_per_prefix(self):
        stream = [Update(0, 1), Update(1, 1), Update(0, 1), Update(2, 1)]
        traj = function_trajectory(stream, FrequencyVector.f0)
        assert traj == [1.0, 2.0, 2.0, 3.0]

    def test_tracks_moments_with_deletions(self):
        stream = [Update(0, 2), Update(1, 1), Update(0, -2)]
        traj = function_trajectory(stream, lambda f: f.fp(2.0))
        assert traj == [4.0, 5.0, 1.0]

    def test_empty_stream(self):
        assert function_trajectory([], FrequencyVector.f0) == []
