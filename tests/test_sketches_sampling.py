"""Tests for the sampling substrate and the [5]-style adaptivity facts."""

import numpy as np
import pytest

from repro.sketches.sampling import (
    AdaptiveFractionOracle,
    BernoulliSampler,
    ReservoirSampler,
    adaptive_oversampling_factor,
    adaptive_sample_size,
    static_sample_size,
)


class TestReservoirSampler:
    def test_sample_size_capped_at_k(self):
        r = ReservoirSampler(10, np.random.default_rng(0))
        for i in range(1000):
            r.update(i)
        assert len(r.sample) == 10

    def test_small_stream_kept_entirely(self):
        r = ReservoirSampler(100, np.random.default_rng(1))
        for i in range(30):
            r.update(i)
        assert sorted(r.sample) == list(range(30))

    def test_uniformity(self):
        # Each of 200 items should appear in the 50-sample w.p. 1/4.
        hits = np.zeros(200)
        for seed in range(60):
            r = ReservoirSampler(50, np.random.default_rng(seed))
            for i in range(200):
                r.update(i)
            for x in r.sample:
                hits[x] += 1
        freq = hits / 60
        assert abs(float(freq.mean()) - 0.25) < 0.02
        # No position bias: early items not favoured over late ones.
        assert abs(float(freq[:100].mean() - freq[100:].mean())) < 0.08

    def test_fraction_estimate(self):
        r = ReservoirSampler(500, np.random.default_rng(2))
        for i in range(5000):
            r.update(i % 10)
        est = r.estimate_fraction(lambda x: x < 3)
        assert est == pytest.approx(0.3, abs=0.08)

    def test_multiplicity_respected(self):
        r = ReservoirSampler(200, np.random.default_rng(3))
        r.update(0, 900)
        r.update(1, 100)
        est = r.estimate_fraction(lambda x: x == 0)
        assert est == pytest.approx(0.9, abs=0.08)

    def test_rejects_deletions(self):
        with pytest.raises(ValueError):
            ReservoirSampler(4, np.random.default_rng(0)).update(1, -1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0, np.random.default_rng(0))


class TestBernoulliSampler:
    def test_rate_controls_sample_size(self):
        b = BernoulliSampler(0.1, np.random.default_rng(4))
        for i in range(5000):
            b.update(i)
        assert len(b.sample) == pytest.approx(500, rel=0.25)

    def test_count_estimate(self):
        b = BernoulliSampler(0.2, np.random.default_rng(5))
        for i in range(5000):
            b.update(i % 100)
        est = b.estimate_count(lambda x: x < 50)
        assert est == pytest.approx(2500, rel=0.2)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            BernoulliSampler(0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            BernoulliSampler(1.5, np.random.default_rng(0))


class TestSampleSizing:
    def test_static_size_grows_with_precision(self):
        assert static_sample_size(0.01, 0.05) > static_sample_size(0.1, 0.05)

    def test_oversampling_factor_logarithmic(self):
        f10 = adaptive_oversampling_factor(10, 0.05)
        f1000 = adaptive_oversampling_factor(1000, 0.05)
        assert 1.0 < f10 < f1000
        # log growth: 100x more queries adds ~ log(100) / log(2/delta).
        assert f1000 / f10 < 3.0

    def test_adaptive_size_integer_and_larger(self):
        static = static_sample_size(0.1, 0.05)
        adaptive = adaptive_sample_size(0.1, 0.05, num_queries=1000)
        assert adaptive > static
        assert isinstance(adaptive, int)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            static_sample_size(0.0, 0.1)
        with pytest.raises(ValueError):
            adaptive_oversampling_factor(0, 0.1)


class TestAdaptivityPhenomena:
    def test_post_hoc_query_defeats_any_sample(self):
        """The overfitting gap: estimate 0 vs truth ~ 1 - k/N."""
        r = ReservoirSampler(50, np.random.default_rng(6))
        inserted = set()
        for i in range(2000):
            r.update(i)
            inserted.add(i)
        true_frac, est_frac = AdaptiveFractionOracle.gap(inserted, r.sample)
        assert est_frac == 0.0
        assert true_frac > 0.9

    def test_fixed_query_class_survives_adaptive_stream(self):
        """With [5]-style oversampling, a pre-registered query class stays
        accurate even when the stream adapts to the published sample."""
        rng = np.random.default_rng(7)
        queries = [
            (lambda lo: (lambda x: x % 16 == lo))(lo) for lo in range(16)
        ]
        k = adaptive_sample_size(0.1, 0.05, num_queries=len(queries))
        sampler = ReservoirSampler(k, np.random.default_rng(8))
        counts = np.zeros(16)
        total = 0
        for t in range(6000):
            # Adversary: inserts into the residue class the *sample*
            # currently under-represents most (maximal steering).
            fractions = [sampler.estimate_fraction(q) for q in queries]
            target = int(np.argmin(fractions))
            item = target + 16 * int(rng.integers(0, 100))
            sampler.update(item)
            counts[item % 16] += 1
            total += 1
        for lo, q in enumerate(queries):
            true_frac = counts[lo] / total
            assert abs(sampler.estimate_fraction(q) - true_frac) <= 0.1
