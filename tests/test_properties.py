"""Cross-cutting property-based tests (hypothesis) on the core invariants.

Each property here is one the paper's proofs lean on; they are tested
against arbitrary streams/sequences rather than the curated workloads of
the unit tests.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flip_number import measured_flip_number
from repro.core.rounding import RoundedSequence, round_to_power
from repro.sketches.kmv import KMVSketch
from repro.streams.frequency import FrequencyVector

streams = st.lists(
    st.tuples(st.integers(0, 30), st.integers(1, 4)), min_size=1, max_size=120
)
positive_seqs = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
    min_size=1, max_size=50,
)


class TestRoundingContracts:
    """Lemma 3.3's preconditions, as executable properties."""

    @given(positive_seqs, st.floats(min_value=0.05, max_value=0.8))
    def test_rounded_changes_bounded_by_flip_number(self, values, eps):
        """The number of published-value changes of an eps-rounding is at
        most the (eps/10)-flip number of the underlying sequence + 1 —
        the Lemma 3.3 statement with z = y (exact inner estimates)."""
        rs = RoundedSequence(eps)
        for v in values:
            rs.push(v)
        lam = measured_flip_number(values, eps / 10)
        assert rs.changes <= lam + 1

    @given(st.floats(min_value=1e-6, max_value=1e9),
           st.floats(min_value=0.05, max_value=0.9))
    def test_rounding_idempotent(self, x, eps):
        once = round_to_power(x, eps)
        assert round_to_power(once, eps) == pytest.approx(once)

    @given(st.floats(min_value=1e-6, max_value=1e9),
           st.floats(min_value=1.0, max_value=10.0),
           st.floats(min_value=0.05, max_value=0.9))
    def test_rounding_monotone(self, x, factor, eps):
        """[x]_eps is monotone in x (needed for the switching analysis)."""
        assert round_to_power(x * factor, eps) >= round_to_power(x, eps) - 1e-12


class TestFlipNumberProperties:
    @given(positive_seqs)
    def test_flip_number_at_least_one(self, values):
        assert measured_flip_number(values, 0.3) >= 1

    @given(positive_seqs, st.floats(min_value=0.05, max_value=1.0))
    def test_flip_number_subsequence_monotone(self, values, eps):
        """Dropping elements can only shorten the best chain."""
        full = measured_flip_number(values, eps)
        half = measured_flip_number(values[::2], eps)
        assert half <= full

    @given(positive_seqs, st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.1, max_value=10.0))
    def test_flip_number_scale_invariant(self, values, eps, scale):
        """The flip predicate is multiplicative: scaling the sequence
        leaves the flip number unchanged."""
        scaled = [v * scale for v in values]
        assert measured_flip_number(scaled, eps) == measured_flip_number(
            values, eps
        )


class TestFrequencyVectorProperties:
    @given(streams)
    def test_f1_equals_sum_of_deltas_insertion_only(self, ups):
        f = FrequencyVector()
        for item, delta in ups:
            f.update(item, delta)
        assert f.f1() == sum(d for _, d in ups)

    @given(streams)
    def test_permutation_invariance(self, ups):
        """All queries depend only on the multiset of updates."""
        f1, f2 = FrequencyVector(), FrequencyVector()
        for item, delta in ups:
            f1.update(item, delta)
        for item, delta in reversed(ups):
            f2.update(item, delta)
        assert f1.to_dict() == f2.to_dict()
        assert f1.shannon_entropy() == pytest.approx(f2.shannon_entropy())

    @given(streams)
    def test_moment_ordering(self, ups):
        """F_p is non-increasing in p on probability-normalised scales:
        here we check the raw-norm chain |f|_1 >= |f|_2 >= |f|_3."""
        f = FrequencyVector()
        for item, delta in ups:
            f.update(item, delta)
        assert f.lp(1) + 1e-9 >= f.lp(2) >= f.lp(3) - 1e-9

    @given(streams)
    def test_entropy_invariant_under_relabeling(self, ups):
        f1, f2 = FrequencyVector(), FrequencyVector()
        for item, delta in ups:
            f1.update(item, delta)
            f2.update(item + 1000, delta)  # shifted labels
        assert f1.shannon_entropy() == pytest.approx(f2.shannon_entropy())


class TestSketchDeterminism:
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=80),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_kmv_is_a_deterministic_function_of_seed_and_stream(
        self, items, seed
    ):
        a = KMVSketch(8, np.random.default_rng(seed))
        b = KMVSketch(8, np.random.default_rng(seed))
        for x in items:
            a.update(x)
            b.update(x)
        assert a.query() == b.query()

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_kmv_estimate_never_exceeds_possible_range(self, items):
        k = KMVSketch(8, np.random.default_rng(0))
        for x in items:
            k.update(x)
        distinct = len(set(items))
        if distinct < 8:
            assert k.query() == distinct
        else:
            assert k.query() > 0
