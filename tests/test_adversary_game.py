"""Tests for the two-player game loop and the baseline adversaries."""

import numpy as np
import pytest

from repro.adversary.base import RandomAdversary, StaticAdversary
from repro.adversary.game import (
    AdversarialGame,
    additive_error_judge,
    relative_error_judge,
)
from repro.sketches.exact import ExactDistinctCounter
from repro.sketches.kmv import KMVSketch
from repro.streams.model import Update


class TestJudges:
    def test_relative_judge(self):
        judge = relative_error_judge(0.1)
        assert not judge(100.0, 100.0)
        assert not judge(109.0, 100.0)
        assert judge(111.0, 100.0)

    def test_relative_judge_zero_truth(self):
        judge = relative_error_judge(0.1)
        assert not judge(0.0, 0.0)
        assert judge(1.0, 0.0)

    def test_additive_judge(self):
        judge = additive_error_judge(0.5)
        assert not judge(3.2, 3.0)
        assert judge(3.6, 3.0)


class TestStaticAdversary:
    def test_replays_updates(self):
        ups = [Update(1, 1), Update(2, 1)]
        adv = StaticAdversary(ups)
        assert adv.next_update(0, None) == ups[0]
        assert adv.next_update(1, 5.0) == ups[1]
        assert adv.next_update(2, 5.0) is None


class TestRandomAdversary:
    def test_respects_budget(self):
        adv = RandomAdversary(10, 5, np.random.default_rng(0))
        updates = [adv.next_update(t, None) for t in range(6)]
        assert updates[-1] is None
        assert all(u.delta == 1 for u in updates[:5])

    def test_invalid(self):
        with pytest.raises(ValueError):
            RandomAdversary(0, 5, np.random.default_rng(0))


class TestAdversarialGame:
    def test_exact_algorithm_never_fails(self):
        game = AdversarialGame(lambda f: f.f0(), relative_error_judge(0.01))
        result = game.run(
            ExactDistinctCounter(),
            RandomAdversary(100, 200, np.random.default_rng(1)),
            max_rounds=200,
        )
        assert not result.failed
        assert result.steps == 200
        assert result.max_relative_error == 0.0

    def test_transcript_contents(self):
        game = AdversarialGame(lambda f: f.f0(), relative_error_judge(0.5))
        adv = StaticAdversary([Update(0, 1), Update(1, 1), Update(0, 1)])
        result = game.run(ExactDistinctCounter(), adv, max_rounds=10)
        assert result.steps == 3
        assert result.truths == [1.0, 2.0, 1.0 + 1.0]
        assert result.updates[0] == Update(0, 1)

    def test_detects_failure_step(self):
        class _Liar(ExactDistinctCounter):
            def query(self):
                true = super().query()
                return true * (10.0 if true >= 3 else 1.0)

        game = AdversarialGame(lambda f: f.f0(), relative_error_judge(0.5))
        adv = StaticAdversary([Update(i, 1) for i in range(5)])
        result = game.run(_Liar(), adv, max_rounds=10)
        assert result.failed
        assert result.first_failure_step == 2  # third distinct item

    def test_stop_at_failure(self):
        class _AlwaysWrong(ExactDistinctCounter):
            def query(self):
                return super().query() * 100.0

        game = AdversarialGame(lambda f: f.f0(), relative_error_judge(0.1))
        adv = StaticAdversary([Update(i, 1) for i in range(10)])
        result = game.run(_AlwaysWrong(), adv, max_rounds=10, stop_at_failure=True)
        assert result.failed
        assert result.steps == 1

    def test_grace_steps(self):
        class _BadStart(ExactDistinctCounter):
            def query(self):
                true = super().query()
                return 0.0 if true <= 2 else true

        game = AdversarialGame(
            lambda f: f.f0(), relative_error_judge(0.1), grace_steps=2
        )
        adv = StaticAdversary([Update(i, 1) for i in range(5)])
        assert not game.run(_BadStart(), adv, max_rounds=10).failed

    def test_kmv_survives_oblivious_stream(self):
        game = AdversarialGame(lambda f: f.f0(), relative_error_judge(0.5))
        result = game.run(
            KMVSketch(256, np.random.default_rng(2)),
            RandomAdversary(500, 1000, np.random.default_rng(3)),
            max_rounds=1000,
        )
        assert not result.failed

    def test_max_additive_error(self):
        game = AdversarialGame(lambda f: f.f0(), additive_error_judge(10.0))
        adv = StaticAdversary([Update(i, 1) for i in range(4)])
        result = game.run(ExactDistinctCounter(), adv, max_rounds=4)
        assert result.max_additive_error == 0.0
