"""Equivalence and unit tests for the parallel execution engine.

The load-bearing suite: serial direct path, :class:`SerialEngine`, and
:class:`ProcessEngine` must produce identical published outputs and
switch counts for switching estimators, and identical merged state for
mergeable sketches.  Also covers the shard planner, the seen-filter, the
prefetcher, and the engine plumbing through ``api.ingest`` and the
experiment runner.
"""

import numpy as np
import pytest

from repro.api import ingest
from repro.core.sketch_switching import (
    SketchExhaustedError,
    SketchSwitchingEstimator,
    within_band,
)
from repro.engine import (
    EngineError,
    ProcessEngine,
    SeenFilter,
    SerialEngine,
    fork_available,
    partition_copies,
    plan_shards,
    prefetch_chunks,
    resolve_engine,
)
from repro.engine.shards import (
    EpochShardPlan,
    MergeShardPlan,
    SerialPlan,
    SwitchingShardPlan,
)
from repro.experiments.runner import run_relative
from repro.robust.distinct import RobustDistinctElements
from repro.robust.entropy import RobustEntropy
from repro.sketches.ams import AMSSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.exact import ExactDistinctCounter, ExactMomentCounter
from repro.sketches.f1 import F1Counter
from repro.sketches.hll import HyperLogLog
from repro.sketches.kmv import KMVSketch
from repro.sketches.misra_gries import MisraGries
from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamChunk

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process engine requires the fork start method"
)


def _uniform(m=30_000, n=1 << 11, seed=5):
    return np.random.default_rng(seed).integers(0, n, size=m)


def _fresh_robust(n, m, seed=3, **kwargs):
    return RobustDistinctElements(
        n=n, m=m, eps=kwargs.pop("eps", 0.3),
        rng=np.random.default_rng(seed), **kwargs,
    )


def _boundary_trace(est, items, chunk, engine):
    """Feed chunk by chunk, recording the published output per boundary."""
    trace = []
    if engine is None:
        for lo in range(0, len(items), chunk):
            est.update_batch(items[lo:lo + chunk])
            trace.append(est.query())
        return trace
    with engine.session(est) as session:
        for lo in range(0, len(items), chunk):
            session.feed(items[lo:lo + chunk])
            trace.append(session.query())
    return trace


class TestSwitchingEquivalence:
    """Engines reproduce the serial batched path bit for bit."""

    @pytest.mark.parametrize("restart", [True, False])
    def test_serial_engine_matches_direct(self, restart):
        n, m, chunk = 1 << 11, 30_000, 4096
        items = _uniform(m, n)
        copies = None if restart else 80
        direct = _fresh_robust(n, m, restart=restart, copies=copies)
        engined = _fresh_robust(n, m, restart=restart, copies=copies)
        t0 = _boundary_trace(direct, items, chunk, None)
        t1 = _boundary_trace(engined, items, chunk, SerialEngine())
        assert t0 == t1
        assert direct.switches == engined.switches
        for a, b in zip(
            direct._switcher._sketches, engined._switcher._sketches
        ):
            assert a.state_fingerprint() == b.state_fingerprint()

    @needs_fork
    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_engine_matches_direct(self, workers):
        n, m, chunk = 1 << 11, 30_000, 4096
        items = _uniform(m, n)
        direct = _fresh_robust(n, m)
        engined = _fresh_robust(n, m)
        t0 = _boundary_trace(direct, items, chunk, None)
        t1 = _boundary_trace(
            engined, items, chunk, ProcessEngine(workers=workers)
        )
        assert t0 == t1
        assert direct.switches == engined.switches
        # finalize() pulled every copy home: full state equality, so the
        # estimator keeps working serially after the session.
        for a, b in zip(
            direct._switcher._sketches, engined._switcher._sketches
        ):
            assert a.state_fingerprint() == b.state_fingerprint()
        direct.update(7, 1)
        engined.update(7, 1)
        assert direct.query() == engined.query()

    @needs_fork
    def test_process_engine_plain_mode_and_clamp(self):
        n, m, chunk = 1 << 10, 12_000, 2048
        items = _uniform(m, n, seed=11)

        def build(copies, on_exhausted):
            return SketchSwitchingEstimator(
                lambda r: KMVSketch(96, r), copies=copies, eps=0.3,
                rng=np.random.default_rng(1), restart=False,
                on_exhausted=on_exhausted,
            )

        for copies, mode in ((60, "raise"), (6, "clamp")):
            direct = build(copies, mode)
            engined = build(copies, mode)
            t0 = _boundary_trace(direct, items, chunk, None)
            t1 = _boundary_trace(
                engined, items, chunk, ProcessEngine(workers=2)
            )
            assert t0 == t1
            assert direct.switches == engined.switches

    def test_exhaustion_raises_like_serial(self):
        n, m = 1 << 10, 8_000
        items = _uniform(m, n, seed=2)
        direct = _fresh_robust(n, m, restart=False, copies=4)
        with pytest.raises(SketchExhaustedError):
            _boundary_trace(direct, items, 1024, None)
        engined = _fresh_robust(n, m, restart=False, copies=4)
        with pytest.raises(SketchExhaustedError):
            _boundary_trace(engined, items, 1024, SerialEngine())

    def test_small_chunks_replay_per_item(self):
        # Chunks at or below REPLAY_LEAF take the per-item replay path.
        n, m = 1 << 10, 2_000
        items = _uniform(m, n, seed=7)
        direct = _fresh_robust(n, m)
        engined = _fresh_robust(n, m)
        t0 = _boundary_trace(direct, items, 64, None)
        t1 = _boundary_trace(engined, items, 64, SerialEngine())
        assert t0 == t1
        assert direct.switches == engined.switches

    def test_bare_switching_estimator_plans_per_copy(self):
        rng = np.random.default_rng(0)
        est = SketchSwitchingEstimator(
            lambda r: KMVSketch(64, r), copies=8, eps=0.25, rng=rng
        )
        plan = plan_shards(est)
        assert isinstance(plan, SwitchingShardPlan)
        assert plan.filter_duplicates and plan.aggregate_once
        assert plan.unique_hint

    def test_hll_inner_sketches_filter_without_unique_hint(self):
        rng = np.random.default_rng(0)
        est = SketchSwitchingEstimator(
            lambda r: HyperLogLog(5, r), copies=4, eps=0.3, rng=rng
        )
        plan = plan_shards(est)
        assert isinstance(plan, SwitchingShardPlan)
        assert plan.filter_duplicates
        assert not plan.unique_hint
        items = _uniform(6_000, 1 << 9, seed=4)
        direct = SketchSwitchingEstimator(
            lambda r: HyperLogLog(5, r), copies=4, eps=0.3,
            rng=np.random.default_rng(1), restart=False,
            on_exhausted="clamp",
        )
        engined = SketchSwitchingEstimator(
            lambda r: HyperLogLog(5, r), copies=4, eps=0.3,
            rng=np.random.default_rng(1), restart=False,
            on_exhausted="clamp",
        )
        t0 = _boundary_trace(direct, items, 1024, None)
        t1 = _boundary_trace(engined, items, 1024, SerialEngine())
        assert t0 == t1
        assert direct.switches == engined.switches


class TestAdditiveEngine:
    """RobustEntropy (additive band, float CC copies) through the engine."""

    def _entropy(self, seed=3):
        return RobustEntropy(n=256, m=20_000, eps=0.5,
                             rng=np.random.default_rng(seed), copies=16)

    def test_serial_engine_matches_direct_and_per_item(self):
        items = _uniform(20_000, 256, seed=8)
        per_item = self._entropy()
        for item in items.tolist():
            per_item.update(item, 1)
        direct = self._entropy()
        engined = self._entropy()
        t0 = _boundary_trace(direct, items, 4096, None)
        t1 = _boundary_trace(engined, items, 4096, SerialEngine())
        assert t0 == t1
        assert direct.switches == engined.switches
        # The uniform ramp is monotone between boundary checks on this
        # stream: the chunked paths reproduce the per-item protocol.
        assert per_item.query() == direct.query()
        assert per_item.switches == direct.switches

    @needs_fork
    def test_process_engine_matches_direct(self):
        items = _uniform(20_000, 256, seed=9)
        direct = self._entropy(seed=4)
        engined = self._entropy(seed=4)
        t0 = _boundary_trace(direct, items, 4096, None)
        t1 = _boundary_trace(engined, items, 4096, ProcessEngine(workers=3))
        assert t0 == t1
        assert direct.switches == engined.switches

    def test_ingest_reports_additive_policy(self):
        est = self._entropy(seed=5)
        report = ingest(est, _uniform(4_000, 256, seed=5), chunk_size=1024,
                        engine="serial")
        assert report.policy == "additive"
        assert report.mode == "serial"

    def test_ingest_reports_epoch_policy(self):
        from repro.robust.heavy_hitters import RobustHeavyHitters

        est = RobustHeavyHitters(n=256, m=4_000, eps=0.3,
                                 rng=np.random.default_rng(2))
        report = ingest(est, _uniform(4_000, 256, seed=6), chunk_size=1024,
                        engine="serial")
        assert report.policy == "epoch"
        # the direct path resolves the policy from the estimator itself
        est2 = RobustHeavyHitters(n=256, m=4_000, eps=0.3,
                                  rng=np.random.default_rng(2))
        report2 = ingest(est2, _uniform(4_000, 256, seed=6), chunk_size=1024)
        assert report2.policy == "epoch"
        assert report2.mode == "direct"


class TestMergeContract:
    """Sketch.merge: partials combine to the serial state."""

    def _partial_pair(self, make, items, deltas=None):
        serial, left = make(), make()
        right = left.snapshot()
        mid = len(items) // 2
        serial.update_batch(items, deltas)
        left.update_batch(items[:mid], None if deltas is None else deltas[:mid])
        right.update_batch(items[mid:], None if deltas is None else deltas[mid:])
        left.merge(right)
        return serial, left

    def test_countmin_exact(self):
        items = _uniform(8_000, 512)
        serial, merged = self._partial_pair(
            lambda: CountMinSketch(256, 4, np.random.default_rng(1)), items
        )
        assert np.array_equal(serial._table, merged._table)
        assert serial.query() == merged.query()

    def test_countsketch_turnstile(self):
        items = _uniform(8_000, 512)
        deltas = np.random.default_rng(2).integers(-2, 3, size=len(items))
        serial, merged = self._partial_pair(
            lambda: CountSketch(128, 5, np.random.default_rng(1)),
            items, deltas,
        )
        assert np.allclose(serial._table, merged._table)

    def test_ams(self):
        items = _uniform(8_000, 512)
        serial, merged = self._partial_pair(
            lambda: AMSSketch(16, 3, np.random.default_rng(1)), items
        )
        assert np.allclose(serial._y, merged._y)

    def test_kmv_bitwise(self):
        items = _uniform(8_000, 4096)
        serial, merged = self._partial_pair(
            lambda: KMVSketch(64, np.random.default_rng(1)), items
        )
        assert serial.state_fingerprint() == merged.state_fingerprint()

    def test_hll_bitwise(self):
        items = _uniform(8_000, 4096)
        serial, merged = self._partial_pair(
            lambda: HyperLogLog(6, np.random.default_rng(1)), items
        )
        assert np.array_equal(serial._registers, merged._registers)

    def test_f1_and_exact(self):
        items = _uniform(4_000, 128)
        for make in (F1Counter, ExactDistinctCounter,
                     lambda: ExactMomentCounter(2.0)):
            serial, merged = self._partial_pair(make, items)
            assert serial.query() == merged.query()

    def test_merge_validates_operands(self):
        a = CountMinSketch(64, 3, np.random.default_rng(0))
        b = CountMinSketch(32, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(ValueError):
            KMVSketch(16, np.random.default_rng(0)).merge(
                KMVSketch(32, np.random.default_rng(0))
            )

    def test_mergeable_flag(self):
        assert CountMinSketch(8, 1, np.random.default_rng(0)).mergeable
        assert not MisraGries(8).mergeable
        with pytest.raises(NotImplementedError):
            MisraGries(8).merge(MisraGries(8))
        with pytest.raises(NotImplementedError):
            MisraGries(8).empty_like()

    def test_empty_like_shares_randomness_with_zero_state(self):
        items = _uniform(2_000, 256)
        for make in (
            lambda: CountMinSketch(64, 3, np.random.default_rng(4)),
            lambda: CountSketch(64, 3, np.random.default_rng(4)),
            lambda: AMSSketch(8, 3, np.random.default_rng(4)),
            lambda: KMVSketch(32, np.random.default_rng(4)),
            lambda: HyperLogLog(5, np.random.default_rng(4)),
            F1Counter,
            ExactDistinctCounter,
        ):
            full = make()
            full.update_batch(items)
            empty = full.empty_like()
            assert empty.query() == make().query()  # zero state
            empty.update_batch(items)               # same randomness
            assert empty.query() == full.query()

    @needs_fork
    def test_process_merge_preserves_pre_session_state(self):
        # Updates fed BEFORE the engine session must be counted exactly
        # once after finalize (partials are pure deltas, not snapshots).
        items = _uniform(12_000, 512)
        serial = CountMinSketch(128, 3, np.random.default_rng(2))
        serial.update_batch(items)
        split = CountMinSketch(128, 3, np.random.default_rng(2))
        split.update_batch(items[:4_000])
        report = ingest(
            split, StreamChunk.insertions(items[4_000:]), chunk_size=2048,
            engine=ProcessEngine(workers=2),
        )
        assert report.mode == "process[2]"
        assert np.array_equal(serial._table, split._table)

    @needs_fork
    def test_process_merge_session_matches_serial(self):
        items = _uniform(40_000, 2048)
        serial = CountMinSketch(256, 4, np.random.default_rng(6))
        serial.update_batch(items)
        parallel = CountMinSketch(256, 4, np.random.default_rng(6))
        report = ingest(
            parallel, StreamChunk.insertions(items), chunk_size=8192,
            engine=ProcessEngine(workers=3),
        )
        assert report.mode == "process[3]"
        assert np.array_equal(serial._table, parallel._table)
        # mid-session query merges without disturbing the partials
        a = KMVSketch(64, np.random.default_rng(8))
        b = KMVSketch(64, np.random.default_rng(8))
        a.update_batch(items)
        engine = ProcessEngine(workers=2)
        with engine.session(b) as session:
            session.feed(items[:20_000])
            assert session.query() > 0
            session.feed(items[20_000:])
        assert a.state_fingerprint() == b.state_fingerprint()


class TestPlanner:
    def test_wrapper_unwraps_to_switching_plan(self):
        est = _fresh_robust(1 << 11, 10_000)
        plan = plan_shards(est)
        assert isinstance(plan, SwitchingShardPlan)
        assert plan.universe == 1 << 11
        assert plan.filter_duplicates and plan.unique_hint

    def test_mergeable_plan(self):
        sketch = CountMinSketch(64, 3, np.random.default_rng(0))
        sketch.update(5, 3)
        plan = plan_shards(sketch)
        assert isinstance(plan, MergeShardPlan)
        partials = plan.make_partials(3)
        assert len(partials) == 3
        assert all(p is not plan.sketch for p in partials)
        assert all(p.query() == 0.0 for p in partials)  # pure deltas

    def test_entropy_plans_per_copy_with_additive_band(self):
        # The additive (entropy) band fans out per copy like any other
        # switching estimator; the plan carries the band policy.
        est = RobustEntropy(n=256, m=2_000, eps=0.5,
                            rng=np.random.default_rng(0))
        plan = plan_shards(est)
        assert isinstance(plan, SwitchingShardPlan)
        assert plan.band.name == "additive"
        assert not plan.band.bisectable
        assert isinstance(plan_shards(MisraGries(8)), SerialPlan)

    def test_heavy_hitters_gets_epoch_plan(self):
        from repro.robust.heavy_hitters import RobustHeavyHitters

        est = RobustHeavyHitters(n=512, m=4_000, eps=0.3,
                                 rng=np.random.default_rng(0))
        plan = plan_shards(est)
        assert isinstance(plan, EpochShardPlan)
        assert plan.l2_plan.band.name == "multiplicative"
        assert plan.ring.count == est._ring.count

    def test_wrapper_with_absent_switcher_falls_back_serial(self):
        # Regression (ISSUE 3 satellite): a wrapper advertising a
        # switching delegate that is absent/disabled must get an
        # explicit SerialPlan, not silent active-copy assumptions.
        class _Disabled(MisraGries):
            def __init__(self):
                super().__init__(8)
                self._switcher = None

        plan = plan_shards(_Disabled())
        assert isinstance(plan, SerialPlan)
        assert "absent" in plan.reason

        # The serial fallback must still ingest correctly end to end,
        # AND the planner's reason must be *surfaced* by the report —
        # a fallback that only shows up as matching results is silent.
        est = _Disabled()
        items = _uniform(2_000, 128, seed=3)
        report = ingest(est, items, chunk_size=512, engine="serial")
        assert report.updates == 2_000
        assert report.policy is None
        assert report.fallback_reason == plan.reason
        assert "absent" in report.fallback_reason

        # Same surfacing through the process engine's fallback path.
        report = ingest(_Disabled(), items, chunk_size=512,
                        engine=ProcessEngine(workers=2))
        assert "absent" in report.fallback_reason

        # Estimators the planner *can* shard report no fallback.
        sharded = RobustEntropy(n=256, m=2_000, eps=0.5,
                                rng=np.random.default_rng(0))
        report = ingest(sharded, items, chunk_size=512, engine="serial")
        assert report.fallback_reason is None

    def test_epoch_wrapper_without_switching_l2_falls_back_serial(self):
        from repro.robust.heavy_hitters import RobustHeavyHitters

        est = RobustHeavyHitters(n=256, m=2_000, eps=0.4,
                                 rng=np.random.default_rng(1))

        class _FlatTracker:
            """Duck-typed L2 stand-in without a switching core."""

            def query(self):
                return 1.0

            def update_batch(self, items, deltas=None):
                pass

        est._l2 = _FlatTracker()
        plan = plan_shards(est)
        assert isinstance(plan, SerialPlan)
        assert "epoch wrapper" in plan.reason

    def test_partition_copies(self):
        assert partition_copies(5, 2) == [[0, 1, 2], [3, 4]]
        assert partition_copies(2, 8) == [[0], [1]]
        assert partition_copies(6, 3) == [[0, 1], [2, 3], [4, 5]]
        with pytest.raises(ValueError):
            partition_copies(0, 2)
        with pytest.raises(ValueError):
            partition_copies(4, 0)

    @pytest.mark.parametrize("universe", [512, None])
    def test_seen_filter(self, universe):
        f = SeenFilter(universe)
        uniq = np.array([3, 7, 11], dtype=np.int64)
        assert np.array_equal(f.fresh(uniq), uniq)
        f.mark(uniq)
        assert len(f.fresh(uniq)) == 0
        mixed = np.array([7, 8, 11, 12], dtype=np.int64)
        assert np.array_equal(f.fresh(mixed), [8, 12])
        f.reset()
        assert np.array_equal(f.fresh(uniq), uniq)

    def test_seen_filter_out_of_universe_items_stay_fresh(self):
        f = SeenFilter(16)
        big = np.array([5, 999], dtype=np.int64)
        assert np.array_equal(f.fresh(big), big)
        f.mark(big)  # ignored: outside the dense mask
        assert np.array_equal(f.fresh(big), big)


def _prefetch_threads():
    import threading

    return [
        t for t in threading.enumerate()
        if t.name == "chunk-prefetch" and t.is_alive()
    ]


class TestPrefetch:
    def test_order_and_completeness(self):
        chunks = [np.arange(i, i + 4) for i in range(0, 40, 4)]
        got = list(prefetch_chunks(iter(chunks), depth=2))
        assert all(np.array_equal(a, b) for a, b in zip(chunks, got))
        assert len(got) == len(chunks)

    def test_producer_exception_propagates(self):
        def bad():
            yield 1
            raise RuntimeError("producer died")

        it = prefetch_chunks(bad())
        assert next(it) == 1
        with pytest.raises(RuntimeError, match="producer died"):
            list(it)

    def test_early_close_stops_producer(self):
        produced = []

        def source():
            for i in range(1000):
                produced.append(i)
                yield i

        it = prefetch_chunks(source(), depth=2)
        assert next(it) == 0
        it.close()
        assert len(produced) < 1000

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            list(prefetch_chunks([1, 2], depth=0))

    # -- lifecycle regressions (ISSUE 5 satellites) ----------------------

    def test_early_close_full_queue_depth1_joins_producer(self):
        """The terminal _DONE put must be stop-aware.

        depth=1 with an early close: the close-path drain frees one
        slot, the producer's in-flight chunk put grabs it, and the
        producer then reaches the terminal put with the queue full and
        the consumer gone — an unconditional put would block forever
        and leak the thread past the join timeout.
        """
        import time

        it = prefetch_chunks(iter([0, 1, 2]), depth=1)
        assert next(it) == 0
        time.sleep(0.2)  # producer now parked putting a chunk
        start = time.perf_counter()
        it.close()
        assert time.perf_counter() - start < 2.0, "close hit the join timeout"
        deadline = time.time() + 2.0
        while time.time() < deadline and _prefetch_threads():
            time.sleep(0.01)
        assert not _prefetch_threads(), "producer thread leaked after close"

    def test_slow_producer_early_close_joins_thread(self):
        """Early break with depth=1 and a slow producer: no leaked thread."""
        import time

        def source():
            for i in range(100):
                time.sleep(0.02)
                yield i

        it = prefetch_chunks(source(), depth=1)
        assert next(it) == 0
        it.close()
        deadline = time.time() + 2.0
        while time.time() < deadline and _prefetch_threads():
            time.sleep(0.01)
        assert not _prefetch_threads(), "producer thread leaked after close"

    def test_producer_exception_after_close_is_logged(self, caplog):
        """A failure after the consumer went away is surfaced, not dropped."""
        import logging
        import time

        def source():
            yield 0
            yield 1
            time.sleep(0.3)  # let the consumer close first
            raise RuntimeError("late producer failure")

        it = prefetch_chunks(source(), depth=1)
        assert next(it) == 0
        with caplog.at_level(logging.ERROR, logger="repro.engine.prefetch"):
            it.close()
            deadline = time.time() + 2.0
            while time.time() < deadline and _prefetch_threads():
                time.sleep(0.01)
        assert not _prefetch_threads()
        assert "late producer failure" in caplog.text

    def test_producer_exception_delivered_through_full_queue(self):
        """Delivery retries past a transiently full queue (no 1s give-up)."""
        import time

        def source():
            yield 0
            yield 1
            yield 2
            raise RuntimeError("post-chunk failure")

        it = prefetch_chunks(source(), depth=1)
        got = []
        with pytest.raises(RuntimeError, match="post-chunk failure"):
            for chunk in it:
                got.append(chunk)
                time.sleep(0.05)  # slow consumer: queue stays full
        assert got == [0, 1, 2]

    def test_blocked_source_join_timeout_is_logged(self, monkeypatch, caplog):
        """A producer that cannot be stopped is reported, not silently leaked."""
        import logging
        import threading

        import repro.engine.prefetch as prefetch_mod

        monkeypatch.setattr(prefetch_mod, "JOIN_TIMEOUT", 0.05)
        gate = threading.Event()

        def source():
            yield 0
            gate.wait(5.0)  # simulates blocked I/O inside the chunk source
            yield 1

        it = prefetch_chunks(source(), depth=1)
        assert next(it) == 0
        with caplog.at_level(logging.ERROR, logger="repro.engine.prefetch"):
            it.close()
        assert "failed to join" in caplog.text
        gate.set()  # release the thread so it exits before the next test


class TestPlumbing:
    def test_resolve_engine(self):
        assert resolve_engine(None) is None
        assert isinstance(resolve_engine("serial"), SerialEngine)
        assert isinstance(resolve_engine("process"), ProcessEngine)
        engine = resolve_engine("process:3")
        assert isinstance(engine, ProcessEngine) and engine.workers == 3
        assert resolve_engine(engine) is engine
        assert resolve_engine(2).workers == 2
        for bad in ("turbo", True, 1.5):
            with pytest.raises(ValueError):
                resolve_engine(bad)

    def test_ingest_reports_mode_and_prefetch(self):
        items = _uniform(6_000, 256)
        est = CountMinSketch(128, 3, np.random.default_rng(0))
        report = ingest(est, items, chunk_size=1024, prefetch=2)
        assert report.mode == "direct"
        assert report.updates == len(items)
        est2 = _fresh_robust(256, 6_000)
        report2 = ingest(est2, items, chunk_size=1024, engine="serial")
        assert report2.mode == "serial"
        assert report2.final_estimate == est2.query()

    def test_runner_engine_path_matches_direct(self):
        n, m = 512, 8_000
        items = _uniform(m, n, seed=9)
        a = _fresh_robust(n, m, seed=4)
        b = _fresh_robust(n, m, seed=4)
        s0 = run_relative(a, items, lambda f: f.f0(), chunk_size=1024)
        s1 = run_relative(b, items, lambda f: f.f0(), chunk_size=1024,
                          engine=SerialEngine())
        assert s0.worst_error == s1.worst_error
        assert s0.steps_judged == s1.steps_judged
        with pytest.raises(ValueError):
            run_relative(a, items, lambda f: f.f0(), engine=SerialEngine())

    def test_within_band(self):
        assert within_band(100.0, 100.0, 0.2)
        assert within_band(100.0, 105.0, 0.2)
        assert not within_band(100.0, 150.0, 0.2)
        assert within_band(0.0, 0.0, 0.2)
        assert not within_band(0.0, 10.0, 0.2)

    @needs_fork
    def test_worker_error_surfaces(self):
        est = _fresh_robust(256, 4_000)
        engine = ProcessEngine(workers=2)
        session = engine.session(est)
        try:
            with pytest.raises((EngineError, ValueError)):
                # Negative deltas are invalid for KMV: the failure must
                # come back as an exception, not a hang.
                session.feed(
                    np.arange(200, dtype=np.int64),
                    -np.ones(200, dtype=np.int64),
                )
        finally:
            session.close()
