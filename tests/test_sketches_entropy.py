"""Tests for the entropy sketches, including the skewed-stable MGF identity."""

import math

import numpy as np
import pytest

from repro.sketches.entropy import (
    CliffordCosmaSketch,
    RenyiEntropyEstimator,
    sample_skewed_stable,
)
from repro.streams.frequency import FrequencyVector


class TestSkewedStableSampler:
    def test_mgf_identity(self):
        """E[e^{tX}] = exp(t ln t + t ln(pi/2)) — the estimator's foundation."""
        x = sample_skewed_stable(np.random.default_rng(0), 2_000_000)
        for t in (0.25, 0.5, 0.75, 1.0):
            empirical = float(np.mean(np.exp(t * x)))
            expected = math.exp(t * math.log(t) + t * math.log(math.pi / 2))
            assert empirical == pytest.approx(expected, rel=0.02), f"t={t}"

    def test_left_skew(self):
        x = sample_skewed_stable(np.random.default_rng(1), 500_000)
        # beta = -1: heavy left tail, light right tail.
        assert float(np.quantile(x, 0.001)) < -5
        assert float(np.quantile(x, 0.999)) < 30


class TestCliffordCosma:
    def test_uniform_entropy(self):
        sketch = CliffordCosmaSketch(k=800, seed=2)
        truth = FrequencyVector()
        for i in range(4096):
            sketch.update(i % 64)
            truth.update(i % 64)
        assert truth.shannon_entropy() == pytest.approx(6.0, abs=1e-9)
        assert sketch.query() == pytest.approx(6.0, abs=0.4)

    def test_degenerate_entropy(self):
        sketch = CliffordCosmaSketch(k=400, seed=3)
        for _ in range(500):
            sketch.update(7)
        assert sketch.query() == pytest.approx(0.0, abs=0.2)

    def test_skewed_distribution(self):
        sketch = CliffordCosmaSketch(k=800, seed=4)
        truth = FrequencyVector()
        stream = [0] * 900 + list(range(1, 101))
        for item in stream:
            sketch.update(item)
            truth.update(item)
        assert sketch.query() == pytest.approx(truth.shannon_entropy(), abs=0.4)

    def test_empty_stream(self):
        assert CliffordCosmaSketch(k=8, seed=5).query() == 0.0

    def test_turnstile(self):
        sketch = CliffordCosmaSketch(k=400, seed=6)
        for i in range(16):
            sketch.update(i, 4)
        for i in range(8, 16):
            sketch.update(i, -4)
        # Remaining: uniform over 8 items -> H = 3 bits.
        assert sketch.query() == pytest.approx(3.0, abs=0.5)

    def test_for_accuracy_sizing(self):
        s = CliffordCosmaSketch.for_accuracy(0.1, 0.05, np.random.default_rng(7))
        assert s.k >= 1 / 0.1**2

    def test_nats_base(self):
        bits = CliffordCosmaSketch(k=400, seed=8, base=2.0)
        nats = CliffordCosmaSketch(k=400, seed=8, base=math.e)
        for i in range(1024):
            bits.update(i % 16)
            nats.update(i % 16)
        assert bits.query() == pytest.approx(nats.query() / math.log(2), rel=0.01)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CliffordCosmaSketch(k=0, seed=0)


class TestRenyiEstimator:
    def test_tracks_shannon_for_alpha_near_one(self):
        est = RenyiEntropyEstimator(alpha=1.05, k=2000, seed=9)
        truth = FrequencyVector()
        for i in range(4096):
            est.update(i % 32)
            truth.update(i % 32)
        # The 1/(1-alpha) factor amplifies the F_alpha sketch error ~20x —
        # exactly the sensitivity that costs the paper its extra eps/log
        # factors (Theorem 7.3).  A 3%-accurate F_alpha at alpha=1.05 only
        # pins H to within ~1.2 bits; assert that coarse contract.
        assert est.query() == pytest.approx(truth.shannon_entropy(), abs=1.6)

    def test_proposition_71_alpha(self):
        alpha = RenyiEntropyEstimator.proposition_71_alpha(0.1, 1 << 16, 1 << 20)
        assert 1.0 < alpha < 1.01

    def test_empty(self):
        assert RenyiEntropyEstimator(alpha=1.1, k=8, seed=0).query() == 0.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RenyiEntropyEstimator(alpha=1.0, k=8, seed=0)
        with pytest.raises(ValueError):
            RenyiEntropyEstimator(alpha=0.0, k=8, seed=0)
