"""Chunk sources: spec round-trips, fork safety, and path equivalence.

The load-bearing suite for spec-shipped execution: a stream described by
a picklable spec must materialize bit-for-bit identically wherever the
spec travels — coordinator, serial fast path, or forked worker — so
published outputs, switch counts, and DP budget state agree across the
per-item path, the bytes-shipped engines, and the spec-shipped process
engine.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ingest
from repro.core.bands import MultiplicativeBand
from repro.core.disciplines import PrivateAggregateDiscipline
from repro.core.sketch_switching import SwitchingEstimator
from repro.engine.executor import (
    EngineError,
    ProcessEngine,
    SerialEngine,
    fork_available,
)
from repro.obs import RingSink, Telemetry
from repro.sketches.countsketch import CountSketch
from repro.streams.model import Update
from repro.streams.sources import (
    ChunkSource,
    GeneratorChunkSource,
    StoreChunkSource,
    as_chunk_source,
    source_from_spec,
)
from repro.streams.store import ColumnarStreamStore, write_stream

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process engine requires the fork start method"
)


def _materialize(source: ChunkSource):
    items = [c.items for c in source.chunks()]
    deltas = [c.deltas for c in source.chunks()]
    return (np.concatenate(items) if items else np.empty(0, np.int64),
            np.concatenate(deltas) if deltas else np.empty(0, np.int64))


# ----------------------------------------------------------------------
# Specs and round-trips
# ----------------------------------------------------------------------


class TestGeneratorSource:
    def test_spec_round_trip_is_bit_identical(self):
        src = GeneratorChunkSource("zipfian", n=500, m=7_000, seed=21,
                                   chunk_size=1234, s=1.4)
        twin = source_from_spec(src.spec())
        a_i, a_d = _materialize(src)
        b_i, b_d = _materialize(twin)
        np.testing.assert_array_equal(a_i, b_i)
        np.testing.assert_array_equal(a_d, b_d)

    def test_rematerialization_is_repeatable(self):
        src = GeneratorChunkSource("uniform", n=100, m=5_000, seed=3,
                                   chunk_size=512)
        a_i, _ = _materialize(src)
        b_i, _ = _materialize(src)  # chunks() rebuilds the RNG every call
        np.testing.assert_array_equal(a_i, b_i)

    def test_chunked_draws_match_monolithic(self):
        # The licensing fact for worker-side regeneration: chunk-by-chunk
        # RNG draws concatenate to the monolithic stream bit for bit.
        src = GeneratorChunkSource("uniform", n=256, m=10_000, seed=11,
                                   chunk_size=999)
        items, _ = _materialize(src)
        whole = np.random.default_rng(11).integers(
            0, 256, size=10_000, dtype=np.int64
        )
        np.testing.assert_array_equal(items, whole)

    def test_chunk_lengths_match_geometry(self):
        src = GeneratorChunkSource("uniform", n=10, m=2_500, seed=0,
                                   chunk_size=1_000)
        lengths = src.chunk_lengths()
        assert lengths == [1_000, 1_000, 500]
        assert sum(lengths) == src.total == len(src)
        assert [len(c.items) for c in src.chunks()] == lengths

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown chunked generator"):
            GeneratorChunkSource("nope", n=10, m=10, seed=1)
        with pytest.raises(ValueError, match="needs a seed"):
            GeneratorChunkSource("uniform", n=10, m=10)
        with pytest.raises(ValueError, match="seed must be None"):
            GeneratorChunkSource("distinct-ramp", n=10, m=10, seed=1)
        with pytest.raises(ValueError, match="chunk size"):
            GeneratorChunkSource("uniform", n=10, m=10, seed=1, chunk_size=0)

    def test_seedless_generator_is_spec_shippable(self):
        src = GeneratorChunkSource("distinct-ramp", n=64, m=200,
                                   chunk_size=33)
        twin = source_from_spec(src.spec())
        np.testing.assert_array_equal(_materialize(src)[0],
                                      _materialize(twin)[0])


class TestStoreSource:
    @pytest.fixture()
    def store_path(self, tmp_path):
        updates = [Update(i % 17, (-1) ** i * (1 + i % 3)) for i in range(400)]
        write_stream(tmp_path / "s", updates, chunk_size=64)
        return tmp_path / "s"

    def test_spec_round_trip(self, store_path):
        src = StoreChunkSource(store_path, chunk_size=100, start=50, stop=350)
        assert src.total == 300
        twin = source_from_spec(src.spec())
        a_i, a_d = _materialize(src)
        b_i, b_d = _materialize(twin)
        np.testing.assert_array_equal(a_i, b_i)
        np.testing.assert_array_equal(a_d, b_d)

    def test_row_range_validation(self, store_path):
        with pytest.raises(ValueError, match="out of bounds"):
            StoreChunkSource(store_path, start=10, stop=1_000)
        with pytest.raises(ValueError, match="out of bounds"):
            StoreChunkSource(store_path, start=-1)

    def test_as_chunk_source_coercions(self, store_path):
        store = ColumnarStreamStore(store_path)
        assert isinstance(as_chunk_source(store, 128), StoreChunkSource)
        assert isinstance(as_chunk_source(str(store_path), 128),
                          StoreChunkSource)
        src = GeneratorChunkSource("uniform", n=4, m=4, seed=0)
        assert as_chunk_source(src, 128) is src
        assert as_chunk_source([1, 2, 3], 128) is None
        assert as_chunk_source("/nonexistent/store/path", 128) is None


# ----------------------------------------------------------------------
# Fork safety (regression): inherited memmaps are dropped post-fork
# ----------------------------------------------------------------------


@needs_fork
class TestForkSafety:
    def test_child_reopens_own_mapping(self, tmp_path):
        updates = [Update(i % 5, 1) for i in range(300)]
        write_stream(tmp_path / "s", updates, chunk_size=50)
        store = ColumnarStreamStore(tmp_path / "s")
        parent_items = np.asarray(store.items[:]).copy()  # open the memmap
        parent_pid = store._map_pid
        assert parent_pid == os.getpid()

        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()

        def child(conn):
            try:
                # The inherited handle must be detected as foreign and
                # dropped before first use...
                stale = store._map_pid != os.getpid()
                items = np.asarray(store.items[:]).copy()
                # ...and the reopened mapping is stamped with this pid.
                conn.send((stale, store._map_pid == os.getpid(), items))
            finally:
                conn.close()

        proc = ctx.Process(target=child, args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        stale, restamped, child_items = parent_conn.recv()
        proc.join(timeout=10)
        assert stale, "child should have seen the parent's pid stamp"
        assert restamped, "child should own its mapping after first access"
        np.testing.assert_array_equal(child_items, parent_items)
        # The parent's mapping is untouched by the child's reopen.
        assert store._map_pid == parent_pid
        np.testing.assert_array_equal(store.items[:], parent_items)

    def test_store_source_chunks_in_child(self, tmp_path):
        # StoreChunkSource.chunks() opens its own store, so a worker
        # materializing from a spec never shares parent file handles.
        updates = [Update(i % 9, 1) for i in range(500)]
        write_stream(tmp_path / "s", updates, chunk_size=64)
        src = StoreChunkSource(tmp_path / "s", chunk_size=128)
        expect_i, expect_d = _materialize(src)

        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        spec = src.spec()

        def child(conn):
            try:
                got = source_from_spec(spec)
                i, d = _materialize(got)
                conn.send((i, d))
            finally:
                conn.close()

        proc = ctx.Process(target=child, args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        child_i, child_d = parent_conn.recv()
        proc.join(timeout=10)
        np.testing.assert_array_equal(child_i, expect_i)
        np.testing.assert_array_equal(child_d, expect_d)


# ----------------------------------------------------------------------
# Equivalence: per-item vs bytes-shipped vs spec-shipped, bit for bit
# ----------------------------------------------------------------------


def _stacked_dp(copies=8, width=32, seed=1, band=0.5):
    return SwitchingEstimator(
        factory=lambda rng: CountSketch(width, 5, rng, track_candidates=0),
        copies=copies,
        rng=np.random.default_rng(seed),
        band=MultiplicativeBand(band),
        discipline=PrivateAggregateDiscipline(noise_scale=0.01),
        stacked=True,
    )


def _state(est):
    return (est.query(), est.switches, est.discipline.budget_state())


class TestSerialEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.sampled_from([32, 64, 128]),
        m=st.integers(1_000, 6_000),
        chunk=st.sampled_from([97, 256, 1024]),
    )
    def test_per_item_vs_bytes_vs_universe(self, seed, n, m, chunk):
        """The three serial drives agree bit for bit.

        ``chunk`` exceeds REPLAY_LEAF for the larger draws, so band
        crossings force mid-chunk bisection through the source-fed
        chunks — the equivalence must hold through the replay machinery,
        not just at clean boundaries.
        """
        src = GeneratorChunkSource("uniform", n=n, m=m, seed=seed,
                                   chunk_size=chunk)
        items, deltas = _materialize(src)

        per_item = _stacked_dp()
        for it in items.tolist():
            per_item.update(it, 1)

        chunked = _stacked_dp()
        for c in src.chunks():
            chunked.update_batch(c.items, c.deltas)

        universe = _stacked_dp()
        with SerialEngine().session(universe, source=src) as session:
            assert session.source_mode == "universe"
            session.feed_source(src)

        assert _state(chunked) == _state(per_item)
        assert _state(universe) == _state(per_item)

    def test_mid_chunk_bisection_occurs(self):
        # Sanity for the docstring above: this workload really does
        # switch more often than it has chunk boundaries.
        src = GeneratorChunkSource("uniform", n=64, m=20_000, seed=9,
                                   chunk_size=777)
        est = _stacked_dp()
        with SerialEngine().session(est, source=src) as session:
            session.feed_source(src)
        assert est.switches > len(src.chunk_lengths())


@needs_fork
class TestProcessSpecEquivalence:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_spec_shipped_matches_per_item(self, workers):
        src = GeneratorChunkSource("uniform", n=64, m=12_000, seed=9,
                                   chunk_size=777)
        items, _ = _materialize(src)
        per_item = _stacked_dp()
        for it in items.tolist():
            per_item.update(it, 1)

        spec = _stacked_dp()
        with ProcessEngine(workers=workers).session(spec, source=src) as s:
            assert s.spec_shipped and s.source_mode == "spec"
            assert s.mode == f"process[{min(workers, 8)}]"
            s.feed_source(src)

        assert _state(spec) == _state(per_item)

    def test_spec_shipped_store_source(self, tmp_path):
        rng = np.random.default_rng(4)
        updates = [Update(int(x), 1)
                   for x in rng.integers(0, 64, size=6_000)]
        write_stream(tmp_path / "s", updates, chunk_size=512)
        src = StoreChunkSource(tmp_path / "s", chunk_size=512)

        bytes_est = _stacked_dp(seed=2)
        for c in src.chunks():
            bytes_est.update_batch(c.items, c.deltas)

        spec_est = _stacked_dp(seed=2)
        with ProcessEngine(workers=2).session(spec_est, source=src) as s:
            assert s.spec_shipped
            s.feed_source(src)
        assert _state(spec_est) == _state(bytes_est)

    def test_spec_broadcast_event_and_generate_phase(self):
        src = GeneratorChunkSource("uniform", n=32, m=4_000, seed=5,
                                   chunk_size=512)
        ring = RingSink()
        report = ingest(_stacked_dp(), source=src, engine="process:2",
                        telemetry=Telemetry(sinks=[ring]))
        assert report.source_mode == "spec"
        assert report.mode == "process[2]"
        broadcasts = ring.by_kind("spec-broadcast")
        assert len(broadcasts) == 1
        ev = broadcasts[0]
        assert ev.source == "generator"
        assert ev.chunks == len(src.chunk_lengths())
        assert ev.updates == src.total
        assert ev.workers == 2
        # worker_generate is its own key, never summed into a
        # coordinator phase (same double-count rule as worker_probe).
        phases = report.phase_seconds
        assert "worker_generate" in phases
        assert "generate" not in phases

    def test_materialize_fault_surfaces(self):
        class LyingSource(GeneratorChunkSource):
            # Claims one more chunk than it materializes: the workers'
            # chunk iterators exhaust and the advance command faults.
            def chunk_lengths(self):
                return super().chunk_lengths() + [1]

        src = LyingSource("uniform", n=32, m=2_000, seed=5, chunk_size=512)
        ring = RingSink()
        with pytest.raises(EngineError):
            ingest(_stacked_dp(), source=src, engine="process:2",
                   telemetry=Telemetry(sinks=[ring]))
        faults = ring.by_kind("materialize-fault")
        assert len(faults) == 1 and faults[0].detail


# ----------------------------------------------------------------------
# api.ingest surface
# ----------------------------------------------------------------------


class TestIngestSourceSurface:
    def test_stream_and_source_are_exclusive(self):
        src = GeneratorChunkSource("uniform", n=4, m=4, seed=0)
        with pytest.raises(ValueError, match="not both"):
            ingest(_stacked_dp(), [1, 2], source=src)
        with pytest.raises(ValueError, match="stream= or a source="):
            ingest(_stacked_dp())

    def test_source_positional_and_keyword_agree(self):
        src = GeneratorChunkSource("uniform", n=32, m=3_000, seed=7,
                                   chunk_size=500)
        a = ingest(_stacked_dp(), src, engine="serial")
        b = ingest(_stacked_dp(), source=src, engine="serial")
        assert a.final_estimate == b.final_estimate
        assert a.source_mode == b.source_mode == "universe"

    def test_adhoc_iterable_falls_back_to_bytes(self):
        report = ingest(_stacked_dp(), source=[1, 2, 3, 1, 2],
                        engine="serial")
        assert report.source_mode.startswith("bytes:")
        assert "no picklable chunk-source spec" in report.source_mode

    def test_direct_path_reports_bytes(self):
        src = GeneratorChunkSource("uniform", n=32, m=2_000, seed=7,
                                   chunk_size=500)
        report = ingest(_stacked_dp(), source=src)
        assert report.source_mode.startswith("bytes:")
        assert report.updates == 2_000

    def test_spill_store_forces_bytes(self, tmp_path):
        src = GeneratorChunkSource("uniform", n=32, m=2_000, seed=7,
                                   chunk_size=500)
        report = ingest(_stacked_dp(), source=src, engine="serial",
                        spill_store=tmp_path / "tee")
        assert "spill_store" in report.source_mode
        replay = ColumnarStreamStore(tmp_path / "tee")
        np.testing.assert_array_equal(
            np.asarray(replay.items[:]), _materialize(src)[0]
        )

    def test_universe_gate_reason_surfaced(self, tmp_path):
        # A store written without stream parameters promises no item
        # universe, so the serial fast path isn't licensed; the planner
        # must say so rather than silently shipping bytes.
        updates = [Update(i % 16, 1) for i in range(1_000)]
        write_stream(tmp_path / "s", updates, chunk_size=128)
        src = StoreChunkSource(tmp_path / "s", chunk_size=500)
        assert src.universe is None
        report = ingest(_stacked_dp(), source=src, engine="serial")
        assert report.source_mode.startswith("bytes:")
        assert "not licensed" in report.source_mode
