"""Tests for the trivial deterministic F1 counter (paper footnote 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sketches.f1 import F1Counter


class TestF1Counter:
    def test_counts_insertions(self):
        c = F1Counter()
        c.update(1, 5)
        c.update(2, 3)
        assert c.query() == 8.0

    def test_item_identity_irrelevant(self):
        a, b = F1Counter(), F1Counter()
        a.update(1, 4)
        b.update(99, 4)
        assert a.query() == b.query()

    def test_signed_sum_with_deletions(self):
        c = F1Counter()
        c.update(1, 10)
        c.update(1, -4)
        assert c.query() == 6.0

    def test_constant_space(self):
        c = F1Counter()
        before = c.space_bits()
        for i in range(1000):
            c.update(i, 1)
        assert c.space_bits() == before == 64

    @given(st.lists(st.integers(-5, 10), max_size=100))
    def test_matches_running_sum(self, deltas):
        c = F1Counter()
        for i, d in enumerate(deltas):
            c.update(i, d)
        assert c.query() == float(sum(deltas))

    def test_deterministic_hence_robust(self):
        """Two copies fed the same adaptive stream agree exactly — the
        'deterministic algorithms are inherently robust' observation."""
        a, b = F1Counter(), F1Counter()
        outputs_a, outputs_b = [], []
        for i in range(200):
            # 'Adaptive' choice based on previous output parity.
            delta = 2 if (outputs_a and outputs_a[-1] % 2 == 0) else 1
            outputs_a.append(a.process_update(i, delta))
            outputs_b.append(b.process_update(i, delta))
        assert outputs_a == outputs_b
