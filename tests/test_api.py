"""Tests for the high-level facade."""

import pytest

from repro.api import PROBLEMS, robust_estimator
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.distinct import RobustDistinctElements
from repro.robust.heavy_hitters import RobustHeavyHitters
from repro.robust.moments import RobustFpHigh, RobustFpSwitching


class TestRobustEstimatorFactory:
    def test_every_problem_constructs(self):
        for problem in PROBLEMS:
            algo = robust_estimator(
                problem, n=256, m=200, eps=0.4, seed=1,
                p=3.0 if problem == "fp-high" else 1.0,
                **({"copies": 4} if problem in (
                    "distinct", "fp", "heavy-hitters", "entropy") else {}),
            )
            out = algo.process_update(3, 1)
            assert isinstance(out, float)
            assert algo.space_bits() > 0

    def test_problem_to_class_mapping(self):
        assert isinstance(
            robust_estimator("distinct", n=64, m=10, eps=0.5, copies=2),
            RobustDistinctElements,
        )
        assert isinstance(
            robust_estimator("distinct-crypto", n=64, m=10, eps=0.5),
            CryptoRobustDistinctElements,
        )
        assert isinstance(
            robust_estimator("fp", n=64, m=10, eps=0.5, p=2.0, copies=2),
            RobustFpSwitching,
        )
        assert isinstance(
            robust_estimator("fp-high", n=64, m=10, eps=0.5, p=3.0),
            RobustFpHigh,
        )
        assert isinstance(
            robust_estimator("heavy-hitters", n=64, m=10, eps=0.5, copies=2),
            RobustHeavyHitters,
        )

    def test_seed_reproducibility(self):
        a = robust_estimator("distinct", n=256, m=500, eps=0.4, seed=7,
                             copies=4)
        b = robust_estimator("distinct", n=256, m=500, eps=0.4, seed=7,
                             copies=4)
        for i in range(300):
            assert a.process_update(i, 1) == b.process_update(i, 1)

    def test_p_routing_errors(self):
        with pytest.raises(ValueError):
            robust_estimator("fp", n=16, m=10, eps=0.5, p=3.0)
        with pytest.raises(ValueError):
            robust_estimator("fp-high", n=16, m=10, eps=0.5, p=2.0)

    def test_unknown_problem(self):
        with pytest.raises(ValueError):
            robust_estimator("quantiles", n=16, m=10, eps=0.5)

    def test_tracks_distinct_end_to_end(self):
        algo = robust_estimator("distinct", n=1024, m=1000, eps=0.3, seed=3)
        worst = 0.0
        for i in range(1000):
            out = algo.process_update(i, 1)
            if i > 100:
                worst = max(worst, abs(out - (i + 1)) / (i + 1))
        assert worst <= 0.3
