"""Tests for CountSketch, CountMin, and Misra-Gries point-query sketches."""

import numpy as np
import pytest

from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.misra_gries import MisraGries
from repro.streams.frequency import FrequencyVector


def _feed(sketch, stream):
    truth = FrequencyVector()
    for item, delta in stream:
        sketch.update(item, delta)
        truth.update(item, delta)
    return truth


class TestCountSketch:
    def test_point_query_accuracy(self):
        cs = CountSketch.for_accuracy(0.2, 0.01, n=1000, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        stream = [(0, 1)] * 200 + [(int(rng.integers(1, 1000)), 1) for _ in range(800)]
        truth = _feed(cs, stream)
        bound = 0.2 * truth.lp(2)
        assert abs(cs.point_query(0) - truth[0]) <= bound

    def test_turnstile(self):
        cs = CountSketch(width=64, rows=5, rng=np.random.default_rng(2))
        cs.update(7, 10)
        cs.update(7, -4)
        assert cs.point_query(7) == pytest.approx(6.0, abs=3.0)

    def test_f2_estimate(self):
        cs = CountSketch(width=256, rows=7, rng=np.random.default_rng(3))
        truth = _feed(cs, [(i % 50, 1) for i in range(2000)])
        assert cs.f2_estimate() == pytest.approx(truth.fp(2), rel=0.3)

    def test_heavy_hitters_recovery(self):
        cs = CountSketch.for_accuracy(0.1, 0.01, n=500, rng=np.random.default_rng(4))
        rng = np.random.default_rng(5)
        stream = [(0, 1)] * 300 + [(1, 1)] * 250 + [
            (int(rng.integers(2, 500)), 1) for _ in range(450)
        ]
        truth = _feed(cs, stream)
        found = cs.heavy_hitters(0.3 * truth.lp(2))
        assert {0, 1} <= found

    def test_candidate_pruning_bounds_memory(self):
        cs = CountSketch(width=32, rows=3, rng=np.random.default_rng(6),
                         track_candidates=8)
        for i in range(1000):
            cs.update(i, 1)
        assert len(cs._candidates) <= 32

    def test_item_cache_correctness(self):
        cached = CountSketch(width=64, rows=5, rng=np.random.default_rng(7),
                             cache_items=True)
        uncached = CountSketch(width=64, rows=5, rng=np.random.default_rng(7),
                               cache_items=False)
        for i in [3, 3, 5, 3, 9]:
            cached.update(i, 1)
            uncached.update(i, 1)
        for i in [3, 5, 9, 11]:
            assert cached.point_query(i) == uncached.point_query(i)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CountSketch(width=0, rows=1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            CountSketch.for_accuracy(1.5, 0.1, 10, np.random.default_rng(0))


class TestCountMin:
    def test_never_underestimates(self):
        cm = CountMinSketch(width=64, rows=4, rng=np.random.default_rng(8))
        truth = _feed(cm, [(i % 30, 1) for i in range(600)])
        for i in range(30):
            assert cm.point_query(i) >= truth[i]

    def test_overestimate_bounded(self):
        cm = CountMinSketch.for_accuracy(0.05, 0.01, np.random.default_rng(9))
        truth = _feed(cm, [(i % 100, 1) for i in range(2000)])
        for i in range(0, 100, 7):
            assert cm.point_query(i) <= truth[i] + 0.1 * truth.f1()

    def test_rejects_deletions(self):
        cm = CountMinSketch(width=8, rows=2, rng=np.random.default_rng(10))
        with pytest.raises(ValueError):
            cm.update(1, -1)

    def test_query_is_f1(self):
        cm = CountMinSketch(width=8, rows=2, rng=np.random.default_rng(11))
        cm.update(1, 5)
        cm.update(2, 3)
        assert cm.query() == 8.0


class TestMisraGries:
    def test_exact_below_capacity(self):
        mg = MisraGries(k=10)
        for item, count in [(0, 5), (1, 3), (2, 2)]:
            for _ in range(count):
                mg.update(item)
        assert mg.point_query(0) == 5.0
        assert mg.point_query(1) == 3.0

    def test_underestimate_bound(self):
        mg = MisraGries(k=9)
        rng = np.random.default_rng(12)
        truth = FrequencyVector()
        for _ in range(2000):
            item = int(rng.integers(0, 100))
            mg.update(item)
            truth.update(item)
        slack = mg.underestimate_bound()
        for i in range(100):
            est = mg.point_query(i)
            assert est <= truth[i]
            assert est >= truth[i] - slack - 1e-9

    def test_heavy_hitters_l1(self):
        mg = MisraGries.for_l1_accuracy(0.1)
        truth = FrequencyVector()
        stream = [0] * 400 + [1] * 300 + list(range(2, 302))
        for item in stream:
            mg.update(item)
            truth.update(item)
        found = mg.heavy_hitters(0.1 * truth.f1())
        assert {0, 1} <= found

    def test_l2_baseline_counter_count(self):
        mg = MisraGries.for_l2_baseline(10_000)
        assert mg.k == 200  # 2 * sqrt(n)

    def test_space_bounded_by_k(self):
        mg = MisraGries(k=5)
        for i in range(1000):
            mg.update(i)
        assert len(mg._counters) <= 5

    def test_rejects_deletions(self):
        with pytest.raises(ValueError):
            MisraGries(k=2).update(1, -1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MisraGries(k=0)
