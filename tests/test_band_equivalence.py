"""Property tests: band-policy and probe-discipline equivalence across
execution paths.

The refactor's load-bearing claim (ISSUE 3 satellite, extended by the
ISSUE 4 discipline axis): for every
:class:`~repro.core.bands.BandPolicy` and both
:class:`~repro.core.disciplines.ProbeDiscipline` implementations, the
per-item protocol, the serial chunked path (``update_chunk``), and the
engine sessions publish identical outputs and switch counts on
exact-state sketches — with the one *documented* exception that
non-monotone trackers under the additive band coalesce a transient band
exit that fully reverts between two boundary checks.  Hypothesis drives
the stream shapes and chunk sizes; the forced mid-chunk revert case pins
the coalescing behaviour explicitly.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bands import AdditiveBand, MultiplicativeBand
from repro.core.copies import CopyManager
from repro.core.disciplines import (
    DifferenceAggregateDiscipline,
    PrivateAggregateDiscipline,
)
from repro.core.ladder import DifferenceLadder, LadderTier
from repro.core.sketch_switching import SwitchingEstimator
from repro.engine import ProcessEngine, SerialEngine, fork_available
from repro.robust.heavy_hitters import RobustHeavyHitters
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process engine requires the fork start method"
)


class _ExactEntropy(Sketch):
    """Deterministic exact Shannon entropy — an exact-state additive
    tracker (integer counts; queries recomputed from scratch)."""

    supports_deletions = False

    def __init__(self, rng=None):
        self._counts: dict[int, int] = {}
        self._total = 0

    def update(self, item: int, delta: int = 1) -> None:
        self._counts[item] = self._counts.get(item, 0) + delta
        self._total += delta

    def query(self) -> float:
        if self._total <= 0:
            return 0.0
        h = 0.0
        for c in self._counts.values():
            if c > 0:
                p = c / self._total
                h -= p * math.log2(p)
        return h

    def space_bits(self) -> int:
        return 64 * (len(self._counts) + 1)


def _per_item_trace(est, items, chunk):
    trace = []
    for lo in range(0, len(items), chunk):
        for item in items[lo:lo + chunk]:
            est.update(int(item), 1)
        trace.append((est.query(), est.switches))
    return trace


def _chunked_trace(est, items, chunk, engine=None):
    trace = []
    if engine is None:
        for lo in range(0, len(items), chunk):
            est.update_chunk(np.asarray(items[lo:lo + chunk], dtype=np.int64))
            trace.append((est.query(), est.switches))
        return trace
    with engine.session(est) as session:
        for lo in range(0, len(items), chunk):
            session.feed(np.asarray(items[lo:lo + chunk], dtype=np.int64))
            trace.append((session.query(), est.switches))
    return trace


def _kmv_estimator(restart):
    return SwitchingEstimator(
        lambda r: KMVSketch(48, r), copies=6, rng=np.random.default_rng(7),
        band=MultiplicativeBand(0.35), restart=restart,
        on_exhausted="clamp" if not restart else "raise",
    )


def _entropy_estimator(eps=0.5):
    return SwitchingEstimator(
        lambda r: _ExactEntropy(), copies=8, rng=np.random.default_rng(3),
        band=AdditiveBand(eps), on_exhausted="clamp",
    )


class TestMultiplicativeEquivalence:
    """Monotone tracked quantity: all paths are per-item exact."""

    @settings(max_examples=25, deadline=None)
    @given(
        items=st.lists(st.integers(0, 255), min_size=150, max_size=500),
        chunk=st.sampled_from([48, 96, 200, 333]),
        restart=st.booleans(),
    )
    def test_per_item_chunked_engine_identical(self, items, chunk, restart):
        t0 = _per_item_trace(_kmv_estimator(restart), items, chunk)
        t1 = _chunked_trace(_kmv_estimator(restart), items, chunk)
        t2 = _chunked_trace(_kmv_estimator(restart), items, chunk,
                            SerialEngine())
        assert t0 == t1 == t2

    @needs_fork
    def test_process_engine_matches(self):
        items = [i % 200 for i in range(600)] + list(range(200, 450))
        t1 = _chunked_trace(_kmv_estimator(True), items, 128)
        t2 = _chunked_trace(_kmv_estimator(True), items, 128,
                            ProcessEngine(workers=2))
        assert t1 == t2


def _dp_estimator(copies=7, noise=0.04, budget=None):
    return SwitchingEstimator(
        lambda r: KMVSketch(48, r), copies=copies,
        rng=np.random.default_rng(7),
        band=MultiplicativeBand(0.35),
        discipline=PrivateAggregateDiscipline(
            noise_scale=noise, switch_budget=budget
        ),
    )


class TestPrivateAggregateEquivalence:
    """The DP discipline through the same protocol: noisy median over
    all copies, coordinator noise keyed to the publication count — so
    per-item, chunked, and engine paths agree bit for bit, exactly like
    the active-copy discipline."""

    @settings(max_examples=25, deadline=None)
    @given(
        items=st.lists(st.integers(0, 255), min_size=150, max_size=500),
        chunk=st.sampled_from([48, 96, 200, 333]),
    )
    def test_per_item_chunked_engine_identical(self, items, chunk):
        t0 = _per_item_trace(_dp_estimator(), items, chunk)
        t1 = _chunked_trace(_dp_estimator(), items, chunk)
        t2 = _chunked_trace(_dp_estimator(), items, chunk, SerialEngine())
        assert t0 == t1 == t2

    @settings(max_examples=10, deadline=None)
    @given(
        items=st.lists(st.integers(0, 127), min_size=200, max_size=400),
        chunk=st.sampled_from([64, 150]),
    )
    def test_retirement_inside_a_chunk_is_deterministic(self, items, chunk):
        # A tiny switch budget forces whole-set retirements mid-stream;
        # the refresh RNG draws happen on the coordinator in index
        # order, so every path still agrees bit for bit.
        t0 = _per_item_trace(_dp_estimator(copies=4, budget=3), items, chunk)
        t1 = _chunked_trace(_dp_estimator(copies=4, budget=3), items, chunk)
        t2 = _chunked_trace(_dp_estimator(copies=4, budget=3), items, chunk,
                            SerialEngine())
        assert t0 == t1 == t2

    @needs_fork
    def test_process_engine_matches(self):
        # The all-copy probe step spans both workers; the coordinator
        # reassembles the probe set in discipline order.
        items = [i % 100 for i in range(700)] + list(range(100, 400))
        t1 = _chunked_trace(_dp_estimator(), items, 128)
        t2 = _chunked_trace(_dp_estimator(), items, 128,
                            ProcessEngine(workers=3))
        assert t1 == t2

    @needs_fork
    def test_process_engine_retirement_matches(self):
        items = list(range(500)) + [i % 64 for i in range(400)]
        t1 = _chunked_trace(_dp_estimator(copies=5, budget=4), items, 128)
        t2 = _chunked_trace(_dp_estimator(copies=5, budget=4), items, 128,
                            ProcessEngine(workers=2))
        assert t1 == t2


def _ladder_estimator(capacity0=3, capacity1=2, tier_budget=None,
                      strong_budget=None):
    ladder = DifferenceLadder([
        LadderTier(copies=2, noise_scale=0.08, capacity=capacity0, span=0.3,
                   budget=tier_budget),
        LadderTier(copies=2, noise_scale=0.04, capacity=capacity1, span=0.6,
                   budget=tier_budget),
    ])
    return SwitchingEstimator(
        lambda r: KMVSketch(48, r), copies=9, rng=np.random.default_rng(7),
        band=MultiplicativeBand(0.35),
        discipline=DifferenceAggregateDiscipline(
            ladder=ladder, noise_scale=0.04, switch_budget=strong_budget
        ),
    )


def _grouped_ladder_estimator(tier_budget=None):
    """Heterogeneous copy groups: a cheap tier sketch + strong sketches.

    Exercises the per-group backend fan-out with *different* factories
    per group — in particular the worker-side replace on tier refresh.
    """
    ladder = DifferenceLadder([
        LadderTier(copies=2, noise_scale=0.08, capacity=3, span=0.4,
                   budget=tier_budget),
    ])
    manager = CopyManager.grouped(
        [(lambda r: KMVSketch(24, r), 2), (lambda r: KMVSketch(48, r), 4)],
        np.random.default_rng(11),
    )
    return SwitchingEstimator(
        copies=manager, band=MultiplicativeBand(0.35),
        discipline=DifferenceAggregateDiscipline(
            ladder=ladder, noise_scale=0.04
        ),
    )


class TestDifferenceLadderEquivalence:
    """The ladder discipline through the same protocol: group probe sets
    (the current tier's copies between checkpoints, every group at a
    checkpoint), coordinator-side anchoring and noise keyed to the
    publication count — per-item, chunked, and both engines bit for bit,
    including windows where a promotion lands mid-chunk."""

    @settings(max_examples=25, deadline=None)
    @given(
        items=st.lists(st.integers(0, 255), min_size=150, max_size=500),
        chunk=st.sampled_from([48, 96, 200, 333]),
    )
    def test_per_item_chunked_engine_identical(self, items, chunk):
        t0 = _per_item_trace(_ladder_estimator(), items, chunk)
        t1 = _chunked_trace(_ladder_estimator(), items, chunk)
        t2 = _chunked_trace(_ladder_estimator(), items, chunk,
                            SerialEngine())
        assert t0 == t1 == t2

    def test_promotion_forced_mid_chunk(self):
        """A single chunk spans several checkpoint windows: tier-0 and
        tier-1 publications, span promotions, and at least two strong
        checkpoints all resolve inside one crossing chunk — and the
        paths still agree bit for bit."""
        items = list(range(900))  # F0 ramp: every item fresh
        chunk = len(items)
        ests = [_ladder_estimator(capacity0=2, capacity1=1)
                for _ in range(3)]
        t0 = _per_item_trace(ests[0], items, chunk)
        t1 = _chunked_trace(ests[1], items, chunk)
        t2 = _chunked_trace(ests[2], items, chunk, SerialEngine())
        assert t0 == t1 == t2
        state = ests[1].discipline.budget_state()
        assert state["checkpoints"] >= 2, "stream did not force promotions"
        assert state["publications"] > state["strong_charges"], (
            "no publication was answered below the strong group"
        )

    @settings(max_examples=10, deadline=None)
    @given(
        items=st.lists(st.integers(0, 127), min_size=200, max_size=400),
        chunk=st.sampled_from([64, 150]),
    )
    def test_strong_retirement_inside_a_chunk_is_deterministic(
        self, items, chunk
    ):
        # A tiny strong budget forces whole-set retirements mid-stream;
        # refresh RNG draws happen on the coordinator in index order.
        t1 = _chunked_trace(_ladder_estimator(strong_budget=2), items, chunk)
        t2 = _chunked_trace(_ladder_estimator(strong_budget=2), items, chunk,
                            SerialEngine())
        t0 = _per_item_trace(_ladder_estimator(strong_budget=2), items, chunk)
        assert t0 == t1 == t2

    @needs_fork
    def test_process_engine_matches(self):
        # Group probe sets span workers; the coordinator reassembles
        # them in discipline order.
        items = [i % 100 for i in range(700)] + list(range(100, 400))
        t1 = _chunked_trace(_ladder_estimator(), items, 128)
        t2 = _chunked_trace(_ladder_estimator(), items, 128,
                            ProcessEngine(workers=3))
        assert t1 == t2

    @needs_fork
    def test_process_engine_heterogeneous_tier_refresh_matches(self):
        # Tier budget exhaustion rebuilds the *tier* group in-place with
        # its own (cheaper) factory — inside worker processes.
        items = list(range(800))
        a = _grouped_ladder_estimator(tier_budget=2)
        b = _grouped_ladder_estimator(tier_budget=2)
        t1 = _chunked_trace(a, items, 128)
        t2 = _chunked_trace(b, items, 128, ProcessEngine(workers=2))
        assert t1 == t2
        assert a.discipline.ladder.tier_generations[0] >= 1, (
            "stream did not force a tier refresh"
        )


class TestAdditiveEquivalence:
    """Entropy-style tracker: chunked == engine always; == per-item on
    trajectories monotone between boundary checks."""

    @settings(max_examples=25, deadline=None)
    @given(
        items=st.lists(st.integers(0, 63), min_size=150, max_size=500),
        chunk=st.sampled_from([48, 96, 200, 333]),
    )
    def test_chunked_equals_engine_on_any_stream(self, items, chunk):
        t1 = _chunked_trace(_entropy_estimator(), items, chunk)
        t2 = _chunked_trace(_entropy_estimator(), items, chunk,
                            SerialEngine())
        assert t1 == t2

    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(120, 400),
        chunk=st.sampled_from([48, 96, 200]),
    )
    def test_per_item_exact_on_monotone_streams(self, size, chunk):
        # All-distinct items: H = log2(t) is strictly increasing, so the
        # band-interval convexity argument makes every boundary-checked
        # path per-item exact.
        items = list(range(size))
        t0 = _per_item_trace(_entropy_estimator(), items, chunk)
        t1 = _chunked_trace(_entropy_estimator(), items, chunk)
        t2 = _chunked_trace(_entropy_estimator(), items, chunk,
                            SerialEngine())
        assert t0 == t1 == t2

    @needs_fork
    def test_process_engine_matches(self):
        items = [i % 64 for i in range(997)] + list(range(64, 256))
        t1 = _chunked_trace(_entropy_estimator(), items, 128)
        t2 = _chunked_trace(_entropy_estimator(), items, 128,
                            ProcessEngine(workers=2))
        assert t1 == t2

    def test_forced_mid_chunk_revert_coalesces(self):
        """The documented additive-band caveat, pinned.

        Inside one chunk the stream first spreads over fresh items
        (entropy rises out of the band) and then hammers a single item
        (entropy collapses back inside it by the boundary).  The
        per-item protocol switches during the excursion; the chunked and
        engine paths check the band at the boundary only, see an in-band
        estimate, and coalesce the transient exit — identically.
        """
        warm = [i % 4 for i in range(192)]     # settle H near log2(4)
        burst = list(range(100, 164))           # 64 fresh items: H rises
        collapse = [0] * 1200                   # re-concentrate: H falls
        items = warm + burst + collapse
        chunk = len(items)                      # single chunk
        per_item = _per_item_trace(_entropy_estimator(0.8), items, chunk)
        chunked = _chunked_trace(_entropy_estimator(0.8), items, chunk)
        engine = _chunked_trace(_entropy_estimator(0.8), items, chunk,
                                SerialEngine())
        assert chunked == engine
        # The excursion really happened per item...
        assert per_item[-1][1] > chunked[-1][1], (
            "stream did not force a mid-chunk revert; per-item and "
            "chunked switch counts agree"
        )
        # ...and the boundary estimates still agree within the band.
        assert abs(per_item[-1][0] - chunked[-1][0]) <= 0.8


class TestEpochEquivalence:
    """The heavy-hitters epoch band: direct chunked vs engine sessions."""

    def _traces(self, engine, items, chunk=512):
        est = RobustHeavyHitters(
            n=512, m=len(items), eps=0.3, rng=np.random.default_rng(11)
        )
        trace = []
        if engine is None:
            for lo in range(0, len(items), chunk):
                est.update_batch(items[lo:lo + chunk])
                trace.append((est.query(), est.epochs, est.l2_estimate()))
        else:
            with engine.session(est) as session:
                for lo in range(0, len(items), chunk):
                    session.feed(items[lo:lo + chunk])
                    trace.append((est.query(), est.epochs, est.l2_estimate()))
        return est, trace

    def test_serial_engine_identical(self):
        items = (np.random.default_rng(5).zipf(1.4, size=6000) % 512)
        direct, t0 = self._traces(None, items)
        engined, t1 = self._traces(SerialEngine(), items)
        assert t0 == t1
        assert direct._published == engined._published
        assert direct.heavy_hitters() == engined.heavy_hitters()

    @needs_fork
    def test_process_engine_identical(self):
        items = (np.random.default_rng(6).zipf(1.4, size=6000) % 512)
        direct, t0 = self._traces(None, items)
        engined, t1 = self._traces(ProcessEngine(workers=2), items)
        assert t0 == t1
        assert direct._published == engined._published
        assert direct.heavy_hitters() == engined.heavy_hitters()


class TestTelemetryEquivalence:
    """ISSUE 7: telemetry observes only — no RNG draws, no protocol
    state — so enabling full tracing leaves every published output and
    switch count bit-for-bit identical on every path."""

    @staticmethod
    def _traced(est):
        from repro.obs import RingSink, Telemetry

        est._copies.telemetry = Telemetry(sinks=[RingSink(capacity=1 << 16)])
        return est

    @settings(max_examples=25, deadline=None)
    @given(
        items=st.lists(st.integers(0, 255), min_size=150, max_size=500),
        chunk=st.sampled_from([48, 96, 200, 333]),
        restart=st.booleans(),
    )
    def test_tracing_is_invisible_per_item_and_chunked(
        self, items, chunk, restart
    ):
        t0 = _per_item_trace(_kmv_estimator(restart), items, chunk)
        t0t = _per_item_trace(self._traced(_kmv_estimator(restart)),
                              items, chunk)
        t1 = _chunked_trace(_kmv_estimator(restart), items, chunk)
        t1t = _chunked_trace(self._traced(_kmv_estimator(restart)),
                             items, chunk)
        assert t0 == t0t
        assert t1 == t1t

    @settings(max_examples=15, deadline=None)
    @given(
        items=st.lists(st.integers(0, 255), min_size=150, max_size=500),
        chunk=st.sampled_from([48, 96, 200]),
    )
    def test_tracing_is_invisible_dp_serial_engine(self, items, chunk):
        t1 = _chunked_trace(_dp_estimator(), items, chunk, SerialEngine())
        t1t = _chunked_trace(self._traced(_dp_estimator()), items, chunk,
                             SerialEngine())
        assert t1 == t1t

    @settings(max_examples=15, deadline=None)
    @given(
        items=st.lists(st.integers(0, 255), min_size=150, max_size=400),
        chunk=st.sampled_from([48, 96, 200]),
    )
    def test_tracing_is_invisible_ladder(self, items, chunk):
        t1 = _chunked_trace(_ladder_estimator(), items, chunk)
        t1t = _chunked_trace(self._traced(_ladder_estimator()), items, chunk)
        assert t1 == t1t

    @needs_fork
    def test_tracing_is_invisible_process_engine(self):
        items = [i % 200 for i in range(600)] + list(range(200, 450))
        t1 = _chunked_trace(_dp_estimator(), items, 128,
                            ProcessEngine(workers=2))
        t1t = _chunked_trace(self._traced(_dp_estimator()), items, 128,
                             ProcessEngine(workers=2))
        assert t1 == t1t
