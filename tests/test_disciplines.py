"""Unit tests for the probe-discipline layer (ISSUE 4 tentpole).

The discipline axis is orthogonal to bands and copies: these tests pin
the lifecycle contracts (bind-once, budget accounting, retirement,
mid-stream install guard) and the api plumb-through; the cross-path
equivalence properties live in ``tests/test_band_equivalence.py``.
"""

import numpy as np
import pytest

from repro.api import discipline_state, ingest, robust_estimator
from repro.core.bands import EpochBand, MultiplicativeBand
from repro.core.copies import CopyManager
from repro.core.disciplines import (
    ActiveCopyDiscipline,
    DifferenceAggregateDiscipline,
    PrivacyBudgetExhaustedError,
    PrivateAggregateDiscipline,
    default_switch_budget,
    dp_copy_count,
    resolve_discipline,
)
from repro.core.ladder import (
    DifferenceLadder,
    LadderTier,
    default_difference_ladder,
)
from repro.core.sketch_switching import SwitchingEstimator
from repro.sketches.kmv import KMVSketch


def _manager(copies=4, seed=0):
    return CopyManager(
        lambda r: KMVSketch(16, r), copies, np.random.default_rng(seed)
    )


def _switcher(copies=6, seed=7, disc=None, eps=0.4):
    return SwitchingEstimator(
        lambda r: KMVSketch(32, r), copies=copies,
        rng=np.random.default_rng(seed),
        band=MultiplicativeBand(eps), discipline=disc,
    )


class TestResolveDiscipline:
    def test_names(self):
        assert isinstance(resolve_discipline("active"), ActiveCopyDiscipline)
        assert isinstance(resolve_discipline("active-copy"),
                          ActiveCopyDiscipline)
        for name in ("private", "private-aggregate", "dp"):
            assert isinstance(resolve_discipline(name),
                              PrivateAggregateDiscipline)
        for name in ("dp-diff", "difference", "difference-ladder"):
            assert isinstance(resolve_discipline(name),
                              DifferenceAggregateDiscipline)

    def test_passthrough_and_none(self):
        disc = PrivateAggregateDiscipline(noise_scale=0.1)
        assert resolve_discipline(disc) is disc
        assert resolve_discipline(None) is None

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_discipline("median-of-medians")
        with pytest.raises(ValueError):
            resolve_discipline(42)


class TestSizing:
    def test_default_switch_budget_is_quadratic(self):
        assert default_switch_budget(1) == 1
        assert default_switch_budget(9) == 81
        with pytest.raises(ValueError):
            default_switch_budget(0)

    def test_dp_copy_count_sqrt(self):
        assert dp_copy_count(100, constant=1.0) == 10
        assert dp_copy_count(1, constant=1.0) == 4  # floor
        with pytest.raises(ValueError):
            dp_copy_count(0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PrivateAggregateDiscipline(noise_scale=0.0)
        with pytest.raises(ValueError):
            PrivateAggregateDiscipline(switch_budget=0)
        with pytest.raises(ValueError):
            PrivateAggregateDiscipline(on_exhausted="explode")

    @pytest.mark.parametrize(
        "cls", [PrivateAggregateDiscipline, DifferenceAggregateDiscipline]
    )
    def test_degenerate_params_rejected_up_front(self, cls):
        """ISSUE 5 satellite: invalid parameterizations fail at the
        constructor with a clear message, not deep inside the protocol."""
        for bad_noise in (float("nan"), float("inf"), -0.1, 0, "0.1", True):
            with pytest.raises(ValueError, match="noise_scale"):
                cls(noise_scale=bad_noise)
        for bad_budget in (0, -3, 2.5, "4", True):
            with pytest.raises(ValueError, match="switch_budget"):
                cls(switch_budget=bad_budget)
        with pytest.raises(ValueError):
            cls(on_exhausted="explode")

    def test_ladder_tier_validation(self):
        with pytest.raises(ValueError, match="copies"):
            LadderTier(copies=0, noise_scale=0.1, capacity=2, span=0.3)
        with pytest.raises(ValueError, match="noise_scale"):
            LadderTier(copies=2, noise_scale=float("nan"), capacity=2,
                       span=0.3)
        with pytest.raises(ValueError, match="capacity"):
            LadderTier(copies=2, noise_scale=0.1, capacity=0, span=0.3)
        with pytest.raises(ValueError, match="span"):
            LadderTier(copies=2, noise_scale=0.1, capacity=2, span=0.0)
        with pytest.raises(ValueError, match="budget"):
            LadderTier(copies=2, noise_scale=0.1, capacity=2, span=0.3,
                       budget=0)
        with pytest.raises(ValueError, match="tier"):
            DifferenceLadder([])
        with pytest.raises(ValueError, match="DifferenceLadder"):
            DifferenceAggregateDiscipline(ladder="two-rungs")


class TestActiveCopyDiscipline:
    def test_probe_is_active_and_publish_burns(self):
        copies = _manager()
        disc = ActiveCopyDiscipline()
        disc.bind(copies)
        assert disc.probe_indices(copies) == (copies.active_index,)
        assert disc.decide([3.5]) == 3.5
        before = copies.active_index
        disc.on_publish(copies, switches=1)
        assert copies.active_index == before + 1
        assert disc.budget_state() is None


class TestPrivateAggregateDiscipline:
    def test_probes_every_copy(self):
        copies = _manager(copies=5)
        disc = PrivateAggregateDiscipline()
        disc.bind(copies)
        assert disc.probe_indices(copies) == (0, 1, 2, 3, 4)

    def test_bind_sets_defaults_and_is_idempotent(self):
        copies = _manager(copies=4)
        disc = PrivateAggregateDiscipline()
        disc.bind(copies)
        assert disc.switch_budget == default_switch_budget(4)
        noise_before = disc._noise
        disc.bind(copies)  # same manager: no re-derivation
        assert disc._noise == noise_before

    def test_bind_rejects_second_manager(self):
        disc = PrivateAggregateDiscipline()
        disc.bind(_manager(seed=1))
        with pytest.raises(ValueError):
            disc.bind(_manager(seed=2))

    def test_decide_before_bind_is_loud(self):
        with pytest.raises(RuntimeError):
            PrivateAggregateDiscipline().decide([1.0, 2.0])

    def test_decide_is_noisy_median(self):
        copies = _manager()
        disc = PrivateAggregateDiscipline(noise_scale=0.01)
        disc.bind(copies)
        med = float(np.median([1.0, 2.0, 100.0]))
        assert disc.decide([1.0, 2.0, 100.0]) == med * (1.0 + disc._noise)

    def test_noise_redrawn_per_publication(self):
        copies = _manager()
        disc = PrivateAggregateDiscipline(noise_scale=0.1)
        disc.bind(copies)
        seen = {disc._noise}
        for s in range(1, 5):
            disc.on_publish(copies, switches=s)
            seen.add(disc._noise)
        assert len(seen) == 5  # Laplace draws collide with probability 0

    def test_budget_accounting_and_retirement(self):
        copies = _manager(copies=3)
        disc = PrivateAggregateDiscipline(switch_budget=3)
        disc.bind(copies)
        originals = list(copies.sketches)
        disc.on_publish(copies, 1)
        disc.on_publish(copies, 2)
        assert disc.budget_state()["budget_remaining"] == pytest.approx(1 / 3)
        assert copies.sketches == originals  # no copy touched mid-budget
        disc.on_publish(copies, 3)  # budget exhausted: whole set retired
        assert disc.generations == 1
        assert all(s is not o for s, o in zip(copies.sketches, originals))
        assert disc.budget_state()["budget_spent"] == 0.0  # new generation

    def test_exhaustion_raise_mode(self):
        copies = _manager(copies=2)
        disc = PrivateAggregateDiscipline(switch_budget=2,
                                          on_exhausted="raise")
        disc.bind(copies)
        disc.on_publish(copies, 1)
        with pytest.raises(PrivacyBudgetExhaustedError):
            disc.on_publish(copies, 2)

    def test_publish_uses_aggregate_rounding(self):
        disc = PrivateAggregateDiscipline()
        disc.bind(_manager())
        band = MultiplicativeBand(0.4)
        # The Laplace tail can push a near-zero aggregate negative; the
        # aggregate rounding clamps instead of publishing a signed power.
        assert disc.publish(band, -0.3) == 0.0
        assert disc.publish(band, 5.0) == band.publish(5.0)
        assert EpochBand(0.4).publish_aggregate(-1.0) == 0.0


class TestCopyManagerSurface:
    def test_estimate_all(self):
        copies = _manager(copies=3)
        copies.sketches[1].update(17)
        all_ys = copies.estimate_all()
        assert len(all_ys) == 3
        assert copies.estimate_all((1,)) == [copies.sketches[1].query()]

    def test_refresh_draws_replacements_in_index_order(self):
        a, b = _manager(copies=3, seed=9), _manager(copies=3, seed=9)
        a.refresh()
        b.refresh()
        # Deterministic: same seed, same derivation chain, same state.
        for sa, sb in zip(a.sketches, b.sketches):
            sa.update(5)
            sb.update(5)
            assert sa.query() == sb.query()

    def test_refresh_through_replace_hook(self):
        copies = _manager(copies=2)
        installed = []
        copies.refresh(replace=lambda idx, rng: installed.append(idx))
        assert installed == [0, 1]

    def test_retire_single_slot(self):
        copies = _manager(copies=3)
        old = copies.sketches[1]
        copies.retire(1)
        assert copies.sketches[1] is not old
        assert copies.rho == 0  # retirement never moves the active cursor


class TestSwitchingEstimatorIntegration:
    def test_default_discipline_is_active_copy(self):
        assert isinstance(_switcher().discipline, ActiveCopyDiscipline)

    def test_set_discipline_before_stream(self):
        sw = _switcher()
        sw.set_discipline(PrivateAggregateDiscipline())
        assert sw.discipline.name == "private-aggregate"
        assert sw.discipline.switch_budget == default_switch_budget(sw.copies)

    def test_set_discipline_mid_stream_rejected(self):
        sw = _switcher()
        for item in range(200):
            sw.update(item)
            if sw.switches:
                break
        assert sw.switches > 0
        with pytest.raises(ValueError):
            sw.set_discipline(PrivateAggregateDiscipline())

    def test_set_discipline_after_switchless_updates_rejected(self):
        # A switch-free prefix still carries copy state the new
        # discipline's accounting would not cover: 0 switches is not
        # the same as 0 updates.
        from repro.sketches.base import Sketch

        class _Flat(Sketch):
            """Estimate pinned inside the initial band: never switches."""

            def __init__(self, rng=None):
                self.seen = 0

            def update(self, item, delta=1):
                self.seen += 1

            def query(self):
                return 0.0

            def space_bits(self):
                return 64

        def flat_switcher():
            return SwitchingEstimator(
                lambda r: _Flat(), copies=3, rng=np.random.default_rng(0),
                band=MultiplicativeBand(0.4),
            )

        sw = flat_switcher()
        sw.update(7)
        assert sw.switches == 0 and sw._published == 0.0
        with pytest.raises(ValueError):
            sw.set_discipline(PrivateAggregateDiscipline())
        chunked = flat_switcher()
        chunked.update_batch(np.zeros(100, dtype=np.int64))
        assert chunked.switches == 0
        with pytest.raises(ValueError):
            chunked.set_discipline(PrivateAggregateDiscipline())

    def test_dp_estimator_tracks_f0(self):
        sw = _switcher(copies=8, disc=PrivateAggregateDiscipline(
            noise_scale=0.03))
        items = np.random.default_rng(3).integers(0, 400, size=3000)
        sw.update_batch(items)
        truth = len(set(items.tolist()))
        assert abs(sw.query() - truth) / truth <= 0.4


class TestApiPlumbing:
    def test_ingest_installs_discipline_and_reports_budget(self):
        est = robust_estimator("distinct", n=512, m=4000, eps=0.4, seed=3,
                               restart=False, copies=30)
        items = np.random.default_rng(4).integers(0, 512, size=4000)
        report = ingest(est, items, chunk_size=1024, discipline="private")
        assert report.discipline == "private-aggregate"
        assert report.dp_budget["publications"] == est.switches
        assert report.dp_budget["switch_budget"] == default_switch_budget(30)

    def test_dp_problems_exposed(self):
        est = robust_estimator("distinct-dp", n=512, m=2000, eps=0.4, seed=1)
        name, budget = discipline_state(est)
        assert name == "private-aggregate"
        assert budget["publications"] == 0
        f2 = robust_estimator("f2-dp", n=512, m=2000, eps=0.4, seed=1)
        assert discipline_state(f2)[0] == "private-aggregate"

    def test_active_estimators_report_no_budget(self):
        est = robust_estimator("distinct", n=512, m=1000, eps=0.4, seed=2)
        name, budget = discipline_state(est)
        assert name == "active-copy"
        assert budget is None

    def test_discipline_on_unswitchable_estimator_rejected(self):
        est = robust_estimator("distinct-fast", n=512, m=100, eps=0.4)
        with pytest.raises(ValueError):
            ingest(est, [1, 2, 3], discipline="dp")


def _grouped(seed=0, tier=2, strong=4):
    return CopyManager.grouped(
        [(lambda r: KMVSketch(8, r), tier),
         (lambda r: KMVSketch(32, r), strong)],
        np.random.default_rng(seed),
    )


class TestGroupedCopyManager:
    def test_slices_factories_and_indices(self):
        copies = _grouped()
        assert copies.count == 6
        assert copies.group_count == 2
        assert copies.group_slices == ((0, 2), (2, 6))
        assert copies.group_indices(0) == (0, 1)
        assert copies.group_indices(1) == (2, 3, 4, 5)
        assert copies.sketches[0].k == 8 and copies.sketches[2].k == 32
        assert copies.factory_for(1)(np.random.default_rng(0)).k == 8
        assert copies.factory_for(5)(np.random.default_rng(0)).k == 32
        with pytest.raises(IndexError):
            copies.factory_for(6)

    def test_retire_rebuilds_with_the_group_factory(self):
        copies = _grouped()
        copies.retire(0)
        copies.retire(3)
        assert copies.sketches[0].k == 8
        assert copies.sketches[3].k == 32

    def test_grouped_has_no_burn_order(self):
        with pytest.raises(RuntimeError, match="burn order"):
            _grouped().advance(switches=1)

    def test_seeding_is_deterministic(self):
        a, b = _grouped(seed=9), _grouped(seed=9)
        for sa, sb in zip(a.sketches, b.sketches):
            sa.update(17)
            sb.update(17)
            assert sa.query() == sb.query()

    def test_validation(self):
        with pytest.raises(ValueError, match="group"):
            CopyManager.grouped([], np.random.default_rng(0))
        with pytest.raises(ValueError, match="count"):
            CopyManager.grouped(
                [(lambda r: KMVSketch(8, r), 0)], np.random.default_rng(0)
            )


def _ladder(t0=2, t1=2, **kw):
    return DifferenceLadder([
        LadderTier(copies=t0, noise_scale=0.1, capacity=3, span=0.3, **kw),
        LadderTier(copies=t1, noise_scale=0.05, capacity=2, span=0.6, **kw),
    ])


class TestDifferenceLadder:
    def test_bind_partitions_homogeneous_manager(self):
        lad = _ladder()
        lad.bind(_manager(copies=7), strong_noise_scale=0.05)
        assert lad.tier_slice(0) == (0, 2)
        assert lad.tier_slice(1) == (2, 4)
        assert lad.strong_slice == (4, 7)
        assert lad.strong_count == 3
        # Scaled advanced composition: noisier tiers buy more answers.
        assert lad.tier_budgets == [2 * 2 * 4, 2 * 2 * 1]

    def test_bind_matches_grouped_manager(self):
        lad = DifferenceLadder(
            [LadderTier(copies=2, noise_scale=0.1, capacity=3, span=0.3)]
        )
        copies = _grouped(tier=2, strong=4)
        lad.bind(copies, strong_noise_scale=0.05)
        assert lad.tier_slice(0) == (0, 2)
        assert lad.strong_slice == (2, 6)

    def test_ladder_is_not_shareable(self):
        lad = _ladder()
        lad.bind(_manager(copies=7, seed=1), strong_noise_scale=0.05)
        lad.bind(lad._bound, strong_noise_scale=0.05)  # same manager: ok
        with pytest.raises(ValueError, match="not shareable"):
            lad.bind(_manager(copies=7, seed=2), strong_noise_scale=0.05)

    def test_numpy_scalar_params_accepted(self):
        # Sizing arithmetic flows through NumPy; its scalars must pass.
        disc = PrivateAggregateDiscipline(
            noise_scale=np.float64(0.05), switch_budget=np.int64(16)
        )
        assert disc.switch_budget == 16
        DifferenceAggregateDiscipline(noise_scale=np.float32(0.05))
        LadderTier(copies=np.int64(2), noise_scale=np.float64(0.1),
                   capacity=2, span=np.float64(0.3))

    def test_bind_rejects_mismatches(self):
        with pytest.raises(ValueError, match="tier sizes"):
            DifferenceLadder(
                [LadderTier(copies=3, noise_scale=0.1, capacity=3, span=0.3)]
            ).bind(_grouped(tier=2, strong=4), strong_noise_scale=0.05)
        with pytest.raises(ValueError, match="strong group"):
            _ladder().bind(_manager(copies=4), strong_noise_scale=0.05)
        with pytest.raises(ValueError, match="groups"):
            _ladder().bind(_grouped(), strong_noise_scale=0.05)

    def test_promotion_by_capacity_and_span(self):
        lad = _ladder()
        lad.bind(_manager(copies=7), strong_noise_scale=0.05)
        lad.anchor(100.0, [10.0, 11.0])
        assert lad.level == 0 and lad.checkpoint == 100.0
        assert not lad.charge_tier(0, diff=5.0)   # small diff: stay
        assert lad.level == 0
        assert not lad.charge_tier(0, diff=40.0)  # > span 0.3 * 100
        assert lad.level == 1
        assert not lad.charge_tier(1, diff=50.0)  # within span 0.6
        assert not lad.charge_tier(1, diff=50.0)  # capacity 2 spent
        assert lad.level is None                  # STRONG: re-checkpoint

    def test_tier_budget_exhaustion_forces_checkpoint(self):
        lad = DifferenceLadder(
            [LadderTier(copies=2, noise_scale=0.1, capacity=9, span=9.0,
                        budget=2)]
        )
        lad.bind(_manager(copies=6), strong_noise_scale=0.05)
        lad.anchor(10.0, [1.0])
        assert not lad.charge_tier(0, diff=0.1)
        assert lad.charge_tier(0, diff=0.1)  # budget 2 spent: refresh tier
        assert lad.level is None
        assert lad.tier_generations == [1]
        assert lad.tier_spent == [0]


class TestDifferenceAggregateDiscipline:
    def _disc(self, **kw):
        disc = DifferenceAggregateDiscipline(
            ladder=_ladder(), noise_scale=0.05, **kw
        )
        copies = _manager(copies=7, seed=3)
        disc.bind(copies)
        return disc, copies

    def test_starts_at_strong_and_anchors_on_first_publication(self):
        disc, copies = self._disc()
        assert disc.probe_indices(copies) == tuple(range(7))
        for s in copies.sketches:
            s.update(5)
        y = disc.decide(copies.estimate_all(disc.probe_indices(copies)))
        disc.on_publish(copies, switches=1)
        assert disc.strong_charges == 1 and disc.publications == 1
        assert disc.ladder.level == 0
        assert disc.ladder.checkpoint == y
        # Tier epoch: only tier 0's two copies are probed now.
        assert disc.probe_indices(copies) == (0, 1)

    def test_tier_publication_charges_tier_not_strong(self):
        disc, copies = self._disc()
        for s in copies.sketches:
            s.update(5)
        disc.decide(copies.estimate_all(disc.probe_indices(copies)))
        disc.on_publish(copies, switches=1)
        disc.decide(copies.estimate_all(disc.probe_indices(copies)))
        disc.on_publish(copies, switches=2)
        assert disc.publications == 2
        assert disc.strong_charges == 1
        state = disc.budget_state()
        assert state["publications_per_charge"] == 2.0
        assert state["checkpoints"] == 1
        assert state["tier_publications"] == [1, 0]

    def test_default_budget_sized_to_strong_group(self):
        disc, copies = self._disc()
        assert disc.switch_budget == default_switch_budget(3)  # 7 - 4 tiers

    def test_strong_exhaustion_retires_everything(self):
        disc, copies = self._disc(switch_budget=1)
        originals = list(copies.sketches)
        for s in copies.sketches:
            s.update(5)
        disc.decide(copies.estimate_all(disc.probe_indices(copies)))
        disc.on_publish(copies, switches=1)
        assert disc.generations == 1
        assert all(s is not o for s, o in zip(copies.sketches, originals))
        assert disc.ladder.level is None  # refreshed set must re-checkpoint
        assert disc.ladder.checkpoint is None

    def test_strong_exhaustion_raise_mode(self):
        disc, copies = self._disc(switch_budget=1, on_exhausted="raise")
        for s in copies.sketches:
            s.update(5)
        disc.decide(copies.estimate_all(disc.probe_indices(copies)))
        with pytest.raises(PrivacyBudgetExhaustedError):
            disc.on_publish(copies, switches=1)

    def test_decide_before_bind_is_loud(self):
        with pytest.raises(RuntimeError):
            DifferenceAggregateDiscipline().decide([1.0, 2.0])

    def test_failed_bind_leaves_discipline_reusable(self):
        # A rejected manager (too small for the tiers) must not poison
        # the discipline or the ladder: a later bind to a corrected
        # manager succeeds and the discipline is fully operational.
        disc = DifferenceAggregateDiscipline(ladder=_ladder())
        with pytest.raises(ValueError, match="strong group"):
            disc.bind(_manager(copies=4))
        good = _manager(copies=7, seed=3)
        disc.bind(good)
        assert disc.probe_indices(good) == tuple(range(7))
        assert disc.decide([1.0] * 7) is not None

    def test_default_ladder_fits_stock_dp_estimators(self):
        disc = DifferenceAggregateDiscipline()
        assert len(default_difference_ladder().tiers) == len(
            disc.ladder.tiers
        )
        est = robust_estimator("distinct-dpde", n=512, m=2000, eps=0.4,
                               seed=1)
        name, budget = discipline_state(est)
        assert name == "difference-ladder"
        assert budget["strong_charges"] == 0
        assert budget["level"] == "strong"  # first publication checkpoints
        f2 = robust_estimator("f2-dpde", n=512, m=2000, eps=0.4, seed=1)
        assert discipline_state(f2)[0] == "difference-ladder"

    def test_ingest_installs_ladder_on_homogeneous_estimator(self):
        est = robust_estimator("distinct", n=512, m=4000, eps=0.4, seed=3,
                               restart=False, copies=30)
        items = np.random.default_rng(4).integers(0, 512, size=4000)
        report = ingest(est, items, chunk_size=1024, discipline="dp-diff")
        assert report.discipline == "difference-ladder"
        assert report.dp_budget["publications"] == est.switches
        assert report.dp_budget["strong_charges"] <= est.switches
        assert report.dp_budget["publications_per_charge"] >= 1.0
