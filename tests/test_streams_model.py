"""Tests for the stream model, parameters, and update normalisation."""

import math

import pytest

from repro.streams.model import StreamModel, StreamParameters, Update, as_updates


class TestUpdate:
    def test_fields(self):
        u = Update(3, -2)
        assert u.item == 3 and u.delta == -2

    def test_tuple_compat(self):
        item, delta = Update(1, 2)
        assert (item, delta) == (1, 2)


class TestStreamModel:
    def test_deletion_flags(self):
        assert not StreamModel.INSERTION_ONLY.allows_deletions
        assert StreamModel.TURNSTILE.allows_deletions
        assert StreamModel.BOUNDED_DELETION.allows_deletions


class TestStreamParameters:
    def test_valid(self):
        p = StreamParameters(n=1024, m=10_000, M=100)
        assert p.log2_n == 10
        assert p.log2_mM == math.log2(10_000 * 100)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 1, "m": 10},
            {"n": 10, "m": 0},
            {"n": 10, "m": 10, "M": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            StreamParameters(**kwargs)

    def test_fp_value_range(self):
        p = StreamParameters(n=100, m=1000, M=10)
        assert p.fp_value_range(0) == (1.0, 100.0)
        lo, hi = p.fp_value_range(2)
        assert lo == 1.0 and hi == 100 * 100.0

    def test_fp_value_range_negative_p(self):
        with pytest.raises(ValueError):
            StreamParameters(n=10, m=10).fp_value_range(-1)

    def test_validate_item(self):
        p = StreamParameters(n=10, m=10)
        p.validate_item(0)
        p.validate_item(9)
        with pytest.raises(ValueError):
            p.validate_item(10)
        with pytest.raises(ValueError):
            p.validate_item(-1)


class TestAsUpdates:
    def test_items(self):
        assert as_updates([1, 2, 3]) == [Update(1, 1), Update(2, 1), Update(3, 1)]

    def test_pairs(self):
        assert as_updates([(1, 5), (2, -3)]) == [Update(1, 5), Update(2, -3)]

    def test_updates_pass_through(self):
        ups = [Update(0, 1)]
        assert as_updates(ups) == ups

    def test_mixed(self):
        assert as_updates([7, (8, 2)]) == [Update(7, 1), Update(8, 2)]


class TestStreamChunk:
    def test_from_updates_round_trip(self):
        from repro.streams.model import StreamChunk

        ups = [Update(3, 1), Update(5, -2), Update(3, 4)]
        chunk = StreamChunk.from_updates(ups)
        assert len(chunk) == 3
        assert list(chunk) == ups
        assert not chunk.insertion_only

    def test_insertions_constructor(self):
        from repro.streams.model import StreamChunk

        chunk = StreamChunk.insertions([4, 4, 9])
        assert list(chunk) == [Update(4, 1), Update(4, 1), Update(9, 1)]
        assert chunk.insertion_only

    def test_shape_mismatch_rejected(self):
        import numpy as np

        from repro.streams.model import StreamChunk

        with pytest.raises(ValueError):
            StreamChunk(np.arange(3), np.arange(2))

    def test_split(self):
        from repro.streams.model import StreamChunk

        chunk = StreamChunk.insertions(list(range(10)))
        head, tail = chunk.split(4)
        assert list(head) + list(tail) == list(chunk)
        assert len(head) == 4 and len(tail) == 6


class TestChunkAdapters:
    def test_chunk_updates_slices_evenly(self):
        from repro.streams.model import chunk_updates

        ups = [Update(i, 1) for i in range(1000)]
        chunks = list(chunk_updates(ups, 256))
        assert [len(c) for c in chunks] == [256, 256, 256, 232]
        assert list(chunks[0])[0] == ups[0]

    def test_chunk_updates_accepts_plain_items_and_chunks(self):
        from repro.streams.model import StreamChunk, chunk_updates

        rechunked = list(chunk_updates(StreamChunk.insertions(range(10)), 4))
        assert [len(c) for c in rechunked] == [4, 4, 2]
        from_items = list(chunk_updates([7, 8, 9], 2))
        assert [list(c) for c in from_items] == [
            [Update(7, 1), Update(8, 1)], [Update(9, 1)]
        ]

    def test_chunk_updates_rejects_bad_size(self):
        from repro.streams.model import chunk_updates

        with pytest.raises(ValueError):
            list(chunk_updates([1, 2], 0))

    def test_iter_updates_preserves_per_item_iteration(self):
        from repro.streams.model import chunk_updates, iter_updates

        ups = [Update(i % 7, 1 + i % 3) for i in range(500)]
        assert list(iter_updates(chunk_updates(ups, 64))) == ups
