"""Tests for the AMS F2 sketches (full-independence and 4-wise variants)."""

import numpy as np
import pytest

from repro.sketches.ams import AMSFullSketch, AMSSketch
from repro.streams.frequency import FrequencyVector


class TestAMSFullSketch:
    def test_unit_vector_estimate(self):
        # |S e_i|^2 = 1 exactly (each column has norm 1 by construction).
        s = AMSFullSketch(t=32, n=100, rng=np.random.default_rng(0))
        s.update(5, 1)
        assert s.query() == pytest.approx(1.0)

    def test_linear_updates(self):
        s = AMSFullSketch(t=16, n=50, rng=np.random.default_rng(1))
        s.update(3, 2)
        s.update(3, -2)
        assert s.query() == pytest.approx(0.0, abs=1e-12)

    def test_static_accuracy(self):
        errors = []
        for seed in range(12):
            s = AMSFullSketch(t=256, n=200, rng=np.random.default_rng(seed))
            truth = FrequencyVector()
            rng = np.random.default_rng(1000 + seed)
            for _ in range(500):
                item = int(rng.integers(0, 200))
                s.update(item, 1)
                truth.update(item, 1)
            errors.append(abs(s.query() - truth.fp(2)) / truth.fp(2))
        # t = 256 rows: typical relative error ~ sqrt(2/t) ~ 9%.
        assert float(np.median(errors)) < 0.2

    def test_column_norm(self):
        s = AMSFullSketch(t=64, n=30, rng=np.random.default_rng(2))
        col = s.column(7)
        assert np.dot(col, col) == pytest.approx(1.0)

    def test_out_of_range_item(self):
        s = AMSFullSketch(t=4, n=10, rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            s.update(10, 1)

    def test_space_charges_counters_only(self):
        s = AMSFullSketch(t=64, n=10_000, rng=np.random.default_rng(4))
        assert s.space_bits() == 64 * 64

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AMSFullSketch(t=0, n=5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            AMSFullSketch(t=5, n=0, rng=np.random.default_rng(0))


class TestAMSSketch:
    def test_static_accuracy(self):
        sketch = AMSSketch.for_accuracy(0.2, 0.05, np.random.default_rng(5))
        truth = FrequencyVector()
        rng = np.random.default_rng(6)
        for _ in range(2000):
            item = int(rng.integers(0, 100))
            sketch.update(item, 1)
            truth.update(item, 1)
        est = sketch.query()
        assert est == pytest.approx(truth.fp(2), rel=0.25)

    def test_turnstile(self):
        sketch = AMSSketch(rows_per_group=64, groups=5, rng=np.random.default_rng(7))
        sketch.update(1, 10)
        sketch.update(2, 5)
        sketch.update(1, -10)
        assert sketch.query() == pytest.approx(25.0, rel=0.5)

    def test_query_l2(self):
        sketch = AMSSketch(rows_per_group=128, groups=5, rng=np.random.default_rng(8))
        sketch.update(0, 6)
        sketch.update(1, 8)
        assert sketch.query_l2() == pytest.approx(10.0, rel=0.3)

    def test_for_accuracy_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AMSSketch.for_accuracy(0.0, 0.1, rng)
        with pytest.raises(ValueError):
            AMSSketch.for_accuracy(0.1, 1.5, rng)

    def test_groups_odd(self):
        sketch = AMSSketch.for_accuracy(0.3, 0.5, np.random.default_rng(9))
        assert sketch.groups % 2 == 1

    def test_sign_cache_consistency(self):
        sketch = AMSSketch(rows_per_group=8, groups=3, rng=np.random.default_rng(10))
        sketch.update(42, 1)
        y_after_one = sketch._y.copy()
        sketch.update(42, 1)
        # Second insertion must add exactly the same column again.
        assert np.allclose(sketch._y, 2 * y_after_one)

    def test_space_accounting(self):
        sketch = AMSSketch(rows_per_group=4, groups=3, rng=np.random.default_rng(11))
        assert sketch.space_bits() >= 12 * 64
