"""Tests for cascaded norms (exact, static sketch, robust wrapper)."""

import numpy as np
import pytest

from repro.core.flip_number import (
    cascaded_norm_flip_number_bound,
    measured_flip_number,
)
from repro.sketches.cascaded import (
    CascadedNormSketch,
    ExactCascadedNorm,
    RobustCascadedNorm,
    flatten_index,
    unflatten_index,
)


class TestIndexing:
    def test_roundtrip(self):
        for row, col in [(0, 0), (3, 7), (100, 15)]:
            item = flatten_index(row, col, 16)
            assert unflatten_index(item, 16) == (row, col)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            flatten_index(0, 16, 16)
        with pytest.raises(ValueError):
            flatten_index(-1, 0, 16)


class TestExactCascadedNorm:
    def test_single_row_is_lk_norm(self):
        exact = ExactCascadedNorm(p=1.0, k=2.0, num_cols=8)
        exact.update(flatten_index(0, 0, 8), 3)
        exact.update(flatten_index(0, 1, 8), 4)
        assert exact.query() == pytest.approx(5.0)

    def test_p2_k2_is_frobenius(self):
        exact = ExactCascadedNorm(p=2.0, k=2.0, num_cols=4)
        entries = {(0, 0): 1, (0, 1): 2, (1, 2): 2}
        for (r, c), v in entries.items():
            exact.update(flatten_index(r, c, 4), v)
        frob = (1 + 4 + 4) ** 0.5
        assert exact.query() == pytest.approx(frob)

    def test_monotone_under_insertions(self):
        exact = ExactCascadedNorm(p=1.5, k=1.0, num_cols=8)
        rng = np.random.default_rng(0)
        prev = 0.0
        for _ in range(200):
            exact.update(int(rng.integers(0, 64)), 1)
            cur = exact.query()
            assert cur >= prev - 1e-9
            prev = cur

    def test_invalid_orders(self):
        with pytest.raises(ValueError):
            ExactCascadedNorm(p=0, k=1, num_cols=4)
        with pytest.raises(ValueError):
            ExactCascadedNorm(p=1, k=1, num_cols=0)


class TestCascadedNormSketch:
    def test_tracks_exact(self):
        exact = ExactCascadedNorm(p=1.0, k=2.0, num_cols=32)
        sketch = CascadedNormSketch(p=1.0, k=2.0, num_cols=32,
                                    rows_per_sketch=400,
                                    rng=np.random.default_rng(1))
        rng = np.random.default_rng(2)
        for _ in range(2000):
            item = int(rng.integers(0, 8 * 32))
            exact.update(item)
            sketch.update(item)
        assert sketch.query() == pytest.approx(exact.query(), rel=0.15)

    def test_turnstile(self):
        sketch = CascadedNormSketch(p=2.0, k=2.0, num_cols=8,
                                    rows_per_sketch=300,
                                    rng=np.random.default_rng(3))
        sketch.update(flatten_index(0, 0, 8), 10)
        sketch.update(flatten_index(0, 0, 8), -10)
        sketch.update(flatten_index(1, 3, 8), 6)
        assert sketch.query() == pytest.approx(6.0, rel=0.25)

    def test_invalid_inner_order(self):
        with pytest.raises(ValueError):
            CascadedNormSketch(p=1.0, k=3.0, num_cols=4, rows_per_sketch=8,
                               rng=np.random.default_rng(0))


class TestRobustCascadedNorm:
    def test_tracks_matrix_stream(self):
        num_rows, num_cols = 16, 16
        robust = RobustCascadedNorm(
            p=1.0, k=2.0, num_rows=num_rows, num_cols=num_cols,
            m=1500, eps=0.35, rng=np.random.default_rng(4), copies=12,
            rows_per_sketch=200,
        )
        exact = ExactCascadedNorm(p=1.0, k=2.0, num_cols=num_cols)
        rng = np.random.default_rng(5)
        worst = 0.0
        for t in range(1500):
            row = int(rng.integers(0, num_rows))
            col = int(rng.integers(0, num_cols))
            robust.update_entry(row, col, 1)
            exact.update(flatten_index(row, col, num_cols), 1)
            if t >= 150:
                truth = exact.query()
                worst = max(worst, abs(robust.query() - truth) / truth)
        assert worst <= 0.35

    def test_flip_number_bound_covers_trajectory(self):
        exact = ExactCascadedNorm(p=1.0, k=2.0, num_cols=8)
        rng = np.random.default_rng(6)
        traj = []
        for _ in range(800):
            exact.update(int(rng.integers(0, 64)), 1)
            traj.append(exact.query())
        eps = 0.3
        measured = measured_flip_number(traj, eps)
        bound = cascaded_norm_flip_number_bound(eps, 8, 8, 1.0, 2.0, M=800)
        assert measured <= bound
