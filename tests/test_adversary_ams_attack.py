"""Tests for Algorithm 3 / Theorem 9.1: the attack on the AMS sketch."""

import numpy as np
import pytest

from repro.adversary.ams_attack import AMSAttackAdversary, run_ams_attack
from repro.sketches.ams import AMSFullSketch


class TestAMSAttackAdversary:
    def test_first_update_is_heavy(self):
        adv = AMSAttackAdversary(t=64, rng=np.random.default_rng(0), constant=8.0)
        first = adv.next_update(0, None)
        assert first.item == 0
        assert first.delta == 64  # 8 * sqrt(64)

    def test_probe_then_decide(self):
        adv = AMSAttackAdversary(t=16, rng=np.random.default_rng(1))
        adv.next_update(0, None)
        probe = adv.next_update(1, 1024.0)
        assert probe.delta == 1 and probe.item == 1
        # Estimate moved by less than 1 -> the item is inserted again.
        second = adv.next_update(2, 1024.5)
        assert second == probe._replace(delta=1)
        assert second.item == 1

    def test_large_move_skips_to_next_item(self):
        adv = AMSAttackAdversary(t=16, rng=np.random.default_rng(2))
        adv.next_update(0, None)
        adv.next_update(1, 1024.0)
        nxt = adv.next_update(2, 1030.0)  # moved by 6 > 1: keep single
        assert nxt.item == 2

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            AMSAttackAdversary(t=0, rng=np.random.default_rng(0))


class TestTheorem91:
    def test_attack_fools_plain_ams(self):
        """Theorem 9.1: AMS fooled within O(t) updates with probability 9/10."""
        fooled = 0
        budgets = []
        trials = 8
        t = 64
        for seed in range(trials):
            sketch = AMSFullSketch(t=t, n=4096, rng=np.random.default_rng(seed))
            ok, used, _ = run_ams_attack(
                sketch, np.random.default_rng(1000 + seed), max_updates=40 * t
            )
            fooled += ok
            if ok:
                budgets.append(used)
        assert fooled >= trials - 1  # ~9/10 success probability
        # O(t) updates: the observed constant is ~10-15.
        assert max(budgets) <= 30 * t

    def test_attack_drives_estimate_below_truth(self):
        t = 32
        sketch = AMSFullSketch(t=t, n=2048, rng=np.random.default_rng(42))
        ok, _, transcript = run_ams_attack(
            sketch, np.random.default_rng(43), max_updates=40 * t
        )
        assert ok
        final_est, final_truth = transcript[-1]
        assert final_est < final_truth / 2

    def test_oblivious_stream_does_not_fool_ams(self):
        """Control: the same sketch is fine on a non-adaptive stream."""
        t = 64
        sketch = AMSFullSketch(t=t, n=4096, rng=np.random.default_rng(7))
        rng = np.random.default_rng(8)
        from repro.streams.frequency import FrequencyVector

        truth = FrequencyVector()
        worst = 0.0
        for i in range(1000):
            item = int(rng.integers(0, 4096))
            truth.update(item, 1)
            est = sketch.process_update(item, 1)
            if i > 50:
                worst = max(worst, abs(est - truth.fp(2)) / truth.fp(2))
        assert worst < 0.5  # never fooled to a factor-2 error

    def test_requires_t_for_wrappers(self):
        class _NoT:
            def process_update(self, item, delta):
                return 0.0

        with pytest.raises(ValueError):
            run_ams_attack(_NoT(), np.random.default_rng(0), max_updates=10)
