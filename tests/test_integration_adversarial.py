"""Integration matrix: every robust algorithm vs every adversary class.

The theorems promise correctness against *arbitrary* adaptive adversaries;
these tests exercise each robust estimator against the three adversary
families the repository implements (oblivious random, replayed worst-case
static, adaptive estimate-probing) inside the full two-player game loop —
the end-to-end path a downstream user runs.
"""

import numpy as np
import pytest

from repro.adversary.attacks import EstimateProbingAdversary
from repro.adversary.base import RandomAdversary, StaticAdversary
from repro.adversary.game import AdversarialGame, relative_error_judge
from repro.api import robust_estimator
from repro.streams.model import Update

N = 1024
M = 1200
EPS = 0.35


def _adversaries(seed):
    return {
        "random": RandomAdversary(N, M, np.random.default_rng(seed)),
        "static-ramp": StaticAdversary([Update(i % N, 1) for i in range(M)]),
        "probing": EstimateProbingAdversary(N, np.random.default_rng(seed)),
    }


@pytest.mark.parametrize("adv_name", ["random", "static-ramp", "probing"])
class TestDistinctMatrix:
    def test_switching(self, adv_name):
        algo = robust_estimator("distinct", n=N, m=M, eps=EPS, seed=1)
        game = AdversarialGame(lambda f: f.f0(),
                               relative_error_judge(EPS), grace_steps=100)
        result = game.run(algo, _adversaries(10)[adv_name], max_rounds=M)
        assert not result.failed, adv_name

    def test_fast_paths(self, adv_name):
        algo = robust_estimator("distinct-fast", n=N, m=M, eps=EPS, seed=2)
        game = AdversarialGame(lambda f: f.f0(),
                               relative_error_judge(EPS), grace_steps=100)
        result = game.run(algo, _adversaries(11)[adv_name], max_rounds=M)
        assert not result.failed, adv_name

    def test_crypto(self, adv_name):
        algo = robust_estimator("distinct-crypto", n=N, m=M, eps=0.2, seed=3)
        game = AdversarialGame(lambda f: f.f0(),
                               relative_error_judge(0.25), grace_steps=100)
        result = game.run(algo, _adversaries(12)[adv_name], max_rounds=M)
        assert not result.failed, adv_name


@pytest.mark.parametrize("adv_name", ["random", "static-ramp", "probing"])
def test_fp_switching_matrix(adv_name):
    algo = robust_estimator("fp", n=N, m=M, eps=EPS, seed=4, p=2.0,
                            copies=16)
    game = AdversarialGame(lambda f: f.lp(2),
                           relative_error_judge(EPS), grace_steps=100)
    result = game.run(algo, _adversaries(13)[adv_name], max_rounds=M)
    assert not result.failed, adv_name


@pytest.mark.parametrize("adv_name", ["random", "static-ramp"])
def test_entropy_matrix(adv_name):
    from repro.adversary.game import additive_error_judge

    algo = robust_estimator("entropy", n=N, m=M, eps=0.45, seed=5, copies=24)
    game = AdversarialGame(lambda f: f.shannon_entropy(),
                           additive_error_judge(0.45), grace_steps=150)
    result = game.run(algo, _adversaries(14)[adv_name], max_rounds=M)
    assert not result.failed, adv_name


def test_game_transcript_consistency():
    """The game's recorded truths must match an independent replay."""
    from repro.streams.frequency import FrequencyVector

    algo = robust_estimator("distinct", n=N, m=400, eps=0.4, seed=6,
                            copies=8)
    game = AdversarialGame(lambda f: f.f0(), relative_error_judge(0.4),
                           grace_steps=50)
    adv = EstimateProbingAdversary(N, np.random.default_rng(15))
    result = game.run(algo, adv, max_rounds=400)
    replay = FrequencyVector()
    for u, recorded in zip(result.updates, result.truths):
        replay.update(u.item, u.delta)
        assert replay.f0() == recorded

    # The transcript's own error summary agrees with the judge's verdict.
    assert (result.max_relative_error > 0.4) == (
        result.failed and result.first_failure_step is not None
        and result.first_failure_step < 50
    ) or not result.failed
