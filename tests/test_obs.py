"""Observability subsystem (ISSUE 7): metrics registry, trace events,
sinks, span aggregation across the ProcessEngine fork boundary, the
``repro trace`` summarizer, and the ``ingest(telemetry=...)`` wiring.

The load-bearing property — tracing on/off leaves every published
output bit-for-bit identical — is pinned in
``tests/test_band_equivalence.py`` next to the other equivalence
suites; this file covers the subsystem itself.
"""

import json

import numpy as np
import pytest

from repro.api import ingest, install_telemetry, robust_estimator
from repro.core.bands import MultiplicativeBand
from repro.core.disciplines import (
    DifferenceAggregateDiscipline,
    PrivateAggregateDiscipline,
)
from repro.core.ladder import DifferenceLadder, LadderTier
from repro.core.sketch_switching import SwitchingEstimator
from repro.engine import ProcessEngine, SerialEngine, fork_available
from repro.engine.prefetch import prefetch_chunks
from repro.obs import (
    DEFAULT_BUCKETS,
    CallbackSink,
    JsonlSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    NullTelemetry,
    RingSink,
    SpanEvent,
    SvtChargeEvent,
    SwitchEvent,
    Telemetry,
    WorkerTelemetry,
    event_from_dict,
    read_trace,
    resolve_telemetry,
)
from repro.obs.trace_cli import summarize_trace
from repro.sketches.kmv import KMVSketch
from repro.streams.model import StreamChunk

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process engine requires the fork start method"
)


def _uniform_chunks(n, m, chunk, seed=7):
    rng = np.random.default_rng(seed)
    items = rng.integers(0, n, size=m)
    return [StreamChunk.insertions(items[lo:lo + chunk])
            for lo in range(0, m, chunk)]


def _estimator(problem="distinct", seed=3, n=4096, m=60_000):
    return robust_estimator(problem, n=n, m=m, eps=0.25, seed=seed)


class TestMetricsRegistry:
    def test_counter_accumulates_and_is_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help text")
        c.inc()
        reg.counter("x_total").inc(2.5)
        assert c.value == 3.5
        assert len(reg) == 1

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]          # <=1, <=10, +Inf
        assert h.count == 3 and h.sum == 55.5

    def test_merge_snapshot_sums_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.histogram("h", buckets=(4.0,)).observe(1)
        b.histogram("h", buckets=(4.0,)).observe(100)
        b.gauge("g").set(-9)
        a.gauge("g").set(2)
        a.merge_snapshot(b.snapshot())
        assert a.counter("c").value == 5
        assert a.histogram("h").counts == [1, 1]
        assert a.gauge("g").value == -9       # extreme wins across workers

    def test_histogram_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,))
        b.histogram("h", buckets=(2.0,)).observe(1)
        snap = b.snapshot()
        with pytest.raises(ValueError):
            a.histogram("h", buckets=(1.0,)).merge(snap["h"])

    def test_expose_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("switches_total", "protocol switches").inc(4)
        reg.histogram("sz", buckets=(2.0,)).observe(1)
        text = reg.expose()
        assert "# HELP switches_total protocol switches" in text
        assert "# TYPE switches_total counter" in text
        assert "switches_total 4" in text
        assert 'sz_bucket{le="2"} 1' in text
        assert 'sz_bucket{le="+Inf"} 1' in text
        assert "sz_count 1" in text

    def test_null_registry_hands_out_shared_noop(self):
        a = NULL_TELEMETRY.metrics.counter("anything")
        b = NULL_TELEMETRY.metrics.histogram("other", buckets=DEFAULT_BUCKETS)
        a.inc()
        b.observe(5)
        assert a is b                          # one shared no-op instrument
        assert NULL_TELEMETRY.metrics.snapshot() == {}


class TestEvents:
    def test_round_trip_through_dict(self):
        ev = SwitchEvent(t=1.5, published=3.0, estimate=3.1, switches=7,
                         discipline="active-copy", band="multiplicative")
        back = event_from_dict(ev.to_dict())
        assert isinstance(back, SwitchEvent)
        assert back == ev

    def test_unknown_kind_degrades_to_base_event(self):
        back = event_from_dict({"kind": "from-the-future", "t": 9.0,
                                "novel_field": 1})
        assert type(back).kind == "event"
        assert back.t == 9.0

    def test_span_seconds_clamps_negative(self):
        assert SpanEvent(start=5.0, end=4.0).seconds == 0.0
        assert SpanEvent(start=1.0, end=3.0).seconds == 2.0


class TestSinks:
    def test_ring_sink_caps_and_counts_drops(self):
        ring = RingSink(capacity=2)
        for i in range(5):
            ring.emit(SwitchEvent(switches=i))
        assert [e.switches for e in ring.events] == [3, 4]
        assert ring.dropped == 3
        assert ring.by_kind("switch") == list(ring.events)
        ring.clear()
        assert not ring.events

    def test_jsonl_sink_round_trips_via_read_trace(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(SwitchEvent(t=1.0, published=2.0, switches=1))
        sink.emit(SvtChargeEvent(t=2.0, charges=3, budget=10, spent=0.3))
        sink.close()
        events = read_trace(path)
        assert [e.kind for e in events] == ["switch", "svt-charge"]
        assert isinstance(events[0], SwitchEvent)
        assert events[1].charges == 3
        # every line is plain JSON with a kind tag
        lines = path.read_text().splitlines()
        assert all(json.loads(line)["kind"] for line in lines)

    def test_callback_sink_delivers_typed_events(self):
        seen = []
        tele = Telemetry(sinks=[CallbackSink(seen.append)])
        tele.emit(SwitchEvent(published=1.0))
        assert len(seen) == 1 and isinstance(seen[0], SwitchEvent)


class TestTelemetry:
    def test_emit_fills_timestamp_and_span(self):
        ring = RingSink()
        tele = Telemetry(sinks=[ring])
        with tele.span("outer"):
            tele.emit(SwitchEvent(published=1.0))
        ev = ring.by_kind("switch")[0]
        assert ev.t > 0.0
        assert ev.span == 1                   # the outer span's id
        assert tele.event_counts == {"switch": 1, "span": 1}

    def test_span_nesting_records_parent_linkage(self):
        ring = RingSink()
        tele = Telemetry(sinks=[ring])
        with tele.span("ingest"):
            with tele.span("chunk"):
                pass
            with tele.span("chunk"):
                pass
        spans = {e.id: e for e in ring.by_kind("span")}
        ingest = next(e for e in spans.values() if e.name == "ingest")
        chunks = [e for e in spans.values() if e.name == "chunk"]
        assert ingest.span is None
        assert len(chunks) == 2
        assert all(c.span == ingest.id for c in chunks)
        assert all(c.seconds >= 0.0 for c in chunks)

    def test_snapshot_shape(self):
        tele = Telemetry()
        tele.metrics.counter("c").inc()
        tele.emit(SwitchEvent())
        snap = tele.snapshot()
        assert snap["events"] == {"switch": 1}
        assert snap["metrics"]["c"]["value"] == 1
        assert snap["spans"] == 0

    def test_null_telemetry_is_inert(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert NULL_TELEMETRY.enabled is False
        NULL_TELEMETRY.emit(SwitchEvent())    # no-op, no error
        with NULL_TELEMETRY.span("x") as s:
            assert s.id is None
        assert NULL_TELEMETRY.snapshot() is None
        assert NULL_TELEMETRY.expose() == ""

    def test_absorb_worker_attributes_and_ids(self):
        ring = RingSink()
        tele = Telemetry(sinks=[ring])
        payload = {
            "phases": {"probe": 0.5, "feed": 0.1, "replace": 0.0},
            "events": [
                {"kind": "span", "span": 7, "name": "worker-chunk",
                 "start": 1.0, "end": 2.0, "t": 2.0, "ops": 3},
                SvtChargeEvent(t=1.5, charges=1, budget=4,
                               spent=0.25).to_dict(),
            ],
            "metrics": {"svt_charges_total": {"kind": "counter", "value": 1}},
        }
        tele.absorb_worker(2, payload)
        span = ring.by_kind("span")[0]
        assert span.worker == 2 and span.span == 7
        assert span.id == "w2:1"              # coordinator-assigned id
        charge = ring.by_kind("svt-charge")[0]
        assert charge.worker == 2
        assert tele.metrics.counter("svt_charges_total").value == 1


class TestWorkerTelemetry:
    def test_phases_always_accumulate(self):
        obs = WorkerTelemetry(0, trace=False)
        obs.op("feed", 0.25)
        obs.op("probe", 0.5)
        obs.op("afeed", 0.5)                  # aggregate feed counts as probe
        obs.op("stop", 1.0)                   # unmapped: ignored
        obs.op("adv", 0.125)                  # spec-mode chunk materialization
        payload = obs.drain()
        assert payload["phases"] == {"probe": 1.0, "feed": 0.25,
                                     "replace": 0.0, "generate": 0.125}
        assert "events" not in payload        # tracing off: no span records

    def test_span_records_between_tags(self):
        obs = WorkerTelemetry(1, trace=True)
        obs.begin_span(11)
        obs.op("feed", 0.1)
        obs.op("probe", 0.1)
        obs.begin_span(12)                    # closes the span under 11
        obs.op("feed", 0.1)
        payload = obs.drain()                 # closes the span under 12
        events = payload["events"]
        assert [e["span"] for e in events] == [11, 12]
        assert all(e["kind"] == "span" for e in events)
        assert all(e["name"] == "worker-chunk" for e in events)
        assert events[0]["ops"] == 2 and events[1]["ops"] == 1


class TestResolveTelemetry:
    def test_specs(self, tmp_path):
        assert resolve_telemetry(None) is None
        assert resolve_telemetry(False) is None
        tele = Telemetry()
        assert resolve_telemetry(tele) is tele
        assert isinstance(resolve_telemetry(True).sinks[0], RingSink)
        assert isinstance(resolve_telemetry("ring").sinks[0], RingSink)
        assert resolve_telemetry("metrics").sinks == []
        path = str(tmp_path / "t.jsonl")
        assert isinstance(resolve_telemetry(f"jsonl:{path}").sinks[0],
                          JsonlSink)
        assert isinstance(resolve_telemetry(path).sinks[0], JsonlSink)
        assert isinstance(resolve_telemetry(print).sinks[0], CallbackSink)

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            resolve_telemetry("bogus")
        with pytest.raises(TypeError):
            resolve_telemetry(123)


class TestProtocolEvents:
    """The instrumented seams emit what they claim to emit."""

    def _run(self, est, chunks, telemetry):
        install_telemetry(est, telemetry)
        for chunk in chunks:
            est.update_batch(chunk.items, chunk.deltas)

    def test_switching_emits_switch_ring_and_band_events(self):
        ring = RingSink()
        tele = Telemetry(sinks=[ring])
        est = _estimator("distinct")
        self._run(est, _uniform_chunks(4096, 60_000, 4096), tele)
        switches = ring.by_kind("switch")
        assert len(switches) == est.switches > 0
        assert switches[-1].switches == est.switches
        assert switches[-1].published == est.query()
        assert switches[-1].band == "multiplicative"
        assert len(ring.by_kind("ring-advance")) == est.switches
        assert tele.metrics.counter("protocol_switches_total").value \
            == est.switches
        assert tele.metrics.counter("copies_burned_total").value \
            == est.switches

    def test_dp_discipline_emits_svt_charges(self):
        ring = RingSink()
        tele = Telemetry(sinks=[ring])
        est = _estimator("distinct-dp")
        self._run(est, _uniform_chunks(4096, 60_000, 4096), tele)
        charges = ring.by_kind("svt-charge")
        assert charges and charges[0].scope == "publication"
        assert charges[-1].charges >= charges[0].charges
        if charges[0].budget:
            assert 0.0 < charges[0].spent <= 1.0

    def test_ladder_emits_anchor_promote_and_strong_charges(self):
        ladder = DifferenceLadder([
            LadderTier(copies=2, noise_scale=0.04, capacity=3, span=0.3),
        ])
        est = SwitchingEstimator(
            lambda r: KMVSketch(48, r), copies=9,
            rng=np.random.default_rng(7), band=MultiplicativeBand(0.35),
            discipline=DifferenceAggregateDiscipline(
                ladder=ladder, noise_scale=0.04,
            ),
        )
        ring = RingSink()
        est._copies.telemetry = Telemetry(sinks=[ring])
        for chunk in _uniform_chunks(2048, 40_000, 2048):
            est.update_batch(chunk.items, chunk.deltas)
        assert ring.by_kind("ladder-anchor")
        assert ring.by_kind("ladder-promote")
        strong = [e for e in ring.by_kind("svt-charge")
                  if e.scope == "strong"]
        assert strong

    def test_prefetch_producer_fault_becomes_event(self):
        ring = RingSink()
        tele = Telemetry(sinks=[ring])

        def broken():
            yield StreamChunk.insertions(np.arange(10))
            raise RuntimeError("source died")

        gen = prefetch_chunks(broken(), telemetry=tele)
        next(gen)
        gen.close()   # consumer walks away; the parked failure is drained
        faults = ring.by_kind("prefetch-fault")
        assert faults and faults[0].fault == "producer-exception"
        assert "source died" in faults[0].detail


class TestIngestTelemetry:
    def test_report_snapshot_and_identical_output_direct(self):
        base = ingest(_estimator(), _uniform_chunks(4096, 60_000, 4096),
                      chunk_size=4096)
        assert base.telemetry is None
        traced = ingest(_estimator(), _uniform_chunks(4096, 60_000, 4096),
                        chunk_size=4096, telemetry=True)
        assert traced.final_estimate == base.final_estimate
        snap = traced.telemetry
        assert snap["events"]["switch"] > 0
        assert snap["metrics"]["ingest_updates_total"]["value"] == 60_000
        assert snap["metrics"]["ingest_chunk_updates"]["count"] \
            == traced.chunks
        assert snap["spans"] >= traced.chunks + 1   # chunks + root ingest

    def test_serial_engine_phases_and_events(self):
        report = ingest(_estimator(), _uniform_chunks(4096, 60_000, 4096),
                        chunk_size=4096, engine="serial", telemetry=True)
        assert report.phase_seconds is not None
        assert {"probe", "band_test", "feed", "replace"} \
            <= set(report.phase_seconds)
        assert report.telemetry["events"]["phases"] == 1

    @needs_fork
    def test_process_engine_merges_worker_trace(self):
        ring = RingSink(capacity=65536)
        tele = Telemetry(sinks=[ring])
        traced = ingest(_estimator("distinct-dp"),
                        _uniform_chunks(4096, 60_000, 4096),
                        chunk_size=4096, engine="process:2", telemetry=tele)
        base = ingest(_estimator("distinct-dp"),
                      _uniform_chunks(4096, 60_000, 4096),
                      chunk_size=4096, engine="process:2")
        # ISSUE 7 acceptance: identical output, >=1 switch event, >=1 DP
        # budget charge, worker-originated spans with parent linkage,
        # worker phase totals under their own keys.
        assert traced.final_estimate == base.final_estimate
        assert ring.by_kind("switch")
        assert ring.by_kind("svt-charge")
        worker_spans = [e for e in ring.by_kind("span")
                        if e.worker is not None]
        assert worker_spans
        chunk_ids = {e.id for e in ring.by_kind("span")
                     if e.name == "chunk"}
        assert all(s.span in chunk_ids for s in worker_spans)
        assert all(str(s.id).startswith("w") for s in worker_spans)
        assert {"worker_probe", "worker_feed", "worker_replace"} \
            <= set(traced.phase_seconds)
        assert traced.phase_seconds["worker_probe"] > 0.0

    def test_jsonl_spec_writes_readable_trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ingest(_estimator(), _uniform_chunks(4096, 30_000, 4096),
               chunk_size=4096, engine="serial", telemetry=f"jsonl:{path}")
        events = read_trace(path)
        assert any(e.kind == "switch" for e in events)
        assert any(e.kind == "phases" for e in events)

    def test_tracing_overhead_is_sane(self):
        # Loose sanity bound only (CI boxes are noisy); the real gate is
        # bench_parallel.py's MAX_TELEMETRY_OVERHEAD row.  An accidental
        # per-item emission would blow past this by an order of
        # magnitude.
        import time as _time

        chunks = _uniform_chunks(4096, 200_000, 8192)

        def run(telemetry):
            est = _estimator(m=200_000)
            start = _time.perf_counter()
            ingest(est, chunks, chunk_size=8192, telemetry=telemetry)
            return _time.perf_counter() - start

        run(None)                              # warm caches
        off = min(run(None) for _ in range(3))
        on = min(run(True) for _ in range(3))
        assert on <= off * 3 + 0.05


class TestTraceCli:
    def test_summarize_trace_sections(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ingest(_estimator("distinct-dp"), _uniform_chunks(4096, 60_000, 4096),
               chunk_size=4096, engine="serial", telemetry=f"jsonl:{path}")
        text = summarize_trace(path, limit=5)
        assert "switch timeline" in text
        assert "budget burn-down" in text
        assert "span phases" in text
        assert "session phase totals" in text

    def test_cli_trace_subcommand(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = tmp_path / "run.jsonl"
        ingest(_estimator(), _uniform_chunks(4096, 30_000, 4096),
               chunk_size=4096, telemetry=f"jsonl:{path}")
        assert main(["trace", str(path), "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "switch timeline" in out

    def test_cli_trace_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err
