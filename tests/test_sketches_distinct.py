"""Tests for the distinct-elements sketches: KMV, fast level lists, HLL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.fast_f0 import FastF0Sketch
from repro.sketches.hll import HyperLogLog
from repro.sketches.kmv import KMVSketch


class TestKMV:
    def test_exact_small_regime(self):
        k = KMVSketch(64, np.random.default_rng(0))
        for i in range(30):
            k.update(i)
        assert k.query() == 30.0

    def test_accuracy_large_regime(self):
        errors = []
        for seed in range(8):
            k = KMVSketch(256, np.random.default_rng(seed))
            for i in range(5000):
                k.update(i)
            errors.append(abs(k.query() - 5000) / 5000)
        assert float(np.median(errors)) < 0.15

    def test_duplicates_never_change_state(self):
        """The Theorem 10.1 property: re-inserting old items is a no-op."""
        k = KMVSketch(16, np.random.default_rng(1))
        for i in range(100):
            k.update(i)
        before = k.state_fingerprint()
        for i in range(100):
            k.update(i)  # all duplicates
        assert k.state_fingerprint() == before

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_estimate_depends_only_on_distinct_set(self, items):
        k1 = KMVSketch(8, np.random.default_rng(2))
        k2 = KMVSketch(8, np.random.default_rng(2))
        for x in items:
            k1.update(x)
        for x in sorted(set(items)):
            k2.update(x)
        assert k1.query() == k2.query()
        assert k1.state_fingerprint() == k2.state_fingerprint()

    def test_monotone_in_distinct_count(self):
        k = KMVSketch(32, np.random.default_rng(3))
        estimates = []
        for i in range(2000):
            k.update(i)
            estimates.append(k.query())
        # Bottom-k estimates are non-decreasing on fresh-item streams.
        assert all(b >= a - 1e-9 for a, b in zip(estimates, estimates[1:]))

    def test_for_accuracy_sizing(self):
        k = KMVSketch.for_accuracy(0.1, 0.05, np.random.default_rng(4))
        assert k.k >= 1 / 0.1**2

    def test_rejects_deletions(self):
        with pytest.raises(ValueError):
            KMVSketch(4, np.random.default_rng(0)).update(1, -1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KMVSketch(1, np.random.default_rng(0))


class TestFastF0:
    def test_exact_before_saturation(self):
        f = FastF0Sketch(n=1 << 12, eps=0.3, delta=0.1, rng=np.random.default_rng(5))
        for i in range(50):
            f.update(i)
            assert f.query() == float(i + 1)

    def test_accuracy_after_saturation(self):
        errors = []
        for seed in range(6):
            f = FastF0Sketch(n=1 << 14, eps=0.2, delta=0.05,
                             rng=np.random.default_rng(seed))
            for i in range(6000):
                f.update(i)
            errors.append(abs(f.query() - 6000) / 6000)
        assert max(errors) < 0.25
        assert float(np.median(errors)) < 0.1

    def test_duplicates_do_not_inflate(self):
        f = FastF0Sketch(n=1 << 12, eps=0.25, delta=0.1,
                         rng=np.random.default_rng(6))
        for _ in range(10):
            for i in range(500):
                f.update(i)
        assert f.query() == pytest.approx(500, rel=0.3)

    def test_batched_mode_matches_semantics(self):
        direct = FastF0Sketch(n=1 << 10, eps=0.3, delta=0.1,
                              rng=np.random.default_rng(7), batch=False)
        batched = FastF0Sketch(n=1 << 10, eps=0.3, delta=0.1,
                               rng=np.random.default_rng(7), batch=True)
        for i in range(800):
            direct.update(i)
            batched.update(i)
        # Different hash polynomials, same estimator: both near truth.
        assert direct.query() == pytest.approx(800, rel=0.3)
        assert batched.query() == pytest.approx(800, rel=0.3)

    def test_batched_delay_bounded(self):
        f = FastF0Sketch(n=1 << 10, eps=0.3, delta=0.1,
                         rng=np.random.default_rng(8), batch=True)
        for i in range(3):
            f.update(i)
        # Pending items are still counted exactly via the pending buffer.
        assert f.query() == 3.0

    def test_space_depends_on_delta(self):
        small = FastF0Sketch(n=1 << 12, eps=0.2, delta=0.1,
                             rng=np.random.default_rng(9))
        tiny = FastF0Sketch(n=1 << 12, eps=0.2, delta=2.0**-30,
                            rng=np.random.default_rng(9))
        assert tiny.B > small.B
        assert tiny.d > small.d

    def test_rejects_deletions(self):
        f = FastF0Sketch(n=16, eps=0.5, delta=0.1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            f.update(1, -1)

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            FastF0Sketch(n=1, eps=0.2, delta=0.1, rng=rng)
        with pytest.raises(ValueError):
            FastF0Sketch(n=16, eps=0.0, delta=0.1, rng=rng)
        with pytest.raises(ValueError):
            FastF0Sketch(n=16, eps=0.2, delta=0.0, rng=rng)


class TestHyperLogLog:
    def test_accuracy(self):
        errors = []
        for seed in range(6):
            h = HyperLogLog(b=10, rng=np.random.default_rng(seed))
            for i in range(20_000):
                h.update(i)
            errors.append(abs(h.query() - 20_000) / 20_000)
        assert float(np.median(errors)) < 0.12

    def test_small_range_linear_counting(self):
        h = HyperLogLog(b=8, rng=np.random.default_rng(10))
        for i in range(40):
            h.update(i)
        assert h.query() == pytest.approx(40, rel=0.3)

    def test_duplicate_insensitive(self):
        h = HyperLogLog(b=6, rng=np.random.default_rng(11))
        for i in range(1000):
            h.update(i)
        snapshot = h._registers.copy()
        for i in range(1000):
            h.update(i)
        assert np.array_equal(h._registers, snapshot)

    def test_for_accuracy_sizing(self):
        h = HyperLogLog.for_accuracy(0.05, np.random.default_rng(12))
        assert 1.04 / np.sqrt(h.m_registers) <= 0.06

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            HyperLogLog(b=2, rng=np.random.default_rng(0))
