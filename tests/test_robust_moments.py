"""Tests for robust Fp estimation (Theorems 4.1-4.4)."""

import numpy as np
import pytest

from repro.adversary.ams_attack import run_ams_attack
from repro.robust.moments import (
    RobustFpHigh,
    RobustFpPaths,
    RobustFpSwitching,
    RobustTurnstileFp,
)
from repro.streams.frequency import FrequencyVector
from repro.streams.generators import turnstile_wave_stream, zipfian_stream


def _worst_error(algo, updates, truth_fn, skip=100, floor=0.0):
    truth = FrequencyVector()
    worst = 0.0
    for t, u in enumerate(updates):
        truth.update(u.item, u.delta)
        out = algo.process_update(u.item, u.delta)
        g = truth_fn(truth)
        if t >= skip and g > floor:
            worst = max(worst, abs(out - g) / g)
    return worst


class TestRobustFpSwitching:
    @pytest.mark.parametrize("p", [1.0, 2.0])
    def test_tracks_norm_on_zipfian(self, p):
        ups = zipfian_stream(512, 2500, np.random.default_rng(0))
        algo = RobustFpSwitching(
            p=p, n=512, m=2500, eps=0.3, rng=np.random.default_rng(1),
            copies=16,
        )
        assert _worst_error(algo, ups, lambda f: f.lp(p)) <= 0.3

    def test_moment_mode(self):
        ups = zipfian_stream(256, 2000, np.random.default_rng(2))
        algo = RobustFpSwitching(
            p=2.0, n=256, m=2000, eps=0.4, rng=np.random.default_rng(3),
            track="moment", copies=24, stable_constant=3.0,
        )
        assert _worst_error(algo, ups, lambda f: f.fp(2)) <= 0.4

    def test_survives_ams_attack(self):
        """The headline contrast: plain AMS collapses, the robust F2
        tracker stays within its error band under the same adversary."""
        algo = RobustFpSwitching(
            p=2.0, n=4096, m=3000, eps=0.4, rng=np.random.default_rng(4),
            track="moment", copies=16, stable_constant=3.0,
        )
        fooled, _, transcript = run_ams_attack(
            algo, np.random.default_rng(5), max_updates=1000, t=64
        )
        assert not fooled  # never pushed below truth/2
        worst = max(abs(e - g) / g for e, g in transcript if g > 0)
        assert worst <= 0.4

    def test_fractional_p(self):
        # p=0.5 stable medians concentrate more slowly (flatter density at
        # the median), so the empirical band is a bit wider than for p>=1.
        ups = zipfian_stream(256, 1500, np.random.default_rng(6))
        algo = RobustFpSwitching(
            p=0.5, n=256, m=1500, eps=0.4, rng=np.random.default_rng(7),
            copies=16, stable_constant=10.0,
        )
        assert _worst_error(algo, ups, lambda f: f.lp(0.5)) <= 0.4

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RobustFpSwitching(p=3.0, n=16, m=10, eps=0.1, rng=rng)
        with pytest.raises(ValueError):
            RobustFpSwitching(p=1.0, n=16, m=10, eps=0.1, rng=rng,
                              track="nonsense")


class TestRobustFpPaths:
    def test_tracks_norm(self):
        ups = zipfian_stream(256, 2000, np.random.default_rng(8))
        algo = RobustFpPaths(
            p=1.5, n=256, m=2000, eps=0.3, rng=np.random.default_rng(9)
        )
        assert _worst_error(algo, ups, lambda f: f.lp(1.5)) <= 0.3

    def test_paper_delta0_reported(self):
        algo = RobustFpPaths(
            p=1.0, n=1 << 14, m=1 << 14, eps=0.1, rng=np.random.default_rng(10)
        )
        assert algo.paper_log2_delta0 < -100

    def test_changes_bounded(self):
        ups = zipfian_stream(256, 1500, np.random.default_rng(11))
        algo = RobustFpPaths(
            p=1.0, n=256, m=1500, eps=0.4, rng=np.random.default_rng(12)
        )
        _worst_error(algo, ups, lambda f: f.lp(1))
        import math

        assert algo.changes <= math.log(1500) / math.log1p(0.2) + 3


class TestRobustTurnstileFp:
    def test_tracks_wave_stream(self):
        """Theorem 4.3 on its promised class: bounded-flip turnstile."""
        ups = turnstile_wave_stream(256, 2000, np.random.default_rng(13),
                                    waves=3)
        algo = RobustTurnstileFp(
            p=2.0, n=256, m=2000, eps=0.4, lam=64,
            rng=np.random.default_rng(14),
        )
        # Judge only when the moment is well above the sketch noise floor.
        worst = _worst_error(algo, ups, lambda f: f.fp(2), skip=50, floor=25.0)
        assert worst <= 0.45

    def test_deletions_supported(self):
        algo = RobustTurnstileFp(
            p=1.0, n=64, m=100, eps=0.4, lam=8, rng=np.random.default_rng(15)
        )
        algo.process_update(3, 10)
        algo.process_update(3, -10)
        algo.process_update(5, 7)
        assert algo.query() == pytest.approx(7.0, rel=0.5)

    def test_paper_delta_target(self):
        algo = RobustTurnstileFp(
            p=1.0, n=1 << 10, m=100, eps=0.3, lam=50,
            rng=np.random.default_rng(16),
        )
        assert algo.paper_log2_delta0 == pytest.approx(-50 * 10)

    def test_invalid_lam(self):
        with pytest.raises(ValueError):
            RobustTurnstileFp(p=1.0, n=16, m=10, eps=0.1, lam=0,
                              rng=np.random.default_rng(0))


class TestRobustFpHigh:
    def test_tracks_f3_on_skewed_stream(self):
        ups = zipfian_stream(512, 3000, np.random.default_rng(17), s=1.6)
        algo = RobustFpHigh(
            p=3.0, n=512, m=3000, eps=0.3, rng=np.random.default_rng(18)
        )
        # Constant-factor regime for the simplified level-set recovery.
        worst = _worst_error(algo, ups, lambda f: f.fp(3), skip=300)
        assert worst <= 0.6

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            RobustFpHigh(p=2.0, n=16, m=10, eps=0.1,
                         rng=np.random.default_rng(0))
