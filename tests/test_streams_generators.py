"""Tests for workload generators and stream validators."""

import numpy as np
import pytest

from repro.streams.frequency import FrequencyVector
from repro.streams.generators import (
    bounded_deletion_stream,
    distinct_ramp_stream,
    phased_support_stream,
    planted_heavy_hitters_stream,
    turnstile_wave_stream,
    uniform_stream,
    zipfian_stream,
)
from repro.streams.model import StreamParameters
from repro.streams.validators import (
    StreamValidationError,
    check_bounded_deletion,
    function_trajectory,
    validate_bounded_deletion,
    validate_insertion_only,
    validate_parameters,
)


class TestGenerators:
    def test_uniform_length_and_domain(self):
        ups = uniform_stream(100, 500, np.random.default_rng(0))
        assert len(ups) == 500
        assert all(0 <= u.item < 100 and u.delta == 1 for u in ups)

    def test_zipfian_skew(self):
        ups = zipfian_stream(1000, 5000, np.random.default_rng(1), s=1.5)
        f = FrequencyVector()
        for u in ups:
            f.update(u.item, u.delta)
        # Item 0 should dominate under heavy skew.
        assert f[0] > f.f1() / 20

    def test_zipfian_invalid_s(self):
        with pytest.raises(ValueError):
            zipfian_stream(10, 10, np.random.default_rng(0), s=0)

    def test_distinct_ramp(self):
        ups = distinct_ramp_stream(1000, 100)
        f = FrequencyVector()
        for i, u in enumerate(ups):
            f.update(u.item, u.delta)
            assert f.f0() == i + 1

    def test_planted_heavy_hitters(self):
        ups = planted_heavy_hitters_stream(
            1000, 4000, np.random.default_rng(2), heavy_items=4, heavy_mass=0.6
        )
        f = FrequencyVector()
        for u in ups:
            f.update(u.item, u.delta)
        heavy_mass = sum(f[i] for i in range(4))
        assert heavy_mass > 0.4 * f.f1()

    def test_planted_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            planted_heavy_hitters_stream(10, 10, rng, heavy_mass=1.5)
        with pytest.raises(ValueError):
            planted_heavy_hitters_stream(10, 10, rng, heavy_items=10)

    def test_phased_support(self):
        ups = phased_support_stream(400, 800, np.random.default_rng(3), phases=4)
        validate_insertion_only(ups)
        assert len(ups) == 800

    def test_bounded_deletion_satisfies_definition(self):
        for alpha in (2.0, 4.0, 16.0):
            ups = bounded_deletion_stream(
                64, 600, np.random.default_rng(int(alpha)), alpha=alpha, p=1.0
            )
            assert check_bounded_deletion(ups, alpha, p=1.0)

    def test_bounded_deletion_contains_deletions(self):
        ups = bounded_deletion_stream(64, 600, np.random.default_rng(5), alpha=4.0)
        assert any(u.delta < 0 for u in ups)

    def test_bounded_deletion_invalid_alpha(self):
        with pytest.raises(ValueError):
            bounded_deletion_stream(10, 10, np.random.default_rng(0), alpha=0.5)

    def test_turnstile_wave_flips(self):
        ups = turnstile_wave_stream(256, 2000, np.random.default_rng(6), waves=4)
        traj = function_trajectory(ups, lambda f: f.fp(1))
        # The F1 mass must rise and fall repeatedly.
        peak = max(traj)
        assert traj[-1] < peak
        assert any(u.delta < 0 for u in ups)

    def test_turnstile_no_negative_coordinates(self):
        ups = turnstile_wave_stream(256, 1200, np.random.default_rng(7), waves=3)
        f = FrequencyVector()
        for u in ups:
            f.update(u.item, u.delta)
            assert all(v > 0 for v in f.to_dict().values())


class TestValidators:
    def test_insertion_only_accepts(self):
        validate_insertion_only(uniform_stream(10, 50, np.random.default_rng(0)))

    def test_insertion_only_rejects(self):
        ups = bounded_deletion_stream(16, 200, np.random.default_rng(1), alpha=2.0)
        with pytest.raises(StreamValidationError):
            validate_insertion_only(ups)

    def test_validate_parameters_domain(self):
        params = StreamParameters(n=8, m=100)
        bad = [type(u)(item=9, delta=1) for u in uniform_stream(8, 1, np.random.default_rng(0))]
        with pytest.raises(ValueError):
            validate_parameters(bad, params)

    def test_validate_parameters_m_bound(self):
        params = StreamParameters(n=8, m=3)
        ups = uniform_stream(8, 5, np.random.default_rng(0))
        with pytest.raises(StreamValidationError):
            validate_parameters(ups, params)

    def test_validate_parameters_infinity_bound(self):
        params = StreamParameters(n=8, m=100, M=2)
        ups = [(0, 1)] * 3
        from repro.streams.model import as_updates

        with pytest.raises(StreamValidationError):
            validate_parameters(as_updates(ups), params)

    def test_bounded_deletion_validator_rejects(self):
        from repro.streams.model import Update

        ups = [Update(0, 1), Update(0, -1), Update(1, 1), Update(1, -1)]
        # After full deletion F1(f)=0 < F1(h)/alpha.
        assert not check_bounded_deletion(ups, alpha=2.0, p=1.0)
        with pytest.raises(StreamValidationError):
            validate_bounded_deletion(ups, alpha=2.0)

    def test_function_trajectory(self):
        ups = distinct_ramp_stream(100, 10)
        traj = function_trajectory(ups, lambda f: f.f0())
        assert traj == [float(i + 1) for i in range(10)]
