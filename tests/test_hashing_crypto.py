"""Tests for the random oracle, PRF, and Feistel PRP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.feistel import FeistelPermutation
from repro.hashing.prf import PRF
from repro.hashing.random_oracle import RandomOracle


class TestRandomOracle:
    def test_deterministic(self):
        o1, o2 = RandomOracle(42), RandomOracle(42)
        for x in (-5, 0, 1, 2**40):
            assert o1.query_int(x) == o2.query_int(x)

    def test_different_seeds_differ(self):
        assert RandomOracle(1).query_int(7) != RandomOracle(2).query_int(7)

    def test_bounded_domain(self):
        o = RandomOracle(3)
        for x in range(200):
            assert 0 <= o.query_int(x, domain=17) < 17

    def test_bounded_roughly_uniform(self):
        o = RandomOracle(4)
        counts = np.bincount(
            [o.query_int(x, domain=8) for x in range(4000)], minlength=8
        )
        assert counts.min() > 350 and counts.max() < 650

    def test_unit_interval(self):
        o = RandomOracle(5)
        us = [o.query_unit(x) for x in range(1000)]
        assert all(0.0 <= u < 1.0 for u in us)
        assert 0.4 < float(np.mean(us)) < 0.6

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            RandomOracle(0).query_int(1, domain=0)

    def test_query_bytes_expansion(self):
        o = RandomOracle(6)
        blob = o.query_bytes(b"x", nbytes=100)
        assert len(blob) == 100
        # Prefix property: shorter reads agree with longer ones.
        assert o.query_bytes(b"x", nbytes=10) == blob[:10]

    def test_free_space(self):
        assert RandomOracle(0).space_bits() == 0


class TestPRF:
    def test_deterministic_per_key(self):
        p1 = PRF(b"0123456789abcdef")
        p2 = PRF(b"0123456789abcdef")
        assert p1.evaluate(99) == p2.evaluate(99)

    def test_key_separation(self):
        assert PRF(b"0123456789abcdef").evaluate(5) != PRF(
            b"fedcba9876543210"
        ).evaluate(5)

    def test_tweak_separation(self):
        p = PRF(b"0123456789abcdef")
        assert p.evaluate(5, tweak=b"a") != p.evaluate(5, tweak=b"b")

    def test_mod_range(self):
        p = PRF(b"0123456789abcdef")
        assert all(0 <= p.evaluate_mod(x, 13) < 13 for x in range(100))

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            PRF(b"short")

    def test_space_is_key_length(self):
        assert PRF(b"0123456789abcdef").space_bits() == 128

    def test_from_seed(self):
        p = PRF.from_seed(np.random.default_rng(0), key_bits=128)
        assert p.space_bits() == 128


class TestFeistelPermutation:
    @given(st.integers(min_value=2, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_is_a_permutation(self, n):
        perm = FeistelPermutation.from_seed(n, np.random.default_rng(n))
        images = [perm.forward(x) for x in range(n)]
        assert sorted(images) == list(range(n))

    def test_inverse(self):
        n = 1000
        perm = FeistelPermutation.from_seed(n, np.random.default_rng(1))
        for x in range(0, n, 37):
            assert perm.inverse(perm.forward(x)) == x

    def test_out_of_domain_rejected(self):
        perm = FeistelPermutation.from_seed(100, np.random.default_rng(2))
        with pytest.raises(ValueError):
            perm.forward(100)
        with pytest.raises(ValueError):
            perm.inverse(-1)

    def test_looks_shuffled(self):
        n = 4096
        perm = FeistelPermutation.from_seed(n, np.random.default_rng(3))
        images = [perm.forward(x) for x in range(64)]
        # Consecutive inputs should not map to consecutive outputs.
        diffs = [abs(images[i + 1] - images[i]) for i in range(63)]
        assert float(np.median(diffs)) > 64

    def test_too_few_rounds_rejected(self):
        with pytest.raises(ValueError):
            FeistelPermutation(16, PRF(b"0123456789abcdef"), rounds=2)

    def test_tiny_domain_rejected(self):
        with pytest.raises(ValueError):
            FeistelPermutation(1, PRF(b"0123456789abcdef"))

    def test_space_is_key(self):
        perm = FeistelPermutation.from_seed(50, np.random.default_rng(4))
        assert perm.space_bits() == 128
