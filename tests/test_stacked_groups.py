"""Stacked copy groups: bit-for-bit equivalence with the per-object path.

The ISSUE 6 tentpole restructures :class:`~repro.core.copies.CopyManager`
so homogeneous copy groups hold their array state as one stacked NumPy
block and every bulk feed/probe runs as a single kernel over the stack —
one shared hash pass per chunk for all k copies.  The load-bearing claim
is that this is a pure execution-strategy change: published outputs,
switch counts, and every intermediate table are **bit-for-bit identical**
to the per-object twin (``stacked=False``).

Layers under test:

* kernel level — ``poly_eval_stacked`` / ``hash_many_stacked`` /
  ``sign_many_stacked`` against their per-hash counterparts;
* sketch level — each :class:`~repro.sketches.stacking.SketchStack`
  (CountMin, CountSketch, AMS) against per-object ``update_batch``,
  including subrange preps, save/restore, install, and detach;
* manager level — stacking eligibility rules and the ndarray
  ``estimate_all`` contract;
* protocol level (Hypothesis) — whole switching estimators, stacked vs
  twin, across per-item / chunked / SerialEngine / ProcessEngine, with
  restart rings, DP budget-exhaustion refreshes, and difference-ladder
  tier refreshes forcing mid-stream retirement through the stacks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bands import MultiplicativeBand
from repro.core.copies import CopyManager
from repro.core.disciplines import (
    ActiveCopyDiscipline,
    DifferenceAggregateDiscipline,
    PrivateAggregateDiscipline,
)
from repro.core.ladder import DifferenceLadder, LadderTier
from repro.core.sketch_switching import SwitchingEstimator
from repro.engine import ProcessEngine, SerialEngine, fork_available
from repro.hashing.field import poly_eval_stacked, poly_eval_vec
from repro.hashing.kwise import (
    KWiseHash,
    KWiseSignHash,
    hash_many_stacked,
    sign_many_stacked,
    stack_coefficients,
)
from repro.sketches.ams import AMSSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kmv import KMVSketch

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process engine requires the fork start method"
)


# ----------------------------------------------------------------------
# Kernel level
# ----------------------------------------------------------------------


class TestStackedHashKernels:
    def test_poly_eval_stacked_matches_per_poly(self):
        rng = np.random.default_rng(0)
        hashes = [KWiseHash(3, np.random.default_rng(i), out_bits=61)
                  for i in range(6)]
        xs = rng.integers(0, 1 << 50, size=513).astype(np.uint64)
        coeffs = stack_coefficients(hashes)
        stacked = poly_eval_stacked(coeffs, xs)
        for i in range(len(hashes)):
            assert np.array_equal(
                stacked[i], poly_eval_vec(list(coeffs[i]), xs)
            )

    def test_hash_many_stacked_matches_each_hash(self):
        rng = np.random.default_rng(1)
        hashes = [KWiseHash(2, np.random.default_rng(10 + i), out_bits=61)
                  for i in range(9)]
        xs = rng.integers(0, 1 << 40, size=300).astype(np.uint64)
        stacked = hash_many_stacked(hashes, xs)
        for i, h in enumerate(hashes):
            assert np.array_equal(stacked[i], h.hash_many(xs))

    def test_sign_many_stacked_matches_each_sign(self):
        rng = np.random.default_rng(2)
        signs = [KWiseSignHash(4, np.random.default_rng(20 + i))
                 for i in range(5)]
        xs = rng.integers(0, 1 << 32, size=257).astype(np.uint64)
        stacked = sign_many_stacked(signs, xs)
        for i, s in enumerate(signs):
            assert np.array_equal(stacked[i], s.sign_many(xs))

    def test_stack_coefficients_rejects_mixed_degree(self):
        a = KWiseHash(2, np.random.default_rng(0), out_bits=61)
        b = KWiseHash(4, np.random.default_rng(1), out_bits=61)
        with pytest.raises(ValueError):
            stack_coefficients([a, b])


# ----------------------------------------------------------------------
# Sketch level
# ----------------------------------------------------------------------


def _twins(cls, args, k, seed0=100, **kwargs):
    """Two identically-seeded copy lists: one stacked, one per-object."""
    obj = [cls(*args, np.random.default_rng(seed0 + i), **kwargs)
           for i in range(k)]
    stk = [cls(*args, np.random.default_rng(seed0 + i), **kwargs)
           for i in range(k)]
    return obj, cls.make_stack(stk)


STACKED_CASES = [
    (CountMinSketch, (32, 4), {}),
    (CountSketch, (32, 5), {}),
    (CountSketch, (32, 5), {"track_candidates": 4}),
    (AMSSketch, (6, 3), {}),
]


def _state(sketch):
    if isinstance(sketch, CountMinSketch):
        return sketch._table
    if isinstance(sketch, CountSketch):
        return sketch._table
    return sketch._y


class TestSketchStacks:
    @pytest.mark.parametrize("cls,args,kwargs", STACKED_CASES)
    def test_feed_matches_update_batch(self, cls, args, kwargs):
        rng = np.random.default_rng(7)
        items = rng.integers(0, 100, size=3000).astype(np.int64)
        obj, stack = _twins(cls, args, 4, **kwargs)
        stack.feed(stack.prepare(items, None), range(4))
        for o in obj:
            o.update_batch(items)
        for i in range(4):
            assert np.array_equal(_state(obj[i]), _state(stack.sketches[i]))
            assert obj[i].query() == stack.sketches[i].query()
        assert np.array_equal(
            stack.query_all(),
            np.array([o.query() for o in obj], dtype=np.float64),
        )

    @pytest.mark.parametrize("cls,args,kwargs", STACKED_CASES)
    def test_partial_plane_feed(self, cls, args, kwargs):
        rng = np.random.default_rng(8)
        items = rng.integers(0, 64, size=500).astype(np.int64)
        obj, stack = _twins(cls, args, 4, **kwargs)
        stack.feed(stack.prepare(items, None), [1, 3])
        obj[1].update_batch(items)
        obj[3].update_batch(items)
        for i in range(4):
            assert np.array_equal(_state(obj[i]), _state(stack.sketches[i]))

    @pytest.mark.parametrize("cls,args,kwargs", STACKED_CASES)
    def test_subset_prep_matches_fresh_prepare(self, cls, args, kwargs):
        rng = np.random.default_rng(9)
        items = rng.integers(0, 80, size=1000).astype(np.int64)
        lo, hi = 117, 803
        obj, stack = _twins(cls, args, 3, **kwargs)
        full = stack.prepare(items, None)
        stack.feed(stack.subset(full, items[lo:hi], None), range(3))
        _, fresh_stack = _twins(cls, args, 3, **kwargs)
        fresh_stack.feed(fresh_stack.prepare(items[lo:hi], None), range(3))
        for i in range(3):
            assert np.array_equal(
                _state(stack.sketches[i]), _state(fresh_stack.sketches[i])
            )

    @pytest.mark.parametrize("cls,args,kwargs", STACKED_CASES)
    def test_save_restore_roundtrip(self, cls, args, kwargs):
        rng = np.random.default_rng(10)
        items = rng.integers(0, 64, size=400).astype(np.int64)
        _, stack = _twins(cls, args, 4, **kwargs)
        stack.feed(stack.prepare(items, None), range(4))
        before = [_state(s).copy() for s in stack.sketches]
        queries = [s.query() for s in stack.sketches]
        saved = stack.save([0, 2])
        stack.feed(stack.prepare(items, None), [0, 2])
        stack.restore(saved)
        for i in range(4):
            assert np.array_equal(_state(stack.sketches[i]), before[i])
            assert stack.sketches[i].query() == queries[i]

    @pytest.mark.parametrize("cls,args,kwargs", STACKED_CASES)
    def test_install_rebinding(self, cls, args, kwargs):
        rng = np.random.default_rng(11)
        items = rng.integers(0, 64, size=300).astype(np.int64)
        _, stack = _twins(cls, args, 3, **kwargs)
        stack.feed(stack.prepare(items, None), range(3))
        fresh = cls(*args, np.random.default_rng(999), **kwargs)
        stack.install(1, fresh)
        assert stack.sketches[1] is fresh
        assert np.shares_memory(_state(fresh), stack.tables
                                if hasattr(stack, "tables") else stack.ys)
        # Feeding through the stack reaches the installed copy's plane.
        stack.feed(stack.prepare(items, None), [1])
        twin = cls(*args, np.random.default_rng(999), **kwargs)
        twin.update_batch(items)
        assert np.array_equal(_state(fresh), _state(twin))

    @pytest.mark.parametrize("cls,args,kwargs", STACKED_CASES)
    def test_detach_gives_templates_ownership(self, cls, args, kwargs):
        rng = np.random.default_rng(12)
        items = rng.integers(0, 64, size=300).astype(np.int64)
        _, stack = _twins(cls, args, 3, **kwargs)
        stack.feed(stack.prepare(items, None), range(3))
        states = [_state(s).copy() for s in stack.sketches]
        sketches = list(stack.sketches)
        stack.detach()
        block = stack.tables if hasattr(stack, "tables") else stack.ys
        for i, s in enumerate(sketches):
            assert np.array_equal(_state(s), states[i])
            assert not np.shares_memory(_state(s), block)


# ----------------------------------------------------------------------
# Manager level
# ----------------------------------------------------------------------


class TestCopyManagerStacking:
    def test_homogeneous_group_stacks(self):
        mgr = CopyManager(
            lambda r: CountMinSketch(16, 3, r), 5, np.random.default_rng(0)
        )
        assert mgr.stacks and 0 in mgr.stacks

    def test_stacked_false_disables(self):
        mgr = CopyManager(
            lambda r: CountMinSketch(16, 3, r), 5,
            np.random.default_rng(0), stacked=False,
        )
        assert not mgr.stacks

    def test_unstackable_sketch_keeps_object_path(self):
        mgr = CopyManager(
            lambda r: KMVSketch(16, r), 5, np.random.default_rng(0)
        )
        assert not mgr.stacks

    def test_single_copy_group_not_stacked(self):
        mgr = CopyManager.grouped(
            [(lambda r: CountMinSketch(16, 3, r), 1),
             (lambda r: KMVSketch(16, r), 2)],
            np.random.default_rng(0),
        )
        assert not mgr.stacks

    def test_estimate_all_is_ndarray_on_both_paths(self):
        for stacked in (True, False):
            mgr = CopyManager(
                lambda r: CountMinSketch(16, 3, r), 4,
                np.random.default_rng(0), stacked=stacked,
            )
            ys = mgr.estimate_all()
            assert isinstance(ys, np.ndarray) and ys.dtype == np.float64
            assert len(ys) == 4
            sub = mgr.estimate_all((2, 0))
            assert isinstance(sub, np.ndarray) and len(sub) == 2
            assert sub[0] == ys[2] and sub[1] == ys[0]

    def test_unstack_restack_roundtrip(self):
        mgr = CopyManager(
            lambda r: CountMinSketch(16, 3, r), 4, np.random.default_rng(0)
        )
        items = np.arange(50, dtype=np.int64)
        for s in mgr.sketches:
            s.update_batch(items)
        tables = [s._table.copy() for s in mgr.sketches]
        mgr.unstack()
        assert not mgr.stacks
        for s, t in zip(mgr.sketches, tables):
            assert np.array_equal(s._table, t)
        mgr.restack()
        assert mgr.stacks
        for s, t in zip(mgr.sketches, tables):
            assert np.array_equal(s._table, t)


# ----------------------------------------------------------------------
# Protocol level: stacked estimator vs per-object twin (Hypothesis)
# ----------------------------------------------------------------------


def _cs_estimator(stacked, budget=None):
    return SwitchingEstimator(
        factory=lambda rng: CountSketch(24, 3, rng, track_candidates=0),
        copies=5, rng=np.random.default_rng(42),
        band=MultiplicativeBand(0.4),
        discipline=PrivateAggregateDiscipline(
            noise_scale=0.02, switch_budget=budget, on_exhausted="retire"
        ),
        stacked=stacked,
    )


def _cm_ring(stacked):
    return SwitchingEstimator(
        factory=lambda rng: CountMinSketch(24, 3, rng),
        copies=5, rng=np.random.default_rng(42),
        band=MultiplicativeBand(0.4),
        discipline=ActiveCopyDiscipline(), restart=True,
        stacked=stacked,
    )


def _ladder_estimator(stacked):
    ladder = DifferenceLadder([
        LadderTier(copies=2, noise_scale=0.1, capacity=3, span=0.35),
        LadderTier(copies=2, noise_scale=0.05, capacity=2, span=0.7),
    ])
    fac = lambda rng: AMSSketch(4, 3, rng)
    manager = CopyManager.grouped(
        [(fac, 2), (fac, 2), (fac, 4)],
        np.random.default_rng(42), stacked=stacked,
    )
    return SwitchingEstimator(
        copies=manager, band=MultiplicativeBand(0.4),
        discipline=DifferenceAggregateDiscipline(
            ladder=ladder, noise_scale=0.05, on_exhausted="retire"
        ),
        stacked=stacked,
    )


def _trace_chunked(est, items, chunk):
    trace = []
    for lo in range(0, len(items), chunk):
        est.update_chunk(np.asarray(items[lo:lo + chunk], dtype=np.int64))
        trace.append((est.query(), est.switches))
    return trace


def _trace_engine(est, items, chunk, engine):
    trace = []
    with engine.session(est) as session:
        for lo in range(0, len(items), chunk):
            session.feed(np.asarray(items[lo:lo + chunk], dtype=np.int64))
            trace.append((session.query(), est.switches))
    return trace


def _trace_per_item(est, items):
    trace = []
    for item in items:
        est.process_update(int(item), 1)
    trace.append((est.query(), est.switches))
    return trace


class TestStackedTwinEquivalence:
    """Stacked vs ``stacked=False`` twin along each execution path.

    Compared *per path* (not across paths): float-state sketches only
    promise cross-path equality up to summation order, but within one
    path the stacked run must be bit-for-bit the object run.
    """

    @settings(max_examples=12, deadline=None)
    @given(
        items=st.lists(st.integers(0, 63), min_size=100, max_size=600),
        chunk=st.sampled_from([37, 128, 250]),
    )
    def test_dp_chunked(self, items, chunk):
        t1 = _trace_chunked(_cs_estimator(True), items, chunk)
        t0 = _trace_chunked(_cs_estimator(False), items, chunk)
        assert t1 == t0

    @settings(max_examples=8, deadline=None)
    @given(items=st.lists(st.integers(0, 63), min_size=50, max_size=300))
    def test_dp_per_item(self, items):
        t1 = _trace_per_item(_cs_estimator(True), items)
        t0 = _trace_per_item(_cs_estimator(False), items)
        assert t1 == t0

    @settings(max_examples=10, deadline=None)
    @given(
        items=st.lists(st.integers(0, 63), min_size=100, max_size=600),
        chunk=st.sampled_from([64, 200]),
    )
    def test_dp_serial_engine(self, items, chunk):
        t1 = _trace_engine(_cs_estimator(True), items, chunk, SerialEngine())
        t0 = _trace_engine(_cs_estimator(False), items, chunk, SerialEngine())
        assert t1 == t0

    @needs_fork
    @settings(max_examples=4, deadline=None)
    @given(
        items=st.lists(st.integers(0, 63), min_size=100, max_size=400),
        chunk=st.sampled_from([64, 200]),
    )
    def test_dp_process_engine(self, items, chunk):
        engine = ProcessEngine(workers=2)
        t1 = _trace_engine(_cs_estimator(True), items, chunk, engine)
        t0 = _trace_engine(_cs_estimator(False), items, chunk, engine)
        assert t1 == t0
        # Serial-engine agreement too: the workers ran the object path,
        # so this pins the unstack-before-fork / restack-after-collect
        # lifecycle.
        t2 = _trace_engine(_cs_estimator(True), items, chunk, SerialEngine())
        assert t1 == t2

    @settings(max_examples=10, deadline=None)
    @given(
        items=st.lists(st.integers(0, 63), min_size=200, max_size=800),
        chunk=st.sampled_from([50, 160, 320]),
    )
    def test_dp_budget_refresh_mid_stream(self, items, chunk):
        """A tiny SVT budget forces whole-copy-set retirement (every
        plane reseeded through ``CopyManager.install``) mid-stream."""
        a = _cs_estimator(True, budget=2)
        b = _cs_estimator(False, budget=2)
        t1 = _trace_chunked(a, items, chunk)
        t0 = _trace_chunked(b, items, chunk)
        assert t1 == t0
        assert a.discipline.generations == b.discipline.generations

    @settings(max_examples=12, deadline=None)
    @given(
        items=st.lists(st.integers(0, 63), min_size=100, max_size=600),
        chunk=st.sampled_from([48, 130, 260]),
    )
    def test_restart_ring_chunked(self, items, chunk):
        t1 = _trace_chunked(_cm_ring(True), items, chunk)
        t0 = _trace_chunked(_cm_ring(False), items, chunk)
        assert t1 == t0

    @settings(max_examples=8, deadline=None)
    @given(
        items=st.lists(st.integers(0, 31), min_size=150, max_size=600),
        chunk=st.sampled_from([64, 220]),
    )
    def test_difference_ladder_chunked(self, items, chunk):
        """Grouped AMS manager under the difference ladder: tier-group
        refreshes and strong checkpoints run through three stacks."""
        a = _ladder_estimator(True)
        b = _ladder_estimator(False)
        t1 = _trace_chunked(a, items, chunk)
        t0 = _trace_chunked(b, items, chunk)
        assert t1 == t0
        assert a.discipline.strong_charges == b.discipline.strong_charges

    @settings(max_examples=6, deadline=None)
    @given(
        items=st.lists(st.integers(0, 31), min_size=150, max_size=500),
        chunk=st.sampled_from([64, 200]),
    )
    def test_difference_ladder_serial_engine(self, items, chunk):
        t1 = _trace_engine(_ladder_estimator(True), items, chunk,
                           SerialEngine())
        t0 = _trace_engine(_ladder_estimator(False), items, chunk,
                           SerialEngine())
        assert t1 == t0
