"""Tests for the strong-tracking wrappers (union bound, median amplification)."""

import numpy as np
import pytest

from repro.core.tracking import MedianTracker, median_copies, union_bound_delta
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch


class _NoisySketch(Sketch):
    """Test double: exact counter plus a fixed multiplicative bias.

    A fraction of instances are 'bad' (large bias); the median over copies
    must suppress them.
    """

    supports_deletions = True

    def __init__(self, rng: np.random.Generator, bad_rate: float = 0.4):
        self._count = 0
        self._bias = 3.0 if rng.random() < bad_rate else 1.0 + rng.normal(0, 0.02)

    def update(self, item: int, delta: int = 1) -> None:
        self._count += delta

    def query(self) -> float:
        return self._count * self._bias

    def space_bits(self) -> int:
        return 64


class TestUnionBoundDelta:
    def test_divides_by_m(self):
        assert union_bound_delta(0.1, 100) == pytest.approx(0.001)

    def test_invalid(self):
        with pytest.raises(ValueError):
            union_bound_delta(0.0, 10)
        with pytest.raises(ValueError):
            union_bound_delta(0.1, 0)


class TestMedianCopies:
    def test_more_copies_for_smaller_delta(self):
        assert median_copies(1e-6) > median_copies(1e-2)

    def test_always_odd(self):
        for delta in (0.3, 0.01, 1e-5):
            assert median_copies(delta) % 2 == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            median_copies(0.0)
        with pytest.raises(ValueError):
            median_copies(0.1, base_failure=0.6)


class TestMedianTracker:
    def test_suppresses_bad_copies(self):
        tracker = MedianTracker(
            lambda r: _NoisySketch(r), copies=15, rng=np.random.default_rng(0)
        )
        for _ in range(100):
            tracker.update(0, 1)
        assert tracker.query() == pytest.approx(100.0, rel=0.1)

    def test_single_copy_passthrough(self):
        tracker = MedianTracker(
            lambda r: KMVSketch(16, r), copies=1, rng=np.random.default_rng(1)
        )
        for i in range(10):
            tracker.update(i)
        assert tracker.query() == 10.0

    def test_supports_deletions_inherited(self):
        turnstile = MedianTracker(
            lambda r: _NoisySketch(r), copies=3, rng=np.random.default_rng(2)
        )
        assert turnstile.supports_deletions
        insertion_only = MedianTracker(
            lambda r: KMVSketch(4, r), copies=3, rng=np.random.default_rng(3)
        )
        assert not insertion_only.supports_deletions

    def test_space_sums_copies(self):
        tracker = MedianTracker(
            lambda r: _NoisySketch(r), copies=7, rng=np.random.default_rng(4)
        )
        assert tracker.space_bits() == 7 * 64

    def test_copies_independent(self):
        tracker = MedianTracker(
            lambda r: KMVSketch(8, r), copies=5, rng=np.random.default_rng(5)
        )
        fingerprints = set()
        for s in tracker._sketches:
            for i in range(50):
                s.update(i)
            fingerprints.add(s.state_fingerprint())
        # Independent hash functions -> different bottom-k states.
        assert len(fingerprints) == 5

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            MedianTracker(lambda r: _NoisySketch(r), copies=0,
                          rng=np.random.default_rng(0))
