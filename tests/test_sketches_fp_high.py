"""Tests for the p > 2 level-set subsampling estimator."""

import numpy as np
import pytest

from repro.sketches.fp_high import HighMomentSketch
from repro.streams.frequency import FrequencyVector


def _zipf_stream(n, m, seed, s=1.6):
    rng = np.random.default_rng(seed)
    w = 1.0 / np.arange(1, n + 1) ** s
    w /= w.sum()
    return [int(x) for x in rng.choice(n, size=m, p=w)]


class TestHighMomentSketch:
    def test_skewed_stream_accuracy(self):
        """On skewed data (the high-moment use case) F3 is recovered well."""
        errors = []
        for seed in range(5):
            sketch = HighMomentSketch.for_accuracy(
                3.0, n=512, eps=0.25, rng=np.random.default_rng(seed)
            )
            truth = FrequencyVector()
            for item in _zipf_stream(512, 4000, 100 + seed):
                sketch.update(item)
                truth.update(item)
            errors.append(abs(sketch.query() - truth.fp(3)) / truth.fp(3))
        assert float(np.median(errors)) < 0.35

    def test_single_heavy_item(self):
        sketch = HighMomentSketch(3.0, n=256, width=64, rows=5,
                                  rng=np.random.default_rng(6))
        sketch.update(7, 100)
        assert sketch.query() == pytest.approx(100.0**3, rel=0.2)

    def test_norm_query(self):
        sketch = HighMomentSketch(4.0, n=128, width=64, rows=5,
                                  rng=np.random.default_rng(7))
        sketch.update(3, 10)
        assert sketch.query_norm() == pytest.approx(10.0, rel=0.2)

    def test_empty(self):
        sketch = HighMomentSketch(3.0, n=64, width=16, rows=3,
                                  rng=np.random.default_rng(8))
        assert sketch.query() == 0.0

    def test_space_shape(self):
        """Width scales as n^{1-2/p}: doubling n grows space sublinearly."""
        small = HighMomentSketch.for_accuracy(3.0, n=256, eps=0.3,
                                              rng=np.random.default_rng(9))
        large = HighMomentSketch.for_accuracy(3.0, n=4096, eps=0.3,
                                              rng=np.random.default_rng(9))
        ratio = large.space_bits() / small.space_bits()
        assert ratio < 16  # far below the 16x of linear scaling in n

    def test_rejects_deletions(self):
        sketch = HighMomentSketch(3.0, n=64, width=16, rows=3,
                                  rng=np.random.default_rng(10))
        with pytest.raises(ValueError):
            sketch.update(1, -1)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            HighMomentSketch(2.0, n=64, width=16, rows=3,
                             rng=np.random.default_rng(0))
