"""Tests for the band-policy / copy-manager layering of the switching core.

The tentpole contract: one switching protocol, parameterized by a
:class:`~repro.core.bands.BandPolicy` (the band test, the publication
rounding, the bisect-comparability rule) and a
:class:`~repro.core.copies.CopyManager` (allocation, burn, restart ring,
replacement RNGs).  These tests pin each policy against the legacy
formulas it replaced and the manager against the Algorithm 1 /
Theorem 4.1 lifecycles.
"""

import pickle

import numpy as np
import pytest

from repro.core.bands import (
    AdditiveBand,
    EpochBand,
    L2Band,
    MultiplicativeBand,
    relative_within,
)
from repro.core.copies import CopyManager, SketchExhaustedError
from repro.core.rounding import RoundedSequence, round_to_power
from repro.core.sketch_switching import (
    AdditiveSwitchingEstimator,
    SketchSwitchingEstimator,
    SwitchingEstimator,
    within_band,
)
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch


class _ExactCounter(Sketch):
    supports_deletions = True

    def __init__(self, rng=None):
        self._count = 0.0

    def update(self, item: int, delta: int = 1) -> None:
        self._count += delta

    def query(self) -> float:
        return self._count

    def space_bits(self) -> int:
        return 64


class TestMultiplicativeBand:
    def test_matches_legacy_within_band(self):
        band = MultiplicativeBand(0.3)
        rng = np.random.default_rng(0)
        for _ in range(200):
            published = float(rng.uniform(-50, 50))
            estimate = float(rng.uniform(-50, 50))
            assert band.within(published, estimate) == within_band(
                published, estimate, 0.3
            )
            assert band.crossed(published, estimate) != band.within(
                published, estimate
            )

    def test_publish_matches_legacy_rounding(self):
        band = MultiplicativeBand(0.4)
        assert band.publish(0.0) == 0.0
        for y in (0.3, 1.0, 17.2, -5.5, 1e6):
            assert band.publish(y) == round_to_power(y, 0.2)

    def test_validation(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                MultiplicativeBand(bad)

    def test_flags_and_pickling(self):
        band = MultiplicativeBand(0.25)
        assert band.name == "multiplicative"
        assert band.bisectable
        clone = pickle.loads(pickle.dumps(band))
        assert clone == band and clone.within(1.0, 1.1)


class TestAdditiveBand:
    def test_band_and_rounding(self):
        band = AdditiveBand(0.4)
        assert band.within(2.0, 2.19)
        assert band.within(2.0, 1.81)
        assert not band.within(2.0, 2.25)
        # publication rounds to multiples of eps/2
        assert band.publish(2.09) == pytest.approx(2.0)
        assert band.publish(2.11) == pytest.approx(2.2)
        assert band.publish(0.0) == 0.0

    def test_validation_and_flags(self):
        with pytest.raises(ValueError):
            AdditiveBand(0.0)
        with pytest.raises(ValueError):
            AdditiveBand(-1.0)
        band = AdditiveBand(2.0)  # eps >= 1 is legal additively
        assert band.name == "additive"
        assert not band.bisectable


class TestEpochBand:
    def test_none_published_always_crosses(self):
        band = EpochBand(0.2)
        assert band.crossed(None, 5.0)
        assert band.crossed(None, 0.0)

    def test_reproduces_rounded_sequence(self):
        """The epoch band is Definition 3.1's stateful rounding, stateless."""
        eps = 0.15
        band = EpochBand(eps)
        rounder = RoundedSequence(eps)
        rng = np.random.default_rng(3)
        published = None
        walk = np.cumsum(rng.uniform(0.0, 2.0, size=300)) + 1.0
        for y in walk.tolist():
            if band.crossed(published, y):
                published = band.publish(y)
            assert published == rounder.push(y)

    def test_l2_alias(self):
        assert L2Band is EpochBand
        assert EpochBand(0.3).name == "epoch"

    def test_validation(self):
        with pytest.raises(ValueError):
            EpochBand(0.0)


class TestRelativeWithin:
    def test_sign_aware(self):
        assert relative_within(-1.0, -1.05, 0.1)
        assert not relative_within(1.0, -1.0, 0.5)
        assert relative_within(0.0, 0.0, 0.2)


class TestCopyManager:
    def _mgr(self, copies=4, **kwargs):
        return CopyManager(
            lambda r: _ExactCounter(), copies, np.random.default_rng(0),
            **kwargs,
        )

    def test_allocation_and_active(self):
        mgr = self._mgr(5)
        assert mgr.count == 5
        assert mgr.active_index == 0
        assert mgr.active is mgr.sketches[0]

    def test_plain_advance_walks_and_raises(self):
        mgr = self._mgr(3)
        mgr.advance(1)
        mgr.advance(2)
        assert mgr.active_index == 2
        with pytest.raises(SketchExhaustedError, match="flip-number budget"):
            mgr.advance(3)

    def test_clamp_keeps_last(self):
        mgr = self._mgr(2, on_exhausted="clamp")
        mgr.advance(1)
        mgr.advance(2)  # must not raise
        assert mgr.active_index == 1

    def test_restart_replaces_burned_slot(self):
        mgr = self._mgr(3, restart=True)
        first = mgr.sketches[0]
        mgr.advance(1)
        assert mgr.sketches[0] is not first
        assert mgr.active_index == 1

    def test_restart_replace_hook_builds_elsewhere(self):
        mgr = self._mgr(3, restart=True)
        built = []
        mgr.advance(1, replace=lambda idx, rng: built.append((idx, rng)))
        assert built and built[0][0] == 0
        assert isinstance(built[0][1], np.random.Generator)

    def test_replacement_rng_sequence_is_deterministic(self):
        draws_a = [
            g.integers(0, 2**32)
            for g in (self._mgr().replacement_rng() for _ in range(3))
        ]
        draws_b = [
            g.integers(0, 2**32)
            for g in (self._mgr().replacement_rng() for _ in range(3))
        ]
        # A fresh manager restarts the fresh pool: first draws agree.
        assert draws_a[0] == draws_b[0]

    def test_seeding_matches_switching_estimator(self):
        """The manager's spawn pass is the one the estimators always used."""
        mgr = CopyManager(
            lambda r: KMVSketch(32, r), 4, np.random.default_rng(9)
        )
        est = SketchSwitchingEstimator(
            lambda r: KMVSketch(32, r), 4, 0.3, np.random.default_rng(9)
        )
        for a, b in zip(mgr.sketches, est._sketches):
            assert a.state_fingerprint() == b.state_fingerprint()

    def test_validation(self):
        with pytest.raises(ValueError):
            self._mgr(0)
        with pytest.raises(ValueError):
            self._mgr(2, on_exhausted="explode")


class TestGenericSwitchingEstimator:
    def test_band_keyword_drives_the_protocol(self):
        a = SwitchingEstimator(
            lambda r: _ExactCounter(), 64, rng=np.random.default_rng(1),
            band=MultiplicativeBand(0.2),
        )
        b = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), 64, 0.2, np.random.default_rng(1)
        )
        for t in range(500):
            a.update(0, 1)
            b.update(0, 1)
        assert a.query() == b.query()
        assert a.switches == b.switches

    def test_aliases_are_generic_subclasses(self):
        assert issubclass(SketchSwitchingEstimator, SwitchingEstimator)
        assert issubclass(AdditiveSwitchingEstimator, SwitchingEstimator)
        add = AdditiveSwitchingEstimator(
            lambda r: _ExactCounter(), 4, 0.5, np.random.default_rng(0)
        )
        assert add.band == AdditiveBand(0.5)
        mult = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), 4, 0.5, np.random.default_rng(0)
        )
        assert mult.band == MultiplicativeBand(0.5)

    def test_prebuilt_copy_manager(self):
        mgr = CopyManager(
            lambda r: _ExactCounter(), 8, np.random.default_rng(2)
        )
        est = SwitchingEstimator(copies=mgr, band=MultiplicativeBand(0.3))
        assert est.copies == 8
        assert est._copies is mgr
        est.update(1, 1)
        assert est.query() > 0

    def test_epoch_band_estimator_runs(self):
        # The generic estimator accepts any policy — an EpochBand-driven
        # counter publishes Definition 3.1 roundings of the count.
        est = SwitchingEstimator(
            lambda r: _ExactCounter(), 200, rng=np.random.default_rng(4),
            band=EpochBand(0.5),
        )
        for t in range(1, 300):
            out = est.process_update(0, 1)
            assert relative_within(out, float(t), 0.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="band policy or an eps"):
            SwitchingEstimator(lambda r: _ExactCounter(), 4,
                               rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="factory/copies/rng"):
            SwitchingEstimator(band=MultiplicativeBand(0.2))
        with pytest.raises(ValueError):
            SwitchingEstimator(lambda r: _ExactCounter(), 0, 0.2,
                               np.random.default_rng(0))

    def test_eps_mirrors_band(self):
        est = SwitchingEstimator(
            lambda r: _ExactCounter(), 4, rng=np.random.default_rng(0),
            band=AdditiveBand(0.7),
        )
        assert est.eps == 0.7
