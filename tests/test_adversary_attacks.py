"""Tests for the extension attacks (CountMin inflation, estimate probing)."""

import numpy as np
import pytest

from repro.adversary.attacks import (
    CountMinInflationAttack,
    EstimateProbingAdversary,
    VictimPointQueryGame,
)
from repro.sketches.countmin import CountMinSketch
from repro.sketches.exact import ExactHeavyHitters


class TestCountMinInflation:
    def test_inflates_victim_estimate(self):
        """Adaptive collisions blow up the victim's CountMin estimate."""
        cm = CountMinSketch(width=32, rows=3, rng=np.random.default_rng(0))
        adv = CountMinInflationAttack(
            victim=0, n=10_000, rng=np.random.default_rng(1), hammer=64
        )
        game = VictimPointQueryGame(victim=0, threshold_factor=5.0)
        fooled_at = game.run(cm, adv, max_rounds=6000)
        assert fooled_at is not None

    def test_exact_counter_immune(self):
        """Control: the attack cannot move an exact (deterministic) counter."""
        exact = ExactHeavyHitters(eps=0.5)
        adv = CountMinInflationAttack(
            victim=0, n=10_000, rng=np.random.default_rng(2), hammer=16
        )
        game = VictimPointQueryGame(victim=0, threshold_factor=2.0)
        assert game.run(exact, adv, max_rounds=2000) is None

    def test_invalid_hammer(self):
        with pytest.raises(ValueError):
            CountMinInflationAttack(0, 10, np.random.default_rng(0), hammer=0)


class TestEstimateProbing:
    def test_produces_valid_stream(self):
        adv = EstimateProbingAdversary(1000, np.random.default_rng(3))
        last = None
        items = []
        for t in range(500):
            u = adv.next_update(t, last)
            assert 0 <= u.item < 1000 and u.delta == 1
            items.append(u.item)
            last = float(len(set(items)))  # play a perfect estimator
        assert len(set(items)) > 100  # it does explore

    def test_reuses_invisible_items(self):
        adv = EstimateProbingAdversary(1000, np.random.default_rng(4), burst=4)
        seen = []
        last = None
        for t in range(400):
            u = adv.next_update(t, last)
            seen.append(u.item)
            # Pretend the estimator never moves: every item looks invisible.
            last = 42.0
        # With a frozen estimate the adversary must have repeated items.
        assert len(set(seen)) < len(seen)
