"""Tests for the exact frequency vector (the adversarial game's referee)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.frequency import FrequencyVector

updates = st.lists(
    st.tuples(st.integers(0, 20), st.integers(-3, 5).filter(lambda d: d != 0)),
    max_size=60,
)


def build(us):
    f = FrequencyVector()
    for item, delta in us:
        f.update(item, delta)
    return f


class TestBasicQueries:
    def test_empty(self):
        f = FrequencyVector()
        assert f.f0() == 0
        assert f.f1() == 0
        assert f.fp(2) == 0
        assert f.shannon_entropy() == 0.0
        assert f.linf() == 0

    def test_simple_counts(self):
        f = build([(1, 1), (1, 1), (2, 1)])
        assert f.f0() == 2
        assert f.f1() == 3
        assert f.fp(2) == 4 + 1
        assert f[1] == 2 and f[2] == 1 and f[3] == 0

    def test_deletion_to_zero_removes_support(self):
        f = build([(5, 2), (5, -2)])
        assert f.f0() == 0
        assert 5 not in f.support

    def test_zero_delta_ignored(self):
        f = FrequencyVector()
        f.update(1, 0)
        assert f.updates_processed == 0

    def test_negative_coordinates_counted_by_abs(self):
        f = build([(1, -3)])
        assert f.f1() == 3
        assert f.fp(2) == 9
        assert f.linf() == 3


class TestMoments:
    @given(updates)
    def test_f0_is_support_size(self, us):
        f = build(us)
        assert f.f0() == len(f.support)

    @given(updates)
    def test_fp_zero_matches_f0(self, us):
        f = build(us)
        assert f.fp(0) == f.f0()

    @given(updates)
    def test_lp_power_consistency(self, us):
        f = build(us)
        assert math.isclose(f.lp(2) ** 2, f.fp(2), rel_tol=1e-9)

    @given(updates)
    def test_monotonicity_of_norms(self, us):
        # |f|_1 >= |f|_2 >= |f|_inf for any vector.
        f = build(us)
        assert f.f1() + 1e-9 >= f.lp(2) >= f.linf() - 1e-9

    def test_invalid_p(self):
        f = FrequencyVector()
        with pytest.raises(ValueError):
            f.fp(-1)
        with pytest.raises(ValueError):
            f.lp(0)


class TestEntropy:
    def test_uniform_distribution(self):
        f = build([(i, 1) for i in range(8)])
        assert math.isclose(f.shannon_entropy(base=2), 3.0, abs_tol=1e-9)

    def test_degenerate_distribution(self):
        f = build([(0, 100)])
        assert f.shannon_entropy() == 0.0

    @given(updates)
    def test_entropy_bounds(self, us):
        f = build(us)
        h = f.shannon_entropy(base=2)
        assert -1e-9 <= h <= math.log2(max(f.f0(), 1)) + 1e-9

    def test_renyi_close_to_shannon_near_one(self):
        f = build([(0, 10), (1, 5), (2, 1)])
        h = f.shannon_entropy(base=2)
        h_renyi = f.renyi_entropy(alpha=1.0001, base=2)
        assert abs(h - h_renyi) < 0.01

    def test_renyi_invalid_alpha(self):
        f = build([(0, 1)])
        with pytest.raises(ValueError):
            f.renyi_entropy(1.0)
        with pytest.raises(ValueError):
            f.renyi_entropy(0.0)


class TestHeavyHitters:
    def test_threshold_selection(self):
        f = build([(0, 10), (1, 5), (2, 1)])
        assert f.heavy_hitters(6) == {0}
        assert f.heavy_hitters(5) == {0, 1}

    def test_l2_guarantee_set(self):
        f = build([(0, 100)] + [(i, 1) for i in range(1, 50)])
        hh = f.l2_heavy_hitters(0.5)
        assert 0 in hh
        assert 1 not in hh


class TestCopy:
    def test_copy_is_independent(self):
        f = build([(0, 1)])
        g = f.copy()
        g.update(1, 1)
        assert f.f0() == 1 and g.f0() == 2

    @given(updates)
    def test_copy_equal_queries(self, us):
        f = build(us)
        g = f.copy()
        assert f.to_dict() == g.to_dict()
        assert f.f1() == g.f1()
