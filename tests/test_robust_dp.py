"""DP-robust wrappers: adversarial survival and tracking accuracy.

The integration claim of ISSUE 4: the per-item adversarial game and the
Algorithm 3 AMS attack run *unchanged* against the DP trackers — they
only ever see published noisy-median aggregates — and the trackers
survive with ``O(sqrt(lambda))`` live copies where plain Algorithm 1
switching provisions ``Theta(lambda)``.
"""

import numpy as np
import pytest

from repro.adversary.ams_attack import run_ams_attack
from repro.adversary.attacks import EstimateProbingAdversary
from repro.adversary.base import RandomAdversary, StaticAdversary
from repro.adversary.game import AdversarialGame, relative_error_judge
from repro.robust.dp import (
    RobustDPDEDistinctElements,
    RobustDPDEF2,
    RobustDPDistinctElements,
    RobustDPF2,
    dpde_strong_budget,
)
from repro.streams.frequency import FrequencyVector
from repro.streams.model import Update


class TestRobustDPDistinct:
    def test_tracks_f0_on_oblivious_stream(self):
        est = RobustDPDistinctElements(
            n=1 << 12, m=20_000, eps=0.3, rng=np.random.default_rng(1)
        )
        items = np.random.default_rng(2).integers(0, 1 << 12, size=20_000)
        est.update_batch(items)
        truth = FrequencyVector()
        truth.update_batch(items)
        assert abs(est.query() - truth.f0()) / truth.f0() <= 0.3

    def test_copy_count_is_sublinear_in_flip_bound(self):
        est = RobustDPDistinctElements(
            n=1 << 14, m=100_000, eps=0.25, rng=np.random.default_rng(0)
        )
        assert est.copies < est.paper_copies_plain / 2
        assert est.budget_state()["switch_budget"] >= est.paper_copies_plain - 4

    @pytest.mark.parametrize("adv_name", ["random", "static-ramp", "probing"])
    def test_adversary_matrix(self, adv_name):
        """The per-item game runs unchanged against the DP tracker."""
        n, m, eps = 1024, 1200, 0.35
        adversaries = {
            "random": RandomAdversary(n, m, np.random.default_rng(21)),
            "static-ramp": StaticAdversary(
                [Update(i % n, 1) for i in range(m)]
            ),
            "probing": EstimateProbingAdversary(
                n, np.random.default_rng(22)
            ),
        }
        algo = RobustDPDistinctElements(
            n=n, m=m, eps=eps, rng=np.random.default_rng(23)
        )
        game = AdversarialGame(lambda f: f.f0(),
                               relative_error_judge(eps), grace_steps=100)
        result = game.run(algo, adversaries[adv_name], max_rounds=m)
        assert not result.failed, adv_name

    def test_budget_spent_matches_switches(self):
        est = RobustDPDistinctElements(
            n=512, m=5_000, eps=0.4, rng=np.random.default_rng(5)
        )
        items = np.random.default_rng(6).integers(0, 512, size=5_000)
        est.update_batch(items)
        state = est.budget_state()
        assert state["publications"] == est.switches
        assert 0.0 < state["budget_spent"] < 1.0
        assert state["generations"] == 0  # compliant stream: no retirement


class TestRobustDPF2:
    def test_survives_ams_attack(self):
        """The headline DP contrast: the same adversary that collapses a
        plain AMS sketch cannot fool the private-aggregate tracker."""
        algo = RobustDPF2(
            n=4096, m=3000, eps=0.4, rng=np.random.default_rng(4),
            copies=12, stable_constant=3.0,
        )
        fooled, _, transcript = run_ams_attack(
            algo, np.random.default_rng(5), max_updates=1000, t=64
        )
        assert not fooled  # never pushed below truth/2
        worst = max(abs(e - g) / g for e, g in transcript if g > 0)
        assert worst <= 0.4
        # ...and no copy was burned doing it: switches were paid from
        # the privacy budget, not the copy set.
        assert algo.budget_state()["generations"] == 0
        assert algo.budget_state()["publications"] == algo.switches

    def test_tracks_f2_on_zipfian(self):
        from repro.streams.generators import zipfian_stream

        ups = zipfian_stream(256, 2000, np.random.default_rng(7))
        algo = RobustDPF2(
            n=256, m=2000, eps=0.4, rng=np.random.default_rng(8),
            copies=12, stable_constant=3.0,
        )
        truth = FrequencyVector()
        worst = 0.0
        for t, u in enumerate(ups):
            truth.update(u.item, u.delta)
            out = algo.process_update(u.item, u.delta)
            if t >= 100:
                worst = max(worst, abs(out - truth.fp(2)) / truth.fp(2))
        assert worst <= 0.4

    def test_retirement_degradation_is_survivable(self):
        """An undersized switch budget retires the copy set mid-stream;
        the tracker recovers as the refreshed copies regrow (monotone F0
        of the remaining suffix converges back into band)."""
        est = RobustDPDistinctElements(
            n=512, m=8_000, eps=0.4, rng=np.random.default_rng(9),
            copies=8, switch_budget=5,
        )
        items = np.random.default_rng(10).integers(0, 512, size=8_000)
        est.update_batch(items)
        assert est.budget_state()["generations"] >= 1

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            RobustDPF2(n=64, m=10, eps=1.5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            RobustDPDistinctElements(
                n=64, m=10, eps=0.0, rng=np.random.default_rng(0)
            )


class TestRobustDPDEDistinct:
    """The difference-estimator ladder twin (ISSUE 5): same band, same
    protocol, strong budget charged per *checkpoint* instead of per
    publication — strictly more publications per charge and a smaller
    copy set than the plain DP discipline."""

    def test_tracks_f0_on_oblivious_stream(self):
        est = RobustDPDEDistinctElements(
            n=1 << 12, m=20_000, eps=0.3, rng=np.random.default_rng(1)
        )
        items = np.random.default_rng(2).integers(0, 1 << 12, size=20_000)
        est.update_batch(items)
        truth = FrequencyVector()
        truth.update_batch(items)
        assert abs(est.query() - truth.f0()) / truth.f0() <= 0.3

    def test_strictly_more_publications_per_charge_than_dp(self):
        kwargs = dict(n=1 << 12, m=50_000, eps=0.25)
        items = np.random.default_rng(3).integers(0, 1 << 12, size=50_000)
        dpde = RobustDPDEDistinctElements(
            rng=np.random.default_rng(4), **kwargs
        )
        dpde.update_batch(items)
        state = dpde.budget_state()
        # Plain DP charges the strong budget on *every* publication
        # (publications == charges); the ladder must beat 1 strictly.
        assert state["strong_charges"] < state["publications"]
        assert state["publications_per_charge"] > 1.0
        assert state["generations"] == 0

    def test_smaller_copy_set_and_space_than_dp_twin(self):
        kwargs = dict(n=1 << 14, m=100_000, eps=0.25)
        dpde = RobustDPDEDistinctElements(
            rng=np.random.default_rng(5), **kwargs
        )
        dp = RobustDPDistinctElements(rng=np.random.default_rng(5), **kwargs)
        # The tiers ride along, but the strong group shrinks more than
        # they add: strictly fewer live copies in total.
        assert dpde.copies < dp.copies
        assert dpde.space_bits() < dp.space_bits()
        # The strong budget is the checkpoint rescaling of the flip bound.
        assert dpde.budget_state()["switch_budget"] < dp.budget_state()[
            "switch_budget"
        ]

    def test_strong_budget_sizing(self):
        assert dpde_strong_budget(100, eps=0.25, top_span=0.7) < 100 + 4
        assert dpde_strong_budget(1, eps=0.25, top_span=0.7) >= 1
        with pytest.raises(ValueError):
            dpde_strong_budget(0, eps=0.25, top_span=0.7)
        with pytest.raises(ValueError):
            dpde_strong_budget(10, eps=2.0, top_span=0.7)
        with pytest.raises(ValueError):
            dpde_strong_budget(10, eps=0.25, top_span=0.0)

    def test_adversary_matrix_runs_unchanged(self):
        n, m, eps = 1024, 1200, 0.35
        algo = RobustDPDEDistinctElements(
            n=n, m=m, eps=eps, rng=np.random.default_rng(23)
        )
        game = AdversarialGame(lambda f: f.f0(),
                               relative_error_judge(eps), grace_steps=100)
        result = game.run(
            algo, RandomAdversary(n, m, np.random.default_rng(21)),
            max_rounds=m,
        )
        assert not result.failed


class TestRobustDPDEF2:
    def test_survives_ams_attack_with_fewer_charges(self):
        """E.DPDE's claim: the Algorithm 3 adversary is survived, and the
        publications it forces are mostly answered below the strong
        group — fewer sparse-vector charges than the DP twin pays."""
        algo = RobustDPDEF2(
            n=4096, m=3000, eps=0.4, rng=np.random.default_rng(4),
            strong_copies=12, stable_constant=3.0,
        )
        fooled, _, transcript = run_ams_attack(
            algo, np.random.default_rng(5), max_updates=1000, t=64
        )
        assert not fooled
        worst = max(abs(e - g) / g for e, g in transcript if g > 0)
        assert worst <= 0.4
        state = algo.budget_state()
        assert state["generations"] == 0
        assert state["strong_charges"] < state["publications"]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RobustDPDEF2(n=64, m=10, eps=1.5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            RobustDPDEDistinctElements(
                n=64, m=10, eps=0.3, rng=np.random.default_rng(0),
                tier_eps_factor=0.5,
            )
