"""Tests for the experiment harness (records, config, runner, registry, CLI)."""

import numpy as np
import pytest

from repro.experiments.config import FULL, QUICK, Scale, get_scale
from repro.experiments.records import ExperimentResult, space_kib
from repro.experiments.registry import EXPERIMENTS, list_experiments, run
from repro.experiments.runner import (
    run_additive,
    run_relative,
    sweep_contenders,
)
from repro.sketches.exact import ExactDistinctCounter
from repro.streams.model import Update


class TestRecords:
    def test_add_row_validates_width(self):
        r = ExperimentResult("X", "t", ["a", "b"])
        r.add_row(1, 2)
        with pytest.raises(ValueError):
            r.add_row(1, 2, 3)

    def test_render_contains_everything(self):
        r = ExperimentResult("X.1", "my title", ["col1", "col2"])
        r.add_row("abc", 0.123456)
        r.add_note("a note")
        text = r.render()
        assert "X.1" in text and "my title" in text
        assert "abc" in text and "0.123" in text
        assert "a note" in text

    def test_float_formatting(self):
        r = ExperimentResult("X", "t", ["v"])
        r.add_row(0.5)
        assert "0.500" in r.render()

    def test_space_kib(self):
        assert space_kib(8 * 1024) == "1.0 KiB"


class TestConfig:
    def test_presets(self):
        assert QUICK.m < FULL.m
        assert get_scale("quick") is QUICK
        assert get_scale("full") is FULL

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_custom_scale(self):
        s = Scale(name="tiny", n=64, m=100, eps=0.5, trials=1)
        assert s.n == 64


class TestRunner:
    def test_relative_on_exact_counter(self):
        updates = [Update(i, 1) for i in range(200)]
        stats = run_relative(ExactDistinctCounter(), updates,
                             lambda f: f.f0(), skip=10)
        assert stats.worst_error == 0.0
        assert stats.steps_judged == 190

    def test_floor_excludes_small_truths(self):
        updates = [Update(i, 1) for i in range(50)]
        stats = run_relative(ExactDistinctCounter(), updates,
                             lambda f: f.f0(), skip=0, floor=40.0)
        assert stats.steps_judged == 10  # only truths 41..50

    def test_additive_on_exact_counter(self):
        updates = [Update(i, 1) for i in range(100)]
        stats = run_additive(ExactDistinctCounter(), updates,
                             lambda f: f.f0(), skip=5)
        assert stats.worst_error == 0.0

    def test_sweep(self):
        updates = [Update(i, 1) for i in range(50)]
        out = sweep_contenders(
            [("a", ExactDistinctCounter()), ("b", ExactDistinctCounter())],
            updates, lambda f: f.f0(), skip=5,
        )
        assert set(out) == {"a", "b"}


class TestRegistry:
    def test_lists_design_md_index(self):
        ids = list_experiments()
        # The DESIGN.md per-experiment index, Table rows first.
        for required in ("T1.F0", "T1.Fp", "T1.HH", "T1.H", "T1.Turnstile",
                         "T1.BD", "E.AMS", "E.Flip", "E.Crypto", "E.Switch"):
            assert required in ids

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run("T9.Nope")

    def test_crypto_experiment_runs_quick(self):
        result = run("E.Crypto", "quick")
        assert result.experiment_id == "E.Crypto"
        static = result.metrics["static KMV (non-robust)/bits"]
        crypto = result.metrics["crypto robust (T10.1)/bits"]
        assert crypto <= static + 256

    def test_switch_crossover_shape(self):
        result = run("E.Switch", "quick")
        # Paths budget nearly flat in delta; switching grows.
        sw_small = result.metrics["1e-4/switching"]
        sw_tiny = result.metrics["1e-64/switching"]
        p_small = result.metrics["1e-4/paths"]
        p_tiny = result.metrics["1e-64/paths"]
        assert (p_tiny - p_small) < (sw_tiny - sw_small)

    def test_flip_experiment_bounds_hold(self):
        result = run("E.Flip", "quick")
        for key, measured in result.metrics.items():
            if key.endswith("/measured"):
                bound = result.metrics[key.replace("/measured", "/bound")]
                assert measured <= bound, key


class TestCLI:
    def test_list_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1.F0" in out and "E.AMS" in out

    def test_run_command_writes_output(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["run", "E.Switch", "--out", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.txt"))
        assert len(files) == 1
        assert "crossover" in files[0].read_text()

    def test_run_unknown_experiment_raises(self):
        from repro.experiments.cli import main

        with pytest.raises(ValueError):
            main(["run", "bogus"])
