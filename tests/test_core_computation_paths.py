"""Tests for the computation-paths framework (Lemma 3.8)."""

import math

import numpy as np
import pytest

from repro.core.computation_paths import (
    ComputationPathsEstimator,
    paths_log2_count,
    required_delta0,
    required_log2_delta0,
)
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch


class _ExactCounter(Sketch):
    supports_deletions = True

    def __init__(self):
        self._c = 0.0

    def update(self, item: int, delta: int = 1) -> None:
        self._c += delta

    def query(self) -> float:
        return self._c

    def space_bits(self) -> int:
        return 64


class TestPathCounting:
    def test_count_grows_with_flips(self):
        assert paths_log2_count(1000, 20, 0.1, 1e6) > paths_log2_count(
            1000, 5, 0.1, 1e6
        )

    def test_count_grows_with_m(self):
        assert paths_log2_count(10_000, 10, 0.1, 1e6) > paths_log2_count(
            100, 10, 0.1, 1e6
        )

    def test_flip_number_clamped_to_m(self):
        # flip_number > m must not produce a negative binomial.
        val = paths_log2_count(10, 100, 0.1, 1e6)
        assert math.isfinite(val) and val > 0

    def test_theorem_54_magnitude(self):
        """For F0 with eps=0.1 the exponent is ~ (1/eps) log^2 n — huge."""
        n, m, eps = 1 << 16, 1 << 16, 0.1
        lam = math.ceil(math.log(n) / math.log1p(eps / 2))
        log2_d0 = required_log2_delta0(0.05, m, lam, eps, float(n))
        assert log2_d0 < -1000  # astronomically small delta_0

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            paths_log2_count(0, 1, 0.1, 10.0)


class TestRequiredDelta0:
    def test_log_and_float_agree_in_moderate_regime(self):
        log2_d0 = required_log2_delta0(0.1, 50, 3, 0.5, 100.0)
        d0 = required_delta0(0.1, 50, 3, 0.5, 100.0)
        if log2_d0 > -900:
            assert d0 == pytest.approx(2.0**log2_d0, rel=1e-9)

    def test_underflow_clamped(self):
        d0 = required_delta0(0.05, 1 << 16, 500, 0.1, 1e6)
        assert d0 == 1e-300

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            required_log2_delta0(0.0, 10, 1, 0.1, 10.0)


class TestComputationPathsEstimator:
    def test_tracks_exact_counter(self):
        est = ComputationPathsEstimator(_ExactCounter(), eps=0.2)
        for t in range(1, 500):
            out = est.process_update(0, 1)
            assert abs(out - t) <= 0.2 * t + 1e-9

    def test_output_is_rounded_and_sticky(self):
        est = ComputationPathsEstimator(_ExactCounter(), eps=0.3)
        outputs = [est.process_update(0, 1) for _ in range(300)]
        changes = 1 + sum(1 for a, b in zip(outputs, outputs[1:]) if a != b)
        assert changes <= math.log(300) / math.log1p(0.3) + 3
        assert est.changes <= changes

    def test_query_before_updates(self):
        est = ComputationPathsEstimator(_ExactCounter(), eps=0.5)
        assert est.query() == 0.0

    def test_wraps_real_sketch(self):
        inner = KMVSketch(128, np.random.default_rng(0))
        est = ComputationPathsEstimator(inner, eps=0.3)
        worst = 0.0
        for i in range(3000):
            out = est.process_update(i, 1)
            if i > 100:
                worst = max(worst, abs(out - (i + 1)) / (i + 1))
        assert worst <= 0.35

    def test_supports_deletions_inherited(self):
        assert ComputationPathsEstimator(_ExactCounter(), eps=0.1).supports_deletions
        assert not ComputationPathsEstimator(
            KMVSketch(4, np.random.default_rng(1)), eps=0.1
        ).supports_deletions

    def test_space_adds_constant(self):
        est = ComputationPathsEstimator(_ExactCounter(), eps=0.1)
        assert est.space_bits() == 64 + 128

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            ComputationPathsEstimator(_ExactCounter(), eps=0.0)
