"""Tests for the robust distinct-elements algorithms (Theorems 5.1 / 5.4)."""

import numpy as np
import pytest

from repro.adversary.attacks import EstimateProbingAdversary
from repro.adversary.game import AdversarialGame, relative_error_judge
from repro.robust.distinct import (
    FastRobustDistinctElements,
    RobustDistinctElements,
    paper_space_bound_theorem_51,
    paper_space_bound_theorem_54,
)
from repro.streams.frequency import FrequencyVector


def _run_fresh_items(algo, m, eps, skip=100):
    truth = FrequencyVector()
    worst = 0.0
    for i in range(m):
        truth.update(i, 1)
        out = algo.process_update(i, 1)
        if i >= skip:
            worst = max(worst, abs(out - truth.f0()) / truth.f0())
    return worst


class TestRobustDistinctSwitching:
    def test_tracks_fresh_item_stream(self):
        algo = RobustDistinctElements(
            n=1 << 14, m=4000, eps=0.25, rng=np.random.default_rng(0)
        )
        assert _run_fresh_items(algo, 4000, 0.25) <= 0.25

    def test_tracks_mixed_stream(self):
        algo = RobustDistinctElements(
            n=2048, m=3000, eps=0.3, rng=np.random.default_rng(1)
        )
        rng = np.random.default_rng(2)
        truth = FrequencyVector()
        worst = 0.0
        for t in range(3000):
            item = int(rng.integers(0, 2048))
            truth.update(item, 1)
            out = algo.process_update(item, 1)
            if t >= 100:
                worst = max(worst, abs(out - truth.f0()) / truth.f0())
        assert worst <= 0.3

    def test_survives_adaptive_probing(self):
        """The probing adversary cannot break the switching wrapper."""
        algo = RobustDistinctElements(
            n=4096, m=3000, eps=0.3, rng=np.random.default_rng(3)
        )
        game = AdversarialGame(
            lambda f: f.f0(), relative_error_judge(0.3), grace_steps=50
        )
        result = game.run(
            algo,
            EstimateProbingAdversary(4096, np.random.default_rng(4)),
            max_rounds=3000,
        )
        assert not result.failed

    def test_switch_count_within_flip_budget(self):
        algo = RobustDistinctElements(
            n=1 << 14, m=3000, eps=0.25, rng=np.random.default_rng(5)
        )
        _run_fresh_items(algo, 3000, 0.25)
        import math

        # Switches <= log_{1+eps/2}(F0 range) + slack.
        budget = math.log(3000) / math.log1p(0.125) + 4
        assert algo.switches <= budget

    def test_non_restart_mode(self):
        algo = RobustDistinctElements(
            n=1024, m=1500, eps=0.4, rng=np.random.default_rng(6), restart=False
        )
        assert _run_fresh_items(algo, 1024, 0.4) <= 0.4
        assert algo.copies > algo.switches  # plain mode never wraps

    def test_paper_copies_reported(self):
        algo = RobustDistinctElements(
            n=1 << 16, m=100, eps=0.2, rng=np.random.default_rng(7), copies=4
        )
        # eps/20 flip number for n=2^16 is in the thousands.
        assert algo.paper_copies > 1000
        assert algo.copies == 4

    def test_space_accounting_scales_with_copies(self):
        small = RobustDistinctElements(
            n=1024, m=100, eps=0.3, rng=np.random.default_rng(8), copies=4
        )
        large = RobustDistinctElements(
            n=1024, m=100, eps=0.3, rng=np.random.default_rng(8), copies=8
        )
        assert large.space_bits() > 1.8 * small.space_bits()

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            RobustDistinctElements(n=16, m=10, eps=0.0,
                                   rng=np.random.default_rng(0))


class TestFastRobustDistinct:
    def test_tracks_fresh_item_stream(self):
        algo = FastRobustDistinctElements(
            n=1 << 14, m=5000, eps=0.25, rng=np.random.default_rng(9)
        )
        assert _run_fresh_items(algo, 5000, 0.25) <= 0.3

    def test_paper_delta0_is_astronomical(self):
        algo = FastRobustDistinctElements(
            n=1 << 14, m=5000, eps=0.2, rng=np.random.default_rng(10)
        )
        assert algo.paper_log2_delta0 < -500

    def test_output_changes_bounded(self):
        algo = FastRobustDistinctElements(
            n=1 << 12, m=3000, eps=0.3, rng=np.random.default_rng(11)
        )
        _run_fresh_items(algo, 3000, 0.3)
        import math

        assert algo.changes <= math.log(3000) / math.log1p(0.15) + 3

    def test_batched_mode(self):
        algo = FastRobustDistinctElements(
            n=1 << 10, m=800, eps=0.3, rng=np.random.default_rng(12), batch=True
        )
        assert _run_fresh_items(algo, 800, 0.3, skip=60) <= 0.35


class TestPaperBounds:
    def test_theorem51_bound_monotone_in_eps(self):
        assert paper_space_bound_theorem_51(1 << 16, 0.05, 0.01) > (
            paper_space_bound_theorem_51(1 << 16, 0.2, 0.01)
        )

    def test_theorem54_bound_shape(self):
        b = paper_space_bound_theorem_54(1 << 16, 0.1)
        import math

        assert b == pytest.approx(math.log(1 << 16) ** 3 / 0.1**3)
