"""Tests for flip-number measurement and the analytic bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flip_number import (
    bounded_deletion_flip_number_bound,
    cascaded_norm_flip_number_bound,
    entropy_flip_number_bound,
    flip_number_dp,
    fp_flip_number_bound,
    greedy_flip_lower_bound,
    lp_norm_flip_number_bound,
    measured_flip_number,
    monotone_flip_number_bound,
)

value_lists = st.lists(
    st.floats(min_value=0.01, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=40,
)
eps_values = st.floats(min_value=0.05, max_value=1.5)


class TestMeasuredFlipNumber:
    def test_constant_sequence(self):
        assert measured_flip_number([5.0] * 20, 0.1) == 1

    def test_doubling_sequence(self):
        values = [2.0**i for i in range(10)]
        # With eps=0.5 a doubling lands exactly on the closed band edge
        # ((1-eps)*2x = x), so only every *other* element flips: 5 of 10.
        assert measured_flip_number(values, 0.5) == 5

    def test_tripling_sequence(self):
        values = [3.0**i for i in range(10)]
        # Tripling clearly exits the 50% band every step.
        assert measured_flip_number(values, 0.5) == 10

    def test_within_band_no_flip(self):
        assert measured_flip_number([100, 104, 98, 101], 0.1) == 1

    def test_oscillation_counts_both_directions(self):
        values = [1.0, 10.0, 1.0, 10.0]
        assert measured_flip_number(values, 0.5) == 4

    def test_greedy_suboptimal_case(self):
        """The case where greedy undercounts: chain 1 -> 3.1 -> 1.9."""
        values = [1.0, 2.2, 3.1, 1.9]
        eps = 0.5
        assert greedy_flip_lower_bound(values, eps) == 2
        assert measured_flip_number(values, eps) == 3

    def test_empty(self):
        assert measured_flip_number([], 0.1) == 0
        assert flip_number_dp([], 0.1) == 0

    @given(value_lists, eps_values)
    @settings(max_examples=200, deadline=None)
    def test_fenwick_matches_dp(self, values, eps):
        """The O(m log m) algorithm agrees with the O(m^2) oracle."""
        assert measured_flip_number(values, eps) == flip_number_dp(values, eps)

    @given(value_lists, eps_values)
    @settings(max_examples=100, deadline=None)
    def test_greedy_is_lower_bound(self, values, eps):
        assert greedy_flip_lower_bound(values, eps) <= measured_flip_number(
            values, eps
        )

    @given(value_lists)
    def test_monotone_in_eps(self, values):
        """Definition 3.2 remark: lambda_eps <= lambda_eps' for eps' < eps."""
        assert measured_flip_number(values, 0.5) <= measured_flip_number(
            values, 0.1
        )

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            measured_flip_number([1.0], 0.0)


class TestAnalyticBounds:
    def test_monotone_bound_dominates_measured(self):
        # F0 of a fresh-item stream: 1, 2, ..., N (monotone, range [1, N]).
        values = [float(i) for i in range(1, 201)]
        for eps in (0.1, 0.3, 0.7):
            measured = measured_flip_number(values, eps)
            bound = monotone_flip_number_bound(eps, 1.0, 200.0)
            assert measured <= bound

    def test_fp_bound_scales_inversely_with_eps(self):
        assert fp_flip_number_bound(0.05, 1 << 16, 2) > fp_flip_number_bound(
            0.2, 1 << 16, 2
        )

    def test_fp_bound_grows_with_p_above_two(self):
        assert fp_flip_number_bound(0.1, 1 << 16, 4) > fp_flip_number_bound(
            0.1, 1 << 16, 2
        )

    def test_fp_zero_uses_n_range(self):
        b0 = fp_flip_number_bound(0.1, 1 << 16, 0)
        b2 = fp_flip_number_bound(0.1, 1 << 16, 2)
        assert b0 < b2

    def test_lp_norm_bound_vs_moment_bound(self):
        # The norm changes (1+eps) iff the moment changes (1+eps)^p:
        # the norm has a smaller dynamic range, hence a smaller bound.
        assert lp_norm_flip_number_bound(0.1, 1 << 16, 2) <= fp_flip_number_bound(
            0.1, 1 << 16, 2
        )

    def test_measured_fp_trajectory_within_bound(self):
        from repro.streams.generators import zipfian_stream
        from repro.streams.validators import function_trajectory

        ups = zipfian_stream(256, 2000, np.random.default_rng(0))
        traj = function_trajectory(ups, lambda f: f.fp(2))
        eps = 0.25
        measured = measured_flip_number(traj, eps)
        assert measured <= fp_flip_number_bound(eps, 256, 2, M=2000)

    def test_entropy_bound_shape(self):
        """Prop 7.2: the bound grows like eps^-3 polylog."""
        b1 = entropy_flip_number_bound(0.2, 1 << 12, 1 << 12)
        b2 = entropy_flip_number_bound(0.1, 1 << 12, 1 << 12)
        # Halving eps should cost at least 4x (the eps^2 tau plus log 1/nu).
        assert b2 > 3.5 * b1

    def test_measured_entropy_flips_within_bound(self):
        from repro.streams.generators import phased_support_stream
        from repro.streams.validators import function_trajectory

        ups = phased_support_stream(256, 1500, np.random.default_rng(1))
        traj = function_trajectory(ups, lambda f: 2 ** f.shannon_entropy())
        eps = 0.3
        assert measured_flip_number(traj, eps) <= entropy_flip_number_bound(
            eps, 256, 1500, M=1500
        )

    def test_bounded_deletion_bound(self):
        b_small = bounded_deletion_flip_number_bound(0.2, 1 << 12, 1, alpha=2)
        b_large = bounded_deletion_flip_number_bound(0.2, 1 << 12, 1, alpha=16)
        assert b_large > b_small  # more deletions, more flips allowed

    def test_measured_bounded_deletion_within_bound(self):
        from repro.streams.generators import bounded_deletion_stream
        from repro.streams.validators import function_trajectory

        alpha, eps = 4.0, 0.3
        ups = bounded_deletion_stream(128, 1200, np.random.default_rng(2),
                                      alpha=alpha)
        traj = function_trajectory(ups, lambda f: f.lp(1))
        assert measured_flip_number(traj, eps) <= (
            bounded_deletion_flip_number_bound(eps, 128, 1, alpha, M=1200)
        )

    def test_cascaded_bound_positive(self):
        assert cascaded_norm_flip_number_bound(0.1, 64, 8, 2, 1) > 0

    @pytest.mark.parametrize(
        "fn,args",
        [
            (monotone_flip_number_bound, (0.1, 0.0, 1.0)),
            (fp_flip_number_bound, (0.1, 100, -1)),
            (lp_norm_flip_number_bound, (0.1, 100, 0)),
            (bounded_deletion_flip_number_bound, (0.1, 100, 0.5, 2)),
            (bounded_deletion_flip_number_bound, (0.1, 100, 1, 0.5)),
            (cascaded_norm_flip_number_bound, (0.1, 100, 8, 0, 1)),
        ],
    )
    def test_invalid_args(self, fn, args):
        with pytest.raises(ValueError):
            fn(*args)
