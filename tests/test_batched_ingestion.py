"""End-to-end tests for the vectorized batch ingestion pipeline.

Covers the three layers the pipeline spans:

* per-sketch ``update_batch`` equivalence against the per-item loop;
* the chunked sketch-switching discipline — the load-bearing equivalence:
  batched and per-item runs publish identical outputs and identical
  switch counts on the same seeded streams (plain, restart, and clamp
  modes);
* the harness surfaces: ``run_relative(chunk_size=...)``, ``api.ingest``,
  and the chunked stream generators.
"""

import numpy as np
import pytest

from repro.api import ingest
from repro.core.computation_paths import ComputationPathsEstimator
from repro.core.sketch_switching import (
    AdditiveSwitchingEstimator,
    SketchSwitchingEstimator,
)
from repro.experiments.runner import run_relative
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.distinct import RobustDistinctElements
from repro.sketches.ams import AMSFullSketch, AMSSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.exact import ExactDistinctCounter, ExactMomentCounter
from repro.sketches.f1 import F1Counter
from repro.sketches.hll import HyperLogLog
from repro.sketches.kmv import KMVSketch
from repro.sketches.misra_gries import MisraGries
from repro.streams.frequency import FrequencyVector
from repro.streams.generators import (
    distinct_ramp_chunks,
    distinct_ramp_stream,
    uniform_stream_chunks,
)
from repro.streams.model import StreamChunk, Update, chunk_updates, iter_updates


def _uniform_items(m=4000, n=400, seed=0):
    return np.random.default_rng(seed).integers(0, n, size=m)


def _feed_per_item(sketch, items, deltas=None):
    if deltas is None:
        for item in items.tolist():
            sketch.update(item)
    else:
        for item, delta in zip(items.tolist(), deltas.tolist()):
            sketch.update(item, delta)


def _feed_batched(sketch, items, deltas=None, chunk=512):
    for lo in range(0, len(items), chunk):
        sketch.update_batch(
            items[lo:lo + chunk],
            None if deltas is None else deltas[lo:lo + chunk],
        )


class TestSketchBatchEquivalence:
    """update_batch lands in the same state as the per-item loop."""

    def test_countmin_exact(self):
        a = CountMinSketch(128, 4, np.random.default_rng(7))
        b = CountMinSketch(128, 4, np.random.default_rng(7))
        items = _uniform_items()
        _feed_per_item(a, items)
        _feed_batched(b, items)
        assert np.array_equal(a._table, b._table)
        assert a.query() == b.query()

    def test_countsketch_turnstile(self):
        a = CountSketch(128, 5, np.random.default_rng(7))
        b = CountSketch(128, 5, np.random.default_rng(7))
        items = _uniform_items()
        deltas = np.random.default_rng(1).integers(-2, 3, size=len(items))
        _feed_per_item(a, items, deltas)
        _feed_batched(b, items, deltas)
        assert np.allclose(a._table, b._table)

    def test_ams_classic_and_full(self):
        items = _uniform_items()
        a = AMSSketch(16, 3, np.random.default_rng(5))
        b = AMSSketch(16, 3, np.random.default_rng(5))
        _feed_per_item(a, items)
        _feed_batched(b, items)
        assert np.allclose(a._y, b._y)
        c = AMSFullSketch(24, 400, np.random.default_rng(5))
        d = AMSFullSketch(24, 400, np.random.default_rng(5))
        _feed_per_item(c, items)
        _feed_batched(d, items)
        assert np.allclose(c._y, d._y)

    def test_kmv_bitwise(self):
        a = KMVSketch(48, np.random.default_rng(9))
        b = KMVSketch(48, np.random.default_rng(9))
        items = _uniform_items(n=5000)
        _feed_per_item(a, items)
        _feed_batched(b, items, chunk=333)
        assert a.state_fingerprint() == b.state_fingerprint()

    def test_hll_bitwise(self):
        a = HyperLogLog(6, np.random.default_rng(9))
        b = HyperLogLog(6, np.random.default_rng(9))
        items = _uniform_items(n=5000)
        _feed_per_item(a, items)
        _feed_batched(b, items, chunk=777)
        assert np.array_equal(a._registers, b._registers)

    def test_f1_and_exact(self):
        items = _uniform_items()
        deltas = np.random.default_rng(2).integers(-1, 4, size=len(items))
        for make in (F1Counter, lambda: ExactMomentCounter(2.0),
                     ExactDistinctCounter):
            a, b = make(), make()
            _feed_per_item(a, items, deltas)
            _feed_batched(b, items, deltas)
            assert a.query() == b.query()

    def test_frequency_vector(self):
        items = _uniform_items()
        deltas = np.random.default_rng(3).integers(-2, 3, size=len(items))
        a, b = FrequencyVector(), FrequencyVector()
        for item, delta in zip(items.tolist(), deltas.tolist()):
            a.update(item, delta)
        b.update_batch(items, deltas)
        assert a.to_dict() == b.to_dict()
        assert a.f1() == b.f1()

    def test_misra_gries_valid_summary(self):
        items = _uniform_items(m=3000, n=50)
        a, b = MisraGries(10), MisraGries(10)
        _feed_per_item(a, items)
        _feed_batched(b, items)
        # Order-sensitive: same F1 / underestimate bound, and every batched
        # estimate obeys the MG guarantee against the exact counts.
        assert a._f1 == b._f1
        exact = FrequencyVector()
        exact.update_batch(items)
        for item in range(50):
            est = b.point_query(item)
            assert est <= exact[item]
            assert est >= exact[item] - b.underestimate_bound()

    def test_negative_delta_rejected(self):
        for sketch in (
            CountMinSketch(16, 2, np.random.default_rng(0)),
            KMVSketch(8, np.random.default_rng(0)),
            HyperLogLog(4, np.random.default_rng(0)),
            MisraGries(4),
        ):
            with pytest.raises(ValueError):
                sketch.update_batch([1, 2], [1, -1])

    def test_default_loop_fallback(self):
        # A sketch without an override still supports the batch contract
        # through the base-class per-item loop.
        from repro.sketches.base import Sketch

        class Plain(Sketch):
            def __init__(self):
                self.seen = []

            def update(self, item, delta=1):
                self.seen.append((item, delta))

            def query(self):
                return float(len(self.seen))

            def space_bits(self):
                return 64

        a = Plain()
        a.update_batch([1, 2, 3], [1, 2, 3])
        assert a.seen == [(1, 1), (2, 2), (3, 3)]


class TestPointQueryBatch:
    def test_countmin_matches_scalar(self):
        sk = CountMinSketch(64, 3, np.random.default_rng(1))
        sk.update_batch(_uniform_items())
        queries = np.arange(50)
        batched = sk.point_query_batch(queries)
        assert np.array_equal(
            batched, [sk.point_query(i) for i in range(50)]
        )

    def test_countsketch_matches_scalar(self):
        sk = CountSketch(64, 5, np.random.default_rng(1))
        sk.update_batch(_uniform_items())
        batched = sk.point_query_batch(np.arange(50))
        assert np.allclose(batched, [sk.point_query(i) for i in range(50)])

    def test_estimate_vector_uses_batch(self):
        sk = CountMinSketch(64, 3, np.random.default_rng(1))
        sk.update_batch(_uniform_items())
        vec = sk.estimate_vector(range(20))
        assert vec == {i: sk.point_query(i) for i in range(20)}

    def test_fallback_for_plain_point_query_sketch(self):
        mg = MisraGries(16)
        mg.update_batch(_uniform_items(n=30))
        vec = mg.estimate_vector([0, 1, 2])
        assert vec == {i: mg.point_query(i) for i in range(3)}


class TestSwitchingEquivalence:
    """The acceptance-criterion test: batched == per-item bit-for-bit."""

    @staticmethod
    def _make(restart, copies, seed=3):
        return SketchSwitchingEstimator(
            lambda r: KMVSketch(64, r),
            copies=copies,
            eps=0.3,
            rng=np.random.default_rng(seed),
            restart=restart,
            on_exhausted="clamp",
        )

    @pytest.mark.parametrize(
        "restart,copies", [(False, 40), (True, 12), (False, 6)]
    )
    @pytest.mark.parametrize("chunk", [64, 512, 4096])
    def test_published_outputs_and_switch_counts(self, restart, copies, chunk):
        rng = np.random.default_rng(0)
        updates = [Update(int(i), 1) for i in rng.integers(0, 5000, size=12000)]
        a = self._make(restart, copies)
        b = self._make(restart, copies)
        outs_a = [a.process_update(u.item, u.delta) for u in updates]
        outs_b = []
        consumed = 0
        for piece in chunk_updates(updates, chunk):
            b.update_chunk(piece)
            consumed += len(piece)
            outs_b.append((consumed, b.query()))
        for consumed, out in outs_b:
            assert out == outs_a[consumed - 1]
        assert a.switches == b.switches
        assert a.query() == b.query()

    def test_streamchunk_object_accepted(self):
        a = self._make(False, 30)
        b = self._make(False, 30)
        items = np.arange(2000) % 500
        _feed_per_item(a, items)
        b.update_chunk(StreamChunk.insertions(items))
        assert a.query() == b.query() and a.switches == b.switches

    def test_additive_switching_chunked(self):
        def make():
            return AdditiveSwitchingEstimator(
                lambda r: _CountTracker(),
                copies=200,
                eps=2.0,
                rng=np.random.default_rng(1),
                on_exhausted="clamp",
            )

        items = np.zeros(3000, dtype=np.int64)
        a, b = make(), make()
        _feed_per_item(a, items)
        for lo in range(0, 3000, 256):
            b.update_chunk(items[lo:lo + 256])
        # The tracked count is monotone, so the chunked path must agree.
        assert a.query() == b.query()
        assert a.switches == b.switches


class _CountTracker:
    """Deterministic monotone tracker used by the additive test."""

    supports_deletions = True

    def __init__(self):
        self._count = 0.0

    def update(self, item, delta=1):
        self._count += delta

    def update_batch(self, items, deltas=None):
        self._count += (
            len(np.asarray(items)) if deltas is None
            else int(np.asarray(deltas).sum())
        )

    def snapshot(self):
        import copy

        return copy.copy(self)

    def query(self):
        return self._count

    def space_bits(self):
        return 64


class TestComputationPathsBatched:
    def test_rounded_outputs_stay_in_band(self):
        inner = KMVSketch(256, np.random.default_rng(4))
        paths = ComputationPathsEstimator(inner, eps=0.2)
        exact = FrequencyVector()
        for chunk in distinct_ramp_chunks(100_000, 20_000, chunk_size=1000):
            paths.update_batch(chunk.items, chunk.deltas)
            exact.update_batch(chunk.items, chunk.deltas)
            assert paths.query() == pytest.approx(exact.f0(), rel=0.35)

    def test_changes_no_more_than_per_item(self):
        per_item = ComputationPathsEstimator(
            KMVSketch(64, np.random.default_rng(4)), eps=0.2
        )
        batched = ComputationPathsEstimator(
            KMVSketch(64, np.random.default_rng(4)), eps=0.2
        )
        updates = distinct_ramp_stream(10_000, 5000)
        for u in updates:
            per_item.update(u.item, u.delta)
        for chunk in chunk_updates(updates, 500):
            batched.update_batch(chunk.items, chunk.deltas)
        assert batched.changes <= per_item.changes


class TestCryptoDistinctBatched:
    def test_state_matches_per_item(self):
        a = CryptoRobustDistinctElements(
            n=1 << 12, eps=0.2, rng=np.random.default_rng(6)
        )
        b = CryptoRobustDistinctElements(
            n=1 << 12, eps=0.2, rng=np.random.default_rng(6)
        )
        items = _uniform_items(m=3000, n=1 << 12)
        _feed_per_item(a, items)
        _feed_batched(b, items)
        assert a.state_fingerprint() == b.state_fingerprint()


class TestHarnessSurfaces:
    def test_run_relative_chunked_records_throughput(self):
        algo = ExactDistinctCounter()
        updates = [Update(i % 300, 1) for i in range(2000)]
        stats = run_relative(
            algo, updates, lambda f: f.f0(), skip=100, chunk_size=256
        )
        assert stats.worst_error == 0.0
        assert stats.items_per_sec > 0
        assert stats.steps_judged == 8  # one judgment per chunk boundary

    def test_ingest_accepts_every_stream_form(self):
        n, m = 1 << 10, 4000
        for stream in (
            [Update(i % n, 1) for i in range(m)],
            list(range(m)),
            uniform_stream_chunks(n, m, np.random.default_rng(0),
                                  chunk_size=512),
        ):
            est = ExactDistinctCounter()
            report = ingest(est, stream, chunk_size=512)
            assert report.updates == m
            assert report.items_per_sec > 0
            assert report.final_estimate == est.query()

    def test_ingest_robust_estimator_tracks(self):
        n, m = 1 << 12, 20_000
        est = RobustDistinctElements(
            n=n, m=m, eps=0.25, rng=np.random.default_rng(5)
        )
        report = ingest(est, distinct_ramp_chunks(n, m, chunk_size=2048))
        truth = min(m, n)
        assert report.final_estimate == pytest.approx(truth, rel=0.3)

    def test_sweep_contenders_materialises_generators(self):
        from repro.experiments.runner import sweep_contenders

        n, m = 256, 3000
        contenders = [
            ("a", ExactDistinctCounter()),
            ("b", ExactDistinctCounter()),
        ]
        stats = sweep_contenders(
            contenders,
            uniform_stream_chunks(n, m, np.random.default_rng(0),
                                  chunk_size=512),
            lambda f: f.f0(),
            skip=100,
            chunk_size=512,
        )
        # Every contender must see the whole stream, not just the first.
        assert all(s.steps_judged == 6 for s in stats.values())
        assert all(s.worst_error == 0.0 for s in stats.values())
        assert all(s.items_per_sec > 0 for s in stats.values())

    def test_chunk_generators_cover_stream(self):
        chunks = list(
            uniform_stream_chunks(100, 2500, np.random.default_rng(0),
                                  chunk_size=400)
        )
        assert sum(len(c) for c in chunks) == 2500
        assert all(c.insertion_only for c in chunks)
        ramp_list = distinct_ramp_stream(64, 500)
        ramp_chunks = list(iter_updates(distinct_ramp_chunks(64, 500, 128)))
        assert ramp_chunks == ramp_list
