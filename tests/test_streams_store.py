"""Columnar stream store: format, zero-copy reads, round-trip property.

The load-bearing property: for any stream (including turnstile deltas),
``write_stream`` → ``chunks()`` → replay reproduces the exact frequency
vector, at every chunk size.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ingest
from repro.sketches.countmin import CountMinSketch
from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamChunk, StreamParameters, Update
from repro.streams.store import (
    ColumnarStreamStore,
    StoreFormatError,
    StreamWriter,
    write_stream,
)


def _freq(updates):
    f = FrequencyVector()
    for u in updates:
        f.update(u.item, u.delta)
    return f


updates_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=-5, max_value=5).filter(lambda d: d != 0),
    ).map(lambda t: Update(*t)),
    max_size=300,
)


class TestRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(updates=updates_strategy, chunk_size=st.integers(1, 64))
    def test_frequency_vector_equality(self, tmp_path_factory, updates,
                                       chunk_size):
        path = tmp_path_factory.mktemp("store") / "s"
        store = write_stream(path, updates, chunk_size=17)
        assert len(store) == len(updates)
        replayed = FrequencyVector()
        total = 0
        for chunk in store.chunks(chunk_size):
            replayed.update_batch(chunk.items, chunk.deltas)
            total += len(chunk)
        assert total == len(updates)
        assert replayed.to_dict() == _freq(updates).to_dict()

    @settings(max_examples=25, deadline=None)
    @given(updates=updates_strategy)
    def test_per_update_iteration_matches(self, tmp_path_factory, updates):
        path = tmp_path_factory.mktemp("store") / "s"
        store = write_stream(path, updates, chunk_size=13)
        got = [u for chunk in store.chunks(7) for u in chunk]
        assert got == list(updates)


class TestFormat:
    def test_unit_delta_stream_elides_delta_column(self, tmp_path):
        items = np.arange(100, dtype=np.int64)
        store = write_stream(tmp_path / "s", StreamChunk.insertions(items))
        assert store.unit_deltas
        assert store.deltas is None
        assert not (tmp_path / "s" / "deltas.bin").exists()
        chunk = next(store.chunks(64))
        assert np.all(chunk.deltas == 1)
        assert not chunk.deltas.flags.writeable

    def test_late_non_unit_delta_backfills(self, tmp_path):
        # 100 unit updates already written when the first delta=2 arrives.
        ups = [Update(i, 1) for i in range(100)] + [Update(5, 2)]
        store = write_stream(tmp_path / "s", ups, chunk_size=16)
        assert not store.unit_deltas
        deltas = np.asarray(store.deltas)
        assert np.all(deltas[:100] == 1) and deltas[100] == 2

    def test_chunks_are_zero_copy_views(self, tmp_path):
        items = np.arange(5000, dtype=np.int64)
        store = write_stream(tmp_path / "s", StreamChunk.insertions(items))
        chunks = list(store.chunks(1024))
        assert all(
            np.shares_memory(c.items, store.items) for c in chunks
        )
        assert isinstance(store.items, np.memmap)

    def test_header_params_round_trip(self, tmp_path):
        params = StreamParameters(n=1024, m=5000, M=7)
        store = write_stream(
            tmp_path / "s", [Update(1, 1)], params=params,
            metadata={"source": "unit-test"},
        )
        reopened = ColumnarStreamStore(store.path)
        assert reopened.params == params
        assert reopened.header["metadata"]["source"] == "unit-test"

    def test_empty_stream(self, tmp_path):
        store = write_stream(tmp_path / "s", [])
        assert len(store) == 0
        assert store.chunk_count() == 0
        assert list(store.chunks(8)) == []

    def test_chunk_count(self, tmp_path):
        store = write_stream(tmp_path / "s",
                             StreamChunk.insertions(np.arange(100)))
        assert store.chunk_count(30) == 4
        assert store.chunk_count(100) == 1

    def test_rejects_missing_or_foreign_directories(self, tmp_path):
        with pytest.raises(StoreFormatError, match="no header"):
            ColumnarStreamStore(tmp_path)
        (tmp_path / "header.json").write_text(json.dumps({"format": "csv"}))
        with pytest.raises(StoreFormatError, match="not a"):
            ColumnarStreamStore(tmp_path)
        (tmp_path / "header.json").write_text("{broken")
        with pytest.raises(StoreFormatError, match="unreadable"):
            ColumnarStreamStore(tmp_path)

    def test_rejects_newer_version(self, tmp_path):
        store = write_stream(tmp_path / "s", [Update(1, 1)])
        header = json.loads((store.path / "header.json").read_text())
        header["version"] = 99
        (store.path / "header.json").write_text(json.dumps(header))
        with pytest.raises(StoreFormatError, match="newer"):
            ColumnarStreamStore(store.path)

    def test_chunk_size_validation(self, tmp_path):
        store = write_stream(tmp_path / "s", [Update(1, 1)])
        with pytest.raises(ValueError):
            list(store.chunks(0))


class TestStreamWriter:
    """The incremental write side behind write_stream and spill_store."""

    def test_incremental_appends_match_one_shot(self, tmp_path):
        rng = np.random.default_rng(4)
        items = rng.integers(0, 128, size=5_000)
        one_shot = write_stream(tmp_path / "a", StreamChunk.insertions(items))
        with StreamWriter(tmp_path / "b") as writer:
            for lo in range(0, len(items), 777):
                writer.append(items[lo:lo + 777])
        incremental = ColumnarStreamStore(tmp_path / "b")
        assert incremental.updates == one_shot.updates
        assert np.array_equal(incremental.items, one_shot.items)
        assert incremental.unit_deltas

    def test_mid_stream_turnstile_backfills(self, tmp_path):
        writer = StreamWriter(tmp_path / "s")
        writer.append(np.arange(100))                      # unit so far
        writer.append(np.arange(10), -np.ones(10, dtype=np.int64))
        store = writer.close()
        assert not store.unit_deltas
        assert np.all(store.deltas[:100] == 1)             # backfilled
        assert np.all(store.deltas[100:] == -1)

    def test_close_is_idempotent_and_seals_partial_streams(self, tmp_path):
        writer = StreamWriter(tmp_path / "s",
                              params=StreamParameters(n=64, m=1000))
        writer.append(np.arange(50))
        store = writer.close()
        assert store.updates == 50
        assert store.params.n == 64
        again = writer.close()
        assert again.updates == 50
        with pytest.raises(ValueError, match="closed"):
            writer.append(np.arange(5))

    def test_accepts_stream_chunks(self, tmp_path):
        with StreamWriter(tmp_path / "s") as writer:
            writer.append(StreamChunk.insertions(np.arange(10)))
        assert ColumnarStreamStore(tmp_path / "s").updates == 10

    def test_context_manager_round_trips_partial_final_chunk(self, tmp_path):
        """ISSUE 4 satellite: flush-and-finalize on exit must seal the
        partial final chunk, not just the full ones — 2.5 chunks in,
        2.5 chunks (and the exact tail bytes) back out."""
        rng = np.random.default_rng(11)
        chunk = 1024
        items = rng.integers(0, 4096, size=2 * chunk + chunk // 2)
        deltas = rng.integers(1, 5, size=len(items))
        with StreamWriter(tmp_path / "s") as writer:
            for lo in range(0, len(items), chunk):
                writer.append(items[lo:lo + chunk], deltas[lo:lo + chunk])
        store = ColumnarStreamStore(tmp_path / "s")
        assert store.updates == len(items)
        assert np.array_equal(store.items, items)
        assert np.array_equal(store.deltas, deltas)
        # The replayed chunking reproduces the ragged tail exactly.
        sizes = [len(c) for c in store.chunks(chunk)]
        assert sizes == [chunk, chunk, chunk // 2]
        tail = list(store.chunks(chunk))[-1]
        assert np.array_equal(tail.items, items[2 * chunk:])
        assert np.array_equal(tail.deltas, deltas[2 * chunk:])

    def test_context_manager_fails_loud_on_exception(self, tmp_path):
        """An exception inside the ``with`` block aborts instead of
        sealing: no header, store unreadable, exception propagated."""
        with pytest.raises(RuntimeError, match="mid-write"):
            with StreamWriter(tmp_path / "s") as writer:
                writer.append(np.arange(10))
                raise RuntimeError("mid-write")
        with pytest.raises(StoreFormatError):
            ColumnarStreamStore(tmp_path / "s")
        # The aborted writer stays closed.
        with pytest.raises(ValueError, match="closed"):
            writer.append(np.arange(5))

    def test_write_stream_failure_leaves_no_readable_store(self, tmp_path):
        # One-shot writes stay fail-loud: a source that dies mid-stream
        # must not seal a silently truncated store (contrast with the
        # spill tee, which seals deliberately).
        def dying():
            yield StreamChunk.insertions(np.arange(10))
            raise RuntimeError("source died")

        with pytest.raises(RuntimeError, match="source died"):
            write_stream(tmp_path / "s", dying())
        with pytest.raises(StoreFormatError):
            ColumnarStreamStore(tmp_path / "s")


class TestIngestIntegration:
    def test_ingest_replays_store_directly(self, tmp_path):
        rng = np.random.default_rng(3)
        items = rng.integers(0, 512, size=20_000)
        store = write_stream(tmp_path / "s", StreamChunk.insertions(items))
        direct = CountMinSketch(256, 3, np.random.default_rng(1))
        direct.update_batch(items)
        replayed = CountMinSketch(256, 3, np.random.default_rng(1))
        report = ingest(replayed, store, chunk_size=4096, prefetch=2)
        assert report.updates == len(items)
        assert np.array_equal(direct._table, replayed._table)

    def test_spill_store_round_trip(self, tmp_path):
        """ISSUE 3 satellite: tee a live stream into a store while
        feeding, then replay the store into a fresh estimator and get
        the identical state."""
        rng = np.random.default_rng(9)
        items = rng.integers(0, 512, size=15_000)
        live = CountMinSketch(128, 3, np.random.default_rng(2))
        report = ingest(
            live, StreamChunk.insertions(items), chunk_size=2048,
            spill_store=tmp_path / "spill",
            spill_params=StreamParameters(n=512, m=15_000),
        )
        assert report.spill_path == str(tmp_path / "spill")
        store = ColumnarStreamStore(tmp_path / "spill")
        assert store.updates == 15_000
        assert store.params.m == 15_000
        assert store.header["metadata"]["source"] == "api.ingest"
        replayed = CountMinSketch(128, 3, np.random.default_rng(2))
        ingest(replayed, store, chunk_size=2048)
        assert np.array_equal(live._table, replayed._table)

    def test_spill_store_with_engine_session(self, tmp_path):
        from repro.robust.distinct import RobustDistinctElements

        items = np.random.default_rng(5).integers(0, 256, size=8_000)
        est = RobustDistinctElements(n=256, m=8_000, eps=0.3,
                                     rng=np.random.default_rng(1))
        report = ingest(est, items, chunk_size=1024, engine="serial",
                        spill_store=tmp_path / "spill")
        assert report.mode == "serial"
        est2 = RobustDistinctElements(n=256, m=8_000, eps=0.3,
                                      rng=np.random.default_rng(1))
        report2 = ingest(est2, ColumnarStreamStore(tmp_path / "spill"),
                         chunk_size=1024, engine="serial")
        assert report2.final_estimate == report.final_estimate
        assert est2.switches == est.switches

    def test_spill_store_seals_on_mid_stream_failure(self, tmp_path):
        class _Fragile(CountMinSketch):
            def update_batch(self, items, deltas=None):
                if getattr(self, "_fed", 0) >= 2:
                    raise RuntimeError("estimator died")
                self._fed = getattr(self, "_fed", 0) + 1
                super().update_batch(items, deltas)

        est = _Fragile(64, 2, np.random.default_rng(0))
        items = np.arange(5_000)
        with pytest.raises(RuntimeError, match="estimator died"):
            ingest(est, items, chunk_size=1000,
                   spill_store=tmp_path / "spill")
        # Everything drawn before the failure is sealed and replayable.
        store = ColumnarStreamStore(tmp_path / "spill")
        assert store.updates == 3_000
