"""Columnar stream store: format, zero-copy reads, round-trip property.

The load-bearing property: for any stream (including turnstile deltas),
``write_stream`` → ``chunks()`` → replay reproduces the exact frequency
vector, at every chunk size.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ingest
from repro.sketches.countmin import CountMinSketch
from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamChunk, StreamParameters, Update
from repro.streams.store import (
    ColumnarStreamStore,
    StoreFormatError,
    write_stream,
)


def _freq(updates):
    f = FrequencyVector()
    for u in updates:
        f.update(u.item, u.delta)
    return f


updates_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=-5, max_value=5).filter(lambda d: d != 0),
    ).map(lambda t: Update(*t)),
    max_size=300,
)


class TestRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(updates=updates_strategy, chunk_size=st.integers(1, 64))
    def test_frequency_vector_equality(self, tmp_path_factory, updates,
                                       chunk_size):
        path = tmp_path_factory.mktemp("store") / "s"
        store = write_stream(path, updates, chunk_size=17)
        assert len(store) == len(updates)
        replayed = FrequencyVector()
        total = 0
        for chunk in store.chunks(chunk_size):
            replayed.update_batch(chunk.items, chunk.deltas)
            total += len(chunk)
        assert total == len(updates)
        assert replayed.to_dict() == _freq(updates).to_dict()

    @settings(max_examples=25, deadline=None)
    @given(updates=updates_strategy)
    def test_per_update_iteration_matches(self, tmp_path_factory, updates):
        path = tmp_path_factory.mktemp("store") / "s"
        store = write_stream(path, updates, chunk_size=13)
        got = [u for chunk in store.chunks(7) for u in chunk]
        assert got == list(updates)


class TestFormat:
    def test_unit_delta_stream_elides_delta_column(self, tmp_path):
        items = np.arange(100, dtype=np.int64)
        store = write_stream(tmp_path / "s", StreamChunk.insertions(items))
        assert store.unit_deltas
        assert store.deltas is None
        assert not (tmp_path / "s" / "deltas.bin").exists()
        chunk = next(store.chunks(64))
        assert np.all(chunk.deltas == 1)
        assert not chunk.deltas.flags.writeable

    def test_late_non_unit_delta_backfills(self, tmp_path):
        # 100 unit updates already written when the first delta=2 arrives.
        ups = [Update(i, 1) for i in range(100)] + [Update(5, 2)]
        store = write_stream(tmp_path / "s", ups, chunk_size=16)
        assert not store.unit_deltas
        deltas = np.asarray(store.deltas)
        assert np.all(deltas[:100] == 1) and deltas[100] == 2

    def test_chunks_are_zero_copy_views(self, tmp_path):
        items = np.arange(5000, dtype=np.int64)
        store = write_stream(tmp_path / "s", StreamChunk.insertions(items))
        chunks = list(store.chunks(1024))
        assert all(
            np.shares_memory(c.items, store.items) for c in chunks
        )
        assert isinstance(store.items, np.memmap)

    def test_header_params_round_trip(self, tmp_path):
        params = StreamParameters(n=1024, m=5000, M=7)
        store = write_stream(
            tmp_path / "s", [Update(1, 1)], params=params,
            metadata={"source": "unit-test"},
        )
        reopened = ColumnarStreamStore(store.path)
        assert reopened.params == params
        assert reopened.header["metadata"]["source"] == "unit-test"

    def test_empty_stream(self, tmp_path):
        store = write_stream(tmp_path / "s", [])
        assert len(store) == 0
        assert store.chunk_count() == 0
        assert list(store.chunks(8)) == []

    def test_chunk_count(self, tmp_path):
        store = write_stream(tmp_path / "s",
                             StreamChunk.insertions(np.arange(100)))
        assert store.chunk_count(30) == 4
        assert store.chunk_count(100) == 1

    def test_rejects_missing_or_foreign_directories(self, tmp_path):
        with pytest.raises(StoreFormatError, match="no header"):
            ColumnarStreamStore(tmp_path)
        (tmp_path / "header.json").write_text(json.dumps({"format": "csv"}))
        with pytest.raises(StoreFormatError, match="not a"):
            ColumnarStreamStore(tmp_path)
        (tmp_path / "header.json").write_text("{broken")
        with pytest.raises(StoreFormatError, match="unreadable"):
            ColumnarStreamStore(tmp_path)

    def test_rejects_newer_version(self, tmp_path):
        store = write_stream(tmp_path / "s", [Update(1, 1)])
        header = json.loads((store.path / "header.json").read_text())
        header["version"] = 99
        (store.path / "header.json").write_text(json.dumps(header))
        with pytest.raises(StoreFormatError, match="newer"):
            ColumnarStreamStore(store.path)

    def test_chunk_size_validation(self, tmp_path):
        store = write_stream(tmp_path / "s", [Update(1, 1)])
        with pytest.raises(ValueError):
            list(store.chunks(0))


class TestIngestIntegration:
    def test_ingest_replays_store_directly(self, tmp_path):
        rng = np.random.default_rng(3)
        items = rng.integers(0, 512, size=20_000)
        store = write_stream(tmp_path / "s", StreamChunk.insertions(items))
        direct = CountMinSketch(256, 3, np.random.default_rng(1))
        direct.update_batch(items)
        replayed = CountMinSketch(256, 3, np.random.default_rng(1))
        report = ingest(replayed, store, chunk_size=4096, prefetch=2)
        assert report.updates == len(items)
        assert np.array_equal(direct._table, replayed._table)
