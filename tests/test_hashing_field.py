"""Unit and property tests for the Mersenne-prime field arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.field import (
    MERSENNE_P,
    field_add,
    field_inv,
    field_mul,
    field_pow,
    mod_mersenne,
    poly_eval,
    poly_eval_many,
)

elements = st.integers(min_value=0, max_value=MERSENNE_P - 1)


class TestModMersenne:
    def test_small_values_unchanged(self):
        for x in (0, 1, 17, MERSENNE_P - 1):
            assert mod_mersenne(x) == x

    def test_wraps_at_p(self):
        assert mod_mersenne(MERSENNE_P) == 0
        assert mod_mersenne(MERSENNE_P + 5) == 5

    @given(st.integers(min_value=0, max_value=(1 << 122) - 1))
    def test_matches_builtin_mod(self, x):
        assert mod_mersenne(x) == x % MERSENNE_P

    def test_product_of_max_elements(self):
        x = (MERSENNE_P - 1) * (MERSENNE_P - 1)
        assert mod_mersenne(x) == x % MERSENNE_P


class TestFieldOps:
    @given(elements, elements)
    def test_add_matches_mod(self, a, b):
        assert field_add(a, b) == (a + b) % MERSENNE_P

    @given(elements, elements)
    def test_mul_matches_mod(self, a, b):
        assert field_mul(a, b) == (a * b) % MERSENNE_P

    @given(elements.filter(lambda a: a != 0))
    def test_inverse(self, a):
        assert field_mul(a, field_inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            field_inv(0)

    @given(elements, st.integers(min_value=0, max_value=100))
    def test_pow_matches_builtin(self, a, e):
        assert field_pow(a, e) == pow(a, e, MERSENNE_P)


class TestPolyEval:
    def test_constant(self):
        assert poly_eval([7], 123) == 7

    def test_linear(self):
        # 3 + 5x at x = 10
        assert poly_eval([3, 5], 10) == 53

    @given(
        st.lists(elements, min_size=1, max_size=6),
        st.lists(elements, min_size=1, max_size=5),
    )
    def test_many_matches_single(self, coeffs, xs):
        assert poly_eval_many(coeffs, xs) == [poly_eval(coeffs, x) for x in xs]

    @given(st.lists(elements, min_size=1, max_size=6), elements)
    def test_horner_matches_naive(self, coeffs, x):
        naive = sum(c * pow(x, j, MERSENNE_P) for j, c in enumerate(coeffs))
        assert poly_eval(coeffs, x) == naive % MERSENNE_P


class TestVectorizedKernels:
    """The batched-ingestion kernels match the exact scalar arithmetic."""

    @given(st.lists(elements, min_size=1, max_size=64))
    def test_mod_mersenne_vec(self, xs):
        import numpy as np

        from repro.hashing.field import mod_mersenne_vec

        arr = np.array(xs, dtype=np.uint64)
        expected = np.array([mod_mersenne(x) for x in xs], dtype=np.uint64)
        assert np.array_equal(mod_mersenne_vec(arr), expected)

    @given(
        st.lists(elements, min_size=1, max_size=32),
        st.lists(elements, min_size=1, max_size=32),
    )
    def test_field_mul_vec(self, aa, bb):
        import numpy as np

        from repro.hashing.field import field_mul_vec

        size = min(len(aa), len(bb))
        a = np.array(aa[:size], dtype=np.uint64)
        b = np.array(bb[:size], dtype=np.uint64)
        a_orig, b_orig = a.copy(), b.copy()
        got = field_mul_vec(a, b)
        expected = np.array(
            [field_mul(int(x), int(y)) for x, y in zip(a_orig, b_orig)],
            dtype=np.uint64,
        )
        assert np.array_equal(got, expected)
        # Inputs must not be mutated.
        assert np.array_equal(a, a_orig) and np.array_equal(b, b_orig)

    @given(
        st.lists(elements, min_size=1, max_size=6),
        st.lists(elements, min_size=1, max_size=32),
    )
    def test_poly_eval_vec(self, coeffs, xs):
        import numpy as np

        from repro.hashing.field import poly_eval_vec

        got = poly_eval_vec(coeffs, np.array(xs, dtype=np.uint64))
        assert got.tolist() == poly_eval_many(coeffs, xs)

    def test_boundary_values(self):
        import numpy as np

        from repro.hashing.field import field_mul_vec

        edge = [0, 1, 2, MERSENNE_P - 2, MERSENNE_P - 1]
        a = np.array(edge * len(edge), dtype=np.uint64)
        b = np.repeat(np.array(edge, dtype=np.uint64), len(edge))
        expected = [(int(x) * int(y)) % MERSENNE_P for x, y in zip(a, b)]
        assert field_mul_vec(a, b).tolist() == expected
