"""Unit and property tests for the Mersenne-prime field arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.field import (
    MERSENNE_P,
    field_add,
    field_inv,
    field_mul,
    field_pow,
    mod_mersenne,
    poly_eval,
    poly_eval_many,
)

elements = st.integers(min_value=0, max_value=MERSENNE_P - 1)


class TestModMersenne:
    def test_small_values_unchanged(self):
        for x in (0, 1, 17, MERSENNE_P - 1):
            assert mod_mersenne(x) == x

    def test_wraps_at_p(self):
        assert mod_mersenne(MERSENNE_P) == 0
        assert mod_mersenne(MERSENNE_P + 5) == 5

    @given(st.integers(min_value=0, max_value=(1 << 122) - 1))
    def test_matches_builtin_mod(self, x):
        assert mod_mersenne(x) == x % MERSENNE_P

    def test_product_of_max_elements(self):
        x = (MERSENNE_P - 1) * (MERSENNE_P - 1)
        assert mod_mersenne(x) == x % MERSENNE_P


class TestFieldOps:
    @given(elements, elements)
    def test_add_matches_mod(self, a, b):
        assert field_add(a, b) == (a + b) % MERSENNE_P

    @given(elements, elements)
    def test_mul_matches_mod(self, a, b):
        assert field_mul(a, b) == (a * b) % MERSENNE_P

    @given(elements.filter(lambda a: a != 0))
    def test_inverse(self, a):
        assert field_mul(a, field_inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            field_inv(0)

    @given(elements, st.integers(min_value=0, max_value=100))
    def test_pow_matches_builtin(self, a, e):
        assert field_pow(a, e) == pow(a, e, MERSENNE_P)


class TestPolyEval:
    def test_constant(self):
        assert poly_eval([7], 123) == 7

    def test_linear(self):
        # 3 + 5x at x = 10
        assert poly_eval([3, 5], 10) == 53

    @given(
        st.lists(elements, min_size=1, max_size=6),
        st.lists(elements, min_size=1, max_size=5),
    )
    def test_many_matches_single(self, coeffs, xs):
        assert poly_eval_many(coeffs, xs) == [poly_eval(coeffs, x) for x in xs]

    @given(st.lists(elements, min_size=1, max_size=6), elements)
    def test_horner_matches_naive(self, coeffs, x):
        naive = sum(c * pow(x, j, MERSENNE_P) for j, c in enumerate(coeffs))
        assert poly_eval(coeffs, x) == naive % MERSENNE_P
