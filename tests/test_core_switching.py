"""Tests for the sketch-switching framework (Algorithm 1 / Lemma 3.6)."""

import numpy as np
import pytest

from repro.core.sketch_switching import (
    AdditiveSwitchingEstimator,
    SketchExhaustedError,
    SketchSwitchingEstimator,
    restart_ring_size,
)
from repro.sketches.base import Sketch
from repro.sketches.kmv import KMVSketch


class _ExactCounter(Sketch):
    """Exact F1 counter as a deterministic 'tracker' test double."""

    supports_deletions = True

    def __init__(self, rng=None):
        self._count = 0.0

    def update(self, item: int, delta: int = 1) -> None:
        self._count += delta

    def query(self) -> float:
        return self._count

    def space_bits(self) -> int:
        return 64


class TestRestartRingSize:
    def test_shrinks_with_eps(self):
        assert restart_ring_size(0.5) < restart_ring_size(0.05)

    def test_growth_dominates_prefix(self):
        import math

        for eps in (0.1, 0.2, 0.5):
            size = restart_ring_size(eps, constant=1.0)
            growth = (1 + eps / 2) ** size
            assert growth >= 100.0 / eps * 0.99

    def test_invalid(self):
        with pytest.raises(ValueError):
            restart_ring_size(0.0)


class TestSketchSwitching:
    def test_publishes_within_band(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=200, eps=0.2,
            rng=np.random.default_rng(0),
        )
        for t in range(1, 300):
            out = sw.process_update(0, 1)
            assert abs(out - t) <= 0.2 * t + 1e-9

    def test_output_changes_rarely(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=200, eps=0.2,
            rng=np.random.default_rng(1),
        )
        outputs = [sw.process_update(0, 1) for _ in range(1000)]
        distinct_runs = 1 + sum(
            1 for a, b in zip(outputs, outputs[1:]) if a != b
        )
        # log_{1.1}(1000) ~ 72 >> distinct output values needed.
        assert distinct_runs < 90
        assert sw.switches == distinct_runs

    def test_initial_output_is_zero(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=4, eps=0.5,
            rng=np.random.default_rng(2),
        )
        assert sw.query() == 0.0

    def test_exhaustion_raises(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=2, eps=0.1,
            rng=np.random.default_rng(3),
        )
        with pytest.raises(SketchExhaustedError):
            for _ in range(100):
                sw.process_update(0, 1)

    def test_exhaustion_clamp_mode(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=2, eps=0.1,
            rng=np.random.default_rng(4), on_exhausted="clamp",
        )
        for _ in range(100):
            sw.process_update(0, 1)  # must not raise
        assert sw.query() > 0

    def test_restart_mode_reuses_ring(self):
        # The ring must satisfy the Theorem 4.1 size requirement, or the
        # restarted copies miss a non-negligible prefix of the stream.
        eps = 0.4
        ring = restart_ring_size(eps, constant=1.0)
        sw = SketchSwitchingEstimator(
            lambda r: KMVSketch(256, r), copies=ring, eps=eps,
            rng=np.random.default_rng(5), restart=True,
        )
        worst = 0.0
        for i in range(4000):
            out = sw.process_update(i, 1)
            truth = i + 1
            if truth > 50:
                worst = max(worst, abs(out - truth) / truth)
        assert sw.switches > ring  # ring wrapped at least once
        assert worst <= eps + 1e-9

    def test_undersized_restart_ring_degrades(self):
        """Control for the ring-size requirement: a tiny ring loses the
        prefix mass and the estimate collapses below the error band."""
        sw = SketchSwitchingEstimator(
            lambda r: KMVSketch(256, r), copies=4, eps=0.4,
            rng=np.random.default_rng(6), restart=True,
        )
        worst = 0.0
        for i in range(4000):
            out = sw.process_update(i, 1)
            if i > 1000:
                worst = max(worst, abs(out - (i + 1)) / (i + 1))
        assert worst > 0.4

    def test_restart_disables_deletions(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=4, eps=0.5,
            rng=np.random.default_rng(6), restart=True,
        )
        assert not sw.supports_deletions

    def test_space_sums_copies(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=5, eps=0.5,
            rng=np.random.default_rng(7),
        )
        assert sw.space_bits() == 5 * 64 + 128

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SketchSwitchingEstimator(lambda r: _ExactCounter(), 0, 0.1, rng)
        with pytest.raises(ValueError):
            SketchSwitchingEstimator(lambda r: _ExactCounter(), 1, 1.5, rng)
        with pytest.raises(ValueError):
            SketchSwitchingEstimator(
                lambda r: _ExactCounter(), 1, 0.1, rng, on_exhausted="explode"
            )


class _ExactEntropyLike(Sketch):
    """Deterministic additive test double: reports log2(t + 1)."""

    supports_deletions = False

    def __init__(self):
        self._t = 0

    def update(self, item: int, delta: int = 1) -> None:
        self._t += 1

    def query(self) -> float:
        import math

        return math.log2(self._t + 1)

    def space_bits(self) -> int:
        return 64


class TestAdditiveSwitching:
    def test_additive_band(self):
        sw = AdditiveSwitchingEstimator(
            lambda r: _ExactEntropyLike(), copies=64, eps=0.3,
            rng=np.random.default_rng(8),
        )
        import math

        for t in range(1, 500):
            out = sw.process_update(0, 1)
            assert abs(out - math.log2(t + 1)) <= 0.3 + 1e-9

    def test_switch_count_bounded_by_range(self):
        sw = AdditiveSwitchingEstimator(
            lambda r: _ExactEntropyLike(), copies=100, eps=0.5,
            rng=np.random.default_rng(9),
        )
        for _ in range(1000):
            sw.process_update(0, 1)
        import math

        # log2(1001) / (eps/2) ~ 40 switches maximum.
        assert sw.switches <= math.log2(1001) / 0.25 + 2

    def test_exhaustion_raises(self):
        sw = AdditiveSwitchingEstimator(
            lambda r: _ExactEntropyLike(), copies=2, eps=0.1,
            rng=np.random.default_rng(10),
        )
        with pytest.raises(SketchExhaustedError):
            for _ in range(1000):
                sw.process_update(0, 1)

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AdditiveSwitchingEstimator(lambda r: _ExactEntropyLike(), 0, 0.1, rng)
        with pytest.raises(ValueError):
            AdditiveSwitchingEstimator(lambda r: _ExactEntropyLike(), 1, -1, rng)


class TestExhaustionPaths:
    """The on_exhausted="clamp" degradation modes and ring reuse."""

    def test_plain_clamp_keeps_last_copy_active(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=3, eps=0.2,
            rng=np.random.default_rng(1), on_exhausted="clamp",
        )
        for _ in range(2000):
            sw.process_update(0, 1)
        # All copies burned long ago, yet the estimator keeps tracking by
        # clamping to the last copy; switches keep counting past `copies`.
        assert sw.switches > sw.copies
        assert sw.active_index == sw.copies - 1
        assert sw.query() == pytest.approx(2000.0, rel=0.2 / 2 + 1e-9)

    def test_plain_clamp_never_raises_on_long_streams(self):
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=1, eps=0.5,
            rng=np.random.default_rng(2), on_exhausted="clamp",
        )
        for _ in range(500):
            sw.process_update(0, 1)  # must not raise

    def test_additive_clamp_keeps_tracking(self):
        import math

        sw = AdditiveSwitchingEstimator(
            lambda r: _ExactEntropyLike(), copies=2, eps=0.1,
            rng=np.random.default_rng(3), on_exhausted="clamp",
        )
        for t in range(1, 1500):
            out = sw.process_update(0, 1)
            assert abs(out - math.log2(t + 1)) <= 0.1 + 1e-9
        assert sw.switches > sw.copies

    def test_clamp_chunked_matches_per_item(self):
        def make(mode_copies):
            return SketchSwitchingEstimator(
                lambda r: _ExactCounter(), copies=mode_copies, eps=0.2,
                rng=np.random.default_rng(4), on_exhausted="clamp",
            )

        a, b = make(3), make(3)
        for _ in range(1500):
            a.process_update(0, 1)
        items = np.zeros(1500, dtype=np.int64)
        for lo in range(0, 1500, 128):
            b.update_chunk(items[lo:lo + 128])
        assert a.switches == b.switches
        assert a.query() == b.query()

    def test_invalid_on_exhausted_rejected(self):
        with pytest.raises(ValueError):
            SketchSwitchingEstimator(
                lambda r: _ExactCounter(), copies=2, eps=0.2,
                rng=np.random.default_rng(0), on_exhausted="ignore",
            )
        with pytest.raises(ValueError):
            AdditiveSwitchingEstimator(
                lambda r: _ExactEntropyLike(), copies=2, eps=0.2,
                rng=np.random.default_rng(0), on_exhausted="ignore",
            )


class TestRestartRingReuse:
    def test_full_cycle_replaces_every_slot(self):
        ring = 5
        sw = SketchSwitchingEstimator(
            lambda r: _ExactCounter(), copies=ring, eps=0.2,
            rng=np.random.default_rng(5), restart=True,
        )
        originals = list(sw._sketches)
        for _ in range(5000):
            sw.process_update(0, 1)
        # The ring cycled at least once: every slot holds a restarted copy
        # and the switch count exceeds the ring size.
        assert sw.switches > ring
        assert all(s is not o for s, o in zip(sw._sketches, originals))
        # Restarted copies only saw a suffix, so each restarted counter is
        # strictly behind the true count.
        assert all(s.query() < 5000 for s in sw._sketches)

    def test_restart_rng_derivation_is_deterministic(self):
        def make():
            return SketchSwitchingEstimator(
                lambda r: KMVSketch(16, r), copies=4, eps=0.3,
                rng=np.random.default_rng(6), restart=True,
            )

        a, b = make(), make()
        for t in range(3000):
            a.process_update(t % 512, 1)
            b.process_update(t % 512, 1)
        assert a.switches == b.switches
        assert a.query() == b.query()
        # Identical seeding must reproduce identical ring states.
        for sa, sb in zip(a._sketches, b._sketches):
            assert sa.state_fingerprint() == sb.state_fingerprint()
