"""E.Flip — the flip-number bounds that drive both frameworks.

Paper claims: Corollary 3.5 (Fp flip number O(eps^-1 log n) insertion
only), Proposition 7.2 (2^H flip number O~(eps^-3 log^3)), Lemma 8.2
(bounded-deletion Lp flip number O(p alpha eps^-p log n)).

Measured: exact flip numbers (the O(m log m) Fenwick DP) of concrete
trajectories across stream families, against each analytic bound; plus
the benchmark of the flip-number computation itself.
"""

import numpy as np

from repro.core.flip_number import (
    bounded_deletion_flip_number_bound,
    entropy_flip_number_bound,
    fp_flip_number_bound,
    lp_norm_flip_number_bound,
    measured_flip_number,
)
from repro.streams.generators import (
    bounded_deletion_stream,
    distinct_ramp_stream,
    phased_support_stream,
    uniform_stream,
    zipfian_stream,
)
from repro.streams.validators import function_trajectory
from tables import emit, format_row

N = 256
M = 2000
EPS = 0.25
WIDTHS = (34, 14, 12)


def test_flip_numbers_vs_bounds(benchmark):
    rng = np.random.default_rng(0)
    cases = []

    def run_all():
        streams = {
            "F0 / fresh items": (
                distinct_ramp_stream(M, M), lambda f: f.f0(),
                fp_flip_number_bound(EPS, M, 0, M=M)),
            "F0 / uniform": (
                uniform_stream(N, M, rng), lambda f: f.f0(),
                fp_flip_number_bound(EPS, N, 0, M=M)),
            "L2 norm / zipfian": (
                zipfian_stream(N, M, rng), lambda f: f.lp(2),
                lp_norm_flip_number_bound(EPS, N, 2, M=M)),
            "F2 moment / zipfian": (
                zipfian_stream(N, M, rng), lambda f: f.fp(2),
                fp_flip_number_bound(EPS, N, 2, M=M)),
            "2^H / phased": (
                phased_support_stream(N, M, rng),
                lambda f: 2 ** f.shannon_entropy(),
                entropy_flip_number_bound(EPS, N, M, M=M)),
            "L1 / bounded-deletion a=4": (
                bounded_deletion_stream(N, M, rng, alpha=4.0),
                lambda f: f.lp(1),
                bounded_deletion_flip_number_bound(EPS, N, 1, 4.0, M=M)),
        }
        for name, (updates, fn, bound) in streams.items():
            traj = function_trajectory(updates, fn)
            measured = measured_flip_number(traj, EPS)
            cases.append((name, measured, bound))
        return cases

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [format_row(("trajectory", "measured", "bound"), WIDTHS)]
    for name, measured, bound in cases:
        rows.append(format_row((name, measured, bound), WIDTHS))
        assert measured <= bound, name
    rows.append("")
    rows.append(f"eps={EPS}; all measured flip numbers within the paper's "
                "analytic bounds")
    emit("flip_number_bounds", rows)


def test_flip_number_computation_speed(benchmark):
    """The O(m log m) Fenwick DP on a 20k-point oscillating trajectory."""
    rng = np.random.default_rng(1)
    values = np.abs(np.cumsum(rng.normal(size=20_000))) + 1.0

    result = benchmark(measured_flip_number, list(values), 0.1)
    assert result >= 1
