"""E.CM — extension attack: adaptive collision inflation of CountMin.

A second negative result in the spirit of Section 9: CountMin point
queries have a static (eps * F1) overestimate guarantee, but an adaptive
adversary that probes which insertions move a victim's estimate can
concentrate collisions and inflate the victim without bound, while the
deterministic Misra–Gries summary (robust by determinism, Section 1) and
the exact counter are immune.

Measured: rounds until the victim's estimate exceeds 5x its true count,
across sketch widths; immunity of the deterministic baselines.
"""

import numpy as np

from repro.adversary.attacks import CountMinInflationAttack, VictimPointQueryGame
from repro.sketches.countmin import CountMinSketch
from repro.sketches.exact import ExactHeavyHitters
from tables import emit, format_row

WIDTHS = (22, 12, 16)


def test_countmin_inflation_attack(benchmark):
    rows = [format_row(("sketch", "width x rows", "fooled at round"), WIDTHS)]
    outcomes = []

    def run_all():
        for width, rows_ in ((32, 3), (64, 4)):
            cm = CountMinSketch(width=width, rows=rows_,
                                rng=np.random.default_rng(width))
            adv = CountMinInflationAttack(
                victim=0, n=100_000, rng=np.random.default_rng(1),
                hammer=64,
            )
            game = VictimPointQueryGame(victim=0, threshold_factor=5.0)
            fooled_at = game.run(cm, adv, max_rounds=12_000)
            outcomes.append(("CountMin", f"{width}x{rows_}", fooled_at))
            rows.append(format_row(
                ("CountMin", f"{width}x{rows_}",
                 fooled_at if fooled_at else "never"), WIDTHS))
        # Deterministic control.
        exact = ExactHeavyHitters(eps=0.5)
        adv = CountMinInflationAttack(
            victim=0, n=100_000, rng=np.random.default_rng(2), hammer=16
        )
        game = VictimPointQueryGame(victim=0, threshold_factor=2.0)
        immune = game.run(exact, adv, max_rounds=3000)
        outcomes.append(("exact (determ.)", "-", immune))
        rows.append(format_row(
            ("exact (determ.)", "-", immune if immune else "never"), WIDTHS))
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append("adaptive collision probing inflates CountMin point "
                "queries; deterministic algorithms are immune (Section 1)")
    emit("attack_countmin", rows)

    cm_results = [o for o in outcomes if o[0] == "CountMin"]
    assert all(o[2] is not None for o in cm_results), "attack failed"
    assert outcomes[-1][2] is None  # the exact counter never budges
