"""Shared reporting helpers for the experiment benchmarks.

Every benchmark regenerates one Table-1 row or theorem-level experiment and
emits a plain-text table to ``benchmarks/out/<experiment>.txt`` (and to
stdout, visible with ``pytest -s``).  EXPERIMENTS.md records the captured
outputs next to the paper's claims.

Stream replay delegates to :mod:`repro.experiments.runner`, the single
measurement protocol: pass ``chunk_size`` to run an *oblivious* stream
through the vectorized ``update_batch`` pipeline (judged at chunk
boundaries, items/sec recorded); leave it ``None`` for the historical
per-item replay.  Adversarial-game benchmarks always stay per item.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.runner import RunStats
from repro.experiments.runner import run_additive as _run_additive
from repro.experiments.runner import run_relative as _run_relative

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


def emit(experiment: str, lines: list[str]) -> str:
    """Write (and print) the experiment report; return the text."""
    OUT_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (OUT_DIR / f"{experiment}.txt").write_text(text)
    print(f"\n=== {experiment} ===")
    print(text)
    return text


def emit_json(experiment: str, payload: dict) -> None:
    """Write a machine-readable result next to the text report.

    ``benchmarks/run_all.py`` collects these into ``BENCH_ingest.json``
    so the perf trajectory is tracked across PRs.
    """
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{experiment}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def format_row(cols, widths) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths))


def run_stream_stats(
    algo, updates, truth_fn, skip: int = 100, floor: float = 0.0,
    chunk_size: int | None = None,
) -> RunStats:
    """Full :class:`RunStats` for a relative-error replay."""
    return _run_relative(
        algo, updates, truth_fn, skip=skip, floor=floor, chunk_size=chunk_size
    )


def run_stream(algo, updates, truth_fn, skip: int = 100, floor: float = 0.0,
               chunk_size: int | None = None):
    """Feed a stream; return (worst rel err, mean rel err, secs, space_bits).

    Errors are judged against the exact ground truth (after every update,
    or at chunk boundaries when ``chunk_size`` is set), starting at
    ``skip`` and only when the truth exceeds ``floor``.
    """
    stats = run_stream_stats(
        algo, updates, truth_fn, skip=skip, floor=floor, chunk_size=chunk_size
    )
    return stats.worst_error, stats.mean_error, stats.seconds, stats.space_bits


def run_additive(algo, updates, truth_fn, skip: int = 100,
                 chunk_size: int | None = None):
    """Like :func:`run_stream` but with additive error (entropy)."""
    stats = _run_additive(
        algo, updates, truth_fn, skip=skip, chunk_size=chunk_size
    )
    return stats.worst_error, stats.mean_error, stats.seconds, stats.space_bits


def kib(bits: int | float) -> str:
    """Human-readable space."""
    return f"{bits / 8 / 1024:.1f} KiB"
