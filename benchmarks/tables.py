"""Shared reporting helpers for the experiment benchmarks.

Every benchmark regenerates one Table-1 row or theorem-level experiment and
emits a plain-text table to ``benchmarks/out/<experiment>.txt`` (and to
stdout, visible with ``pytest -s``).  EXPERIMENTS.md records the captured
outputs next to the paper's claims.
"""

from __future__ import annotations

import pathlib
import time

from repro.streams.frequency import FrequencyVector

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


def emit(experiment: str, lines: list[str]) -> str:
    """Write (and print) the experiment report; return the text."""
    OUT_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (OUT_DIR / f"{experiment}.txt").write_text(text)
    print(f"\n=== {experiment} ===")
    print(text)
    return text


def format_row(cols, widths) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths))


def run_stream(algo, updates, truth_fn, skip: int = 100, floor: float = 0.0):
    """Feed a stream; return (worst rel err, mean rel err, secs, space_bits).

    Errors are judged against the exact ground truth after every update,
    starting at ``skip`` and only when the truth exceeds ``floor``.
    """
    truth = FrequencyVector()
    worst = 0.0
    total = 0.0
    judged = 0
    start = time.perf_counter()
    for t, u in enumerate(updates):
        truth.update(u.item, u.delta)
        out = algo.process_update(u.item, u.delta)
        g = truth_fn(truth)
        if t >= skip and abs(g) > floor:
            err = abs(out - g) / abs(g)
            worst = max(worst, err)
            total += err
            judged += 1
    elapsed = time.perf_counter() - start
    mean = total / judged if judged else 0.0
    return worst, mean, elapsed, algo.space_bits()


def run_additive(algo, updates, truth_fn, skip: int = 100):
    """Like :func:`run_stream` but with additive error (entropy)."""
    truth = FrequencyVector()
    worst = 0.0
    total = 0.0
    judged = 0
    start = time.perf_counter()
    for t, u in enumerate(updates):
        truth.update(u.item, u.delta)
        out = algo.process_update(u.item, u.delta)
        g = truth_fn(truth)
        if t >= skip:
            err = abs(out - g)
            worst = max(worst, err)
            total += err
            judged += 1
    elapsed = time.perf_counter() - start
    mean = total / judged if judged else 0.0
    return worst, mean, elapsed, algo.space_bits()


def kib(bits: int | float) -> str:
    """Human-readable space."""
    return f"{bits / 8 / 1024:.1f} KiB"
