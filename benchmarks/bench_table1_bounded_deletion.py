"""T1.BD — Table 1 row 7: Fp with alpha-bounded deletions.

Paper claim (Thm 8.3 / 1.11): robust Fp estimation in
O(alpha eps^-(2+p) log^3 n) bits, via Lemma 8.2's flip-number bound
O(p alpha eps^-p log n) — linear in alpha.

Measured, for alpha in {2, 8}: F1 tracking error of the Theorem 8.3
algorithm on by-construction alpha-bounded-deletion streams, Lemma 8.2's
bound vs the measured flip number, and space (which grows with alpha
through the flip-number-driven delta_0).
"""

import numpy as np

from repro.core.flip_number import (
    bounded_deletion_flip_number_bound,
    measured_flip_number,
)
from repro.robust.bounded_deletion import RobustBoundedDeletionFp
from repro.streams.generators import bounded_deletion_stream
from repro.streams.validators import check_bounded_deletion, function_trajectory
from tables import emit, format_row, kib, run_stream

N = 128
M = 1600
EPS = 0.35
P = 1.0
WIDTHS = (8, 14, 14, 12, 12)


def test_table1_bounded_deletion_row(benchmark):
    rows = [format_row(
        ("alpha", "flips (meas.)", "flip bound", "worst err", "space"),
        WIDTHS)]
    results = []

    def run_all():
        for alpha in (2.0, 8.0):
            updates = bounded_deletion_stream(
                N, M, np.random.default_rng(int(alpha)), alpha=alpha, p=P
            )
            assert check_bounded_deletion(updates, alpha, p=P)
            traj = function_trajectory(updates, lambda f: f.lp(P))
            flips = measured_flip_number(traj, EPS / 2)
            bound = bounded_deletion_flip_number_bound(
                EPS / 2, N, P, alpha, M=M
            )
            algo = RobustBoundedDeletionFp(
                p=P, n=N, m=M, eps=EPS, alpha=alpha,
                rng=np.random.default_rng(50 + int(alpha)),
            )
            worst, _, _, bits = run_stream(
                algo, updates, lambda f: f.fp(P), skip=100, floor=20.0
            )
            results.append((alpha, flips, bound, worst, bits))
            rows.append(format_row(
                (alpha, flips, bound, f"{worst:.3f}", kib(bits)), WIDTHS))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(f"n={N}, m={M}, eps={EPS}, p={P}; streams satisfy "
                "Definition 8.1 by construction")
    emit("table1_row7_bounded_deletion", rows)

    for alpha, flips, bound, worst, _ in results:
        assert flips <= bound, f"Lemma 8.2 violated at alpha={alpha}"
        assert worst <= EPS + 0.1, f"alpha={alpha}"
    # Lemma 8.2 shape: the bound grows with alpha.
    assert results[1][2] > results[0][2]
