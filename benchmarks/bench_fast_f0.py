"""E.Fast — Lemma 5.2 / Theorem 5.4: fast distinct-elements updates.

Paper claim: Algorithm 2's update time depends on delta only through
poly(log log) factors, so it absorbs the computation-paths delta inflation
(delta_0 ~ n^{-(1/eps) log n}); the standard approach (median of
O(log 1/delta) independent sketches) would pay the log(1/delta) factor in
*time* per update.

Measured with pytest-benchmark: per-update time of (a) the level-list
sketch at delta = 2^-30 (the capped computation-paths regime), direct and
batched, vs (b) a median stack of KMV sketches sized for the same delta.
Expected shape: the level-list update time is flat in delta while the
median stack's grows ~ log(1/delta).
"""

import numpy as np
import pytest

from repro.core.tracking import MedianTracker, median_copies
from repro.sketches.fast_f0 import FastF0Sketch
from repro.sketches.kmv import KMVSketch
from tables import emit

N = 1 << 14
DELTA0 = 2.0**-30
EPS = 0.25


def _feed(sketch, count, start=0):
    for i in range(start, start + count):
        sketch.update(i)


def test_fast_f0_update_time(benchmark):
    sketch = FastF0Sketch(n=N, eps=EPS, delta=DELTA0,
                          rng=np.random.default_rng(0))
    _feed(sketch, 2000)  # warm past the exact regime
    counter = [2000]

    def burst():
        _feed(sketch, 100, start=counter[0])
        counter[0] += 100

    benchmark(burst)


def test_fast_f0_batched_update_time(benchmark):
    sketch = FastF0Sketch(n=N, eps=EPS, delta=DELTA0,
                          rng=np.random.default_rng(1), batch=True)
    _feed(sketch, 2000)
    counter = [2000]

    def burst():
        _feed(sketch, 100, start=counter[0])
        counter[0] += 100

    benchmark(burst)


def test_median_stack_update_time(benchmark):
    copies = median_copies(DELTA0, base_failure=0.25, constant=0.25)
    stack = MedianTracker(
        lambda r: KMVSketch.for_accuracy(EPS, 0.25, r, constant=2.0),
        copies=copies, rng=np.random.default_rng(2),
    )
    _feed(stack, 2000)
    counter = [2000]

    def burst():
        _feed(stack, 100, start=counter[0])
        counter[0] += 100

    benchmark(burst)


def test_delta_dependence_of_update_time(benchmark):
    """Flat-in-delta for Algorithm 2 vs log(1/delta) for the median stack."""
    report = ["per-update cost vs delta (seconds per 4000 updates):"]
    benchmark.pedantic(lambda: _sweep(report), rounds=1, iterations=1)
    emit("fast_f0_update_time", report)


def _sweep(report):
    import time

    for log2_inv_delta in (10, 30):
        delta = 2.0**-log2_inv_delta
        fast = FastF0Sketch(n=N, eps=EPS, delta=delta,
                            rng=np.random.default_rng(3))
        copies = median_copies(delta, base_failure=0.25, constant=0.25)
        stack = MedianTracker(
            lambda r: KMVSketch.for_accuracy(EPS, 0.25, r, constant=2.0),
            copies=copies, rng=np.random.default_rng(4),
        )
        t0 = time.perf_counter()
        _feed(fast, 4000)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        _feed(stack, 4000)
        t_stack = time.perf_counter() - t0
        report.append(
            f"  log2(1/delta)={log2_inv_delta}: level-list {t_fast:.3f}s "
            f"(d={fast.d}), median-stack {t_stack:.3f}s ({copies} copies)"
        )
