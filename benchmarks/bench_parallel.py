"""PARALLEL — the execution-engine throughput gate (ISSUE 2 tentpole,
extended with the ISSUE 3 additive/entropy band case).

Replays the same 1M-update oblivious uniform stream through the robust
sketch-switching distinct-elements estimator three ways:

* **PR 1 serial batched** — the ``update_batch`` path this engine is
  measured against (the `BENCH_ingest.json` robust-switching baseline);
* **SerialEngine** — same process, with the shard plan's shared-work
  hoists (chunk deduped once, first-occurrence filtering over the
  duplicate-insensitive KMV copies);
* **ProcessEngine(>=4 workers)** — copies sharded across forked workers
  over shared-memory chunk buffers.

Asserts bit-for-bit equivalence (identical published outputs and switch
counts) across all three, and the acceptance gate: the process engine on
>= 4 workers is at least 2x the PR 1 serial batched path.

The **entropy** case replays a uniform stream through the robust
additive-band entropy tracker (Theorem 7.3) the same three ways — the
additive band runs the identical switching protocol since the
band-policy refactor, so the engine covers it too.  Here the shared-work
hoist is chunk aggregation (the Clifford–Cosma copies consume a linear
map of per-distinct-item delta sums, so the chunk is aggregated once for
all copies instead of once per copy); equivalence is again exact, and
the same >= 2x gate applies.  Also measures per-partial merge sharding
(CountMin) and the columnar-store + prefetch replay path, asserting
exactness for both.

The **stacked** case (ISSUE 6 tentpole) runs one F2 switching estimator
over k CountSketch copies twice — per-object twin vs stacked copy
groups, where the group's counter tables live in one ``(k, rows, width)``
block and every chunk is hashed once for all k planes.  Outputs and
switch counts must be bit-for-bit identical; the stacked run must be at
least 2x the twin.

The **traced** case (ISSUE 7) repeats the stacked run with full
telemetry — every switch, SVT charge, and band test streamed to a JSONL
sink (``out/trace_sample.jsonl``, uploaded as a CI artifact) plus the
metrics registry — asserting bit-for-bit identical outputs and at most
``MAX_TELEMETRY_OVERHEAD`` throughput cost; the *disabled*-telemetry
cost is covered by every other row, which runs with the no-op hub that
is the default.

Emits ``out/parallel_engine.{txt,json}``; ``run_all.py`` folds the JSON
into ``BENCH_parallel.json`` at the repo root, and
``benchmarks/check_regression.py`` gates CI on the speedup columns
against the committed baseline.
"""

import tempfile
import time

import numpy as np

from repro.core.bands import MultiplicativeBand
from repro.core.disciplines import PrivateAggregateDiscipline
from repro.core.sketch_switching import SwitchingEstimator
from repro.engine import ProcessEngine, SerialEngine, fork_available
from repro.robust.distinct import RobustDistinctElements
from repro.robust.entropy import RobustEntropy
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamChunk, StreamParameters
from repro.streams.sources import GeneratorChunkSource
from repro.streams.store import write_stream
from tables import OUT_DIR, emit, emit_json, format_row

N = 1 << 14
M = 1_000_000
CHUNK = 65536
EPS = 0.25
WORKERS = 4
WIDTHS = (30, 14, 10, 10, 10)
MIN_PARALLEL_SPEEDUP = 2.0

# Entropy (additive band) case: a small universe gives chunk aggregation
# — the hoist the engine adds for linear-map sketches — its headroom
# (65536-update chunks collapse to <= 256 distinct items), the long
# stream amortizes the one crossing-heavy ramp chunk that every path
# pays identically, and explicit copies/row constants keep the replay
# laptop-sized.
ENT_N = 1 << 8
ENT_M = 2_000_000
ENT_EPS = 0.6
ENT_COPIES = 24

# Stacked copy groups case: many copies of a small CountSketch make the
# per-copy Python dispatch the dominant cost on the object path, which
# is exactly the overhead the stacked kernels amortize; the small
# universe keeps chunks aggregation-friendly like the entropy case.
STK_N = 1 << 8
STK_M = 2_000_000
STK_COPIES = 24
STK_WIDTH = 256
STK_ROWS = 5
MIN_STACKED_SPEEDUP = 2.0

# Spec-shipped chunk sources (ISSUE 8): driving the stacked DP workload
# from a ChunkSource description instead of staged bytes must be at
# least this much faster than the bytes-shipped stacked serial row.
MIN_SPEC_SPEEDUP = 1.3

# Full tracing (every protocol event to a JSONL sink + live metrics) may
# cost at most this fraction of stacked-run throughput.  Events ride
# switch/boundary branches, never the per-item hot loop, so the bound is
# loose headroom, not a target.
MAX_TELEMETRY_OVERHEAD = 0.25


def _robust(seed=11):
    return RobustDistinctElements(
        n=N, m=M, eps=EPS, rng=np.random.default_rng(seed)
    )


def _robust_entropy(seed=13):
    return RobustEntropy(
        n=ENT_N, m=ENT_M, eps=ENT_EPS, rng=np.random.default_rng(seed),
        copies=ENT_COPIES, cc_constant=0.5,
    )


def _stacked_switching(stacked):
    return SwitchingEstimator(
        factory=lambda rng: CountSketch(
            STK_WIDTH, STK_ROWS, rng, track_candidates=0
        ),
        copies=STK_COPIES, rng=np.random.default_rng(42),
        band=MultiplicativeBand(0.9),
        discipline=PrivateAggregateDiscipline(noise_scale=0.01),
        stacked=stacked,
    )


def _run_engine(est, items, engine):
    m = len(items)
    start = time.perf_counter()
    if engine is None:
        for lo in range(0, m, CHUNK):
            est.update_batch(StreamChunk.insertions(items[lo:lo + CHUNK]))
    else:
        with engine.session(est) as session:
            for lo in range(0, m, CHUNK):
                session.feed(items[lo:lo + CHUNK])
    return m / (time.perf_counter() - start)


def test_parallel_engine_throughput(benchmark):
    rng = np.random.default_rng(2024)
    items = rng.integers(0, N, size=M)
    truth = FrequencyVector()
    truth.update_batch(items)

    rows = [format_row(
        ("path", "items/s", "speedup", "switches", "rel err"), WIDTHS
    )]
    payload = {
        "n": N, "m": M, "chunk": CHUNK, "eps": EPS, "workers": WORKERS,
        "entropy": {"n": ENT_N, "m": ENT_M, "eps": ENT_EPS,
                    "copies": ENT_COPIES},
        "results": {},
    }

    def run_all():
        contenders = [("pr1_serial_batched", None),
                      ("engine_serial", SerialEngine())]
        if fork_available():
            contenders.append(
                (f"engine_process_{WORKERS}w", ProcessEngine(workers=WORKERS))
            )
        results = {}
        for name, engine in contenders:
            est = _robust()
            rate = _run_engine(est, items, engine)
            results[name] = (rate, est)
            err = abs(est.query() - truth.f0()) / truth.f0()
            speedup = rate / results["pr1_serial_batched"][0]
            payload["results"][name] = {
                "items_per_sec": round(rate),
                "speedup_vs_pr1": round(speedup, 2),
                "switches": est.switches,
                "final_estimate": round(est.query(), 1),
                "final_relative_error": round(err, 4),
            }
            rows.append(format_row(
                (name, f"{rate:,.0f}", f"{speedup:.2f}x", est.switches,
                 f"{err:.3f}"), WIDTHS,
            ))

        # The engines must be *equivalent*, not just fast: identical
        # published outputs and switch counts.
        base = results["pr1_serial_batched"][1]
        for name, (_, est) in results.items():
            assert est.query() == base.query(), f"{name} diverged in output"
            assert est.switches == base.switches, f"{name} switch count"
        if fork_available():
            speedup = (
                results[f"engine_process_{WORKERS}w"][0]
                / results["pr1_serial_batched"][0]
            )
            assert speedup >= MIN_PARALLEL_SPEEDUP, (
                f"process engine only {speedup:.2f}x over the PR 1 serial "
                f"batched path (required >= {MIN_PARALLEL_SPEEDUP}x)"
            )

        # Additive band (entropy): same protocol, same engines, same gate.
        ent_items = np.random.default_rng(77).integers(0, ENT_N, size=ENT_M)
        ent_truth = FrequencyVector()
        ent_truth.update_batch(ent_items)
        h_true = ent_truth.shannon_entropy()
        ent_contenders = [("entropy_pr1_serial_batched", None),
                          ("entropy_engine_serial", SerialEngine())]
        if fork_available():
            ent_contenders.append((
                f"entropy_engine_process_{WORKERS}w",
                ProcessEngine(workers=WORKERS),
            ))
        ent_results = {}
        for name, engine in ent_contenders:
            est = _robust_entropy()
            rate = _run_engine(est, ent_items, engine)
            ent_results[name] = (rate, est)
            speedup = rate / ent_results["entropy_pr1_serial_batched"][0]
            payload["results"][name] = {
                "items_per_sec": round(rate),
                "speedup_vs_pr1": round(speedup, 2),
                "switches": est.switches,
                "final_estimate": round(est.query(), 4),
                "final_additive_error": round(abs(est.query() - h_true), 4),
            }
            rows.append(format_row(
                (name, f"{rate:,.0f}", f"{speedup:.2f}x", est.switches,
                 f"{abs(est.query() - h_true):.3f}"), WIDTHS,
            ))
        ent_base = ent_results["entropy_pr1_serial_batched"][1]
        for name, (_, est) in ent_results.items():
            assert est.query() == ent_base.query(), f"{name} diverged"
            assert est.switches == ent_base.switches, f"{name} switch count"
        for name, (rate, _) in ent_results.items():
            if name == "entropy_pr1_serial_batched":
                continue
            speedup = rate / ent_results["entropy_pr1_serial_batched"][0]
            assert speedup >= MIN_PARALLEL_SPEEDUP, (
                f"{name} only {speedup:.2f}x over the entropy PR 1 serial "
                f"batched path (required >= {MIN_PARALLEL_SPEEDUP}x)"
            )

        # Stacked copy groups (ISSUE 6): the same F2 switching estimator
        # twice — per-object twin, then stacked — over one stream.  One
        # shared hash pass feeds and probes all copies on the stacked
        # path; outputs must be bit-for-bit identical and the stacked
        # run at least MIN_STACKED_SPEEDUP x the twin.
        stk_items = np.random.default_rng(11).integers(0, STK_N, size=STK_M)
        stk_results = {}
        for name, stacked in (("stacked_object_engine_serial", False),
                              ("stacked_engine_serial", True)):
            est = _stacked_switching(stacked)
            start = time.perf_counter()
            with SerialEngine().session(est) as session:
                for lo in range(0, STK_M, CHUNK):
                    session.feed(stk_items[lo:lo + CHUNK])
                phases = session.phase_seconds
            rate = STK_M / (time.perf_counter() - start)
            stk_results[name] = (rate, est)
            speedup = rate / stk_results["stacked_object_engine_serial"][0]
            payload["results"][name] = {
                "items_per_sec": round(rate),
                "speedup_vs_pr1": round(speedup, 2),
                "switches": est.switches,
                "final_estimate": round(est.query(), 1),
                "phase_seconds": {k: round(v, 3)
                                  for k, v in phases.items()},
            }
            rows.append(format_row(
                (name, f"{rate:,.0f}", f"{speedup:.2f}x", est.switches,
                 "-"), WIDTHS,
            ))
        stk_base = stk_results["stacked_object_engine_serial"][1]
        stk_est = stk_results["stacked_engine_serial"][1]
        assert stk_est.query() == stk_base.query(), (
            "stacked copy groups diverged from the per-object twin"
        )
        assert stk_est.switches == stk_base.switches, (
            "stacked copy groups changed the switch count"
        )
        stk_speedup = (
            stk_results["stacked_engine_serial"][0]
            / stk_results["stacked_object_engine_serial"][0]
        )
        assert stk_speedup >= MIN_STACKED_SPEEDUP, (
            f"stacked copy groups only {stk_speedup:.2f}x over the "
            f"per-object twin (required >= {MIN_STACKED_SPEEDUP}x)"
        )

        # Telemetry overhead (ISSUE 7): the same stacked DP workload once
        # more with *full tracing* — every protocol event streamed to a
        # JSONL sink plus the metrics registry — must stay within
        # MAX_TELEMETRY_OVERHEAD of the untraced stacked run and produce
        # bit-for-bit identical outputs.  (The disabled-telemetry cost is
        # gated implicitly: every other row in this file runs with the
        # NULL_TELEMETRY default, and check_regression.py holds those
        # rows to the committed baseline.)
        from repro.api import install_telemetry
        from repro.obs import JsonlSink, Telemetry

        trace_path = str(OUT_DIR / "trace_sample.jsonl")
        traced_est = _stacked_switching(True)
        tele = Telemetry(sinks=[JsonlSink(trace_path)])
        install_telemetry(traced_est, tele)
        start = time.perf_counter()
        with SerialEngine().session(traced_est) as session:
            for lo in range(0, STK_M, CHUNK):
                session.feed(stk_items[lo:lo + CHUNK])
        traced_rate = STK_M / (time.perf_counter() - start)
        tele.close()
        assert traced_est.query() == stk_est.query(), (
            "tracing changed the stacked estimator's output"
        )
        assert traced_est.switches == stk_est.switches, (
            "tracing changed the stacked estimator's switch count"
        )
        overhead = stk_results["stacked_engine_serial"][0] / traced_rate - 1.0
        assert overhead <= MAX_TELEMETRY_OVERHEAD, (
            f"full tracing cost {overhead:.1%} over the untraced stacked "
            f"run (bound {MAX_TELEMETRY_OVERHEAD:.0%})"
        )
        traced_speedup = (
            traced_rate / stk_results["stacked_object_engine_serial"][0]
        )
        payload["results"]["stacked_traced_engine_serial"] = {
            "items_per_sec": round(traced_rate),
            "speedup_vs_pr1": round(traced_speedup, 2),
            "switches": traced_est.switches,
            "final_estimate": round(traced_est.query(), 1),
            "tracing_overhead": round(overhead, 4),
            "trace_events": sum(tele.event_counts.values()),
            "trace_path": trace_path,
        }
        rows.append(format_row(
            ("stacked_traced_engine_serial", f"{traced_rate:,.0f}",
             f"{traced_speedup:.2f}x", traced_est.switches, "-"), WIDTHS,
        ))

        # Spec-shipped chunk sources (ISSUE 8): the same stacked DP
        # workload, driven from a ChunkSource *description* of the
        # stream instead of staged bytes.  Serial: the source's declared
        # item universe licenses the counts-based prepare fast path
        # (one bincount over the chunk + a column gather at the
        # support, instead of hashing every update).  Process: the
        # picklable spec is broadcast once and every worker regenerates
        # its own chunks — the per-chunk shared-memory copy, staging
        # barrier, and coordinator generation loop all disappear.
        # Outputs, switch counts, and DP budget state must be
        # bit-for-bit identical to the bytes-shipped rows.
        spec_src = GeneratorChunkSource(
            "uniform", n=STK_N, m=STK_M, seed=11, chunk_size=CHUNK
        )
        stk_object_rate = stk_results["stacked_object_engine_serial"][0]
        spec_est = _stacked_switching(True)
        start = time.perf_counter()
        with SerialEngine().session(spec_est, source=spec_src) as session:
            assert session.source_mode == "universe", session.source_mode
            session.feed_source(spec_src)
        spec_rate = STK_M / (time.perf_counter() - start)
        assert spec_est.query() == stk_est.query(), (
            "spec-shipped serial diverged from the bytes-shipped output"
        )
        assert spec_est.switches == stk_est.switches, (
            "spec-shipped serial changed the switch count"
        )
        assert (spec_est.discipline.budget_state()
                == stk_est.discipline.budget_state()), (
            "spec-shipped serial changed the DP budget state"
        )
        spec_vs_bytes = spec_rate / stk_results["stacked_engine_serial"][0]
        payload["results"]["stacked_spec_engine_serial"] = {
            "items_per_sec": round(spec_rate),
            "speedup_vs_pr1": round(spec_rate / stk_object_rate, 2),
            "speedup_vs_bytes": round(spec_vs_bytes, 2),
            "switches": spec_est.switches,
            "final_estimate": round(spec_est.query(), 1),
        }
        rows.append(format_row(
            ("stacked_spec_engine_serial", f"{spec_rate:,.0f}",
             f"{spec_rate / stk_object_rate:.2f}x", spec_est.switches,
             "-"), WIDTHS,
        ))
        assert spec_vs_bytes >= MIN_SPEC_SPEEDUP, (
            f"spec-shipped serial only {spec_vs_bytes:.2f}x over the "
            f"bytes-shipped stacked row (required >= {MIN_SPEC_SPEEDUP}x)"
        )
        if fork_available():
            spec_proc = _stacked_switching(True)
            start = time.perf_counter()
            with ProcessEngine(workers=WORKERS).session(
                spec_proc, source=spec_src
            ) as session:
                assert session.spec_shipped, "spec mode did not engage"
                assert session.source_mode == "spec"
                session.feed_source(spec_src)
            proc_spec_rate = STK_M / (time.perf_counter() - start)
            assert spec_proc.query() == stk_est.query(), (
                "spec-shipped process diverged from the bytes-shipped output"
            )
            assert spec_proc.switches == stk_est.switches, (
                "spec-shipped process changed the switch count"
            )
            assert (spec_proc.discipline.budget_state()
                    == stk_est.discipline.budget_state()), (
                "spec-shipped process changed the DP budget state"
            )
            payload["results"][f"stacked_spec_engine_process_{WORKERS}w"] = {
                "items_per_sec": round(proc_spec_rate),
                "speedup_vs_pr1": round(proc_spec_rate / stk_object_rate, 2),
                "speedup_vs_bytes": round(
                    proc_spec_rate / stk_results["stacked_engine_serial"][0],
                    2,
                ),
                "switches": spec_proc.switches,
                "final_estimate": round(spec_proc.query(), 1),
            }
            rows.append(format_row(
                (f"stacked_spec_engine_process_{WORKERS}w",
                 f"{proc_spec_rate:,.0f}",
                 f"{proc_spec_rate / stk_object_rate:.2f}x",
                 spec_proc.switches, "-"), WIDTHS,
            ))

        # Per-partial merge sharding: CountMin across workers, exact table.
        serial_cm = CountMinSketch(2048, 5, np.random.default_rng(7))
        start = time.perf_counter()
        for lo in range(0, M, CHUNK):
            serial_cm.update_batch(items[lo:lo + CHUNK])
        serial_rate = M / (time.perf_counter() - start)
        if fork_available():
            merged_cm = CountMinSketch(2048, 5, np.random.default_rng(7))
            rate = _run_engine(merged_cm, items, ProcessEngine(workers=WORKERS))
            assert np.array_equal(serial_cm._table, merged_cm._table), (
                "merged CountMin table diverged from serial"
            )
            payload["results"]["countmin_merge_shards"] = {
                "items_per_sec": round(rate),
                "speedup_vs_serial": round(rate / serial_rate, 2),
            }
            rows.append(format_row(
                ("countmin merge shards", f"{rate:,.0f}",
                 f"{rate / serial_rate:.2f}x", "-", "exact"), WIDTHS,
            ))

        # Columnar store + double-buffered prefetch replay.
        with tempfile.TemporaryDirectory() as tmp:
            store = write_stream(
                tmp + "/stream", StreamChunk.insertions(items),
                chunk_size=CHUNK, params=StreamParameters(n=N, m=M),
            )
            reader_cm = CountMinSketch(2048, 5, np.random.default_rng(7))
            start = time.perf_counter()
            from repro.api import ingest
            report = ingest(reader_cm, store, chunk_size=CHUNK, prefetch=2)
            rate = M / (time.perf_counter() - start)
            assert report.updates == M
            assert np.array_equal(serial_cm._table, reader_cm._table), (
                "columnar replay diverged from in-memory ingestion"
            )
            payload["results"]["columnar_store_replay"] = {
                "items_per_sec": round(rate),
            }
            rows.append(format_row(
                ("columnar store + prefetch", f"{rate:,.0f}", "-", "-",
                 "exact"), WIDTHS,
            ))
        return payload

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(
        f"n={N}, m={M:,} uniform oblivious stream, chunk={CHUNK}, "
        f"eps={EPS}; robust switching = Theorem 5.1 KMV ring; "
        f"process engine = {WORKERS} forked workers over shared memory; "
        f"entropy = Theorem 7.3 additive band, n={ENT_N}, m={ENT_M:,}, "
        f"eps={ENT_EPS}, {ENT_COPIES} CC copies (err column is additive); "
        f"stacked = F2 switching over {STK_COPIES} CountSketch"
        f"({STK_WIDTH}x{STK_ROWS}) copies, n={STK_N}, m={STK_M:,}, DP "
        f"aggregate discipline, speedup vs the per-object twin"
    )
    emit("parallel_engine", rows)
    emit_json("parallel_engine", payload)
