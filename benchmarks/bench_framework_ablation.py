"""E.Switch — the sketch-switching vs computation-paths tradeoff.

Paper claim (Section 1.1): the two frameworks are incomparable — sketch
switching exploits strong trackers (cost: lambda copies), computation
paths exploits mild delta dependence (cost: one copy at delta_0 ~
delta / (eps^-1 log T)^lambda).  For most deltas switching wins on space;
for very small target delta the paths route wins (Theorem 4.2's regime).

Measured: (a) the *formula-level* crossover — bits-of-failure-budget each
framework asks of the base sketch as the target delta shrinks; (b) a
run-off between the two robust F0 implementations on the same stream
(space, error, update time).
"""

import math

import numpy as np

from repro.core.computation_paths import required_log2_delta0
from repro.core.flip_number import monotone_flip_number_bound
from repro.robust.distinct import FastRobustDistinctElements, RobustDistinctElements
from repro.streams.model import Update
from tables import emit, format_row, kib, run_stream

N = 1 << 12
M = 3000
EPS = 0.25
WIDTHS = (18, 22, 26)


def test_framework_cost_crossover(benchmark):
    """Failure budget (log2 1/delta) demanded of the base sketch."""
    lam = monotone_flip_number_bound(EPS / 2, 1.0, float(N))
    rows = [format_row(
        ("target delta", "switching: copies x", "paths: log2(1/delta_0)"),
        WIDTHS)]
    data = []

    def compute():
        for log10_delta in (1, 4, 16, 64):
            delta = 10.0 ** (-log10_delta)
            # Switching: lambda copies each at delta/lambda.
            switching_budget = lam * math.log2(lam / delta)
            # Paths: one copy at delta_0.
            paths_budget = -required_log2_delta0(delta, M, lam, EPS, float(N))
            data.append((delta, switching_budget, paths_budget))
            rows.append(format_row(
                (f"1e-{log10_delta}",
                 f"{lam} x {math.log2(lam / delta):.0f} = "
                 f"{switching_budget:.0f}",
                 f"{paths_budget:.0f}"),
                WIDTHS))
        return data

    benchmark.pedantic(compute, rounds=1, iterations=1)
    rows.append("")
    rows.append(f"lambda={lam} (eps={EPS}, n={N}); entries are total bits "
                "of failure budget bought from base sketches")
    rows.append("shape: switching's budget scales with lambda*log(1/delta), "
                "paths' is ~constant in delta until delta ~ 1/|S| — the "
                "incomparability the paper describes")
    emit("framework_ablation_crossover", rows)

    # For tiny delta the *marginal* cost of paths is flat: its budget grows
    # by < 2x from delta=1e-4 to 1e-64 while switching's grows ~ lambda x.
    assert data[3][2] - data[1][2] < data[3][1] - data[1][1]


def test_framework_runoff(benchmark):
    updates = [Update(i, 1) for i in range(M)]
    rows = [format_row(("framework", "space", "worst err"), WIDTHS)]
    results = {}

    def run_all():
        for name, algo in [
            ("switching (T5.1)", RobustDistinctElements(
                n=N, m=M, eps=EPS, rng=np.random.default_rng(0))),
            ("comp-paths (T5.4)", FastRobustDistinctElements(
                n=N, m=M, eps=EPS, rng=np.random.default_rng(1))),
        ]:
            worst, _, secs, bits = run_stream(
                algo, updates, lambda f: f.f0(), skip=150
            )
            results[name] = (bits, worst)
            rows.append(format_row((name, kib(bits), f"{worst:.3f}"), WIDTHS))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("framework_ablation_runoff", rows)
    for name, (_, worst) in results.items():
        assert worst <= EPS + 0.05, name
