"""T1.HH — Table 1 row 4: L2 heavy hitters.

Paper claim: static O(eps^-2 log^2 n) [8]/[10]; deterministic
Omega(sqrt n) [26] (Misra–Gries at eps = n^{-1/2} gives the O(sqrt n
log n) upper bound); robust O~(eps^-3 log^2 n) (Thm 6.5).

Measured on planted-heavy-hitter streams: recall of the true eps-heavy
set, spurious reports below the eps/2 threshold, and space, for the
deterministic Misra–Gries L2 baseline, a static CountSketch, and the
Theorem 6.5 robust algorithm.
"""

import numpy as np

from repro.robust.heavy_hitters import RobustHeavyHitters
from repro.sketches.countsketch import CountSketch
from repro.sketches.misra_gries import MisraGries
from repro.streams.frequency import FrequencyVector
from repro.streams.generators import planted_heavy_hitters_stream
from tables import emit, format_row, kib

N = 2048
M = 4000
EPS = 0.25
WIDTHS = (30, 12, 8, 10, 10)


def test_table1_heavy_hitters_row(benchmark):
    updates = planted_heavy_hitters_stream(
        N, M, np.random.default_rng(0), heavy_items=6, heavy_mass=0.55
    )
    truth = FrequencyVector()

    static_cs = CountSketch.for_accuracy(EPS / 2, 0.01, N,
                                         np.random.default_rng(1))
    mg = MisraGries.for_l2_baseline(N)
    robust = RobustHeavyHitters(n=N, m=M, eps=EPS,
                                rng=np.random.default_rng(2), copies=10)

    def run_all():
        for u in updates:
            truth.update(u.item, u.delta)
            static_cs.update(u.item, u.delta)
            mg.update(u.item, u.delta)
            robust.update(u.item, u.delta)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    l2 = truth.lp(2)
    true_heavy = truth.l2_heavy_hitters(EPS)
    found = {
        "Misra-Gries sqrt(n) (determ.)": mg.heavy_hitters(EPS * l2),
        "static CountSketch [10]": static_cs.heavy_hitters(0.75 * EPS * l2),
        "robust (T6.5)": robust.heavy_hitters(),
    }
    spaces = {
        "Misra-Gries sqrt(n) (determ.)": mg.space_bits(),
        "static CountSketch [10]": static_cs.space_bits(),
        "robust (T6.5)": robust.space_bits(),
    }
    rows = [format_row(("algorithm", "space", "found", "missed", "spurious"),
                       WIDTHS)]
    for name, s in found.items():
        missed = true_heavy - s
        spurious = {i for i in s if truth[i] < (EPS / 2) * l2}
        rows.append(format_row(
            (name, kib(spaces[name]), len(s), len(missed), len(spurious)),
            WIDTHS))
        assert not missed, name
        assert not spurious, name
    rows.append("")
    rows.append(f"n={N}, m={M}, eps={EPS}, planted heavies=6; "
                f"true heavy set size={len(true_heavy)}")
    emit("table1_row4_heavy_hitters", rows)

    # Shape: robust pays a copies factor over one CountSketch but stays in
    # the sketching regime; Misra-Gries needs Theta(sqrt n) counters.
    assert spaces["robust (T6.5)"] > spaces["static CountSketch [10]"]
