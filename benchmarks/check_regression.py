"""Gate engine speedups against the committed BENCH_parallel.json baseline.

Raw items/sec numbers are machine-dependent, so CI compares the
machine-normalized **speedup ratios** (each engine path over its own
serial-batched baseline measured in the same run): a fresh
``speedup_vs_pr1`` may not fall more than ``--tolerance`` (default 20%)
below the committed one.  Keys present in only one of the two reports
are skipped (new benchmark rows don't fail the gate until a baseline is
committed).

Usage::

    cp BENCH_parallel.json /tmp/baseline.json        # before re-running
    PYTHONPATH=src python benchmarks/run_all.py --engine
    python benchmarks/check_regression.py \
        --baseline /tmp/baseline.json --fresh BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def speedups(report: dict) -> dict[str, float]:
    """Flatten a BENCH_parallel report to {result key: speedup_vs_pr1}."""
    out: dict[str, float] = {}
    for payload in report.get("throughput", {}).values():
        for key, row in payload.get("results", {}).items():
            value = row.get("speedup_vs_pr1")
            if value is not None:
                out[key] = float(value)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_parallel.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_parallel.json")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup drop (default 0.2)")
    args = parser.parse_args()

    baseline = speedups(json.loads(pathlib.Path(args.baseline).read_text()))
    fresh = speedups(json.loads(pathlib.Path(args.fresh).read_text()))
    if not baseline:
        print("no speedup rows in the baseline; nothing to gate")
        return 0

    failures = []
    for key in sorted(baseline):
        if key not in fresh:
            print(f"  {key:<36} missing from fresh report -- skipped")
            continue
        floor = (1.0 - args.tolerance) * baseline[key]
        status = "ok" if fresh[key] >= floor else "REGRESSION"
        print(f"  {key:<36} baseline {baseline[key]:6.2f}x  "
              f"fresh {fresh[key]:6.2f}x  floor {floor:6.2f}x  {status}")
        if fresh[key] < floor:
            failures.append(key)
    if failures:
        print(f"\nspeedup regression (> {args.tolerance:.0%} drop) in: "
              f"{', '.join(failures)}")
        return 1
    print("\nall engine speedups within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
