"""Gate engine speedups against the committed BENCH_parallel.json baseline.

Raw items/sec numbers are machine-dependent, so CI compares the
machine-normalized **speedup ratios** (each engine path over its own
serial-batched baseline measured in the same run): a fresh
``speedup_vs_pr1`` may not fall more than ``--tolerance`` (default 20%)
below the committed one.  Keys present in only one of the two reports
are skipped — but never silently: every skipped row is printed, in both
directions (baseline-only rows, e.g. a benchmark that stopped emitting
a gated key, and fresh-only rows that have no committed baseline yet).
``--require <row>`` (repeatable) turns a disappearance into a hard
failure: CI names the rows it expects, so a gated row vanishing from
the fresh report fails loudly instead of being skipped.

Usage::

    cp BENCH_parallel.json /tmp/baseline.json        # before re-running
    PYTHONPATH=src python benchmarks/run_all.py --engine
    python benchmarks/check_regression.py \
        --baseline /tmp/baseline.json --fresh BENCH_parallel.json \
        --require engine_serial --require dp_engine_serial
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def speedups(report: dict) -> dict[str, float]:
    """Flatten a BENCH_parallel report to {result key: speedup_vs_pr1}."""
    out: dict[str, float] = {}
    for payload in report.get("throughput", {}).values():
        for key, row in payload.get("results", {}).items():
            value = row.get("speedup_vs_pr1")
            if value is not None:
                out[key] = float(value)
    return out


def multi_worker_meaningful(report: dict) -> bool:
    """Did this report's machine have >1 physical core to parallelize on?

    Reports from ``run_all.py`` carry the answer in their machine
    metadata; older reports without it fall back to core counts, and a
    report that says nothing at all is assumed meaningful (never skip a
    gate on missing evidence).
    """
    machine = report.get("machine", {})
    flag = machine.get("multi_worker_meaningful")
    if flag is not None:
        return bool(flag)
    cores = machine.get("physical_cores") or machine.get("cpu_count")
    return cores is None or cores > 1


def is_process_row(key: str) -> bool:
    """Multi-worker rows: the process-engine speedup columns."""
    return "process" in key


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_parallel.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_parallel.json")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup drop (default 0.2)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="ROW",
                        help="row key that must be present in the fresh "
                             "report (repeatable); a missing required row "
                             "fails the gate instead of being skipped")
    args = parser.parse_args()

    fresh_report = json.loads(pathlib.Path(args.fresh).read_text())
    baseline = speedups(json.loads(pathlib.Path(args.baseline).read_text()))
    fresh = speedups(fresh_report)
    gate_process_rows = multi_worker_meaningful(fresh_report)
    if not gate_process_rows:
        print("fresh report was measured on a single physical core: "
              "process-engine speedup gates skipped (multi-worker rows "
              "cannot show real parallelism there)")

    failures = []
    missing_required = [key for key in args.require if key not in fresh]
    for key in missing_required:
        print(f"  {key:<36} REQUIRED but missing from fresh report")

    if not baseline:
        print("no speedup rows in the baseline; nothing to gate")
    for key in sorted(baseline):
        if key not in fresh:
            print(f"  {key:<36} missing from fresh report -- skipped")
            continue
        if is_process_row(key) and not gate_process_rows:
            print(f"  {key:<36} baseline {baseline[key]:6.2f}x  "
                  f"fresh {fresh[key]:6.2f}x  skipped (1-core machine)")
            continue
        floor = (1.0 - args.tolerance) * baseline[key]
        status = "ok" if fresh[key] >= floor else "REGRESSION"
        print(f"  {key:<36} baseline {baseline[key]:6.2f}x  "
              f"fresh {fresh[key]:6.2f}x  floor {floor:6.2f}x  {status}")
        if fresh[key] < floor:
            failures.append(key)
    for key in sorted(set(fresh) - set(baseline)):
        print(f"  {key:<36} fresh {fresh[key]:6.2f}x  "
              f"no committed baseline -- skipped")

    if missing_required:
        print(f"\nrequired rows missing from the fresh report: "
              f"{', '.join(missing_required)}")
        return 1
    if failures:
        print(f"\nspeedup regression (> {args.tolerance:.0%} drop) in: "
              f"{', '.join(failures)}")
        return 1
    print("\nall engine speedups within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
