"""Run every benchmark and fold the results into ``BENCH_ingest.json``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_all.py            # full suite
    PYTHONPATH=src python benchmarks/run_all.py --quick    # ingest only

Each ``bench_*.py`` file is executed as its own pytest session (they are
independent experiments with their own assertions).  Afterwards the
machine-readable payloads the benchmarks drop in ``benchmarks/out/*.json``
— most importantly the batched-vs-per-item ingestion throughput from
``bench_ingest.py`` — are merged, together with per-file pass/fail and
wall-clock, into ``BENCH_ingest.json`` at the repository root so the
performance trajectory is tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
OUT_DIR = BENCH_DIR / "out"
REPORT_PATH = REPO_ROOT / "BENCH_ingest.json"

#: The headline benchmark; --quick runs only this one.
QUICK = ("bench_ingest.py",)


def run_bench_file(path: pathlib.Path) -> dict:
    """Run one benchmark file under pytest; return its summary record."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", path.name],
        cwd=BENCH_DIR,
        env=env,
        capture_output=True,
        text=True,
    )
    seconds = time.perf_counter() - start
    tail = proc.stdout.strip().splitlines()
    return {
        "passed": proc.returncode == 0,
        "seconds": round(seconds, 1),
        "summary": tail[-1] if tail else "",
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the ingestion throughput benchmark",
    )
    args = parser.parse_args()

    if args.quick:
        files = [BENCH_DIR / name for name in QUICK]
    else:
        files = sorted(BENCH_DIR.glob("bench_*.py"))

    report: dict = {
        "generated_by": "benchmarks/run_all.py",
        "python": sys.version.split()[0],
        "files": {},
        "throughput": {},
    }
    failures = 0
    for path in files:
        print(f"== {path.name}", flush=True)
        record = run_bench_file(path)
        report["files"][path.name] = record
        if not record["passed"]:
            failures += 1
            print(f"   FAILED ({record['summary']})")
        else:
            print(f"   ok in {record['seconds']}s")

    # Merge machine-readable payloads (throughput + accuracy) emitted by
    # the benchmarks themselves.
    if OUT_DIR.is_dir():
        for json_path in sorted(OUT_DIR.glob("*.json")):
            try:
                report["throughput"][json_path.stem] = json.loads(
                    json_path.read_text()
                )
            except json.JSONDecodeError:
                report["throughput"][json_path.stem] = {"error": "unreadable"}

    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {REPORT_PATH}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
