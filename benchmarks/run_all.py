"""Run every benchmark and fold the results into the BENCH reports.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_all.py            # full suite
    PYTHONPATH=src python benchmarks/run_all.py --quick    # ingest only
    PYTHONPATH=src python benchmarks/run_all.py --engine   # engine only

Each ``bench_*.py`` file is executed as its own pytest session (they are
independent experiments with their own assertions).  Afterwards the
machine-readable payloads the benchmarks drop in ``benchmarks/out/*.json``
are merged, together with per-file pass/fail, wall-clock, and machine
metadata (cpu count, platform, numpy version — throughput numbers are
meaningless without them), into the repo-root reports:

* ``BENCH_ingest.json`` — the batched-vs-per-item ingestion trajectory
  (``bench_ingest.py`` and the accuracy benchmarks);
* ``BENCH_parallel.json`` — the execution-engine trajectory
  (``bench_parallel.py``: sharded switching, merge shards, columnar
  store replay).

Payloads whose name starts with ``parallel`` land in the parallel
report; everything else in the ingest report.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
OUT_DIR = BENCH_DIR / "out"
INGEST_REPORT_PATH = REPO_ROOT / "BENCH_ingest.json"
PARALLEL_REPORT_PATH = REPO_ROOT / "BENCH_parallel.json"

#: The headline benchmarks; --quick/--engine run only one of them.
QUICK = ("bench_ingest.py",)
ENGINE = ("bench_parallel.py", "bench_dp.py")

def report_key(name: str) -> str:
    """Which repo-root report a benchmark file or payload feeds.

    One rule for both: engine benchmarks are ``bench_parallel*.py`` /
    ``bench_dp.py`` and emit ``parallel*`` payloads; everything else is
    ingest/accuracy.
    """
    return (
        "parallel"
        if name.startswith(("parallel", "bench_parallel", "bench_dp"))
        else "ingest"
    )


def physical_cores() -> int | None:
    """Distinct physical cores from /proc/cpuinfo, or None off-Linux.

    ``os.cpu_count()`` counts logical CPUs (hyperthreads included), but
    multi-worker speedup rows are only meaningful on distinct physical
    cores; counting unique ``(physical id, core id)`` pairs tells the
    regression gate whether a process-engine row measured real
    parallelism.
    """
    try:
        with open("/proc/cpuinfo") as fh:
            cores = set()
            phys_id = core_id = None
            for line in fh:
                key, _, value = line.partition(":")
                key = key.strip()
                if key == "physical id":
                    phys_id = value.strip()
                elif key == "core id":
                    core_id = value.strip()
                elif not line.strip():  # per-processor blocks are blank-separated
                    if core_id is not None:
                        cores.add((phys_id, core_id))
                    phys_id = core_id = None
            if core_id is not None:
                cores.add((phys_id, core_id))
            return len(cores) or None
    except OSError:
        return None


def machine_metadata() -> dict:
    """What the throughput numbers were measured on."""
    import numpy

    cores = physical_cores()
    logical = os.cpu_count()
    meta = {
        "cpu_count": logical,
        "physical_cores": cores,
        # Whether process-engine rows in this report measured real
        # parallelism; check_regression.py skips multi-worker speedup
        # gates when a report says they could not have.
        "multi_worker_meaningful": (cores or logical or 1) > 1,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
    }
    # BLAS backend and thread caps matter for the stacked-group and AMS
    # matmul paths; np.show_config's dict mode is recent, so degrade
    # gracefully on older NumPy.
    try:
        config = numpy.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        meta["blas"] = {
            "name": blas.get("name"),
            "version": blas.get("version"),
        }
    except Exception:
        pass
    threads = {
        var: os.environ[var]
        for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                    "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")
        if var in os.environ
    }
    if threads:
        meta["thread_env"] = threads
    return meta


def run_bench_file(path: pathlib.Path) -> dict:
    """Run one benchmark file under pytest; return its summary record."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", path.name],
        cwd=BENCH_DIR,
        env=env,
        capture_output=True,
        text=True,
    )
    seconds = time.perf_counter() - start
    tail = proc.stdout.strip().splitlines()
    return {
        "passed": proc.returncode == 0,
        "seconds": round(seconds, 1),
        "summary": tail[-1] if tail else "",
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--quick", action="store_true",
        help="run only the ingestion throughput benchmark",
    )
    group.add_argument(
        "--engine", action="store_true",
        help="run only the parallel execution engine benchmark",
    )
    args = parser.parse_args()

    if args.quick:
        files = [BENCH_DIR / name for name in QUICK]
    elif args.engine:
        files = [BENCH_DIR / name for name in ENGINE]
    else:
        files = sorted(BENCH_DIR.glob("bench_*.py"))

    meta = machine_metadata()

    def new_report() -> dict:
        return {
            "generated_by": "benchmarks/run_all.py",
            "machine": meta,
            "python": meta["python"],
            "files": {},
            "throughput": {},
        }

    reports = {"ingest": new_report(), "parallel": new_report()}

    failures = 0
    for path in files:
        print(f"== {path.name}", flush=True)
        record = run_bench_file(path)
        reports[report_key(path.name)]["files"][path.name] = record
        if not record["passed"]:
            failures += 1
            print(f"   FAILED ({record['summary']})")
        else:
            print(f"   ok in {record['seconds']}s")

    # Merge machine-readable payloads (throughput + accuracy) emitted by
    # the benchmarks themselves.
    if OUT_DIR.is_dir():
        for json_path in sorted(OUT_DIR.glob("*.json")):
            try:
                payload = json.loads(json_path.read_text())
            except json.JSONDecodeError:
                payload = {"error": "unreadable"}
            key = report_key(json_path.stem)
            reports[key]["throughput"][json_path.stem] = payload

    targets = {"ingest": INGEST_REPORT_PATH, "parallel": PARALLEL_REPORT_PATH}
    for key, target in targets.items():
        report = reports[key]
        if not report["files"]:
            continue  # no benchmark of this kind ran; keep the old report
        target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {target}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
