"""T1.Fp — Table 1 row 2: Fp estimation, 0 < p <= 2.

Paper claim: static randomized O(eps^-2 log n) [7]/[27]; deterministic
Omega~(n); robust O~(eps^-3 log n) by sketch switching (Thm 4.1) and
O(eps^-2 log n log 1/delta) by computation paths in the small-delta
regime (Thm 4.2).

Measured: worst/mean tracking error of the Lp norm and space, on zipfian
streams, for the exact baseline, one static p-stable sketch, the Theorem
4.1 switching wrapper, and the Theorem 4.2 paths wrapper, for p in
{1.0, 2.0}.  Shape: robust = static x (copies ~ eps^-1 log eps^-1)
switching overhead; paths pays a smaller space factor but larger inner
delta inflation.
"""

import numpy as np
import pytest

from repro.robust.moments import RobustFpPaths, RobustFpSwitching
from repro.sketches.exact import ExactMomentCounter
from repro.sketches.stable import PStableSketch
from repro.streams.generators import zipfian_stream
from tables import emit, format_row, kib, run_stream

N = 512
M = 3000
EPS = 0.3
WIDTHS = (28, 12, 12, 12, 10)


@pytest.mark.parametrize("p", [1.0, 2.0])
def test_table1_fp_row(benchmark, p):
    updates = zipfian_stream(N, M, np.random.default_rng(int(p * 10)))
    contenders = [
        ("exact (deterministic)", ExactMomentCounter(p, return_norm=True)),
        ("static p-stable [27]", PStableSketch.for_accuracy(
            p, EPS, 0.05, np.random.default_rng(1))),
        ("robust switching (T4.1)", RobustFpSwitching(
            p=p, n=N, m=M, eps=EPS, rng=np.random.default_rng(2), copies=16)),
        ("robust comp-paths (T4.2)", RobustFpPaths(
            p=p, n=N, m=M, eps=EPS, rng=np.random.default_rng(3))),
    ]
    rows = [format_row(("algorithm", "space", "worst err", "mean err", "sec"),
                       WIDTHS)]
    results = {}

    def run_all():
        for name, algo in contenders:
            worst, mean, secs, bits = run_stream(
                algo, updates, lambda f: f.lp(p), skip=150
            )
            results[name] = (bits, worst)
            rows.append(format_row(
                (name, kib(bits), f"{worst:.3f}", f"{mean:.3f}", f"{secs:.1f}"),
                WIDTHS))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(f"p={p}, n={N}, m={M}, eps={EPS}; zipfian stream")
    emit(f"table1_row2_fp_p{p}", rows)

    for name, (_, worst) in results.items():
        assert worst <= EPS + 0.1, name
    # Robust costs a poly(1/eps, log) multiplicative factor over static:
    # copies (~eps^-1 log eps^-1) x the eps0=eps/4 row inflation (~16x) —
    # a few hundred at eps=0.3, still independent of n.
    static_bits = results["static p-stable [27]"][0]
    switching_bits = results["robust switching (T4.1)"][0]
    assert switching_bits > 2 * static_bits
    assert switching_bits < 1500 * static_bits
