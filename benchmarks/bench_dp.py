"""DP — private-aggregate publishing vs sketch switching (ISSUE 4).

The space claim of Hassidim et al. 2020, measured on this repo's own
machinery: at equal target accuracy, plain Algorithm 1 sketch switching
provisions ``Theta(lambda)`` live copies (one burned per switch) while
the DP private-aggregate discipline provisions ``O(sqrt(lambda))`` —
no copy is burned on a switch; the sparse-vector budget pays for the
publications instead.  Both trackers replay the same 1M-update oblivious
uniform stream; the benchmark records live copy counts, measured
``space_bits``, and final accuracy, and asserts the DP tracker halves
the copy count and the space at equal (in-band) accuracy.

The DP tracker also runs through the execution engine (the all-copy
probe step is part of the shard plan since the discipline refactor):
``dp_engine_serial`` must be bit-for-bit identical to the serial batched
path and >= MIN_DP_ENGINE_SPEEDUP over it (the shared-work hoists — the
chunk is deduped once for the whole copy set — are discipline-agnostic).
The process row is recorded for the trajectory but not hard-gated: the
all-copy probe pays one extra command round per worker per chunk, which
the 1-cpu CI container cannot amortize with real cores.

Emits ``out/parallel_dp.{txt,json}``; ``run_all.py`` folds the JSON into
``BENCH_parallel.json``, and ``benchmarks/check_regression.py``
(--require dp_engine_serial) gates CI on the speedup column against the
committed baseline.
"""

import time

import numpy as np

from repro.engine import ProcessEngine, SerialEngine, fork_available
from repro.robust.distinct import RobustDistinctElements
from repro.robust.dp import RobustDPDistinctElements
from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamChunk
from tables import emit, emit_json, format_row

N = 1 << 14
M = 1_000_000
#: Smaller than the switching bench's 65536 on purpose: a crossing chunk
#: is resolved raw with *every* copy paying the bisection under the DP
#: all-copy probe, so the F0 ramp's switch burst must be confined to a
#: few small chunks for the clean-chunk hoists (where the engine wins)
#: to dominate the replay — production chunk sizing for DP follows the
#: same rule.
CHUNK = 4096
EPS = 0.25
WORKERS = 4
WIDTHS = (30, 12, 10, 10, 12, 10)
MIN_DP_ENGINE_SPEEDUP = 1.5
MIN_SPACE_ADVANTAGE = 2.0


def _dp(seed=19):
    return RobustDPDistinctElements(
        n=N, m=M, eps=EPS, rng=np.random.default_rng(seed)
    )


def _switching_plain(seed=19):
    # Plain Algorithm 1 (no Theorem 4.1 ring): the construction the DP
    # framework's sqrt(lambda) copy count is measured against.
    return RobustDistinctElements(
        n=N, m=M, eps=EPS, rng=np.random.default_rng(seed), restart=False
    )


def _replay(est, items, engine=None):
    start = time.perf_counter()
    if engine is None:
        for lo in range(0, len(items), CHUNK):
            est.update_batch(StreamChunk.insertions(items[lo:lo + CHUNK]))
    else:
        with engine.session(est) as session:
            for lo in range(0, len(items), CHUNK):
                session.feed(items[lo:lo + CHUNK])
    return len(items) / (time.perf_counter() - start)


def test_dp_discipline_space_and_throughput(benchmark):
    rng = np.random.default_rng(4020)
    items = rng.integers(0, N, size=M)
    truth = FrequencyVector()
    truth.update_batch(items)
    f0 = truth.f0()

    rows = [format_row(
        ("path", "items/s", "speedup", "switches", "live copies", "rel err"),
        WIDTHS,
    )]
    payload = {
        "n": N, "m": M, "chunk": CHUNK, "eps": EPS, "workers": WORKERS,
        "results": {},
    }

    def run_all():
        # -- space: DP vs plain switching at equal target accuracy ----
        sw = _switching_plain()
        sw_rate = _replay(sw, items)
        sw_err = abs(sw.query() - f0) / f0
        rows.append(format_row(
            ("switching_plain_lambda", f"{sw_rate:,.0f}", "-", sw.switches,
             sw.copies, f"{sw_err:.3f}"), WIDTHS,
        ))
        payload["results"]["switching_plain_lambda"] = {
            "items_per_sec": round(sw_rate),
            "live_copies": sw.copies,
            "space_bits": sw.space_bits(),
            "switches": sw.switches,
            "final_relative_error": round(sw_err, 4),
        }

        contenders = [("dp_pr1_serial_batched", None),
                      ("dp_engine_serial", SerialEngine())]
        if fork_available():
            contenders.append(
                (f"dp_engine_process_{WORKERS}w", ProcessEngine(WORKERS))
            )
        results = {}
        for name, engine in contenders:
            est = _dp()
            rate = _replay(est, items, engine)
            results[name] = (rate, est)
            err = abs(est.query() - f0) / f0
            speedup = rate / results["dp_pr1_serial_batched"][0]
            payload["results"][name] = {
                "items_per_sec": round(rate),
                "speedup_vs_pr1": round(speedup, 2),
                "live_copies": est.copies,
                "space_bits": est.space_bits(),
                "switches": est.switches,
                "publications": est.budget_state()["publications"],
                "budget_spent": est.budget_state()["budget_spent"],
                "final_relative_error": round(err, 4),
            }
            rows.append(format_row(
                (name, f"{rate:,.0f}", f"{speedup:.2f}x", est.switches,
                 est.copies, f"{err:.3f}"), WIDTHS,
            ))

        # Equivalence: the engines must publish the identical protocol.
        base = results["dp_pr1_serial_batched"][1]
        for name, (_, est) in results.items():
            assert est.query() == base.query(), f"{name} diverged in output"
            assert est.switches == base.switches, f"{name} switch count"

        # Accuracy: both schemes inside the (1 +- eps) band.
        dp_err = abs(base.query() - f0) / f0
        assert dp_err <= EPS, f"DP tracker out of band: {dp_err:.3f}"
        assert sw_err <= EPS, f"switching tracker out of band: {sw_err:.3f}"
        assert base.budget_state()["generations"] == 0, (
            "compliant stream exhausted the switch budget"
        )

        # The headline: sqrt(lambda) live copies and the space to match.
        copy_advantage = sw.copies / base.copies
        space_advantage = sw.space_bits() / base.space_bits()
        payload["results"]["dp_space_advantage"] = {
            "copy_ratio": round(copy_advantage, 2),
            "space_ratio": round(space_advantage, 2),
        }
        rows.append(format_row(
            ("dp space advantage", "-", "-",
             f"{copy_advantage:.1f}x", f"{space_advantage:.1f}x", "-"),
            WIDTHS,
        ))
        assert copy_advantage >= MIN_SPACE_ADVANTAGE, (
            f"DP copy advantage only {copy_advantage:.2f}x "
            f"(required >= {MIN_SPACE_ADVANTAGE}x)"
        )
        assert space_advantage >= MIN_SPACE_ADVANTAGE, (
            f"DP space advantage only {space_advantage:.2f}x "
            f"(required >= {MIN_SPACE_ADVANTAGE}x)"
        )

        # Engine gate: the shared-work hoists must carry over to the
        # all-copy probe discipline.
        speedup = (results["dp_engine_serial"][0]
                   / results["dp_pr1_serial_batched"][0])
        assert speedup >= MIN_DP_ENGINE_SPEEDUP, (
            f"DP serial engine only {speedup:.2f}x over the serial batched "
            f"path (required >= {MIN_DP_ENGINE_SPEEDUP}x)"
        )
        return payload

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(
        f"n={N}, m={M:,} uniform oblivious stream, chunk={CHUNK}, eps={EPS}; "
        f"switching_plain = Theorem 5.1 KMV without ring restarts "
        f"(Theta(lambda) copies, one burned per switch); dp = "
        f"private-aggregate discipline (noisy median over all copies, "
        f"sparse-vector budget, O(sqrt(lambda)) copies, none burned)"
    )
    emit("parallel_dp", rows)
    emit_json("parallel_dp", payload)
