"""DP — private-aggregate and difference-ladder publishing (ISSUEs 4+5).

The space claim of Hassidim et al. 2020, measured on this repo's own
machinery: at equal target accuracy, plain Algorithm 1 sketch switching
provisions ``Theta(lambda)`` live copies (one burned per switch) while
the DP private-aggregate discipline provisions ``O(sqrt(lambda))`` —
no copy is burned on a switch; the sparse-vector budget pays for the
publications instead.  Both trackers replay the same 1M-update oblivious
uniform stream; the benchmark records live copy counts, measured
``space_bits``, and final accuracy, and asserts the DP tracker halves
the copy count and the space at equal (in-band) accuracy.

The ISSUE 5 ladder rows measure the Attias et al. 2022 sharpening on
top: the ``dpde`` tracker answers most publications from cheap
difference-estimator tiers, so the strong sparse-vector budget is
charged per *checkpoint* — the gate demands strictly more publications
per strong charge than the plain DP discipline (which pays one charge
per publication by construction, ratio 1.0) **and** less total space at
equal (in-band) accuracy, with the published outputs bit-for-bit
identical across the serial batched, SerialEngine, and ProcessEngine
paths (the per-item path is property-tested in
``tests/test_band_equivalence.py``).

Both DP trackers also run through the execution engine (probe sets are
part of the shard plan since the discipline refactor):
``dp_engine_serial`` and ``dpde_engine_serial`` must be bit-for-bit
identical to their serial batched paths and >= MIN_DP_ENGINE_SPEEDUP
over them (the shared-work hoists — the chunk is deduped once for the
whole copy set — are discipline-agnostic).  The process rows are
recorded for the trajectory but not hard-gated: the probe fan-out pays
one extra command round per worker per chunk, which the 1-cpu CI
container cannot amortize with real cores.

Emits ``out/parallel_dp.{txt,json}``; ``run_all.py`` folds the JSON into
``BENCH_parallel.json``, and ``benchmarks/check_regression.py``
(--require dp_engine_serial --require dpde_engine_serial) gates CI on
the speedup columns against the committed baseline.
"""

import time

import numpy as np

from repro.engine import ProcessEngine, SerialEngine, fork_available
from repro.robust.distinct import RobustDistinctElements
from repro.robust.dp import RobustDPDEDistinctElements, RobustDPDistinctElements
from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamChunk
from tables import emit, emit_json, format_row

N = 1 << 14
M = 1_000_000
#: Smaller than the switching bench's 65536 on purpose: a crossing chunk
#: is resolved raw with *every* copy paying the bisection under the DP
#: all-copy probe, so the F0 ramp's switch burst must be confined to a
#: few small chunks for the clean-chunk hoists (where the engine wins)
#: to dominate the replay — production chunk sizing for DP follows the
#: same rule.
CHUNK = 4096
EPS = 0.25
WORKERS = 4
WIDTHS = (30, 12, 10, 10, 12, 10)
MIN_DP_ENGINE_SPEEDUP = 1.5
MIN_SPACE_ADVANTAGE = 2.0
#: The ladder must answer a real multiple of its publications below the
#: strong group (plain DP's ratio is exactly 1.0 by construction).
MIN_DPDE_PUBS_PER_CHARGE = 2.0
#: ...and the smaller strong group must show up as total space, tiers
#: included, against the plain DP tracker at equal accuracy.
MIN_DPDE_SPACE_VS_DP = 1.3


def _dp(seed=19):
    return RobustDPDistinctElements(
        n=N, m=M, eps=EPS, rng=np.random.default_rng(seed)
    )


def _dpde(seed=19):
    return RobustDPDEDistinctElements(
        n=N, m=M, eps=EPS, rng=np.random.default_rng(seed)
    )


def _switching_plain(seed=19):
    # Plain Algorithm 1 (no Theorem 4.1 ring): the construction the DP
    # framework's sqrt(lambda) copy count is measured against.
    return RobustDistinctElements(
        n=N, m=M, eps=EPS, rng=np.random.default_rng(seed), restart=False
    )


def _replay(est, items, engine=None):
    start = time.perf_counter()
    if engine is None:
        for lo in range(0, len(items), CHUNK):
            est.update_batch(StreamChunk.insertions(items[lo:lo + CHUNK]))
    else:
        with engine.session(est) as session:
            for lo in range(0, len(items), CHUNK):
                session.feed(items[lo:lo + CHUNK])
    return len(items) / (time.perf_counter() - start)


def test_dp_discipline_space_and_throughput(benchmark):
    rng = np.random.default_rng(4020)
    items = rng.integers(0, N, size=M)
    truth = FrequencyVector()
    truth.update_batch(items)
    f0 = truth.f0()

    rows = [format_row(
        ("path", "items/s", "speedup", "switches", "live copies", "rel err"),
        WIDTHS,
    )]
    payload = {
        "n": N, "m": M, "chunk": CHUNK, "eps": EPS, "workers": WORKERS,
        "results": {},
    }

    def run_all():
        # -- space: DP vs plain switching at equal target accuracy ----
        sw = _switching_plain()
        sw_rate = _replay(sw, items)
        sw_err = abs(sw.query() - f0) / f0
        rows.append(format_row(
            ("switching_plain_lambda", f"{sw_rate:,.0f}", "-", sw.switches,
             sw.copies, f"{sw_err:.3f}"), WIDTHS,
        ))
        payload["results"]["switching_plain_lambda"] = {
            "items_per_sec": round(sw_rate),
            "live_copies": sw.copies,
            "space_bits": sw.space_bits(),
            "switches": sw.switches,
            "final_relative_error": round(sw_err, 4),
        }

        def run_family(prefix, build):
            """Replay one tracker family over the three execution paths."""
            contenders = [(f"{prefix}_pr1_serial_batched", None),
                          (f"{prefix}_engine_serial", SerialEngine())]
            if fork_available():
                contenders.append(
                    (f"{prefix}_engine_process_{WORKERS}w",
                     ProcessEngine(WORKERS))
                )
            results = {}
            for name, engine in contenders:
                est = build()
                rate = _replay(est, items, engine)
                results[name] = (rate, est)
                err = abs(est.query() - f0) / f0
                state = est.budget_state()
                speedup = rate / results[contenders[0][0]][0]
                row = {
                    "items_per_sec": round(rate),
                    "speedup_vs_pr1": round(speedup, 2),
                    "live_copies": est.copies,
                    "space_bits": est.space_bits(),
                    "switches": est.switches,
                    "publications": state["publications"],
                    "budget_spent": state["budget_spent"],
                    "final_relative_error": round(err, 4),
                }
                if "strong_charges" in state:
                    row["strong_charges"] = state["strong_charges"]
                    row["publications_per_charge"] = state[
                        "publications_per_charge"
                    ]
                payload["results"][name] = row
                rows.append(format_row(
                    (name, f"{rate:,.0f}", f"{speedup:.2f}x", est.switches,
                     est.copies, f"{err:.3f}"), WIDTHS,
                ))

            # Equivalence: every path must publish the identical protocol.
            base = results[contenders[0][0]][1]
            for name, (_, est) in results.items():
                assert est.query() == base.query(), (
                    f"{name} diverged in output"
                )
                assert est.switches == base.switches, f"{name} switch count"

            err = abs(base.query() - f0) / f0
            assert err <= EPS, f"{prefix} tracker out of band: {err:.3f}"
            assert base.budget_state()["generations"] == 0, (
                f"compliant stream exhausted the {prefix} switch budget"
            )

            # Engine gate: the shared-work hoists must carry over to the
            # family's probe discipline.
            speedup = (results[f"{prefix}_engine_serial"][0]
                       / results[contenders[0][0]][0])
            assert speedup >= MIN_DP_ENGINE_SPEEDUP, (
                f"{prefix} serial engine only {speedup:.2f}x over the "
                f"serial batched path "
                f"(required >= {MIN_DP_ENGINE_SPEEDUP}x)"
            )
            return base

        dp_base = run_family("dp", _dp)
        dpde_base = run_family("dpde", _dpde)
        assert sw_err <= EPS, f"switching tracker out of band: {sw_err:.3f}"

        # The ISSUE 4 headline: sqrt(lambda) live copies + matching space.
        copy_advantage = sw.copies / dp_base.copies
        space_advantage = sw.space_bits() / dp_base.space_bits()
        payload["results"]["dp_space_advantage"] = {
            "copy_ratio": round(copy_advantage, 2),
            "space_ratio": round(space_advantage, 2),
        }
        rows.append(format_row(
            ("dp space advantage", "-", "-",
             f"{copy_advantage:.1f}x", f"{space_advantage:.1f}x", "-"),
            WIDTHS,
        ))
        assert copy_advantage >= MIN_SPACE_ADVANTAGE, (
            f"DP copy advantage only {copy_advantage:.2f}x "
            f"(required >= {MIN_SPACE_ADVANTAGE}x)"
        )
        assert space_advantage >= MIN_SPACE_ADVANTAGE, (
            f"DP space advantage only {space_advantage:.2f}x "
            f"(required >= {MIN_SPACE_ADVANTAGE}x)"
        )

        # The ISSUE 5 headline: the ladder answers most publications
        # below the strong group (plain DP's ratio is 1.0 by
        # construction — every publication is a sparse-vector charge)
        # and turns the smaller strong group into less total space at
        # equal (in-band) accuracy.
        dpde_state = dpde_base.budget_state()
        # Plain DP charges the strong budget on every publication by
        # construction, so its publications-per-charge ratio IS 1.0.
        dp_ratio = 1.0
        dpde_ratio = dpde_state["publications_per_charge"]
        dpde_space = dp_base.space_bits() / dpde_base.space_bits()
        payload["results"]["dpde_budget"] = {
            "dp_publications_per_charge": round(dp_ratio, 3),
            "dpde_publications_per_charge": round(dpde_ratio, 3),
            "dpde_strong_charges": dpde_state["strong_charges"],
            "dpde_checkpoints": dpde_state["checkpoints"],
            "space_vs_dp": round(dpde_space, 2),
        }
        rows.append(format_row(
            ("dpde vs dp (pubs/charge)", "-", "-",
             f"{dpde_ratio:.1f}x", f"{dpde_space:.2f}x sp", "-"),
            WIDTHS,
        ))
        assert dpde_ratio > dp_ratio, (
            f"ladder publications per charge {dpde_ratio:.2f} not strictly "
            f"above the plain DP discipline's {dp_ratio:.2f}"
        )
        assert dpde_ratio >= MIN_DPDE_PUBS_PER_CHARGE, (
            f"ladder only {dpde_ratio:.2f} publications per strong charge "
            f"(required >= {MIN_DPDE_PUBS_PER_CHARGE})"
        )
        assert dpde_space >= MIN_DPDE_SPACE_VS_DP, (
            f"ladder space advantage over plain DP only {dpde_space:.2f}x "
            f"(required >= {MIN_DPDE_SPACE_VS_DP}x)"
        )
        return payload

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(
        f"n={N}, m={M:,} uniform oblivious stream, chunk={CHUNK}, eps={EPS}; "
        f"switching_plain = Theorem 5.1 KMV without ring restarts "
        f"(Theta(lambda) copies, one burned per switch); dp = "
        f"private-aggregate discipline (noisy median over all copies, "
        f"sparse-vector budget, O(sqrt(lambda)) copies, none burned); "
        f"dpde = difference-estimator ladder (Attias et al. 2022: cheap "
        f"tiers answer between checkpoints, strong budget charged per "
        f"checkpoint, strong group sized to checkpoints not publications)"
    )
    emit("parallel_dp", rows)
    emit_json("parallel_dp", payload)
