"""Registry sweep: run every DESIGN.md experiment at quick scale.

One pytest-benchmark entry per registered experiment id, so the single
command ``pytest benchmarks/ --benchmark-only`` regenerates the complete
per-experiment index (Table 1 rows + theorem experiments) through the
same code path as ``python -m repro run-all``.
"""

import pytest

from repro.experiments.registry import list_experiments, run
from tables import emit


@pytest.mark.parametrize("experiment_id", list_experiments())
def test_registry_experiment(benchmark, experiment_id):
    result = benchmark.pedantic(
        lambda: run(experiment_id, "quick"), rounds=1, iterations=1
    )
    name = "registry_" + experiment_id.replace(".", "_").lower()
    emit(name, result.render().splitlines())
    assert result.rows, experiment_id
