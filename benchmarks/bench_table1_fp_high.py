"""T1.FpHigh — Table 1 row 3: Fp estimation, p > 2.

Paper claim: static O(n^{1-2/p} poly(eps^-1 log n)) [14]; deterministic
Omega(n); robust matches static up to the computation-paths delta
inflation (Thm 4.4).

Measured: F3 tracking error and space on skewed (zipfian) streams — the
workload high moments exist for ([12]'s skew estimation) — comparing the
exact baseline, the static level-set estimator, and the Theorem 4.4
wrapper; plus the n^{1-2/p} space scaling across universe sizes.
"""

import numpy as np

from repro.robust.moments import RobustFpHigh
from repro.sketches.exact import ExactMomentCounter
from repro.sketches.fp_high import HighMomentSketch
from repro.streams.generators import zipfian_stream
from tables import emit, format_row, kib, run_stream

N = 512
M = 3000
EPS = 0.3
P = 3.0
WIDTHS = (28, 12, 12, 12, 10)


def test_table1_fp_high_row(benchmark):
    updates = zipfian_stream(N, M, np.random.default_rng(0), s=1.6)
    contenders = [
        ("exact (deterministic)", ExactMomentCounter(P)),
        ("static level-set [14]", HighMomentSketch.for_accuracy(
            P, N, EPS, np.random.default_rng(1))),
        ("robust comp-paths (T4.4)", RobustFpHigh(
            p=P, n=N, m=M, eps=EPS, rng=np.random.default_rng(2))),
    ]
    rows = [format_row(("algorithm", "space", "worst err", "mean err", "sec"),
                       WIDTHS)]
    results = {}

    def run_all():
        for name, algo in contenders:
            worst, mean, secs, bits = run_stream(
                algo, updates, lambda f: f.fp(P), skip=400
            )
            results[name] = (bits, worst)
            rows.append(format_row(
                (name, kib(bits), f"{worst:.3f}", f"{mean:.3f}", f"{secs:.1f}"),
                WIDTHS))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(f"p={P}, n={N}, m={M}, eps={EPS}; zipfian(1.6) stream")
    emit("table1_row3_fp_high", rows)

    # Constant-factor regime for the simplified level-set recovery.
    assert results["static level-set [14]"][1] <= 0.8
    assert results["robust comp-paths (T4.4)"][1] <= 0.8


def test_fp_high_space_scaling(benchmark):
    """Space grows ~ n^{1-2/p} = n^{1/3} for p=3: strongly sublinear."""
    small, large = benchmark.pedantic(
        lambda: (
            HighMomentSketch.for_accuracy(P, 256, EPS, np.random.default_rng(3)),
            HighMomentSketch.for_accuracy(P, 4096, EPS, np.random.default_rng(3)),
        ),
        rounds=1, iterations=1,
    )
    ratio = large.space_bits() / small.space_bits()
    report = [
        f"space(n=256)  = {kib(small.space_bits())}",
        f"space(n=4096) = {kib(large.space_bits())}",
        f"ratio = {ratio:.2f} (16x universe growth; "
        f"n^(1/3) predicts ~2.5x plus one extra level)",
    ]
    emit("table1_row3_space_scaling", report)
    assert ratio < 8
