"""INGEST — batched vs per-item ingestion throughput (the tentpole metric).

Replays the same 1M-update oblivious uniform stream through the hot
sketches twice: once per item (the historical path) and once through the
vectorized ``update_batch`` pipeline in 64Ki chunks.  Asserts the batched
path is at least 10x faster for CountMin and AMS and that both paths land
in the same state (exactly for the integer CountMin table, up to float
summation order for AMS), then reports a robust sketch-switching wrapper
for context.

Emits ``out/ingest_throughput.{txt,json}``; ``run_all.py`` folds the JSON
into ``BENCH_ingest.json`` at the repo root so the throughput trajectory
is tracked across PRs.
"""

import time

import numpy as np

from repro.robust.distinct import RobustDistinctElements
from repro.sketches.ams import AMSSketch
from repro.sketches.countmin import CountMinSketch
from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamChunk
from tables import emit, emit_json, format_row

N = 1 << 14
M = 1_000_000
CHUNK = 65536
ROBUST_PER_ITEM_PREFIX = 100_000
WIDTHS = (26, 14, 14, 10, 12)
MIN_SPEEDUP = 10.0


def _per_item_rate(sketch, items, limit=None) -> float:
    work = items if limit is None else items[:limit]
    start = time.perf_counter()
    for item in work.tolist():
        sketch.update(item)
    return len(work) / (time.perf_counter() - start)


def _batched_rate(sketch, items, chunk=CHUNK) -> float:
    start = time.perf_counter()
    for lo in range(0, len(items), chunk):
        sketch.update_batch(items[lo:lo + chunk])
    return len(items) / (time.perf_counter() - start)


def test_ingest_throughput(benchmark):
    rng = np.random.default_rng(2024)
    items = rng.integers(0, N, size=M)
    truth = FrequencyVector()
    truth.update_batch(items)

    contenders = {
        "countmin": lambda seed: CountMinSketch(2048, 5,
                                                np.random.default_rng(seed)),
        "ams": lambda seed: AMSSketch(32, 5, np.random.default_rng(seed)),
    }
    truths = {"countmin": float(truth.f1()), "ams": truth.fp(2.0)}

    rows = [format_row(
        ("sketch", "per-item/s", "batched/s", "speedup", "rel err"), WIDTHS
    )]
    payload = {"n": N, "m": M, "chunk": CHUNK, "results": {}}

    def run_all():
        for name, make in contenders.items():
            seq, bat = make(7), make(7)
            per_item = _per_item_rate(seq, items)
            batched = _batched_rate(bat, items)
            if name == "countmin":
                assert np.array_equal(seq._table, bat._table)
            else:
                assert np.allclose(seq._y, bat._y)
            err = abs(bat.query() - truths[name]) / truths[name]
            speedup = batched / per_item
            payload["results"][name] = {
                "per_item_items_per_sec": round(per_item),
                "batched_items_per_sec": round(batched),
                "speedup": round(speedup, 1),
                "final_relative_error": round(err, 4),
            }
            rows.append(format_row(
                (name, f"{per_item:,.0f}", f"{batched:,.0f}",
                 f"{speedup:.1f}x", f"{err:.3f}"), WIDTHS,
            ))
            assert speedup >= MIN_SPEEDUP, (
                f"{name}: batched path only {speedup:.1f}x over per-item "
                f"(required >= {MIN_SPEEDUP}x)"
            )

        # Robust sketch switching for context (per-item rate measured on a
        # prefix: the lambda-copies-per-update loop is exactly what the
        # batched pipeline exists to amortize).
        robust_seq = RobustDistinctElements(
            n=N, m=M, eps=0.25, rng=np.random.default_rng(11)
        )
        robust_bat = RobustDistinctElements(
            n=N, m=M, eps=0.25, rng=np.random.default_rng(11)
        )
        start = time.perf_counter()
        for item in items[:ROBUST_PER_ITEM_PREFIX].tolist():
            robust_seq.process_update(item)
        per_item = ROBUST_PER_ITEM_PREFIX / (time.perf_counter() - start)
        start = time.perf_counter()
        for lo in range(0, M, CHUNK):
            robust_bat.update_batch(StreamChunk.insertions(items[lo:lo + CHUNK]))
        batched = M / (time.perf_counter() - start)
        err = abs(robust_bat.query() - truth.f0()) / truth.f0()
        payload["results"]["robust_distinct_switching"] = {
            "per_item_items_per_sec": round(per_item),
            "batched_items_per_sec": round(batched),
            "speedup": round(batched / per_item, 1),
            "final_relative_error": round(err, 4),
        }
        rows.append(format_row(
            ("robust switching (T5.1)", f"{per_item:,.0f}", f"{batched:,.0f}",
             f"{batched / per_item:.1f}x", f"{err:.3f}"), WIDTHS,
        ))
        return payload

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(f"n={N}, m={M:,} uniform oblivious stream, chunk={CHUNK}; "
                f"per-item robust rate measured on a "
                f"{ROBUST_PER_ITEM_PREFIX:,}-update prefix")
    emit("ingest_throughput", rows)
    emit_json("ingest_throughput", payload)
