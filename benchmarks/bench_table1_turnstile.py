"""T1.Turnstile — Table 1 row 6: turnstile Fp for lambda-flip streams.

Paper claim (Thm 4.3): for the class S_lambda of turnstile streams with
Fp flip number <= lambda, space O(eps^-2 lambda log^2 n) with failure
probability n^{-C lambda}; the hard instance of [25] (insert-then-delete
waves) shows the lambda dependence is necessary.

Measured: F2 tracking error of the Theorem 4.3 wrapper on wave streams
with increasing wave counts (i.e. increasing realised flip number), plus
the measured flip number against the promised lambda.
"""

import numpy as np

from repro.core.flip_number import measured_flip_number
from repro.robust.moments import RobustTurnstileFp
from repro.streams.generators import turnstile_wave_stream
from repro.streams.validators import function_trajectory
from tables import emit, format_row, kib, run_stream

N = 256
M = 2400
EPS = 0.4
WIDTHS = (10, 14, 12, 12, 12)


def test_table1_turnstile_row(benchmark):
    rows = [format_row(
        ("waves", "flips (meas.)", "lam promise", "worst err", "space"),
        WIDTHS)]
    results = []

    def run_all():
        for waves in (2, 4):
            updates = turnstile_wave_stream(
                N, M, np.random.default_rng(waves), waves=waves
            )
            traj = function_trajectory(updates, lambda f: f.fp(2))
            flips = measured_flip_number(traj, EPS / 2)
            lam = max(64, 2 * flips)
            algo = RobustTurnstileFp(
                p=2.0, n=N, m=M, eps=EPS, lam=lam,
                rng=np.random.default_rng(100 + waves),
            )
            worst, _, _, bits = run_stream(
                algo, updates, lambda f: f.fp(2), skip=60, floor=25.0
            )
            results.append((waves, flips, lam, worst, bits))
            rows.append(format_row(
                (waves, flips, lam, f"{worst:.3f}", kib(bits)), WIDTHS))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(f"n={N}, m={M}, eps={EPS}; insert/delete wave streams "
                "(the [25] hard-instance family)")
    emit("table1_row6_turnstile", rows)

    for waves, flips, lam, worst, _ in results:
        assert flips <= lam, "stream left the promised class"
        assert worst <= 0.5, f"waves={waves}"
