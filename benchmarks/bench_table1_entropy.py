"""T1.H — Table 1 row 5: entropy estimation.

Paper claim: static O(eps^-2 log^2 n) [11] / O~(eps^-2) random-oracle
[23]; deterministic Omega~(n) (via the [21] reduction); robust
O(eps^-5 log^4 n) random-oracle / O(eps^-5 log^6 n) general (Thm 7.3).

Measured: worst additive entropy error and space on an entropy-sweeping
phased stream, for the exact baseline, the static Clifford–Cosma sketch,
and the Theorem 7.3 switching wrapper.
"""

import numpy as np

from repro.robust.entropy import RobustEntropy
from repro.sketches.entropy import CliffordCosmaSketch
from repro.sketches.exact import ExactEntropyCounter
from repro.streams.generators import phased_support_stream
from tables import emit, format_row, kib, run_additive

N = 1024
M = 3000
EPS = 0.4
WIDTHS = (30, 12, 12, 12, 10)


def test_table1_entropy_row(benchmark):
    updates = phased_support_stream(N, M, np.random.default_rng(0), phases=4)
    contenders = [
        ("exact (deterministic)", ExactEntropyCounter()),
        ("static Clifford-Cosma [11]", CliffordCosmaSketch.for_accuracy(
            EPS / 2, 0.05, np.random.default_rng(1))),
        ("robust switching (T7.3)", RobustEntropy(
            n=N, m=M, eps=EPS, rng=np.random.default_rng(2), copies=24)),
    ]
    rows = [format_row(
        ("algorithm", "space", "worst +err", "mean +err", "sec"), WIDTHS)]
    results = {}

    def run_all():
        for name, algo in contenders:
            worst, mean, secs, bits = run_additive(
                algo, updates, lambda f: f.shannon_entropy(), skip=150
            )
            results[name] = (bits, worst)
            rows.append(format_row(
                (name, kib(bits), f"{worst:.3f}", f"{mean:.3f}", f"{secs:.1f}"),
                WIDTHS))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(f"n={N}, m={M}, eps={EPS} (additive, bits); phased stream "
                "sweeping low -> high entropy")
    emit("table1_row5_entropy", rows)

    for name, (_, worst) in results.items():
        assert worst <= EPS + 0.1, name
    assert (results["robust switching (T7.3)"][0]
            > results["static Clifford-Cosma [11]"][0])
