"""T1.F0 — Table 1 row 1: distinct elements (F0 estimation).

Paper claim (Table 1): static randomized O~(eps^-2 + log n) [6];
deterministic Omega(n) [9]; adversarially robust
O~(eps^-3 + eps^-1 log n) (Thm 5.1) / O(eps^-3 log^3 n) with fast updates
(Thm 5.4); crypto route matches static (Thm 10.1).

The experiment measures space (bits) and worst tracking error on a
fresh-item stream (the flip-number worst case) and under the adaptive
probing adversary, for: the exact deterministic baseline, static KMV, the
Theorem 5.1 switching algorithm, the Theorem 5.4 computation-paths
algorithm, and the Theorem 10.1 crypto algorithm.  Expected shape: the
robust wrappers cost a poly(1/eps, log) factor over static, all far below
the Omega(n)-bit deterministic baseline, and none of them exceed their
error band under the adaptive adversary.
"""

import numpy as np
import pytest

from repro.adversary.attacks import EstimateProbingAdversary
from repro.adversary.game import AdversarialGame, relative_error_judge
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.distinct import FastRobustDistinctElements, RobustDistinctElements
from repro.sketches.exact import ExactDistinctCounter
from repro.sketches.kmv import KMVSketch
from repro.streams.model import Update
from tables import emit, format_row, kib, run_stream_stats

N = 1 << 14
M = 6000
EPS = 0.25
CHUNK = 256  # oblivious replay goes through the batched pipeline
WIDTHS = (26, 12, 12, 12, 10, 12)


def _contenders(rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    seeds = rng.integers(0, 2**31, size=8)
    return [
        ("exact (deterministic)", ExactDistinctCounter()),
        ("static KMV [6]-style", KMVSketch.for_accuracy(
            EPS, 0.05, np.random.default_rng(int(seeds[0])))),
        ("robust switching (T5.1)", RobustDistinctElements(
            n=N, m=M, eps=EPS, rng=np.random.default_rng(int(seeds[1])))),
        ("robust fast paths (T5.4)", FastRobustDistinctElements(
            n=N, m=M, eps=EPS, rng=np.random.default_rng(int(seeds[2])))),
        ("robust crypto (T10.1)", CryptoRobustDistinctElements(
            n=N, eps=EPS, rng=np.random.default_rng(int(seeds[3])))),
    ]


def test_table1_distinct_row(benchmark):
    updates = [Update(i, 1) for i in range(M)]
    rows = [
        format_row(
            ("algorithm", "space", "worst err", "mean err", "sec",
             "items/s"), WIDTHS
        )
    ]
    results = {}

    def run_all():
        for name, algo in _contenders():
            stats = run_stream_stats(
                algo, updates, lambda f: f.f0(), skip=150, chunk_size=CHUNK
            )
            results[name] = (stats.space_bits, stats.worst_error)
            rows.append(
                format_row(
                    (name, kib(stats.space_bits), f"{stats.worst_error:.3f}",
                     f"{stats.mean_error:.3f}", f"{stats.seconds:.1f}",
                     f"{stats.items_per_sec:,.0f}"),
                    WIDTHS,
                )
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append(f"n={N}, m={M}, eps={EPS}, chunk={CHUNK}; stream = fresh "
                "items (worst-case flip number), batched oblivious replay; "
                "errors judged at chunk boundaries (coarser than the "
                "per-update protocol of earlier seeds)")
    emit("table1_row1_distinct", rows)

    static_bits = results["static KMV [6]-style"][0]
    robust_bits = results["robust switching (T5.1)"][0]
    crypto_bits = results["robust crypto (T10.1)"][0]
    # Shape assertions.  The deterministic baseline's Omega(n) lower bound
    # is asymptotic — at laptop scale the exact counter's F0*64 bits can be
    # modest — so the load-bearing comparisons are: the generic wrapper
    # pays a poly(1/eps, log) multiplicative factor over the static sketch,
    # while the crypto route is robust at essentially the static cost.
    assert static_bits < robust_bits
    assert crypto_bits < 3 * static_bits
    # All tracking errors inside the band.
    for name, (_, worst) in results.items():
        assert worst <= EPS + 0.05, name


def test_table1_distinct_adaptive(benchmark):
    """Same row under the adaptive probing adversary: nobody breaks."""
    game = AdversarialGame(
        lambda f: f.f0(), relative_error_judge(EPS + 0.05), grace_steps=150
    )
    report = []

    def run_all():
        for name, algo in _contenders(rng_seed=7):
            adv = EstimateProbingAdversary(N, np.random.default_rng(11))
            result = game.run(algo, adv, max_rounds=3000)
            report.append(f"{name}: failed={result.failed} "
                          f"worst={result.max_relative_error:.3f}")
            assert not result.failed, name
        return report

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("table1_row1_distinct_adaptive", report)
