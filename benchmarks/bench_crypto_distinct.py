"""E.Crypto — Theorem 10.1: optimal-space robust F0 via a PRP.

Paper claim: against computationally bounded adversaries, PRP
preprocessing in front of a duplicate-insensitive static tracker is
adversarially robust at essentially *no* space overhead (just the
O(c log n) key) — unlike the wrapper frameworks' multiplicative factors.

Measured: space of static KMV vs crypto-robust (KMV + Feistel key) vs the
Theorem 5.1 switching algorithm at equal eps; accuracy under a
duplicate-heavy adaptive probing adversary; and the PRP's own throughput.
"""

import numpy as np

from repro.adversary.attacks import EstimateProbingAdversary
from repro.adversary.game import AdversarialGame, relative_error_judge
from repro.hashing.feistel import FeistelPermutation
from repro.robust.crypto_distinct import CryptoRobustDistinctElements
from repro.robust.distinct import RobustDistinctElements
from repro.sketches.kmv import KMVSketch
from tables import emit, format_row, kib

N = 1 << 14
M = 4000
EPS = 0.2
WIDTHS = (30, 14, 14)


def test_crypto_space_comparison(benchmark):
    def build():
        return {
            "static KMV (non-robust)": KMVSketch.for_accuracy(
                EPS, 0.05, np.random.default_rng(0)).space_bits(),
            "crypto robust (T10.1)": CryptoRobustDistinctElements(
                n=N, eps=EPS, rng=np.random.default_rng(1)).space_bits(),
            "switching robust (T5.1)": RobustDistinctElements(
                n=N, m=M, eps=EPS, rng=np.random.default_rng(2)).space_bits(),
        }

    spaces = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [format_row(("algorithm", "space", "vs static"), WIDTHS)]
    static = spaces["static KMV (non-robust)"]
    for name, bits in spaces.items():
        rows.append(format_row((name, kib(bits), f"{bits / static:.2f}x"),
                               WIDTHS))
    rows.append("")
    rows.append("Theorem 10.1 shape: crypto robustness is ~free (one PRP "
                "key); the generic wrapper pays a multiplicative factor")
    emit("crypto_distinct_space", rows)

    assert spaces["crypto robust (T10.1)"] <= static + 256
    assert spaces["switching robust (T5.1)"] > 5 * static


def test_crypto_accuracy_under_adaptive_stream(benchmark):
    algo = CryptoRobustDistinctElements(n=N, eps=EPS,
                                        rng=np.random.default_rng(3))
    game = AdversarialGame(
        lambda f: f.f0(), relative_error_judge(EPS + 0.05), grace_steps=150
    )
    result = benchmark.pedantic(
        lambda: game.run(
            algo, EstimateProbingAdversary(N, np.random.default_rng(4)),
            max_rounds=M,
        ),
        rounds=1, iterations=1,
    )
    emit("crypto_distinct_adaptive", [
        f"crypto F0 vs probing adversary over {result.steps} rounds:",
        f"  failed: {result.failed}",
        f"  worst relative error: {result.max_relative_error:.3f}",
    ])
    assert not result.failed


def test_feistel_throughput(benchmark):
    perm = FeistelPermutation.from_seed(N, np.random.default_rng(5))
    items = list(range(0, N, 7))

    def sweep():
        for x in items:
            perm.forward(x)

    benchmark(sweep)
