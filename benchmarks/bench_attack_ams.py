"""E.AMS — Theorem 9.1: the adaptive attack on the AMS sketch.

Paper claim: for any t <= n/c, Algorithm 3 forces the AMS estimate below
half the true F2 within O(t) updates with probability 9/10.  Contrast
(Section 1.1): the Theorem 4.1 robust F2 tracker withstands any adaptive
adversary.

Measured: attack success rate and updates-to-failure across sketch sizes
t in {16, 64, 128} (expect ~100% success within ~15 t updates, linear in
t), plus the survival of the sketch-switching F2 tracker under the very
same adversary.
"""

import numpy as np

from repro.adversary.ams_attack import run_ams_attack
from repro.robust.moments import RobustFpSwitching
from repro.sketches.ams import AMSFullSketch
from tables import emit, format_row

TRIALS = 6
WIDTHS = (8, 10, 14, 14, 14)


def test_attack_fools_ams_across_sizes(benchmark):
    rows = [format_row(
        ("t", "fooled", "median steps", "steps/t", "max steps"), WIDTHS)]
    all_results = []

    def run_all():
        for t in (16, 64, 128):
            fooled = 0
            steps = []
            for trial in range(TRIALS):
                sketch = AMSFullSketch(
                    t=t, n=8192, rng=np.random.default_rng(1000 * t + trial)
                )
                ok, used, _ = run_ams_attack(
                    sketch, np.random.default_rng(trial), max_updates=60 * t
                )
                fooled += ok
                if ok:
                    steps.append(used)
            med = int(np.median(steps)) if steps else -1
            all_results.append((t, fooled, med, steps))
            rows.append(format_row(
                (t, f"{fooled}/{TRIALS}", med,
                 f"{med / t:.1f}" if med > 0 else "-",
                 max(steps) if steps else "-"),
                WIDTHS))
        return all_results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows.append("")
    rows.append("Theorem 9.1 shape: success prob >= 9/10, O(t) updates "
                "(constant ~10-15 observed)")
    emit("attack_ams", rows)

    for t, fooled, med, steps in all_results:
        assert fooled >= TRIALS - 1, f"t={t}"
        assert med <= 30 * t, f"t={t}"
    # Linearity in t: median steps should grow with t.
    assert all_results[-1][2] > all_results[0][2]


def test_robust_tracker_survives_same_attack(benchmark):
    """The paper's contrast: same adversary, robust tracker, no failure."""
    def run():
        algo = RobustFpSwitching(
            p=2.0, n=8192, m=3000, eps=0.4, rng=np.random.default_rng(5),
            track="moment", copies=16, stable_constant=3.0,
        )
        return run_ams_attack(
            algo, np.random.default_rng(6), max_updates=1000, t=64
        )

    fooled, steps, transcript = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = max(abs(e - g) / g for e, g in transcript if g > 0)
    emit("attack_ams_robust_survival", [
        f"robust F2 tracker under Algorithm 3 ({steps} adversarial updates):",
        f"  fooled (est < F2/2): {fooled}",
        f"  worst relative error: {worst:.3f} (band eps=0.4)",
    ])
    assert not fooled
    assert worst <= 0.4
