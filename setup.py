"""Legacy setup shim: lets `pip install -e . --no-use-pep517` work offline
with the pre-wheel setuptools available in the build environment.  All
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
