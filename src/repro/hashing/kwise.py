"""k-wise independent hash families (Carter--Wegman polynomials).

A degree-``(k-1)`` polynomial with uniformly random coefficients over a prime
field is a k-wise independent function from the field to itself.  All the
sketches take their randomness from this family:

* CountSketch / CountMin rows use pairwise (k=2) bucket hashes and 4-wise
  sign hashes;
* the classic AMS estimator uses 4-wise signs;
* Algorithm 2 of the paper (fast distinct elements) uses a d-wise family with
  ``d = Theta(log log n + log 1/delta)``.

The family maps ``[n] -> [2**out_bits]`` by evaluating the polynomial over
GF(2^61 - 1) and truncating to the requested number of output bits, the
standard construction (the truncation preserves k-wise independence up to a
negligible bias of ``2**out_bits / P``).
"""

from __future__ import annotations

import numpy as np

from repro.hashing.field import (
    FIELD_BITS,
    MERSENNE_P,
    mod_mersenne,
    poly_eval_stacked,
    poly_eval_vec,
)


class KWiseHash:
    """A single function drawn from a k-wise independent family.

    Parameters
    ----------
    k:
        Independence parameter; the polynomial has degree ``k - 1``.
    rng:
        Source of the random coefficients.
    out_bits:
        Output values are uniform in ``[0, 2**out_bits)``.  Must satisfy
        ``out_bits <= 61``.
    """

    def __init__(self, k: int, rng: np.random.Generator, out_bits: int = FIELD_BITS):
        if k < 1:
            raise ValueError(f"independence k must be >= 1, got {k}")
        if not 1 <= out_bits <= FIELD_BITS:
            raise ValueError(f"out_bits must be in [1, {FIELD_BITS}], got {out_bits}")
        self.k = k
        self.out_bits = out_bits
        # Draw coefficients uniformly from the field.  The leading coefficient
        # is allowed to be zero; that only makes the family larger.
        coeffs = rng.integers(0, MERSENNE_P, size=k, dtype=np.uint64)
        self._coeffs: list[int] = [int(c) for c in coeffs]
        self._shift = FIELD_BITS - out_bits

    def __call__(self, x: int) -> int:
        """Hash a single item."""
        acc = 0
        for c in reversed(self._coeffs):
            acc = mod_mersenne(acc * x + c)
        return acc >> self._shift

    def hash_many(self, xs: np.ndarray) -> np.ndarray:
        """Hash a vector of items, returning ``uint64`` outputs.

        Vectorised Horner evaluation over GF(2^61 - 1) using the split-word
        kernels in :mod:`repro.hashing.field`; bit-for-bit identical to
        mapping :meth:`__call__` over ``xs``.  This is the hot inner loop of
        every ``update_batch`` implementation.
        """
        xs = np.ascontiguousarray(xs, dtype=np.uint64)
        out = poly_eval_vec(self._coeffs, xs)
        if self._shift:
            out = out >> np.uint64(self._shift)
        return out

    def space_bits(self) -> int:
        """Bits needed to store this function (k field elements)."""
        return self.k * FIELD_BITS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KWiseHash(k={self.k}, out_bits={self.out_bits})"


def stack_coefficients(hashes) -> np.ndarray:
    """Collect the coefficient rows of degree-equal hashes into one matrix.

    Returns a ``(len(hashes), k)`` uint64 array suitable for
    :func:`hash_many_stacked`.  All hashes must share the same independence
    ``k`` and output truncation — the stacked Horner sweep runs every row
    through the identical recursion, so mixed degrees cannot share a pass.
    """
    hashes = list(hashes)
    if not hashes:
        raise ValueError("need at least one hash to stack")
    k = hashes[0].k
    shift = hashes[0]._shift
    for h in hashes:
        if h.k != k or h._shift != shift:
            raise ValueError("stacked hashes must share k and out_bits")
    return np.array([h._coeffs for h in hashes], dtype=np.uint64)


def hash_many_stacked(hashes, xs: np.ndarray) -> np.ndarray:
    """Evaluate many same-degree :class:`KWiseHash` functions in one pass.

    Returns a ``(len(hashes), len(xs))`` uint64 array whose row ``i`` is
    bit-for-bit identical to ``hashes[i].hash_many(xs)``.  This is the
    shared per-chunk hash pass that stacked copy groups reuse across all
    planes: one Horner sweep over a coefficient matrix instead of one
    NumPy call chain per copy per row.
    """
    hashes = list(hashes)
    coeffs = stack_coefficients(hashes)
    xs = np.ascontiguousarray(xs, dtype=np.uint64)
    out = poly_eval_stacked(coeffs, xs)
    shift = hashes[0]._shift
    if shift:
        out = out >> np.uint64(shift)
    return out


def sign_many_stacked(sign_hashes, xs: np.ndarray) -> np.ndarray:
    """Evaluate many same-degree :class:`KWiseSignHash` functions at once.

    Returns a ``(len(sign_hashes), len(xs))`` float64 array of ±1 whose
    row ``i`` matches ``sign_hashes[i].sign_many(xs)`` bit-for-bit.
    """
    bits = hash_many_stacked([s._h for s in sign_hashes], xs) & np.uint64(1)
    return bits.astype(np.float64) * 2.0 - 1.0


class KWiseSignHash:
    """k-wise independent hash into {-1, +1}.

    Uses the low bit of a :class:`KWiseHash`.  CountSketch and AMS use
    ``k = 4``; 4-wise independence is exactly what the classical variance
    analysis of both estimators requires.
    """

    def __init__(self, k: int, rng: np.random.Generator):
        self._h = KWiseHash(k, rng, out_bits=FIELD_BITS)

    def __call__(self, x: int) -> int:
        return 1 if (self._h(x) & 1) else -1

    def sign_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised signs: a ``float64`` array of ±1 matching ``__call__``."""
        bits = self._h.hash_many(xs) & np.uint64(1)
        return bits.astype(np.float64) * 2.0 - 1.0

    def space_bits(self) -> int:
        return self._h.space_bits()


class TabulationHash:
    """Simple tabulation hashing: 3-independent but Chernoff-like in practice.

    Included as a faster substrate alternative for the level-list structure;
    splits a 32-bit key into 4 bytes and XORs random 64-bit table entries.
    """

    CHUNKS = 4
    CHUNK_BITS = 8

    def __init__(self, rng: np.random.Generator, out_bits: int = 64):
        if not 1 <= out_bits <= 64:
            raise ValueError(f"out_bits must be in [1, 64], got {out_bits}")
        self.out_bits = out_bits
        self._tables = rng.integers(
            0, 2**63, size=(self.CHUNKS, 2**self.CHUNK_BITS), dtype=np.uint64
        ) * np.uint64(2) + rng.integers(0, 2, size=(self.CHUNKS, 2**self.CHUNK_BITS),
                                        dtype=np.uint64)
        self._shift = 64 - out_bits

    def __call__(self, x: int) -> int:
        h = 0
        for c in range(self.CHUNKS):
            h ^= int(self._tables[c][(x >> (c * self.CHUNK_BITS)) & 0xFF])
        return h >> self._shift

    def space_bits(self) -> int:
        return self.CHUNKS * (2**self.CHUNK_BITS) * 64
