"""Hashing substrates: prime-field k-wise families, oracles, PRFs, PRPs.

Everything a production sketch library would keep in its ``hash`` module:
Carter–Wegman polynomial families over the Mersenne prime 2^61−1, batched
multipoint evaluation (Proposition 5.3), a BLAKE2b random oracle, a keyed PRF
and a Feistel pseudorandom permutation (the cryptographic substrate of
Theorem 10.1).
"""

from repro.hashing.field import (
    FIELD_BITS,
    MERSENNE_P,
    field_add,
    field_inv,
    field_mul,
    field_pow,
    mod_mersenne,
    poly_eval,
    poly_eval_many,
)
from repro.hashing.feistel import FeistelPermutation
from repro.hashing.kwise import KWiseHash, KWiseSignHash, TabulationHash
from repro.hashing.multipoint import BatchedHasher, multipoint_eval, poly_mod, poly_mul
from repro.hashing.prf import PRF
from repro.hashing.random_oracle import RandomOracle

__all__ = [
    "FIELD_BITS",
    "MERSENNE_P",
    "field_add",
    "field_inv",
    "field_mul",
    "field_pow",
    "mod_mersenne",
    "poly_eval",
    "poly_eval_many",
    "FeistelPermutation",
    "KWiseHash",
    "KWiseSignHash",
    "TabulationHash",
    "BatchedHasher",
    "multipoint_eval",
    "poly_mod",
    "poly_mul",
    "PRF",
    "RandomOracle",
]
