"""Pseudorandom permutation on [n] via a Feistel network + cycle walking.

Theorem 10.1 preprocesses every stream item through a random permutation
``Pi`` before it reaches the (duplicate-insensitive) static sketch.  A PRP
rather than a PRF matters in the proof: injectivity guarantees that the
permuted stream has exactly the same number of distinct elements.

A 4-round Feistel network over balanced 2k-bit blocks with independent PRF
round functions is a strong pseudorandom permutation (Luby–Rackoff).  To get
a permutation on an arbitrary domain [n] we instantiate Feistel on the
smallest even-bit block covering n and *cycle-walk*: re-encrypt until the
image lands back inside [n].  Cycle-walking visits ``2^(2k)/n <= 4`` points
in expectation per call, and preserves both bijectivity and pseudorandomness.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.prf import PRF


class FeistelPermutation:
    """Keyed pseudorandom permutation on ``[0, n)``.

    Parameters
    ----------
    n:
        Domain size (``n >= 2``).
    prf:
        Keyed PRF supplying the round functions; its key is the only stored
        state, so ``space_bits`` is the PRF key length.
    rounds:
        Number of Feistel rounds; 4 suffices for strong PRP security.
    """

    def __init__(self, n: int, prf: PRF, rounds: int = 4):
        if n < 2:
            raise ValueError(f"domain size must be >= 2, got {n}")
        if rounds < 3:
            raise ValueError("Luby-Rackoff needs at least 3 rounds")
        self.n = n
        self._prf = prf
        self.rounds = rounds
        # Smallest balanced block 2*half_bits with 2^(2*half_bits) >= n.
        bits = max(2, (n - 1).bit_length())
        self._half_bits = (bits + 1) // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._block = 1 << (2 * self._half_bits)

    def _round(self, r: int, x: int) -> int:
        return self._prf.evaluate(x, tweak=b"feistel" + bytes([r])) & self._half_mask

    def _encrypt_block(self, x: int) -> int:
        left = x >> self._half_bits
        right = x & self._half_mask
        for r in range(self.rounds):
            left, right = right, left ^ self._round(r, right)
        return (left << self._half_bits) | right

    def _decrypt_block(self, y: int) -> int:
        left = y >> self._half_bits
        right = y & self._half_mask
        for r in reversed(range(self.rounds)):
            left, right = right ^ self._round(r, left), left
        return (left << self._half_bits) | right

    def forward(self, x: int) -> int:
        """Apply the permutation to ``x`` in [0, n)."""
        if not 0 <= x < self.n:
            raise ValueError(f"item {x} outside domain [0, {self.n})")
        y = self._encrypt_block(x)
        while y >= self.n:  # cycle walking
            y = self._encrypt_block(y)
        return y

    def inverse(self, y: int) -> int:
        """Apply the inverse permutation to ``y`` in [0, n)."""
        if not 0 <= y < self.n:
            raise ValueError(f"item {y} outside domain [0, {self.n})")
        x = self._decrypt_block(y)
        while x >= self.n:
            x = self._decrypt_block(x)
        return x

    def space_bits(self) -> int:
        """Stored state: just the PRF key (the network is key-derived)."""
        return self._prf.space_bits()

    @classmethod
    def from_seed(cls, n: int, rng: np.random.Generator, rounds: int = 4
                  ) -> "FeistelPermutation":
        """Convenience constructor drawing a fresh 128-bit key."""
        return cls(n, PRF.from_seed(rng), rounds=rounds)
