"""Pseudorandom function with a short stored key.

Theorem 10.1's second part replaces the random oracle with an
exponentially-secure PRF whose key (``O(c log n)`` bits) *is* charged to the
algorithm's space.  The paper suggests AES or SHA-256 in practice; offline we
use keyed BLAKE2b, which has the same interface and the same heuristic
security properties.  Against the simulated polynomial-time adversaries in
this repository the two are interchangeable.
"""

from __future__ import annotations

import hashlib

import numpy as np


class PRF:
    """Keyed pseudorandom function ``[2^64] x labels -> [2^64]``.

    Parameters
    ----------
    key:
        The secret key; its byte length times 8 is the space charged by
        :meth:`space_bits`.
    """

    def __init__(self, key: bytes):
        if len(key) < 8:
            raise ValueError("PRF key must be at least 64 bits")
        self._key = key

    @classmethod
    def from_seed(cls, rng: np.random.Generator, key_bits: int = 128) -> "PRF":
        """Draw a fresh uniformly random key of ``key_bits`` bits."""
        nbytes = (key_bits + 7) // 8
        return cls(rng.bytes(nbytes))

    def evaluate(self, x: int, tweak: bytes = b"") -> int:
        """Return the 64-bit PRF output on input ``x`` (with optional tweak)."""
        msg = x.to_bytes(16, "little", signed=True) + tweak
        h = hashlib.blake2b(msg, key=self._key, digest_size=8)
        return int.from_bytes(h.digest(), "little")

    def evaluate_mod(self, x: int, modulus: int, tweak: bytes = b"") -> int:
        """PRF output reduced to ``[0, modulus)`` with rejection sampling."""
        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        bound = (1 << 64) - ((1 << 64) % modulus)
        attempt = 0
        while True:
            msg = (
                x.to_bytes(16, "little", signed=True)
                + tweak
                + attempt.to_bytes(4, "little")
            )
            word = int.from_bytes(
                hashlib.blake2b(msg, key=self._key, digest_size=8).digest(), "little"
            )
            if word < bound:
                return word % modulus
            attempt += 1

    def space_bits(self) -> int:
        """The stored key length in bits (this is the PRF's entire state)."""
        return len(self._key) * 8
