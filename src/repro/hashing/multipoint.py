"""Batch polynomial evaluation over GF(2^61 - 1).

Proposition 5.3 of the paper (von zur Gathen & Gerhard, ch. 10) states that a
degree-``d`` polynomial can be evaluated at ``d`` points in
``O(d log^2 d log log d)`` ring operations.  The paper uses this to batch the
d-wise-independent hash evaluations of Algorithm 2 so that the *amortised*
update cost is polylog-log.

We implement the classical product-tree / remainder-tree algorithm behind
that bound: build the subproduct tree of ``prod (x - x_i)``, reduce the
polynomial down the tree, and read the evaluations off the leaves.  The inner
polynomial multiplication is schoolbook (quasi-linear multiplication does not
pay off at the batch sizes the sketches use), so the asymptotics here are
``O(d^2)`` ring ops worst case — but the *interface* (batched evaluation that
amortises hashing over the next ``d`` updates) is exactly the one Algorithm 2
needs, and :class:`BatchedHasher` below provides it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.hashing.field import MERSENNE_P, mod_mersenne

Poly = list[int]  # coefficients, constant term first


def poly_mul(a: Poly, b: Poly) -> Poly:
    """Multiply two polynomials over GF(P) (schoolbook)."""
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % MERSENNE_P
    return out


def poly_mod(a: Poly, m: Poly) -> Poly:
    """Return ``a mod m`` over GF(P).  ``m`` must be monic."""
    if len(m) == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    if m[-1] != 1:
        raise ValueError("modulus must be monic")
    r = [c % MERSENNE_P for c in a]
    dm = len(m) - 1
    while len(r) - 1 >= dm and len(r) > 0:
        lead = r[-1]
        if lead:
            off = len(r) - 1 - dm
            for j in range(dm):
                r[off + j] = (r[off + j] - lead * m[j]) % MERSENNE_P
        r.pop()
    while r and r[-1] == 0:
        r.pop()
    return r


def _build_tree(points: Sequence[int]) -> list[list[Poly]]:
    """Subproduct tree: level 0 holds the monic linear factors (x - x_i)."""
    level: list[Poly] = [[(-x) % MERSENNE_P, 1] for x in points]
    tree = [level]
    while len(level) > 1:
        nxt: list[Poly] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(poly_mul(level[i], level[i + 1]))
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        tree.append(nxt)
        level = nxt
    return tree


def multipoint_eval(coefficients: Sequence[int], points: Sequence[int]) -> list[int]:
    """Evaluate a polynomial at all ``points`` via a remainder tree.

    Equivalent to ``[poly_eval(coefficients, x) for x in points]`` but
    organised as the divide-and-conquer of Proposition 5.3.
    """
    pts = list(points)
    if not pts:
        return []
    poly = [c % MERSENNE_P for c in coefficients]
    tree = _build_tree(pts)

    def descend(level: int, index: int, residue: Poly) -> list[int]:
        node = tree[level][index]
        residue = poly_mod(residue, node)
        if level == 0:
            return [residue[0] if residue else 0]
        left = 2 * index
        right = 2 * index + 1
        out = descend(level - 1, left, residue)
        if right < len(tree[level - 1]):
            out += descend(level - 1, right, residue)
        return out

    top = len(tree) - 1
    # The top level may hold a stray unpaired node; descend handles ragged
    # trees because _build_tree carries odd nodes upward unchanged.
    return descend(top, 0, poly)


class BatchedHasher:
    """Amortised d-wise hash evaluation as used by Algorithm 2.

    The fast distinct-elements sketch needs one d-wise-independent hash value
    per update, but evaluating a degree-d polynomial per update costs ``O(d)``
    ring operations.  The paper's fix (proof of Lemma 5.2) is to buffer ``d``
    consecutive updates, evaluate all of them with one batched multipoint
    evaluation, and spread the work over the following ``d`` steps.

    This class reproduces that schedule: :meth:`push` enqueues an item and
    returns the hash values that became available (possibly none — the caller
    is expected to tolerate a delay of at most ``d`` items, which Lemma 5.2
    accounts for with the additive-``d``-error argument).
    """

    def __init__(self, coefficients: Sequence[int], batch_size: int):
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._coeffs = [c % MERSENNE_P for c in coefficients]
        self._batch = batch_size
        self._pending: list[int] = []

    def push(self, item: int) -> list[tuple[int, int]]:
        """Queue ``item``; return ``(item, hash)`` pairs that are now ready."""
        self._pending.append(item)
        if len(self._pending) < self._batch:
            return []
        ready = self._pending
        self._pending = []
        values = multipoint_eval(self._coeffs, ready)
        return list(zip(ready, values))

    def flush(self) -> list[tuple[int, int]]:
        """Evaluate and return everything still queued (end of stream)."""
        if not self._pending:
            return []
        ready = self._pending
        self._pending = []
        values = multipoint_eval(self._coeffs, ready)
        return list(zip(ready, values))

    @property
    def pending_count(self) -> int:
        """Number of items whose hashes have not been computed yet."""
        return len(self._pending)
