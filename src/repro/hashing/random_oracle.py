"""Random oracle built on BLAKE2b.

The paper's random-oracle model gives the algorithm read access to an
arbitrarily long random string that is not charged to its space bound
(Section 2; used by Theorems 1.3/10.1 and the [23] entropy estimator).  We
realise the oracle with a keyed BLAKE2b hash: the oracle's "random string" is
indexed by arbitrary byte strings, and each query returns uniform bits that
are a deterministic function of (key, query), so repeated queries agree —
exactly the read-only-random-tape semantics the model requires.
"""

from __future__ import annotations

import hashlib


class RandomOracle:
    """Deterministic stateless oracle: query -> uniform 64-bit integers.

    Parameters
    ----------
    seed:
        Identifies which oracle (random tape) we are reading.  Two oracles
        with the same seed answer identically.
    """

    def __init__(self, seed: int):
        self._key = int(seed).to_bytes(16, "little", signed=False)

    def query_bytes(self, label: bytes, nbytes: int = 8) -> bytes:
        """Return ``nbytes`` oracle bytes for ``label`` (counter-mode expand)."""
        out = bytearray()
        counter = 0
        while len(out) < nbytes:
            h = hashlib.blake2b(
                label + counter.to_bytes(4, "little"), key=self._key, digest_size=32
            )
            out.extend(h.digest())
            counter += 1
        return bytes(out[:nbytes])

    def query_int(self, x: int, domain: int | None = None) -> int:
        """Oracle value for integer ``x``: uniform in [0, 2^64) or [0, domain).

        Rejection sampling makes the bounded variant exactly uniform.
        """
        label = x.to_bytes(16, "little", signed=True)
        if domain is None:
            return int.from_bytes(self.query_bytes(label, 8), "little")
        if domain <= 0:
            raise ValueError(f"domain must be positive, got {domain}")
        # Rejection-sample 64-bit words until one lands in the largest
        # multiple of `domain`; each attempt uses an independent oracle index.
        bound = (1 << 64) - ((1 << 64) % domain)
        attempt = 0
        while True:
            word = int.from_bytes(
                self.query_bytes(label + attempt.to_bytes(4, "little"), 8), "little"
            )
            if word < bound:
                return word % domain
            attempt += 1

    def query_unit(self, x: int) -> float:
        """Oracle value for ``x`` mapped into [0, 1) with 53-bit precision."""
        return (self.query_int(x) >> 11) / float(1 << 53)

    def space_bits(self) -> int:
        """Oracle storage charged to the algorithm (none, by definition)."""
        return 0
