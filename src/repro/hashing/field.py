"""Prime-field arithmetic over the Mersenne prime 2^61 - 1.

All hash families in :mod:`repro.hashing` evaluate polynomials over a fixed
prime field.  We use the Mersenne prime ``P = 2**61 - 1`` because reduction
modulo a Mersenne prime needs only shifts and masks, which is the standard
choice in production sketch implementations, and because it comfortably
exceeds every universe size used in the experiments (``n <= 2**40``).

Python integers are arbitrary precision, so the arithmetic here is exact.
The functions are written so that a C port could use 128-bit intermediates.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

#: The Mersenne prime 2^61 - 1 used as the field modulus everywhere.
MERSENNE_P: int = (1 << 61) - 1

#: Bit width of a field element.
FIELD_BITS: int = 61

# uint64 constants for the vectorized kernels (plain Python ints promote
# unpredictably across numpy versions; pinned scalars do not).
_P64 = np.uint64(MERSENNE_P)
_MASK32 = np.uint64(0xFFFFFFFF)
_MASK29 = np.uint64((1 << 29) - 1)
_S3 = np.uint64(3)
_S29 = np.uint64(29)
_S32 = np.uint64(32)
_S61 = np.uint64(61)


def mod_mersenne(x: int) -> int:
    """Reduce a non-negative integer modulo ``2**61 - 1``.

    Uses the Mersenne identity ``2**61 === 1 (mod P)`` so the reduction is a
    few shifts instead of a division.  Accepts any ``x < 2**122`` (the result
    of multiplying two field elements).
    """
    x = (x & MERSENNE_P) + (x >> 61)
    # One fold handles x < 2**122; a conditional subtraction finishes it.
    x = (x & MERSENNE_P) + (x >> 61)
    if x >= MERSENNE_P:
        x -= MERSENNE_P
    return x


def field_add(a: int, b: int) -> int:
    """Return ``(a + b) mod P``."""
    s = a + b
    if s >= MERSENNE_P:
        s -= MERSENNE_P
    return s


def field_mul(a: int, b: int) -> int:
    """Return ``(a * b) mod P``."""
    return mod_mersenne(a * b)


def field_pow(a: int, e: int) -> int:
    """Return ``a**e mod P`` by square-and-multiply."""
    return pow(a, e, MERSENNE_P)


def field_inv(a: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``P``.

    Raises
    ------
    ZeroDivisionError
        If ``a`` is zero modulo ``P``.
    """
    a %= MERSENNE_P
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(P)")
    return pow(a, MERSENNE_P - 2, MERSENNE_P)


def poly_eval(coefficients: Sequence[int], x: int) -> int:
    """Evaluate a polynomial at ``x`` over GF(P) using Horner's rule.

    ``coefficients`` are given from the constant term upward, i.e.
    ``coefficients[j]`` multiplies ``x**j``.
    """
    acc = 0
    for c in reversed(coefficients):
        acc = mod_mersenne(acc * x + c)
    return acc


def poly_eval_many(coefficients: Sequence[int], xs: Iterable[int]) -> list[int]:
    """Evaluate one polynomial at many points (repeated Horner).

    This is the baseline that :mod:`repro.hashing.multipoint` improves on for
    large batches; for the small degrees used by the sketches it is already
    the fastest option in CPython.
    """
    rev = list(reversed([c % MERSENNE_P for c in coefficients]))
    out = []
    for x in xs:
        acc = 0
        for c in rev:
            acc = mod_mersenne(acc * x + c)
        out.append(acc)
    return out


# ----------------------------------------------------------------------
# Vectorized kernels (the batched-ingestion hot path)
# ----------------------------------------------------------------------

def mod_mersenne_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mod_mersenne` for ``uint64`` arrays with ``x < 2**64``."""
    x = (x & _P64) + (x >> _S61)
    x = (x & _P64) + (x >> _S61)
    return np.where(x >= _P64, x - _P64, x)


def field_mul_vec(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized ``(a * b) mod P`` for ``uint64`` arrays of field elements.

    A 61x61-bit product does not fit in 64 bits, so the operands are split
    into 32-bit halves and each partial product is folded with the Mersenne
    identities ``2**64 === 8`` and ``2**61 === 1 (mod P)``.  Every
    intermediate stays strictly below ``2**64``, so uint64 arithmetic is
    exact (no wraparound before the final reduction).
    """
    a_hi = a >> _S32
    a_lo = a & _MASK32
    b_hi = b >> _S32
    b_lo = b & _MASK32
    acc = a_hi * b_hi
    acc <<= _S3  # (a_hi*b_hi) * 2^64 === * 8
    m = a_hi * b_lo  # < 2^61
    acc += m >> _S29  # m * 2^32 folded as (m >> 29) + (m & mask29) << 32
    m &= _MASK29
    m <<= _S32
    acc += m
    np.multiply(a_lo, b_hi, out=a_hi)  # reuse the a_hi buffer; < 2^61
    acc += a_hi >> _S29
    a_hi &= _MASK29
    a_hi <<= _S32
    acc += a_hi
    a_lo *= b_lo  # < 2^64
    acc += a_lo >> _S61
    a_lo &= _P64
    acc += a_lo
    # acc < 5 * 2^61 < 2^64: two folds plus a conditional subtraction.
    acc = (acc & _P64) + (acc >> _S61)
    acc = (acc & _P64) + (acc >> _S61)
    acc -= np.where(acc >= _P64, _P64, np.uint64(0))
    return acc


def poly_eval_vec(coefficients: Sequence[int], xs: np.ndarray) -> np.ndarray:
    """Evaluate one polynomial at a ``uint64`` array of points over GF(P).

    Horner's rule with :func:`field_mul_vec`; coefficients are given from
    the constant term upward, exactly as in :func:`poly_eval`.  Matches
    :func:`poly_eval` bit-for-bit on every input in ``[0, P)``.
    """
    xs = np.ascontiguousarray(xs, dtype=np.uint64)
    rev = [c % MERSENNE_P for c in reversed(coefficients)]
    # Horner's first round multiplies the (zero) accumulator, so start the
    # accumulator at the leading coefficient directly.
    acc = np.full(xs.shape, np.uint64(rev[0]), dtype=np.uint64)
    for c in rev[1:]:
        acc = field_mul_vec(acc, xs)
        acc += np.uint64(c)  # < 2^62: one fold suffices
        acc = (acc & _P64) + (acc >> _S61)
        acc -= np.where(acc >= _P64, _P64, np.uint64(0))
    return acc


def poly_eval_stacked(coeff_matrix: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Evaluate many degree-equal polynomials at the same points, at once.

    ``coeff_matrix`` is a ``(polys, degree)`` uint64 array of field
    elements, constant term upward per row — one row per polynomial.
    Returns a ``(polys, len(xs))`` uint64 array where row ``i`` equals
    ``poly_eval_vec(coeff_matrix[i], xs)`` bit-for-bit: the shared Horner
    recursion runs over a 2-D accumulator, and :func:`field_mul_vec` is
    elementwise, so stacking rows never changes any row's arithmetic.

    This is the shared-hash-pass kernel for stacked copy groups: the k
    copies of a switching estimator hold k independent hash functions of
    the same degree, and one call here replaces k separate Horner sweeps
    over the same chunk of items.
    """
    coeff_matrix = np.ascontiguousarray(coeff_matrix, dtype=np.uint64)
    if coeff_matrix.ndim != 2 or coeff_matrix.shape[1] < 1:
        raise ValueError(
            f"coeff_matrix must be (polys, degree>=1), got {coeff_matrix.shape}"
        )
    xs = np.ascontiguousarray(xs, dtype=np.uint64)
    rev = coeff_matrix[:, ::-1]
    acc = np.repeat(rev[:, 0:1], len(xs), axis=1)
    for j in range(1, rev.shape[1]):
        acc = field_mul_vec(acc, xs)
        acc += rev[:, j : j + 1]  # < 2^62: one fold suffices
        acc = (acc & _P64) + (acc >> _S61)
        acc -= np.where(acc >= _P64, _P64, np.uint64(0))
    return acc
