"""Prime-field arithmetic over the Mersenne prime 2^61 - 1.

All hash families in :mod:`repro.hashing` evaluate polynomials over a fixed
prime field.  We use the Mersenne prime ``P = 2**61 - 1`` because reduction
modulo a Mersenne prime needs only shifts and masks, which is the standard
choice in production sketch implementations, and because it comfortably
exceeds every universe size used in the experiments (``n <= 2**40``).

Python integers are arbitrary precision, so the arithmetic here is exact.
The functions are written so that a C port could use 128-bit intermediates.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

#: The Mersenne prime 2^61 - 1 used as the field modulus everywhere.
MERSENNE_P: int = (1 << 61) - 1

#: Bit width of a field element.
FIELD_BITS: int = 61


def mod_mersenne(x: int) -> int:
    """Reduce a non-negative integer modulo ``2**61 - 1``.

    Uses the Mersenne identity ``2**61 === 1 (mod P)`` so the reduction is a
    few shifts instead of a division.  Accepts any ``x < 2**122`` (the result
    of multiplying two field elements).
    """
    x = (x & MERSENNE_P) + (x >> 61)
    # One fold handles x < 2**122; a conditional subtraction finishes it.
    x = (x & MERSENNE_P) + (x >> 61)
    if x >= MERSENNE_P:
        x -= MERSENNE_P
    return x


def field_add(a: int, b: int) -> int:
    """Return ``(a + b) mod P``."""
    s = a + b
    if s >= MERSENNE_P:
        s -= MERSENNE_P
    return s


def field_mul(a: int, b: int) -> int:
    """Return ``(a * b) mod P``."""
    return mod_mersenne(a * b)


def field_pow(a: int, e: int) -> int:
    """Return ``a**e mod P`` by square-and-multiply."""
    return pow(a, e, MERSENNE_P)


def field_inv(a: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``P``.

    Raises
    ------
    ZeroDivisionError
        If ``a`` is zero modulo ``P``.
    """
    a %= MERSENNE_P
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(P)")
    return pow(a, MERSENNE_P - 2, MERSENNE_P)


def poly_eval(coefficients: Sequence[int], x: int) -> int:
    """Evaluate a polynomial at ``x`` over GF(P) using Horner's rule.

    ``coefficients`` are given from the constant term upward, i.e.
    ``coefficients[j]`` multiplies ``x**j``.
    """
    acc = 0
    for c in reversed(coefficients):
        acc = mod_mersenne(acc * x + c)
    return acc


def poly_eval_many(coefficients: Sequence[int], xs: Iterable[int]) -> list[int]:
    """Evaluate one polynomial at many points (repeated Horner).

    This is the baseline that :mod:`repro.hashing.multipoint` improves on for
    large batches; for the small degrees used by the sketches it is already
    the fastest option in CPython.
    """
    rev = list(reversed([c % MERSENNE_P for c in coefficients]))
    out = []
    for x in xs:
        acc = 0
        for c in rev:
            acc = mod_mersenne(acc * x + c)
        out.append(acc)
    return out
