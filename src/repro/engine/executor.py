"""Execution engines: serial and process-pool drivers for shard plans.

The paper's robustness frameworks multiply work — sketch switching runs
``Theta(eps^-1 log eps^-1)`` independent copies of a static sketch — and
that work is embarrassingly parallel per copy.  This module executes the
plans of :mod:`repro.engine.shards` two ways:

* :class:`SerialEngine` — everything on the calling process, but with the
  plan's shared-work hoists applied: the chunk is deduped/aggregated
  *once* and the result fanned out to every copy, instead of every copy
  re-deduping the same chunk.  This is also the deterministic fallback
  when process parallelism is unavailable.
* :class:`ProcessEngine` — copies (or merge partials) live in forked
  worker processes; chunks travel through shared-memory buffers (one
  ``memcpy`` in, zero copies out), and only tiny protocol messages cross
  the command pipes.  Requires the ``fork`` start method (the workers
  inherit sketch state and factories by address space, not pickling);
  anywhere ``fork`` is unavailable the engine degrades to the serial
  path, bit-for-bit.

Both engines drive the **same**
:class:`~repro.core.sketch_switching.SwitchingProtocol` that serial
chunked ingestion (``update_chunk``) uses — the coordinator asks the
estimator's :class:`~repro.core.bands.BandPolicy` whether the boundary
estimate ``band.crossed(...)`` the publish band, and the protocol
resolves crossings by snapshot bisection of the active copy — per-item
exact for bisectable bands, cell-granularity coalescing for the
additive band (see :mod:`repro.core.bands`).  The engines
differ from ``update_chunk`` only in *where the copies live* (a
:class:`~repro.core.copies.LocalCopyBackend` versus forked workers) and
in the shard plan's shared-work hoists; published outputs, switch
counts, and restart RNG draws agree across serial chunked, SerialEngine,
and ProcessEngine by construction — one drive loop, one band
implementation, one coordinator-side replacement-RNG derivation.  This
covers every band policy: multiplicative (F0/Fp/L2), additive (entropy,
previously stuck on the serial path), and the heavy-hitters epoch
construction (:class:`EpochShardPlan`: the inner L2 switcher is driven
through the switching protocol while the CountSketch ring fans out as a
uniform feed with the epoch clock on the coordinator).

Bit-for-bit caveats are inherited from the chunked pipeline, not added
by the engines: exact-state sketches reproduce the per-item protocol
exactly; float accumulators match up to summation order; non-monotone
trackers (entropy) coalesce a transient band exit that fully reverts
within one clean chunk — the same oblivious-replay semantics the serial
``update_chunk`` documents.

The adversarial game is untouched: it stays per item, per update, on one
process — adaptivity requires round granularity.  Engines are an
**oblivious replay** surface, like the rest of the batched pipeline.
"""

from __future__ import annotations

import abc
import multiprocessing as mp
import os
import time
import traceback
from multiprocessing import shared_memory

import numpy as np

from repro.core.copies import (
    CopyManager,
    LocalCopyBackend,
    UniverseLocalBackend,
)
from repro.obs import (
    NULL_TELEMETRY,
    MaterializeFaultEvent,
    PhasesEvent,
    SpecBroadcastEvent,
    WorkerTelemetry,
)
from repro.core.sketch_switching import REPLAY_LEAF, SwitchingProtocol
from repro.engine.shards import (
    EpochShardPlan,
    MergeShardPlan,
    SwitchingShardPlan,
    partition_copies,
    plan_shards,
    source_mode_for,
)
from repro.sketches.base import Sketch, aggregate_batch, as_batch_arrays
from repro.streams.sources import source_from_spec

#: Default shared-buffer capacity in updates; chunks larger than this are
#: split (each split gets its own boundary band check, so keep ingestion
#: chunk sizes at or below it for bit-for-bit serial equivalence).
DEFAULT_CHUNK_CAPACITY = 1 << 20


class EngineError(RuntimeError):
    """A worker process failed; the session is no longer usable."""


# ----------------------------------------------------------------------
# Process backend: where sharded copies live and how they are fed
# ----------------------------------------------------------------------


def _switching_worker(conn, copies, factories, views, unique_hint: bool,
                      worker_id: int = 0, trace: bool = False) -> None:
    """Forked worker: owns a shard of copies, obeys coordinator commands.

    ``copies`` is a list of ``[global_index, sketch]`` pairs inherited
    through fork; ``factories`` maps each owned global index to the
    factory that rebuilds it (heterogeneous under grouped copy sets —
    a difference-ladder tier copy and a strong copy rebuild
    differently); ``views`` maps region name -> (items, deltas) NumPy
    views over the shared-memory buffers.  Commands arrive in order per
    pipe, which is the only ordering the protocol relies on; probe/search
    commands name the *probed* copies this worker owns (the active copy
    under the active-copy discipline, this worker's slice of the probed
    group under the aggregate disciplines' group fan-out) and replies
    carry ``(index, estimate)`` pairs so the coordinator can reassemble
    the probe set in discipline order.  Band policies arrive inside the
    scan command (small frozen dataclasses), so the worker resolves a
    per-item crossing with the coordinator's exact predicate.

    Telemetry: per-command wall seconds are always accumulated into a
    :class:`~repro.obs.WorkerTelemetry` buffer (feeding
    ``IngestReport.phase_seconds``'s ``worker_*`` keys); with ``trace``
    on, the coordinator tags each staged chunk via a fire-and-forget
    ``("span", id)`` command and the buffer turns the ops between two
    tags into one ``worker-chunk`` span.  Everything ships back in the
    ``("obs",)`` reply at collect time — workers never write to the
    coordinator's sinks (a forked ``Telemetry`` may hold an open file).
    """
    obs = WorkerTelemetry(worker_id, trace)

    def lookup(idx):
        for slot in copies:
            if slot[0] == idx:
                return slot
        raise RuntimeError(f"copy {idx} not owned by this worker")

    def slice_of(region, lo, hi, unit):
        items, deltas = views[region]
        return items[lo:hi], (None if unit else deltas[lo:hi])

    # Stack of probed-copy snapshot lists: [[(idx, snapshot), ...], ...]
    snap_stack: list = []
    # Spec-shipped sessions: the materializer iterator built from the
    # broadcast spec; each ("adv", count) pulls the next chunk locally.
    chunk_iter = None
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "span":
                obs.begin_span(msg[1])
                continue
            if op == "obs":
                conn.send(("ok", obs.drain()))
                continue
            if op == "source":
                chunk_iter = source_from_spec(msg[1]).chunks()
                continue
            timed = op in WorkerTelemetry.PHASE_OF
            tick = time.perf_counter() if timed else 0.0
            if op == "adv":
                # Materialize the next chunk from the local source and
                # expose it as this worker's "raw" region; every other
                # op (probe/feed/afeed/astep/ascan) then works on it
                # unchanged, by region + position.
                _, count = msg
                chunk = next(chunk_iter)
                if len(chunk.items) != count:
                    raise RuntimeError(
                        f"chunk source yielded {len(chunk.items)} updates, "
                        f"coordinator expected {count}"
                    )
                views["raw"] = (chunk.items, chunk.deltas)
            elif op == "feed":
                # Feed every owned copy except the probed `exclude` set
                # (which took the same updates through probe/search ops;
                # an empty exclude feeds all, the uniform-ring case).
                _, region, lo, hi, unit, assume_unique, exclude = msg
                its, dts = slice_of(region, lo, hi, unit)
                excluded = set(exclude)
                for i, s in copies:
                    if i in excluded:
                        continue
                    if assume_unique and unique_hint:
                        s.update_batch(its, dts, assume_unique=True)
                    else:
                        s.update_batch(its, dts)
            elif op == "probe":
                _, region, lo, hi, unit, assume_unique, probed = msg
                its, dts = slice_of(region, lo, hi, unit)
                snaps, out = [], []
                for idx in probed:
                    slot = lookup(idx)
                    snaps.append((idx, slot[1].snapshot()))
                    if assume_unique and unique_hint:
                        slot[1].update_batch(its, dts, assume_unique=True)
                    else:
                        slot[1].update_batch(its, dts)
                    out.append((idx, slot[1].query()))
                snap_stack.append(snaps)
                conn.send(("ok", out))
            elif op == "akeep":
                snap_stack.pop()
            elif op == "aroll":
                for idx, snap in snap_stack.pop():
                    lookup(idx)[1] = snap
            elif op == "asnap":
                _, probed = msg
                snap_stack.append(
                    [(idx, lookup(idx)[1].snapshot()) for idx in probed]
                )
            elif op == "afeed":
                _, lo, hi, probed = msg
                its, dts = slice_of("raw", lo, hi, False)
                out = []
                for idx in probed:
                    slot = lookup(idx)
                    slot[1].update_batch(its, dts)
                    out.append((idx, slot[1].query()))
                conn.send(("ok", out))
            elif op == "astep":
                _, pos, probed = msg
                items, deltas = views["raw"]
                item, delta = int(items[pos]), int(deltas[pos])
                out = []
                for idx in probed:
                    sk = lookup(idx)[1]
                    sk.update(item, delta)
                    out.append((idx, sk.query()))
                conn.send(("ok", out))
            elif op == "ascan":
                _, lo, hi, active, published, band = msg
                sk = lookup(active)[1]
                its, dts = slice_of("raw", lo, hi, False)
                result = None
                for off, (item, delta) in enumerate(
                    zip(its.tolist(), dts.tolist())
                ):
                    sk.update(item, delta)
                    y = sk.query()
                    if band.crossed(published, y):
                        result = (lo + off, y)
                        break
                conn.send(("ok", result))
            elif op == "replace":
                _, idx, rng = msg
                lookup(idx)[1] = factories[idx](rng)
            elif op == "get":
                _, idx = msg
                conn.send(("ok", lookup(idx)[1]))
            elif op == "sync":
                conn.send(("ok", None))
            elif op == "collect":
                conn.send(("ok", [(i, s) for i, s in copies]))
            elif op == "stop":
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown command {op!r}")
            if timed:
                obs.op(op, time.perf_counter() - tick)
    except (EOFError, KeyboardInterrupt):  # coordinator went away
        pass
    except Exception:  # surface the traceback instead of hanging the pipe
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


def _send(conn, msg) -> None:
    """Send a command, surfacing a dead worker's queued traceback.

    A worker that fails during a fire-and-forget command sends
    ``("error", traceback)`` and closes its pipe end; the coordinator
    only notices at its *next* send.  Drain that queued error into an
    :class:`EngineError` instead of leaking a bare ``BrokenPipeError``.
    """
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError) as exc:
        detail = ""
        try:
            while conn.poll(0):
                kind, payload = conn.recv()
                if kind == "error":
                    detail = f":\n{payload}"
        except (EOFError, OSError):
            pass
        raise EngineError(f"engine worker died{detail}") from exc


def _recv_checked(conn):
    """Receive a reply, converting worker errors/deaths to EngineError."""
    try:
        kind, payload = conn.recv()
    except EOFError as exc:
        raise EngineError("engine worker died without a reply") from exc
    if kind == "error":
        raise EngineError(f"engine worker failed:\n{payload}")
    return payload


class _SharedBuffers:
    """Shared-memory chunk regions: raw stream arrays + preprocessed feed."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        nbytes = capacity * 8
        self._blocks = {
            name: shared_memory.SharedMemory(create=True, size=nbytes)
            for name in ("raw_i", "raw_d", "sub_i", "sub_d")
        }
        arr = {
            name: np.ndarray(capacity, dtype=np.int64, buffer=block.buf)
            for name, block in self._blocks.items()
        }
        self.views = {
            "raw": (arr["raw_i"], arr["raw_d"]),
            "sub": (arr["sub_i"], arr["sub_d"]),
        }

    def write(self, region: str, items, deltas) -> int:
        dst_i, dst_d = self.views[region]
        count = len(items)
        dst_i[:count] = items
        if deltas is not None:
            dst_d[:count] = deltas
        return count

    def close(self, unlink: bool) -> None:
        self.views = {}
        for block in self._blocks.values():
            block.close()
            if unlink:
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self._blocks = {}


class _ProcessCopyBackend:
    """Copies of one :class:`CopyManager` sharded across forked workers.

    The process twin of :class:`~repro.core.copies.LocalCopyBackend`:
    same interface, driven by the same
    :class:`~repro.core.sketch_switching.SwitchingProtocol`, with the
    copies living in worker address spaces and chunks travelling through
    shared-memory buffers.
    """

    def __init__(
        self,
        copies: CopyManager,
        shards: list[list[int]],
        unique_hint: bool,
        capacity: int,
        telemetry=None,
        spec: bool = False,
    ):
        self._copies = copies
        self._tele = telemetry if telemetry is not None else copies.telemetry
        #: Per-phase worker wall seconds, summed across workers at
        #: collect time (None until then).
        self.worker_phases: dict[str, float] | None = None
        # Workers drive per-copy object state (each owns a shard, so
        # there is no cross-copy batching to win); detach any stacked
        # groups *before* the fork captures the sketches below, so the
        # sketches shipped into worker address spaces own their arrays.
        copies.unstack()
        # Spec-shipped sessions skip shared memory entirely: each worker
        # materializes its own "raw" region from the broadcast source,
        # so there is nothing for the coordinator to copy in.
        self._buffers = None if spec else _SharedBuffers(capacity)
        ctx = mp.get_context("fork")
        self._owner: dict[int, int] = {}
        self._conns = []
        self._procs = []
        self._dirty = False  # fire-and-forget commands since last barrier
        self._raw_len = 0
        self._sub_len = 0
        self._sub_unit = True
        self._sub_unique = False
        for w, indices in enumerate(shards):
            parent, child = ctx.Pipe()
            owned = [[i, copies.sketches[i]] for i in indices]
            factories = {i: copies.factory_for(i) for i in indices}
            proc = ctx.Process(
                target=_switching_worker,
                args=(child, owned, factories,
                      {} if self._buffers is None else self._buffers.views,
                      unique_hint, w, self._tele.enabled),
                daemon=True,
            )
            proc.start()
            child.close()
            for i in indices:
                self._owner[i] = w
            self._conns.append(parent)
            self._procs.append(proc)

    @property
    def workers(self) -> int:
        return len(self._procs)

    @property
    def capacity(self) -> int:
        # Spec mode has no shared buffers to overflow: chunk geometry is
        # the source's own, so advertise an effectively unbounded cap.
        return self._buffers.capacity if self._buffers is not None else 1 << 62

    def _recv(self, conn):
        return _recv_checked(conn)

    def _barrier(self) -> None:
        if not self._dirty:
            return
        for conn in self._conns:
            _send(conn, ("sync",))
        for conn in self._conns:
            self._recv(conn)
        self._dirty = False

    def broadcast_source(self, spec: dict) -> None:
        """Ship the chunk-source spec to every worker, once per session.

        Fire-and-forget: workers build their own materializer from the
        spec (regenerating via the seeded RNG tree, or memmapping their
        own read-only store view) and subsequent :meth:`stage_spec`
        advance commands pull chunks locally.
        """
        for conn in self._conns:
            _send(conn, ("source", spec))
        self._dirty = True

    def stage_spec(self, count: int) -> None:
        """Advance every worker's local source by one chunk of ``count``.

        No barrier and no shared-buffer write: pipe ordering serializes
        the advance after each worker's prior ops, and there is no
        coordinator-written buffer to race on — this (plus the vanished
        per-chunk memcpy) is the spec-shipping win.
        """
        if self._tele.enabled:
            span_id = self._tele.current_span_id
            for conn in self._conns:
                _send(conn, ("span", span_id))
        for conn in self._conns:
            _send(conn, ("adv", count))
        self._raw_len = count
        self._sub_len = 0
        self._sub_unit = True
        self._sub_unique = False
        self._dirty = True

    def stage(self, items: np.ndarray, deltas: np.ndarray) -> None:
        if self._buffers is None:
            raise RuntimeError(
                "spec-mode backend has no shared buffers; "
                "drive it with feed_spec"
            )
        # Workers may still be consuming the previous chunk's buffer via
        # fire-and-forget feeds; fence before overwriting it.
        self._barrier()
        self._buffers.write("raw", items, deltas)
        self._raw_len = len(items)
        self._sub_len = 0
        self._sub_unit = True
        self._sub_unique = False
        if self._tele.enabled:
            # Tag the workers' upcoming ops with the coordinator's
            # current (chunk) span so their buffered worker-chunk spans
            # merge back under the right parent.  Fire-and-forget and
            # pipe-ordered; it touches no shared buffers, so it needs no
            # barrier — and the disabled path sends nothing at all.
            span_id = self._tele.current_span_id
            for conn in self._conns:
                _send(conn, ("span", span_id))

    def stage_sub(self, items, deltas, assume_unique: bool) -> None:
        """Stage a pre-processed feed without probing (uniform fan-outs).

        Safe to call right after :meth:`stage` (which fenced the previous
        chunk); the subsequent ``feed_others_sub(())`` then fans the
        staged arrays to every copy.
        """
        self._sub_len = self._buffers.write("sub", items, deltas)
        self._sub_unit = deltas is None
        self._sub_unique = assume_unique

    def _owner_conn(self, idx: int):
        return self._conns[self._owner[idx]]

    def _group(self, probes: tuple[int, ...]) -> dict[int, list[int]]:
        """Group probed copy indices by owning worker (insertion order)."""
        groups: dict[int, list[int]] = {}
        for idx in probes:
            groups.setdefault(self._owner[idx], []).append(idx)
        return groups

    def _gather(self, groups: dict[int, list[int]], probes) -> np.ndarray:
        """Collect (index, estimate) replies and order them like probes."""
        by_index: dict[int, float] = {}
        for worker in groups:
            for idx, y in self._recv(self._conns[worker]):
                by_index[idx] = y
        return np.array([by_index[idx] for idx in probes], dtype=np.float64)

    # -- probed-copy probe/search ops -----------------------------------

    def probe_sub(
        self, items, deltas, assume_unique: bool, probes: tuple[int, ...]
    ) -> np.ndarray:
        self._barrier()
        self.stage_sub(items, deltas, assume_unique)
        groups = self._group(probes)
        for worker, owned in groups.items():
            _send(self._conns[worker],
                  ("probe", "sub", 0, self._sub_len, self._sub_unit,
                   assume_unique, owned))
        return self._gather(groups, probes)

    def probe_raw(self, probes: tuple[int, ...]) -> np.ndarray:
        self._sub_len = 0
        groups = self._group(probes)
        for worker, owned in groups.items():
            _send(self._conns[worker],
                  ("probe", "raw", 0, self._raw_len, False, False, owned))
        return self._gather(groups, probes)

    def keep_probed(self, probes: tuple[int, ...]) -> None:
        for worker in self._group(probes):
            _send(self._conns[worker], ("akeep",))
        self._dirty = True

    def roll_probed(self, probes: tuple[int, ...]) -> None:
        for worker in self._group(probes):
            _send(self._conns[worker], ("aroll",))
        self._dirty = True

    def snap_probed(self, probes: tuple[int, ...]) -> None:
        for worker, owned in self._group(probes).items():
            _send(self._conns[worker], ("asnap", owned))
        self._dirty = True

    def feed_probed(
        self, lo: int, hi: int, probes: tuple[int, ...]
    ) -> np.ndarray:
        groups = self._group(probes)
        for worker, owned in groups.items():
            _send(self._conns[worker], ("afeed", lo, hi, owned))
        return self._gather(groups, probes)

    def step_probed(self, pos: int, probes: tuple[int, ...]) -> np.ndarray:
        groups = self._group(probes)
        for worker, owned in groups.items():
            _send(self._conns[worker], ("astep", pos, owned))
        return self._gather(groups, probes)

    def scan_probed(
        self, lo: int, hi: int, probe: int, published: float, band
    ) -> tuple[int, float] | None:
        conn = self._owner_conn(probe)
        _send(conn, ("ascan", lo, hi, probe, published, band))
        got = self._recv(conn)
        return None if got is None else tuple(got)

    # -- non-probed copies ----------------------------------------------

    def feed_others_sub(self, exclude: tuple[int, ...]) -> None:
        for conn in self._conns:
            _send(conn, ("feed", "sub", 0, self._sub_len, self._sub_unit,
                       self._sub_unique, tuple(exclude)))
        self._dirty = True

    def feed_others_raw(self, exclude: tuple[int, ...]) -> None:
        self.catch_up(0, self._raw_len, exclude)

    def catch_up(self, lo: int, hi: int, exclude: tuple[int, ...]) -> None:
        for conn in self._conns:
            _send(conn, ("feed", "raw", lo, hi, False, False,
                         tuple(exclude)))
        self._dirty = True

    def replace(self, idx: int, rng: np.random.Generator) -> None:
        _send(self._conns[self._owner[idx]], ("replace", idx, rng))
        self._dirty = True

    def fetch(self, idx: int) -> Sketch:
        """Pull one copy's current state (epoch snapshot publishing)."""
        self._barrier()
        conn = self._conns[self._owner[idx]]
        _send(conn, ("get", idx))
        return self._recv(conn)

    def collect_into(self, copies: CopyManager) -> None:
        self._barrier()
        for conn in self._conns:
            _send(conn, ("collect",))
        for conn in self._conns:
            for idx, sketch in self._recv(conn):
                copies.sketches[idx] = sketch
        # Re-adopt the collected sketches into stacked groups (no-op when
        # stacking is disabled or nothing qualifies).
        copies.restack()
        # Pull the workers' telemetry buffers: phase timings always
        # (they feed phase_seconds' worker_* keys), buffered events and
        # spans when tracing is on (merged into the coordinator bundle).
        for conn in self._conns:
            _send(conn, ("obs",))
        phases: dict[str, float] = {}
        for worker, conn in enumerate(self._conns):
            payload = self._recv(conn)
            for key, seconds in payload.get("phases", {}).items():
                phases[key] = phases.get(key, 0.0) + seconds
            self._tele.absorb_worker(worker, payload)
        self.worker_phases = phases

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns, self._procs = [], []
        if self._buffers is not None:
            self._buffers.close(unlink=True)
            self._buffers = None


# ----------------------------------------------------------------------
# Merge (per-partial) process execution
# ----------------------------------------------------------------------


def _merge_worker(conn, partial: Sketch, views) -> None:
    """Forked worker owning one merge partial."""
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "feed":
                _, lo, hi = msg
                items, deltas = views["raw"]
                partial.update_batch(items[lo:hi], deltas[lo:hi])
                conn.send(("ok", None))
            elif op == "collect":
                conn.send(("ok", partial))
            elif op == "stop":
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown command {op!r}")
    except (EOFError, KeyboardInterrupt):
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Sessions (what api.ingest and the runner drive)
# ----------------------------------------------------------------------


def _merge_phases(timings: dict, *backends) -> dict[str, float]:
    """Coordinator protocol timings + collected worker timings.

    Worker seconds land under separate ``worker_*`` keys rather than
    being summed into the coordinator phases: the coordinator's
    ``probe`` already *includes* the wall time spent blocked on worker
    probe replies (adding would double-count), while fire-and-forget
    feeds overlap the coordinator entirely (their cost only shows up
    worker-side).  Worker phases appear once the backend has collected
    (session finalize); multiple backends (the epoch session's ring +
    L2) sum per key.
    """
    phases = dict(timings)
    for backend in backends:
        worker_phases = getattr(backend, "worker_phases", None)
        if not worker_phases:
            continue
        for key, seconds in worker_phases.items():
            key = f"worker_{key}"
            phases[key] = phases.get(key, 0.0) + seconds
    return phases


class IngestSession(abc.ABC):
    """One engine-managed ingestion pass over an oblivious stream."""

    #: Human-readable execution mode, recorded by IngestReport/benchmarks.
    mode: str = "serial"

    #: Band-policy name driving this session, if any ("multiplicative",
    #: "additive", "epoch") — surfaced by IngestReport.  (The probe
    #: discipline is *not* mirrored here: IngestReport derives it from
    #: the one authoritative surface, ``api.discipline_state``.)
    policy: str | None = None

    #: Why the planner fell back to plain serial feeding, if it did —
    #: surfaced by IngestReport so a fallback is observable, not silent.
    fallback_reason: str | None = None

    #: True when this session ships the chunk-source *spec* to workers
    #: instead of chunk bytes; api.ingest then drives feed_source.
    spec_shipped: bool = False

    #: How the planner decided to execute a ChunkSource, if one was
    #: supplied: "spec", "universe", or "bytes: <reason>" — surfaced by
    #: IngestReport so the fallback to bytes-shipping is observable.
    source_mode: str | None = None

    def feed_source(self, source) -> None:
        """Ingest a whole :class:`~repro.streams.sources.ChunkSource`.

        Default: materialize on the coordinator and feed chunk bytes.
        Spec-shipped sessions override this to broadcast the spec once
        and drive per-chunk advance commands instead.
        """
        for chunk in source.chunks():
            self.feed(chunk.items, chunk.deltas)

    @property
    def phase_seconds(self) -> dict[str, float] | None:
        """Cumulative per-phase wall-clock (probe / band_test / feed /
        replace) for protocol-driven sessions; None when the session has
        no switching protocol to instrument."""
        return None

    @abc.abstractmethod
    def feed(self, items, deltas=None) -> None:
        """Ingest one chunk."""

    @abc.abstractmethod
    def query(self) -> float:
        """The estimator's current published output."""

    def finalize(self) -> None:
        """Sync all sharded state back into the estimator."""

    def close(self) -> None:
        """Release workers/buffers without finalizing (error path)."""

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:
            self.close()


class _PlainSession(IngestSession):
    """Deterministic fallback: plain ``update_batch`` on this process."""

    def __init__(
        self, estimator: Sketch, mode: str = "serial",
        fallback_reason: str | None = None,
    ):
        self._est = estimator
        self.mode = mode
        self.fallback_reason = fallback_reason

    def feed(self, items, deltas=None) -> None:
        self._est.update_batch(items, deltas)

    def query(self) -> float:
        return self._est.query()


class _SwitchingSession(IngestSession):
    """Per-copy fan-out session for switching estimators (any band)."""

    def __init__(self, estimator, plan: SwitchingShardPlan, backend,
                 mode: str, raw_hoists: bool = False, spec_source=None):
        self._est = estimator
        self._plan = plan
        self._backend = backend
        # Raw-driven backends (the universe fast path, spec-shipping)
        # consume the unaggregated stream positionally: the coordinator
        # never materializes a deduped view to hand them, so the plan's
        # seen-filter/aggregate-once hoists are turned off and the
        # backend does its own shared-work hoisting.
        hoists_off = raw_hoists or spec_source is not None
        self._protocol = SwitchingProtocol(
            plan.switcher, backend,
            seen_filter=None if hoists_off else plan.hoists.make_seen_filter(),
            aggregate_once=False if hoists_off else plan.aggregate_once,
            unique_hint=False if hoists_off else plan.unique_hint,
        )
        self.mode = mode
        self.policy = plan.band.name
        self.spec_shipped = spec_source is not None
        self._tele = plan.switcher._copies.telemetry

    @property
    def phase_seconds(self) -> dict[str, float]:
        return _merge_phases(self._protocol.timings, self._backend)

    def feed(self, items, deltas=None) -> None:
        if self._tele.enabled:
            with self._tele.span("chunk"):
                self._protocol.feed(items, deltas)
        else:
            self._protocol.feed(items, deltas)

    def feed_source(self, source) -> None:
        if not self.spec_shipped:
            super().feed_source(source)
            return
        spec = source.spec()
        lengths = source.chunk_lengths()
        self._backend.broadcast_source(spec)
        if self._tele.enabled:
            self._tele.emit(SpecBroadcastEvent(
                source=spec["kind"],
                chunks=len(lengths),
                updates=source.total,
                workers=self._backend.workers,
            ))
        self._tele.metrics.counter(
            "engine_spec_broadcasts_total",
            "Chunk-source specs broadcast to process-engine workers",
        ).inc()
        try:
            for count in lengths:
                if self._tele.enabled:
                    with self._tele.span("chunk"):
                        self._protocol.feed_spec(count)
                else:
                    self._protocol.feed_spec(count)
        except EngineError as exc:
            # A worker died mid-materialization (bad spec, store I/O
            # fault, generator mismatch): surface a typed event before
            # re-raising so the failure is attributable in traces.
            if self._tele.enabled:
                self._tele.emit(MaterializeFaultEvent(detail=str(exc)))
            self._tele.metrics.counter(
                "engine_materialize_faults_total",
                "Worker-side chunk materialization failures",
            ).inc()
            raise

    def query(self) -> float:
        # The published value is coordinator state; no worker round trip.
        return self._est.query()

    def finalize(self) -> None:
        self._backend.collect_into(self._plan.switcher._copies)
        self._backend.close()
        if self._tele.enabled:
            self._tele.emit(PhasesEvent(phases=self.phase_seconds))

    def close(self) -> None:
        self._backend.close()


class _EpochSession(IngestSession):
    """Theorem 6.5 fan-out: L2 switching protocol + uniform ring feeds.

    The inner robust L2 tracker runs through the same switching protocol
    as any other switching estimator (its own backend); the point-query
    ring is fed every chunk uniformly through a copy backend of its own
    (aggregated once when the ring licenses it).  The epoch clock — the
    wrapper's :class:`~repro.core.bands.EpochBand` over the published L2
    estimate — ticks on the coordinator at chunk boundaries, exactly as
    the wrapper's own ``update_batch`` does, so published snapshots,
    epoch counts, and ring restarts agree with the direct chunked path.
    """

    def __init__(self, plan: EpochShardPlan, l2_backend, ring_backend, mode):
        self._wrapper = plan.wrapper
        self._plan = plan
        self._l2_backend = l2_backend
        self._ring_backend = ring_backend
        self._l2_protocol = SwitchingProtocol(
            plan.l2_plan.switcher, l2_backend,
            seen_filter=plan.l2_plan.hoists.make_seen_filter(),
            aggregate_once=plan.l2_plan.aggregate_once,
            unique_hint=plan.l2_plan.unique_hint,
        )
        self.mode = mode
        self.policy = "epoch"
        self._tele = plan.l2_plan.switcher._copies.telemetry

    @property
    def phase_seconds(self) -> dict[str, float]:
        # The inner L2 switcher is the protocol-driven half; ring feeds
        # are uniform fan-outs with no probe/band phases to attribute
        # coordinator-side (their worker seconds do show up).
        return _merge_phases(self._l2_protocol.timings,
                             self._ring_backend, self._l2_backend)

    def feed(self, items, deltas=None) -> None:
        if self._tele.enabled:
            with self._tele.span("chunk"):
                self._feed(items, deltas)
        else:
            self._feed(items, deltas)

    def _feed(self, items, deltas=None) -> None:
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        cap = min(self._l2_backend.capacity, self._ring_backend.capacity)
        for lo in range(0, len(items), cap):
            self._feed_one(items[lo:lo + cap], deltas[lo:lo + cap])
        # The epoch clock ticks once per *caller* chunk, after any
        # capacity splits, exactly where the wrapper's own update_batch
        # ticks it; the session only supplies the hooks that reach
        # copies living in worker processes.
        self._wrapper._tick_epoch_clock(fetch=self._ring_backend.fetch,
                                        replace=self._ring_backend.replace)

    def _feed_one(self, items: np.ndarray, deltas: np.ndarray) -> None:
        hoists = self._plan.ring_hoists
        # Both the L2 probe and the ring feed want the same aggregated
        # chunk; compute it once for whichever of them is licensed.
        aggregated = None
        if hoists.aggregate_once or self._plan.l2_plan.aggregate_once:
            aggregated = aggregate_batch(items, deltas)
        self._l2_protocol.feed(items, deltas, aggregated=aggregated)
        ring = self._ring_backend
        ring.stage(items, deltas)
        if hoists.aggregate_once:
            ring.stage_sub(aggregated[0], aggregated[1], hoists.unique_hint)
            ring.feed_others_sub(())
        else:
            ring.feed_others_raw(())

    def query(self) -> float:
        # Published snapshots and the L2 estimate are coordinator state.
        return self._wrapper.query()

    def finalize(self) -> None:
        self._ring_backend.collect_into(self._plan.ring)
        self._l2_backend.collect_into(self._plan.l2_plan.switcher._copies)
        self.close()
        if self._tele.enabled:
            self._tele.emit(PhasesEvent(phases=self.phase_seconds))

    def close(self) -> None:
        self._ring_backend.close()
        self._l2_backend.close()


class _ProcessMergeSession(IngestSession):
    """Per-partial fan-out for one mergeable sketch.

    Worker partials are pure deltas (they start from ``empty_like``), so
    the sketch's pre-session state merges correctly.  Note that
    :meth:`query` must collect and merge every partial — boundary-judged
    runs (``run_relative(engine=...)``) pay one full state transfer per
    chunk boundary; the merged view is cached between feeds.
    """

    def __init__(self, plan: MergeShardPlan, workers: int, capacity: int):
        self._sketch = plan.sketch
        self._buffers = _SharedBuffers(capacity)
        ctx = mp.get_context("fork")
        self._conns = []
        self._procs = []
        for partial in plan.make_partials(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_merge_worker,
                args=(child, partial, self._buffers.views),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self.mode = f"process[{len(self._procs)}]"
        self._finalized = False
        self._merged_view: Sketch | None = None

    def _recv(self, conn):
        return _recv_checked(conn)

    def feed(self, items, deltas=None) -> None:
        items, deltas = as_batch_arrays(items, deltas)
        self._merged_view = None
        cap = self._buffers.capacity
        for start in range(0, len(items), cap):
            part_i = items[start:start + cap]
            part_d = deltas[start:start + cap]
            count = self._buffers.write("raw", part_i, part_d)
            workers = len(self._conns)
            bounds = np.linspace(0, count, workers + 1).astype(int)
            for conn, lo, hi in zip(self._conns, bounds[:-1], bounds[1:]):
                _send(conn, ("feed", int(lo), int(hi)))
            for conn in self._conns:
                self._recv(conn)

    def _collect(self) -> list[Sketch]:
        for conn in self._conns:
            _send(conn, ("collect",))
        return [self._recv(conn) for conn in self._conns]

    def query(self) -> float:
        if self._finalized:
            return self._sketch.query()
        if self._merged_view is None:
            merged = self._sketch.snapshot()
            for partial in self._collect():
                merged.merge(partial)
            self._merged_view = merged
        return self._merged_view.query()

    def finalize(self) -> None:
        if self._finalized:
            return
        for partial in self._collect():
            self._sketch.merge(partial)
        self._finalized = True
        self.close()

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns, self._procs = [], []
        if self._buffers is not None:
            self._buffers.close(unlink=True)
            self._buffers = None


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------


def fork_available() -> bool:
    """Process engines need ``fork`` (state travels by address space)."""
    return "fork" in mp.get_all_start_methods()


class ExecutionEngine(abc.ABC):
    """Factory of :class:`IngestSession` objects for one estimator each."""

    name: str = "engine"

    @abc.abstractmethod
    def session(self, estimator: Sketch, source=None) -> IngestSession:
        """Open an ingestion session; use as a context manager.

        ``source`` is an optional :class:`~repro.streams.sources.ChunkSource`
        the caller intends to drive through :meth:`IngestSession.feed_source`;
        engines use it to pick a faster execution path (spec-shipping to
        process workers, the serial universe fast path) when licensed.
        """


class SerialEngine(ExecutionEngine):
    """In-process execution of the shard plan's shared-work hoists.

    No extra processes: the win over plain ``update_batch`` is that a
    chunk is deduped/aggregated once on the coordinator instead of once
    per fanned-out copy.  Also the deterministic fallback everywhere
    process parallelism is unavailable.
    """

    name = "serial"

    def session(self, estimator: Sketch, source=None) -> IngestSession:
        plan = plan_shards(estimator)
        src_mode, reason = source_mode_for(plan, source, parallel=False)
        if isinstance(plan, SwitchingShardPlan):
            if src_mode == "universe":
                backend = UniverseLocalBackend(
                    plan.switcher._copies, source.universe
                )
                session = _SwitchingSession(
                    estimator, plan, backend, mode="serial", raw_hoists=True
                )
                session.source_mode = "universe"
                return session
            backend = LocalCopyBackend(
                plan.switcher._copies, plan.unique_hint
            )
            session = _SwitchingSession(
                estimator, plan, backend, mode="serial"
            )
        elif isinstance(plan, EpochShardPlan):
            session = _EpochSession(
                plan,
                LocalCopyBackend(
                    plan.l2_plan.switcher._copies, plan.l2_plan.unique_hint
                ),
                LocalCopyBackend(plan.ring, plan.ring_hoists.unique_hint),
                mode="serial",
            )
        else:
            session = _PlainSession(
                estimator, fallback_reason=getattr(plan, "reason", None)
            )
        if src_mode == "bytes":
            session.source_mode = f"bytes: {reason}"
        return session


class ProcessEngine(ExecutionEngine):
    """Shard copies/partials across forked worker processes.

    Parameters
    ----------
    workers:
        Worker process count (defaults to ``os.cpu_count()``).
    chunk_capacity:
        Shared-buffer size in updates; feeds larger than this are split.

    Falls back to :class:`SerialEngine` behaviour — same outputs — when
    ``fork`` is unavailable, when a plan has no parallel decomposition,
    or when one worker would own everything anyway.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        chunk_capacity: int = DEFAULT_CHUNK_CAPACITY,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or (os.cpu_count() or 1)
        if chunk_capacity < REPLAY_LEAF + 1:
            raise ValueError(
                f"chunk_capacity must exceed REPLAY_LEAF={REPLAY_LEAF}"
            )
        self.chunk_capacity = chunk_capacity

    def _process_backend(
        self, copies: CopyManager, unique_hint: bool, spec: bool = False
    ) -> _ProcessCopyBackend:
        return _ProcessCopyBackend(
            copies,
            partition_copies(copies.count, self.workers),
            unique_hint,
            self.chunk_capacity,
            spec=spec,
        )

    def session(self, estimator: Sketch, source=None) -> IngestSession:
        plan = plan_shards(estimator)
        parallel = self.workers > 1 and fork_available()
        src_mode, reason = source_mode_for(plan, source, parallel=parallel)
        if isinstance(plan, SwitchingShardPlan):
            if parallel and plan.switcher.copies > 1:
                spec_mode = src_mode == "spec"
                backend = self._process_backend(
                    plan.switcher._copies, plan.unique_hint, spec=spec_mode
                )
                mode = f"process[{backend.workers}]"
                session = _SwitchingSession(
                    estimator, plan, backend, mode,
                    spec_source=source if spec_mode else None,
                )
                if spec_mode:
                    session.source_mode = "spec"
                return session
            if src_mode == "universe":
                backend = UniverseLocalBackend(
                    plan.switcher._copies, source.universe
                )
                session = _SwitchingSession(
                    estimator, plan, backend, mode="serial", raw_hoists=True
                )
                session.source_mode = "universe"
                return session
            session = _SwitchingSession(
                estimator, plan,
                LocalCopyBackend(plan.switcher._copies, plan.unique_hint),
                mode="serial",
            )
            if src_mode == "bytes":
                session.source_mode = f"bytes: {reason}"
            return session
        if isinstance(plan, EpochShardPlan):
            l2_backend = LocalCopyBackend(
                plan.l2_plan.switcher._copies, plan.l2_plan.unique_hint
            )
            if parallel and plan.ring.count > 1:
                # The ring carries the bulk of the copies; the (smaller)
                # L2 tracker stays on the coordinator.
                ring_backend = self._process_backend(
                    plan.ring, plan.ring_hoists.unique_hint
                )
                mode = f"process[{ring_backend.workers}]"
            else:
                ring_backend = LocalCopyBackend(
                    plan.ring, plan.ring_hoists.unique_hint
                )
                mode = "serial"
            session = _EpochSession(plan, l2_backend, ring_backend, mode)
        elif isinstance(plan, MergeShardPlan) and parallel:
            session = _ProcessMergeSession(
                plan, self.workers, self.chunk_capacity
            )
        else:
            session = _PlainSession(
                estimator, fallback_reason=getattr(plan, "reason", None)
            )
        if src_mode == "bytes":
            session.source_mode = f"bytes: {reason}"
        return session


def resolve_engine(spec) -> ExecutionEngine | None:
    """Normalise an engine spec: None, name string, worker count, instance.

    ``None`` → no engine (the historical direct path); ``"serial"`` →
    :class:`SerialEngine`; ``"process"`` / ``"process:N"`` / an int →
    :class:`ProcessEngine`; an :class:`ExecutionEngine` passes through.
    """
    if spec is None or isinstance(spec, ExecutionEngine):
        return spec
    if isinstance(spec, bool):
        raise ValueError("engine must be a name, worker count, or engine")
    if isinstance(spec, int):
        return ProcessEngine(workers=spec)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialEngine()
        if spec == "process":
            return ProcessEngine()
        if spec.startswith("process:"):
            return ProcessEngine(workers=int(spec.split(":", 1)[1]))
    raise ValueError(
        f"unknown engine spec {spec!r}; expected None, 'serial', 'process', "
        f"'process:N', a worker count, or an ExecutionEngine"
    )
