"""Execution engines: serial and process-pool drivers for shard plans.

The paper's robustness frameworks multiply work — sketch switching runs
``Theta(eps^-1 log eps^-1)`` independent copies of a static sketch — and
that work is embarrassingly parallel per copy.  This module executes the
plans of :mod:`repro.engine.shards` two ways:

* :class:`SerialEngine` — everything on the calling process, but with the
  plan's shared-work hoists applied: the chunk is deduped/aggregated
  *once* and the result fanned out to every copy, instead of every copy
  re-deduping the same chunk.  This is also the deterministic fallback
  when process parallelism is unavailable.
* :class:`ProcessEngine` — copies (or merge partials) live in forked
  worker processes; chunks travel through shared-memory buffers (one
  ``memcpy`` in, zero copies out), and only tiny protocol messages cross
  the command pipes.  Requires the ``fork`` start method (the workers
  inherit sketch state and factories by address space, not pickling);
  anywhere ``fork`` is unavailable the engine degrades to the serial
  path, bit-for-bit.

Both engines drive the *same* coordinator (:class:`_SwitchingDriver`)
for switching estimators.  Its central observation: every publish-band
decision of Algorithm 1 reads only the **active** copy's estimate, so

* the boundary check probes the active copy first and feeds the other
  copies only once the chunk is known clean (the overwhelmingly common
  case — no snapshots, no rollbacks, one batch feed per copy);
* a crossing chunk is resolved by a bisection *of the active copy
  alone* (snapshot/feed/rollback one copy instead of all ``lambda`` of
  them) down to a per-item leaf scan that pins the exact switch
  position, after which the remaining copies batch-catch-up to the
  switch point in one feed and the protocol continues with the next
  copy.

For the monotone tracked quantities the switching framework targets
(F0/Fp/L2 — the band edges only move toward the published value), this
reproduces the per-item protocol exactly: published outputs, switch
counts, and restart RNG draws match the serial estimator bit for bit
whenever the inner sketches' ``update_batch`` reproduces per-item state
exactly (true for the exact-state sketches; float accumulators match up
to summation order).  Non-monotone trackers coalesce transient band
exits at chunk granularity — the same caveat the serial chunked path
documents.

One alignment caveat on switch *handoffs*: right after a switch the new
active copy's estimate can itself sit outside the just-published band
(independent copies disagree), and the per-item protocol switches again
at the very next update.  Inside a chunk both this engine and the
serial ``update_chunk`` resolve that handoff per item.  At a block
boundary they may coalesce differently: ``update_chunk`` checks next at
its bisect-cell boundary, this driver steps the first item of the next
segment per item (following the per-item protocol more closely).  A
divergence therefore needs a switch to land exactly on the last update
of a replay block *and* the handoff exit to revert before the next
boundary — possible in principle, not observed on the seeded test and
benchmark streams, and SerialEngine/ProcessEngine always agree with
each other by construction (same driver).

The adversarial game is untouched: it stays per item, per update, on one
process — adaptivity requires round granularity.  Engines are an
**oblivious replay** surface, like the rest of the batched pipeline.
"""

from __future__ import annotations

import abc
import multiprocessing as mp
import os
import traceback
from multiprocessing import shared_memory

import numpy as np

from repro.core.rounding import round_to_power
from repro.core.sketch_switching import (
    REPLAY_LEAF,
    SketchExhaustedError,
    SketchSwitchingEstimator,
    within_band,
)
from repro.engine.shards import (
    MergeShardPlan,
    SerialPlan,
    SwitchingShardPlan,
    plan_shards,
)
from repro.sketches.base import Sketch, aggregate_batch, as_batch_arrays

#: Default shared-buffer capacity in updates; chunks larger than this are
#: split (each split gets its own boundary band check, so keep ingestion
#: chunk sizes at or below it for bit-for-bit serial equivalence).
DEFAULT_CHUNK_CAPACITY = 1 << 20


class EngineError(RuntimeError):
    """A worker process failed; the session is no longer usable."""


# ----------------------------------------------------------------------
# Backends: where the sketch copies live and how they are fed
# ----------------------------------------------------------------------


class _LocalSwitchingBackend:
    """Copies stay in-process; feeds and snapshots act on them directly."""

    def __init__(self, plan: SwitchingShardPlan):
        self._sw = plan.switcher
        self._unique_hint = plan.unique_hint
        self._items: np.ndarray | None = None
        self._deltas: np.ndarray | None = None
        self._sub: tuple[np.ndarray, np.ndarray | None] | None = None
        self._sub_unique = False
        self._active_stack: list[Sketch] = []

    @property
    def capacity(self) -> int:
        return 1 << 62  # no buffer to overflow

    def stage(self, items: np.ndarray, deltas: np.ndarray) -> None:
        self._items, self._deltas = items, deltas

    def _feed_one(self, sketch: Sketch, items, deltas, assume_unique) -> None:
        if assume_unique and self._unique_hint:
            sketch.update_batch(items, deltas, assume_unique=True)
        else:
            sketch.update_batch(items, deltas)

    # -- active-copy probe/search ops -----------------------------------

    def probe_sub(self, items, deltas, assume_unique: bool, active: int) -> float:
        self._sub = (items, deltas)
        self._sub_unique = assume_unique
        sk = self._sw._sketches[active]
        self._active_stack.append(sk.snapshot())
        self._feed_one(sk, items, deltas, assume_unique)
        return sk.query()

    def probe_raw(self, active: int) -> float:
        self._sub = None
        sk = self._sw._sketches[active]
        self._active_stack.append(sk.snapshot())
        sk.update_batch(self._items, self._deltas)
        return sk.query()

    def keep_active(self, active: int) -> None:
        self._active_stack.pop()

    def roll_active(self, active: int) -> None:
        self._sw._sketches[active] = self._active_stack.pop()

    def snap_active(self, active: int) -> None:
        self._active_stack.append(self._sw._sketches[active].snapshot())

    def feed_active(self, lo: int, hi: int, active: int) -> float:
        sk = self._sw._sketches[active]
        sk.update_batch(self._items[lo:hi], self._deltas[lo:hi])
        return sk.query()

    def step_active(self, pos: int, active: int) -> float:
        sk = self._sw._sketches[active]
        sk.update(int(self._items[pos]), int(self._deltas[pos]))
        return sk.query()

    def scan_active(
        self, lo: int, hi: int, active: int, published: float
    ) -> tuple[int, float] | None:
        sk = self._sw._sketches[active]
        eps = self._sw.eps
        items = self._items[lo:hi].tolist()
        deltas = self._deltas[lo:hi].tolist()
        for off, (item, delta) in enumerate(zip(items, deltas)):
            sk.update(item, delta)
            y = sk.query()
            if not within_band(published, y, eps):
                return lo + off, y
        return None

    # -- non-active copies ----------------------------------------------

    def feed_others_sub(self, exclude: int) -> None:
        items, deltas = self._sub
        for idx, s in enumerate(self._sw._sketches):
            if idx != exclude:
                self._feed_one(s, items, deltas, self._sub_unique)

    def feed_others_raw(self, exclude: int) -> None:
        self.catch_up(0, len(self._items), exclude)

    def catch_up(self, lo: int, hi: int, exclude: int) -> None:
        items, deltas = self._items[lo:hi], self._deltas[lo:hi]
        for idx, s in enumerate(self._sw._sketches):
            if idx != exclude:
                s.update_batch(items, deltas)

    def replace(self, idx: int, rng: np.random.Generator) -> None:
        self._sw._sketches[idx] = self._sw._factory(rng)

    def collect_into(self, sw: SketchSwitchingEstimator) -> None:
        pass  # copies never left the estimator

    def close(self) -> None:
        self._active_stack.clear()
        self._items = self._deltas = self._sub = None


def _switching_worker(conn, copies, factory, views, unique_hint: bool) -> None:
    """Forked worker: owns a shard of copies, obeys coordinator commands.

    ``copies`` is a list of ``[global_index, sketch]`` pairs inherited
    through fork; ``views`` maps region name -> (items, deltas) NumPy
    views over the shared-memory buffers.  Commands arrive in order per
    pipe, which is the only ordering the protocol relies on; commands
    about the *active* copy only ever reach the worker that owns it.
    """

    def lookup(idx):
        for slot in copies:
            if slot[0] == idx:
                return slot
        raise RuntimeError(f"copy {idx} not owned by this worker")

    def slice_of(region, lo, hi, unit):
        items, deltas = views[region]
        return items[lo:hi], (None if unit else deltas[lo:hi])

    active_stack: list = []  # snapshots of this worker's active copy
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "feed":
                # Feed every owned copy except `exclude` (the active one,
                # which took the same updates through probe/search ops).
                _, region, lo, hi, unit, assume_unique, exclude = msg
                its, dts = slice_of(region, lo, hi, unit)
                for i, s in copies:
                    if i == exclude:
                        continue
                    if assume_unique and unique_hint:
                        s.update_batch(its, dts, assume_unique=True)
                    else:
                        s.update_batch(its, dts)
            elif op == "probe":
                _, region, lo, hi, unit, assume_unique, active = msg
                slot = lookup(active)
                active_stack.append(slot[1].snapshot())
                its, dts = slice_of(region, lo, hi, unit)
                if assume_unique and unique_hint:
                    slot[1].update_batch(its, dts, assume_unique=True)
                else:
                    slot[1].update_batch(its, dts)
                conn.send(("ok", slot[1].query()))
            elif op == "akeep":
                active_stack.pop()
            elif op == "aroll":
                _, active = msg
                lookup(active)[1] = active_stack.pop()
            elif op == "asnap":
                _, active = msg
                active_stack.append(lookup(active)[1].snapshot())
            elif op == "afeed":
                _, lo, hi, active = msg
                slot = lookup(active)
                its, dts = slice_of("raw", lo, hi, False)
                slot[1].update_batch(its, dts)
                conn.send(("ok", slot[1].query()))
            elif op == "astep":
                _, pos, active = msg
                sk = lookup(active)[1]
                items, deltas = views["raw"]
                sk.update(int(items[pos]), int(deltas[pos]))
                conn.send(("ok", sk.query()))
            elif op == "ascan":
                _, lo, hi, active, published, eps = msg
                sk = lookup(active)[1]
                its, dts = slice_of("raw", lo, hi, False)
                result = None
                for off, (item, delta) in enumerate(
                    zip(its.tolist(), dts.tolist())
                ):
                    sk.update(item, delta)
                    y = sk.query()
                    if not within_band(published, y, eps):
                        result = (lo + off, y)
                        break
                conn.send(("ok", result))
            elif op == "replace":
                _, idx, rng = msg
                lookup(idx)[1] = factory(rng)
            elif op == "sync":
                conn.send(("ok", None))
            elif op == "collect":
                conn.send(("ok", [(i, s) for i, s in copies]))
            elif op == "stop":
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown command {op!r}")
    except (EOFError, KeyboardInterrupt):  # coordinator went away
        pass
    except Exception:  # surface the traceback instead of hanging the pipe
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


def _send(conn, msg) -> None:
    """Send a command, surfacing a dead worker's queued traceback.

    A worker that fails during a fire-and-forget command sends
    ``("error", traceback)`` and closes its pipe end; the coordinator
    only notices at its *next* send.  Drain that queued error into an
    :class:`EngineError` instead of leaking a bare ``BrokenPipeError``.
    """
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError) as exc:
        detail = ""
        try:
            while conn.poll(0):
                kind, payload = conn.recv()
                if kind == "error":
                    detail = f":\n{payload}"
        except (EOFError, OSError):
            pass
        raise EngineError(f"engine worker died{detail}") from exc


def _recv_checked(conn):
    """Receive a reply, converting worker errors/deaths to EngineError."""
    try:
        kind, payload = conn.recv()
    except EOFError as exc:
        raise EngineError("engine worker died without a reply") from exc
    if kind == "error":
        raise EngineError(f"engine worker failed:\n{payload}")
    return payload


class _SharedBuffers:
    """Shared-memory chunk regions: raw stream arrays + preprocessed feed."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        nbytes = capacity * 8
        self._blocks = {
            name: shared_memory.SharedMemory(create=True, size=nbytes)
            for name in ("raw_i", "raw_d", "sub_i", "sub_d")
        }
        arr = {
            name: np.ndarray(capacity, dtype=np.int64, buffer=block.buf)
            for name, block in self._blocks.items()
        }
        self.views = {
            "raw": (arr["raw_i"], arr["raw_d"]),
            "sub": (arr["sub_i"], arr["sub_d"]),
        }

    def write(self, region: str, items, deltas) -> int:
        dst_i, dst_d = self.views[region]
        count = len(items)
        dst_i[:count] = items
        if deltas is not None:
            dst_d[:count] = deltas
        return count

    def close(self, unlink: bool) -> None:
        self.views = {}
        for block in self._blocks.values():
            block.close()
            if unlink:
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self._blocks = {}


class _ProcessSwitchingBackend:
    """Copies sharded across forked workers over shared chunk buffers."""

    def __init__(self, plan: SwitchingShardPlan, workers: int, capacity: int):
        sw = plan.switcher
        self._sw = sw
        self._buffers = _SharedBuffers(capacity)
        ctx = mp.get_context("fork")
        shards = plan.shards(workers)
        self._owner: dict[int, int] = {}
        self._conns = []
        self._procs = []
        self._dirty = False  # fire-and-forget commands since last barrier
        self._raw_len = 0
        self._sub_len = 0
        self._sub_unit = True
        self._sub_unique = False
        for w, indices in enumerate(shards):
            parent, child = ctx.Pipe()
            owned = [[i, sw._sketches[i]] for i in indices]
            proc = ctx.Process(
                target=_switching_worker,
                args=(child, owned, sw._factory, self._buffers.views,
                      plan.unique_hint),
                daemon=True,
            )
            proc.start()
            child.close()
            for i in indices:
                self._owner[i] = w
            self._conns.append(parent)
            self._procs.append(proc)

    @property
    def capacity(self) -> int:
        return self._buffers.capacity

    def _recv(self, conn):
        return _recv_checked(conn)

    def _barrier(self) -> None:
        if not self._dirty:
            return
        for conn in self._conns:
            _send(conn, ("sync",))
        for conn in self._conns:
            self._recv(conn)
        self._dirty = False

    def stage(self, items: np.ndarray, deltas: np.ndarray) -> None:
        # Workers may still be consuming the previous chunk's buffer via
        # fire-and-forget feeds; fence before overwriting it.
        self._barrier()
        self._buffers.write("raw", items, deltas)
        self._raw_len = len(items)
        self._sub_len = 0
        self._sub_unit = True
        self._sub_unique = False

    def _owner_conn(self, active: int):
        return self._conns[self._owner[active]]

    # -- active-copy probe/search ops -----------------------------------

    def probe_sub(self, items, deltas, assume_unique: bool, active: int) -> float:
        self._barrier()
        self._sub_len = self._buffers.write("sub", items, deltas)
        self._sub_unit = deltas is None
        self._sub_unique = assume_unique
        conn = self._owner_conn(active)
        _send(conn, ("probe", "sub", 0, self._sub_len, self._sub_unit,
                   assume_unique, active))
        return self._recv(conn)

    def probe_raw(self, active: int) -> float:
        self._sub_len = 0
        conn = self._owner_conn(active)
        _send(conn, ("probe", "raw", 0, self._raw_len, False, False, active))
        return self._recv(conn)

    def keep_active(self, active: int) -> None:
        _send(self._owner_conn(active), ("akeep",))
        self._dirty = True

    def roll_active(self, active: int) -> None:
        _send(self._owner_conn(active), ("aroll", active))
        self._dirty = True

    def snap_active(self, active: int) -> None:
        _send(self._owner_conn(active), ("asnap", active))
        self._dirty = True

    def feed_active(self, lo: int, hi: int, active: int) -> float:
        conn = self._owner_conn(active)
        _send(conn, ("afeed", lo, hi, active))
        return self._recv(conn)

    def step_active(self, pos: int, active: int) -> float:
        conn = self._owner_conn(active)
        _send(conn, ("astep", pos, active))
        return self._recv(conn)

    def scan_active(
        self, lo: int, hi: int, active: int, published: float
    ) -> tuple[int, float] | None:
        conn = self._owner_conn(active)
        _send(conn, ("ascan", lo, hi, active, published, self._sw.eps))
        got = self._recv(conn)
        return None if got is None else tuple(got)

    # -- non-active copies ----------------------------------------------

    def feed_others_sub(self, exclude: int) -> None:
        for conn in self._conns:
            _send(conn, ("feed", "sub", 0, self._sub_len, self._sub_unit,
                       self._sub_unique, exclude))
        self._dirty = True

    def feed_others_raw(self, exclude: int) -> None:
        self.catch_up(0, self._raw_len, exclude)

    def catch_up(self, lo: int, hi: int, exclude: int) -> None:
        for conn in self._conns:
            _send(conn, ("feed", "raw", lo, hi, False, False, exclude))
        self._dirty = True

    def replace(self, idx: int, rng: np.random.Generator) -> None:
        _send(self._conns[self._owner[idx]], ("replace", idx, rng))
        self._dirty = True

    def collect_into(self, sw: SketchSwitchingEstimator) -> None:
        self._barrier()
        for conn in self._conns:
            _send(conn, ("collect",))
        for conn in self._conns:
            for idx, sketch in self._recv(conn):
                sw._sketches[idx] = sketch

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns, self._procs = [], []
        self._buffers.close(unlink=True)


# ----------------------------------------------------------------------
# The switching coordinator (shared by both backends)
# ----------------------------------------------------------------------


class _SwitchingDriver:
    """Algorithm 1's chunk discipline over a sharded copy backend.

    Owns the protocol state (published value, active index rho, switch
    count, fresh randomness) on the coordinator; the backend owns the
    copies.  Every band decision reads only the active copy, so the
    driver probes *it* first and touches the other copies exactly once
    per clean chunk (or once per switch segment on a crossing chunk) —
    see the module docstring for the equivalence argument.
    """

    def __init__(self, plan: SwitchingShardPlan, backend):
        self._plan = plan
        self._sw = plan.switcher
        self._backend = backend
        self._seen = plan.make_seen_filter() if plan.filter_duplicates else None
        self._items: np.ndarray | None = None
        self._deltas: np.ndarray | None = None

    def _active(self) -> int:
        return self._sw._rho % self._sw.copies

    # -- feeding --------------------------------------------------------

    def feed(self, items, deltas=None) -> None:
        items, deltas = as_batch_arrays(items, deltas)
        cap = self._backend.capacity
        for lo in range(0, len(items), cap):
            self._feed_one(items[lo:lo + cap], deltas[lo:lo + cap])

    def _feed_one(self, items: np.ndarray, deltas: np.ndarray) -> None:
        count = len(items)
        if count == 0:
            return
        sw = self._sw
        self._backend.stage(items, deltas)
        self._items, self._deltas = items, deltas
        if count <= REPLAY_LEAF:
            # Mirror the serial path: tiny chunks replay per item with the
            # band checked every update (no chunk-level coalescing).
            self._drive_raw(0, count)
            return
        active = self._active()
        uniq = None
        probed_sub = True
        if self._seen is not None and int(deltas.min()) > 0:
            uniq = np.unique(items)
            fresh = self._seen.fresh(uniq)
            if len(fresh) == 0:
                # Every live copy has seen every item here: no copy's
                # state — hence no band check — can change.
                return
            y = self._backend.probe_sub(fresh, None, True, active)
        elif self._plan.aggregate_once:
            agg_items, agg_deltas = aggregate_batch(items, deltas)
            y = self._backend.probe_sub(
                agg_items, agg_deltas, self._plan.unique_hint, active
            )
        else:
            probed_sub = False
            y = self._backend.probe_raw(active)
        if sw._within_band(y):
            # Clean chunk (the common case): the active copy already has
            # it; give the others the same pre-processed feed.
            self._backend.keep_active(active)
            if probed_sub:
                self._backend.feed_others_sub(active)
            else:
                self._backend.feed_others_raw(active)
            if uniq is not None:
                self._seen.mark(uniq)
            return
        # Crossed somewhere inside: rewind the active copy and resolve
        # the switch positions exactly on the raw updates.
        self._backend.roll_active(active)
        self._drive_raw(0, count)

    def _drive_raw(self, lo: int, hi: int) -> None:
        """Resolve [lo, hi) exactly: locate each switch via the active
        copy, then batch the remaining copies up to it.

        On entry no copy has seen [lo, hi).  The active copy advances
        through :meth:`_search`; after each located switch the other
        copies catch up to the switch position in one feed and the
        protocol continues with the next active copy.
        """
        sw = self._sw
        switches_before = sw.switches
        pos = lo
        while pos < hi:
            active = self._active()
            crossing = self._search(pos, hi, active)
            if crossing is None:
                self._backend.catch_up(pos, hi, active)
                break
            cpos, y = crossing
            self._backend.catch_up(pos, cpos + 1, active)
            sw._published = round_to_power(y, sw.eps / 2) if y != 0 else 0.0
            sw.switches += 1
            self._advance()
            pos = cpos + 1
        if self._seen is not None and sw.switches != switches_before:
            # A switch invalidates the filter: the replacement (or newly
            # active) copy was born mid-chunk and must re-see later
            # occurrences of items the older copies already absorbed.
            self._seen.reset()

    def _search(self, lo: int, hi: int, active: int) -> tuple[int, float] | None:
        """First band crossing in [lo, hi), probing the active copy only.

        The first item is stepped **per item**, exactly as the protocol
        would: right after a switch the new active copy's estimate can
        sit *below* the just-published value (independent copies
        disagree), and the per-item protocol switches again immediately
        — a low-side exit a batch probe would coalesce once the estimate
        grows back into the band.  For a monotone tracked quantity a
        low-side exit is only possible at such a handoff, so once one
        check passes in band every later crossing is high-side and
        unique, and the batch bisection below finds it exactly.

        Returns ``(position, estimate)`` with the active copy fed
        through ``position`` (or through ``hi - 1`` if no crossing).
        """
        sw = self._sw
        y = self._backend.step_active(lo, active)
        if not sw._within_band(y):
            return lo, y
        if lo + 1 >= hi:
            return None
        return self._bisect(lo + 1, hi, active)

    def _bisect(self, lo: int, hi: int, active: int) -> tuple[int, float] | None:
        """Bisect for the unique high-side crossing; leaves scan per item."""
        sw = self._sw
        if hi - lo <= REPLAY_LEAF:
            return self._backend.scan_active(lo, hi, active, sw._published)
        mid = (lo + hi) // 2
        self._backend.snap_active(active)
        y = self._backend.feed_active(lo, mid, active)
        if sw._within_band(y):
            self._backend.keep_active(active)
            return self._bisect(mid, hi, active)
        self._backend.roll_active(active)
        return self._bisect(lo, mid, active)

    def _advance(self) -> None:
        """Burn-and-advance, mirroring ``SketchSwitchingEstimator._advance``
        with the replacement built wherever the burned copy lives."""
        sw = self._sw
        if sw.restart:
            burned = sw._rho % sw.copies
            self._backend.replace(burned, sw._replacement_rng())
            sw._rho += 1
            return
        if sw._rho + 1 >= sw.copies:
            if sw.on_exhausted == "raise":
                raise SketchExhaustedError(
                    f"all {sw.copies} copies burned after "
                    f"{sw.switches} switches; flip-number budget exceeded"
                )
            return
        sw._rho += 1


# ----------------------------------------------------------------------
# Merge (per-partial) process execution
# ----------------------------------------------------------------------


def _merge_worker(conn, partial: Sketch, views) -> None:
    """Forked worker owning one merge partial."""
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "feed":
                _, lo, hi = msg
                items, deltas = views["raw"]
                partial.update_batch(items[lo:hi], deltas[lo:hi])
                conn.send(("ok", None))
            elif op == "collect":
                conn.send(("ok", partial))
            elif op == "stop":
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown command {op!r}")
    except (EOFError, KeyboardInterrupt):
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Sessions (what api.ingest and the runner drive)
# ----------------------------------------------------------------------


class IngestSession(abc.ABC):
    """One engine-managed ingestion pass over an oblivious stream."""

    #: Human-readable execution mode, recorded by IngestReport/benchmarks.
    mode: str = "serial"

    @abc.abstractmethod
    def feed(self, items, deltas=None) -> None:
        """Ingest one chunk."""

    @abc.abstractmethod
    def query(self) -> float:
        """The estimator's current published output."""

    def finalize(self) -> None:
        """Sync all sharded state back into the estimator."""

    def close(self) -> None:
        """Release workers/buffers without finalizing (error path)."""

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:
            self.close()


class _PlainSession(IngestSession):
    """Deterministic fallback: plain ``update_batch`` on this process."""

    def __init__(self, estimator: Sketch, mode: str = "serial"):
        self._est = estimator
        self.mode = mode

    def feed(self, items, deltas=None) -> None:
        self._est.update_batch(items, deltas)

    def query(self) -> float:
        return self._est.query()


class _SwitchingSession(IngestSession):
    """Per-copy fan-out session for sketch-switching estimators."""

    def __init__(self, estimator, plan: SwitchingShardPlan, backend, mode: str):
        self._est = estimator
        self._plan = plan
        self._backend = backend
        self._driver = _SwitchingDriver(plan, backend)
        self.mode = mode

    def feed(self, items, deltas=None) -> None:
        self._driver.feed(items, deltas)

    def query(self) -> float:
        # The published value is coordinator state; no worker round trip.
        return self._est.query()

    def finalize(self) -> None:
        self._backend.collect_into(self._plan.switcher)
        self._backend.close()

    def close(self) -> None:
        self._backend.close()


class _ProcessMergeSession(IngestSession):
    """Per-partial fan-out for one mergeable sketch.

    Worker partials are pure deltas (they start from ``empty_like``), so
    the sketch's pre-session state merges correctly.  Note that
    :meth:`query` must collect and merge every partial — boundary-judged
    runs (``run_relative(engine=...)``) pay one full state transfer per
    chunk boundary; the merged view is cached between feeds.
    """

    def __init__(self, plan: MergeShardPlan, workers: int, capacity: int):
        self._sketch = plan.sketch
        self._buffers = _SharedBuffers(capacity)
        ctx = mp.get_context("fork")
        self._conns = []
        self._procs = []
        for partial in plan.make_partials(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_merge_worker,
                args=(child, partial, self._buffers.views),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self.mode = f"process[{len(self._procs)}]"
        self._finalized = False
        self._merged_view: Sketch | None = None

    def _recv(self, conn):
        return _recv_checked(conn)

    def feed(self, items, deltas=None) -> None:
        items, deltas = as_batch_arrays(items, deltas)
        self._merged_view = None
        cap = self._buffers.capacity
        for start in range(0, len(items), cap):
            part_i = items[start:start + cap]
            part_d = deltas[start:start + cap]
            count = self._buffers.write("raw", part_i, part_d)
            workers = len(self._conns)
            bounds = np.linspace(0, count, workers + 1).astype(int)
            for conn, lo, hi in zip(self._conns, bounds[:-1], bounds[1:]):
                _send(conn, ("feed", int(lo), int(hi)))
            for conn in self._conns:
                self._recv(conn)

    def _collect(self) -> list[Sketch]:
        for conn in self._conns:
            _send(conn, ("collect",))
        return [self._recv(conn) for conn in self._conns]

    def query(self) -> float:
        if self._finalized:
            return self._sketch.query()
        if self._merged_view is None:
            merged = self._sketch.snapshot()
            for partial in self._collect():
                merged.merge(partial)
            self._merged_view = merged
        return self._merged_view.query()

    def finalize(self) -> None:
        if self._finalized:
            return
        for partial in self._collect():
            self._sketch.merge(partial)
        self._finalized = True
        self.close()

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns, self._procs = [], []
        if self._buffers is not None:
            self._buffers.close(unlink=True)
            self._buffers = None


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------


def fork_available() -> bool:
    """Process engines need ``fork`` (state travels by address space)."""
    return "fork" in mp.get_all_start_methods()


class ExecutionEngine(abc.ABC):
    """Factory of :class:`IngestSession` objects for one estimator each."""

    name: str = "engine"

    @abc.abstractmethod
    def session(self, estimator: Sketch) -> IngestSession:
        """Open an ingestion session; use as a context manager."""


class SerialEngine(ExecutionEngine):
    """In-process execution of the shard plan's shared-work hoists.

    No extra processes: the win over plain ``update_batch`` is that a
    chunk is deduped/aggregated once on the coordinator instead of once
    per fanned-out copy.  Also the deterministic fallback everywhere
    process parallelism is unavailable.
    """

    name = "serial"

    def session(self, estimator: Sketch) -> IngestSession:
        plan = plan_shards(estimator)
        if isinstance(plan, SwitchingShardPlan):
            return _SwitchingSession(
                estimator, plan, _LocalSwitchingBackend(plan), mode="serial"
            )
        return _PlainSession(estimator)


class ProcessEngine(ExecutionEngine):
    """Shard copies/partials across forked worker processes.

    Parameters
    ----------
    workers:
        Worker process count (defaults to ``os.cpu_count()``).
    chunk_capacity:
        Shared-buffer size in updates; feeds larger than this are split.

    Falls back to :class:`SerialEngine` behaviour — same outputs — when
    ``fork`` is unavailable, when a plan has no parallel decomposition,
    or when one worker would own everything anyway.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        chunk_capacity: int = DEFAULT_CHUNK_CAPACITY,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or (os.cpu_count() or 1)
        if chunk_capacity < REPLAY_LEAF + 1:
            raise ValueError(
                f"chunk_capacity must exceed REPLAY_LEAF={REPLAY_LEAF}"
            )
        self.chunk_capacity = chunk_capacity

    def session(self, estimator: Sketch) -> IngestSession:
        plan = plan_shards(estimator)
        parallel = self.workers > 1 and fork_available()
        if isinstance(plan, SwitchingShardPlan):
            if parallel and plan.switcher.copies > 1:
                backend = _ProcessSwitchingBackend(
                    plan, self.workers, self.chunk_capacity
                )
                mode = f"process[{len(backend._procs)}]"
                return _SwitchingSession(estimator, plan, backend, mode)
            return _SwitchingSession(
                estimator, plan, _LocalSwitchingBackend(plan), mode="serial"
            )
        if isinstance(plan, MergeShardPlan) and parallel:
            return _ProcessMergeSession(
                plan, self.workers, self.chunk_capacity
            )
        return _PlainSession(estimator)


def resolve_engine(spec) -> ExecutionEngine | None:
    """Normalise an engine spec: None, name string, worker count, instance.

    ``None`` → no engine (the historical direct path); ``"serial"`` →
    :class:`SerialEngine`; ``"process"`` / ``"process:N"`` / an int →
    :class:`ProcessEngine`; an :class:`ExecutionEngine` passes through.
    """
    if spec is None or isinstance(spec, ExecutionEngine):
        return spec
    if isinstance(spec, bool):
        raise ValueError("engine must be a name, worker count, or engine")
    if isinstance(spec, int):
        return ProcessEngine(workers=spec)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialEngine()
        if spec == "process":
            return ProcessEngine()
        if spec.startswith("process:"):
            return ProcessEngine(workers=int(spec.split(":", 1)[1]))
    raise ValueError(
        f"unknown engine spec {spec!r}; expected None, 'serial', 'process', "
        f"'process:N', a worker count, or an ExecutionEngine"
    )
