"""Double-buffered chunk prefetching.

Chunk *production* — drawing synthetic batches from a generator, or
paging a columnar store's memmapped arrays off disk — and chunk
*ingestion* are serialized in a naive replay loop: the estimator idles
while the next chunk materialises.  :func:`prefetch_chunks` overlaps the
two with a bounded hand-off queue filled by a background thread: while
the consumer ingests chunk ``t``, the producer is already building chunk
``t+1`` (and with ``depth=2``, the default, ``t+2``).  NumPy generation
and memmap page-ins release the GIL for their hot parts, so the overlap
is real even on CPython.

Order is preserved, the producer is throttled by the queue bound (no
unbounded buffering of a 10^9-update stream), and a producer exception
is re-raised at the consuming site — or logged if the consumer has
already gone away, never dropped.  Closing the returned generator early
(``break`` in the consumer) stops the producer thread promptly: every
producer-side put, including the terminal sentinel, is stop-aware, the
close path drains the queue fully, and a producer that still fails to
join is logged instead of silently leaking.
"""

from __future__ import annotations

import logging
import queue
import threading
from collections.abc import Iterable, Iterator

from repro.obs import NULL_TELEMETRY, PrefetchFaultEvent

_log = logging.getLogger(__name__)

#: Default queue depth: classic double buffering (one chunk being
#: consumed, one being produced).
DEFAULT_DEPTH = 2

#: How long the consumer's close path waits for the producer thread.
#: Module-level so lifecycle tests can shrink it.
JOIN_TIMEOUT = 5.0

_DONE = object()


def source_chunks(source, depth: int = 0, telemetry=None) -> Iterator:
    """Materialize a :class:`~repro.streams.sources.ChunkSource` locally.

    The coordinator-side (bytes-shipping) drive for
    ``api.ingest(source=...)``: ``depth > 0`` overlaps materialization
    with ingestion through :func:`prefetch_chunks`.  Spec-shipped
    process sessions bypass this module entirely — each worker
    materializes its own chunks, so generation already overlaps compute
    inside the workers and there is nothing coordinator-side to
    prefetch.
    """
    if depth:
        return prefetch_chunks(source.chunks(), depth=depth,
                               telemetry=telemetry)
    return source.chunks()


def prefetch_chunks(chunks: Iterable, depth: int = DEFAULT_DEPTH,
                    telemetry=None) -> Iterator:
    """Yield from ``chunks`` with production overlapped in a worker thread.

    ``depth`` bounds how many chunks may exist between producer and
    consumer at once; ``depth=2`` is double buffering.  ``telemetry``
    optionally mirrors the lifecycle-fault ``logging`` calls (producer
    exception, join timeout) as :class:`~repro.obs.PrefetchFaultEvent`
    records, so trace files capture faults alongside the protocol
    events.  ``Telemetry.emit`` is thread-safe; faults surface from the
    producer thread.
    """
    if depth < 1:
        raise ValueError(f"prefetch depth must be >= 1, got {depth}")
    tele = telemetry if telemetry is not None else NULL_TELEMETRY

    def fault(kind: str, detail: str) -> None:
        if tele.enabled:
            tele.emit(PrefetchFaultEvent(fault=kind, detail=detail))
            tele.metrics.counter(
                "prefetch_faults_total", "prefetcher lifecycle faults"
            ).inc()
    handoff: queue.Queue = queue.Queue(maxsize=depth)
    stop = threading.Event()

    def offer(value) -> bool:
        """Stop-aware blocking put: True once enqueued, False on close.

        Every producer-side put goes through here — chunks, the
        terminal ``_DONE``, and exceptions alike — so a consumer that
        closes the generator while the queue is full can never strand
        the producer in an unconditional ``put``.
        """
        while not stop.is_set():
            try:
                handoff.put(value, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def produce() -> None:
        try:
            for chunk in chunks:
                if not offer(chunk):
                    return
            offer(_DONE)
        except BaseException as exc:
            # Deliver the failure to the consuming site; if the consumer
            # has closed, drain one stale slot so the put cannot block
            # and park the exception for the close path's post-join
            # drain to log — a producer failure must never vanish.  Only
            # if even the park fails does the producer log it itself
            # (otherwise the two sides would double-report one failure).
            if offer(exc):
                return
            try:
                handoff.get_nowait()
            except queue.Empty:
                pass
            try:
                handoff.put_nowait(exc)
            except queue.Full:  # pragma: no cover - racing producer only
                _log.error(
                    "chunk-prefetch producer failed after the consumer "
                    "closed: %r", exc, exc_info=exc,
                )
                fault("producer-exception", repr(exc))

    worker = threading.Thread(target=produce, daemon=True, name="chunk-prefetch")
    worker.start()
    try:
        while True:
            got = handoff.get()
            if got is _DONE:
                return
            if isinstance(got, BaseException):
                raise got
            yield got
    finally:
        stop.set()

        def drain() -> None:
            # Drain the queue fully: with in-flight chunks on a deep
            # queue a single-slot drain could leave the producer blocked
            # mid-put (it frees at most one slot), and the buffered
            # chunks are dead weight once the consumer is gone.  Any
            # exception found is a failure the consumer will never
            # read: log it, don't drop it.
            while True:
                try:
                    got = handoff.get_nowait()
                except queue.Empty:
                    return
                if isinstance(got, BaseException):
                    _log.error(
                        "chunk-prefetch producer failed after the "
                        "consumer stopped reading: %r", got, exc_info=got,
                    )
                    fault("producer-exception", repr(got))

        drain()
        worker.join(timeout=JOIN_TIMEOUT)
        if worker.is_alive():
            # The chunk source itself is stuck (e.g. blocked I/O inside
            # the generator): surface the leak instead of quietly
            # abandoning a daemon thread.
            _log.error(
                "chunk-prefetch producer thread failed to join within "
                "%.1fs of close; the chunk source is blocked and the "
                "thread is leaked", JOIN_TIMEOUT,
            )
            fault("join-timeout",
                  f"producer thread still alive after {JOIN_TIMEOUT}s")
        else:
            # A put that was already in flight past its stop check can
            # land *after* the first drain; with the producer joined the
            # queue is now final, so this second pass closes the window
            # in which a parked exception could slip away unlogged.
            drain()
