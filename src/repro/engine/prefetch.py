"""Double-buffered chunk prefetching.

Chunk *production* — drawing synthetic batches from a generator, or
paging a columnar store's memmapped arrays off disk — and chunk
*ingestion* are serialized in a naive replay loop: the estimator idles
while the next chunk materialises.  :func:`prefetch_chunks` overlaps the
two with a bounded hand-off queue filled by a background thread: while
the consumer ingests chunk ``t``, the producer is already building chunk
``t+1`` (and with ``depth=2``, the default, ``t+2``).  NumPy generation
and memmap page-ins release the GIL for their hot parts, so the overlap
is real even on CPython.

Order is preserved, the producer is throttled by the queue bound (no
unbounded buffering of a 10^9-update stream), and a producer exception
is re-raised at the consuming site.  Closing the returned generator
early (``break`` in the consumer) stops the producer thread promptly.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Iterable, Iterator

#: Default queue depth: classic double buffering (one chunk being
#: consumed, one being produced).
DEFAULT_DEPTH = 2

_DONE = object()


def prefetch_chunks(chunks: Iterable, depth: int = DEFAULT_DEPTH) -> Iterator:
    """Yield from ``chunks`` with production overlapped in a worker thread.

    ``depth`` bounds how many chunks may exist between producer and
    consumer at once; ``depth=2`` is double buffering.
    """
    if depth < 1:
        raise ValueError(f"prefetch depth must be >= 1, got {depth}")
    handoff: queue.Queue = queue.Queue(maxsize=depth)
    stop = threading.Event()

    def produce() -> None:
        try:
            for chunk in chunks:
                while not stop.is_set():
                    try:
                        handoff.put(chunk, timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if stop.is_set():
                    return
            handoff.put(_DONE)
        except BaseException as exc:  # re-raised at the consuming site
            try:
                handoff.put(exc, timeout=1.0)
            except queue.Full:  # pragma: no cover - consumer gone
                pass

    worker = threading.Thread(target=produce, daemon=True, name="chunk-prefetch")
    worker.start()
    try:
        while True:
            got = handoff.get()
            if got is _DONE:
                return
            if isinstance(got, BaseException):
                raise got
            yield got
    finally:
        stop.set()
        # Unblock a producer stuck on a full queue, then let it finish.
        try:
            handoff.get_nowait()
        except queue.Empty:
            pass
        worker.join(timeout=5)
