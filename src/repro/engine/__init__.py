"""Parallel execution engine: sharded multi-copy ingestion.

Sketch switching's robustness budget is paid in *copies* — many
independent instances of a static sketch, every one fed every update —
and since the band-policy refactor the same is true of every robustness
scheme in the repo: multiplicative (F0/Fp/L2), additive (entropy), and
the heavy-hitters epoch construction all drive the one switching
protocol in :mod:`repro.core.sketch_switching`.  This package turns that
multiplied work into a sharded execution plan:

* :mod:`repro.engine.shards` — decide the decomposition (per-copy for
  switching estimators under *any* :class:`~repro.core.bands.BandPolicy`,
  an epoch plan for the heavy-hitters wrapper, per-partial for mergeable
  sketches, explicit serial fallback otherwise) and the shared-work
  hoists it licenses;
* :mod:`repro.engine.executor` — run the plan on this process
  (:class:`SerialEngine`) or across forked workers over shared-memory
  chunk buffers (:class:`ProcessEngine`), bit-for-bit equivalent to the
  serial batched path for exact-state sketches;
* :mod:`repro.engine.prefetch` — double-buffered chunk prefetching that
  overlaps chunk generation / disk reads with ingestion.

Entry points: ``api.ingest(..., engine="process:4", prefetch=2)``, the
experiment runners' ``engine=`` parameter, or driving an
:class:`IngestSession` directly.  The adversarial game never uses an
engine — adaptivity requires per-item round granularity.
"""

from repro.engine.executor import (
    DEFAULT_CHUNK_CAPACITY,
    EngineError,
    ExecutionEngine,
    IngestSession,
    ProcessEngine,
    SerialEngine,
    fork_available,
    resolve_engine,
)
from repro.engine.prefetch import DEFAULT_DEPTH, prefetch_chunks
from repro.engine.shards import (
    CopyHoists,
    EpochShardPlan,
    MergeShardPlan,
    SeenFilter,
    SerialPlan,
    SwitchingShardPlan,
    partition_copies,
    plan_shards,
)

__all__ = [
    "CopyHoists",
    "DEFAULT_CHUNK_CAPACITY",
    "DEFAULT_DEPTH",
    "EngineError",
    "EpochShardPlan",
    "ExecutionEngine",
    "IngestSession",
    "MergeShardPlan",
    "ProcessEngine",
    "SeenFilter",
    "SerialEngine",
    "SerialPlan",
    "SwitchingShardPlan",
    "fork_available",
    "partition_copies",
    "plan_shards",
    "prefetch_chunks",
    "resolve_engine",
]
