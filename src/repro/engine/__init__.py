"""Parallel execution engine: sharded multi-copy ingestion.

Sketch switching's robustness budget is paid in *copies* — many
independent instances of a static sketch, every one fed every update.
This package turns that multiplied work into a sharded execution plan:

* :mod:`repro.engine.shards` — decide the decomposition (per-copy for
  switching estimators, per-partial for mergeable sketches, serial
  fallback otherwise) and the shared-work hoists it licenses;
* :mod:`repro.engine.executor` — run the plan on this process
  (:class:`SerialEngine`) or across forked workers over shared-memory
  chunk buffers (:class:`ProcessEngine`), bit-for-bit equivalent to the
  serial batched path for exact-state sketches;
* :mod:`repro.engine.prefetch` — double-buffered chunk prefetching that
  overlaps chunk generation / disk reads with ingestion.

Entry points: ``api.ingest(..., engine="process:4", prefetch=2)``, the
experiment runners' ``engine=`` parameter, or driving an
:class:`IngestSession` directly.  The adversarial game never uses an
engine — adaptivity requires per-item round granularity.
"""

from repro.engine.executor import (
    DEFAULT_CHUNK_CAPACITY,
    EngineError,
    ExecutionEngine,
    IngestSession,
    ProcessEngine,
    SerialEngine,
    fork_available,
    resolve_engine,
)
from repro.engine.prefetch import DEFAULT_DEPTH, prefetch_chunks
from repro.engine.shards import (
    MergeShardPlan,
    SeenFilter,
    SerialPlan,
    SwitchingShardPlan,
    partition_copies,
    plan_shards,
)

__all__ = [
    "DEFAULT_CHUNK_CAPACITY",
    "DEFAULT_DEPTH",
    "EngineError",
    "ExecutionEngine",
    "IngestSession",
    "MergeShardPlan",
    "ProcessEngine",
    "SeenFilter",
    "SerialEngine",
    "SerialPlan",
    "SwitchingShardPlan",
    "fork_available",
    "partition_copies",
    "plan_shards",
    "prefetch_chunks",
    "resolve_engine",
]
