"""Shard planning: how an estimator's work splits across engine workers.

Sketch switching derives robustness from many independent copies of a
static sketch — a workload that is embarrassingly parallel *per copy*:
every copy must see every update, but no copy's state depends on any
other's, and the publish-band decision reads only the active copy.  A
single mergeable sketch parallelises differently — *per partial*: the
stream is sliced, each worker folds its slice into a private partial, and
partials combine through :meth:`repro.sketches.base.Sketch.merge`.

:func:`plan_shards` inspects an estimator and picks the plan:

* :class:`SwitchingShardPlan` — a :class:`SketchSwitchingEstimator`
  (possibly wrapped by a robust wrapper exposing ``_switcher``): copies
  fan out across workers, the coordinator keeps the protocol state.
* :class:`MergeShardPlan` — a mergeable sketch: per-partial sharding.
* :class:`SerialPlan` — everything else: the deterministic fallback
  (plain ``update_batch`` on the calling process).

The switching plan also carries the *shared-work hoists* that make the
sharded path cheaper than feeding each copy independently, even before
any process parallelism:

* chunk aggregation — dedupe/aggregate the chunk once instead of once
  per copy (valid when every inner sketch is ``aggregation_invariant``);
* first-occurrence filtering — drop items every live copy has already
  seen (valid when every inner sketch is ``duplicate_insensitive``: a
  re-occurring item provably cannot move any copy's state, hence cannot
  move any boundary band check).  The :class:`SeenFilter` tracking this
  must be reset whenever a switch replaces or burns a copy, because a
  restarted copy is born blank and re-occurrences are first occurrences
  *to it*; the engine drivers do exactly that.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

import numpy as np

from repro.core.sketch_switching import SketchSwitchingEstimator
from repro.sketches.base import Sketch

#: Above this universe size the seen-filter switches from a dense boolean
#: mask (O(1) lookups) to sorted-array membership (O(log) via searchsorted).
DENSE_SEEN_LIMIT = 1 << 26


class SeenFilter:
    """Tracks which items every live sketch copy has seen since its birth.

    ``fresh(unique_items)`` returns the subset not yet marked;
    ``mark(unique_items)`` records a successfully committed chunk;
    ``reset()`` forgets everything (called after any switch, because the
    youngest copy was born mid-stream and must re-see later occurrences).
    """

    def __init__(self, universe: int | None):
        self._dense = (
            np.zeros(universe, dtype=bool)
            if universe is not None and 0 < universe <= DENSE_SEEN_LIMIT
            else None
        )
        self._sorted = np.zeros(0, dtype=np.int64)

    def fresh(self, unique_items: np.ndarray) -> np.ndarray:
        if len(unique_items) == 0:
            return unique_items
        if self._dense is not None:
            if (
                int(unique_items[0]) < 0
                or int(unique_items[-1]) >= self._dense.shape[0]
            ):
                # Items outside the declared universe: treat all as fresh
                # (correct, merely less effective).
                return unique_items
            return unique_items[~self._dense[unique_items]]
        if len(self._sorted) == 0:
            return unique_items
        pos = np.searchsorted(self._sorted, unique_items)
        pos[pos >= len(self._sorted)] = len(self._sorted) - 1
        return unique_items[self._sorted[pos] != unique_items]

    def mark(self, unique_items: np.ndarray) -> None:
        if len(unique_items) == 0:
            return
        if self._dense is not None:
            if (
                int(unique_items[0]) >= 0
                and int(unique_items[-1]) < self._dense.shape[0]
            ):
                self._dense[unique_items] = True
            return
        self._sorted = np.union1d(self._sorted, unique_items)

    def reset(self) -> None:
        if self._dense is not None:
            self._dense[:] = False
        self._sorted = np.zeros(0, dtype=np.int64)


def partition_copies(count: int, workers: int) -> list[list[int]]:
    """Split copy indices 0..count-1 into at most ``workers`` balanced shards.

    Contiguous and deterministic so the copy→worker assignment is stable
    across a session (the coordinator routes active-copy commands by it).
    Empty shards are dropped: more workers than copies is just fewer
    workers.
    """
    if count < 1:
        raise ValueError(f"copy count must be >= 1, got {count}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(workers, count)
    base, extra = divmod(count, workers)
    shards: list[list[int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


def _accepts_assume_unique(sketch: Sketch) -> bool:
    """Does this sketch's ``update_batch`` take the dedup hint keyword?"""
    try:
        return "assume_unique" in inspect.signature(sketch.update_batch).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False


@dataclass
class SwitchingShardPlan:
    """Per-copy fan-out for a sketch-switching estimator."""

    switcher: SketchSwitchingEstimator
    #: Universe-size hint for the seen-filter (dense mask when small).
    universe: int | None = None
    #: All inner copies are duplicate-insensitive: first-occurrence
    #: filtering is exact.
    filter_duplicates: bool = False
    #: All inner copies are aggregation-invariant: the chunk can be
    #: aggregated once on the coordinator instead of once per copy.
    aggregate_once: bool = False
    #: ``update_batch`` accepts ``assume_unique=True`` (KMV): pre-deduped
    #: feeds skip the per-copy dedup entirely.
    unique_hint: bool = False

    def shards(self, workers: int) -> list[list[int]]:
        return partition_copies(self.switcher.copies, workers)

    def make_seen_filter(self) -> SeenFilter:
        return SeenFilter(self.universe)


@dataclass
class MergeShardPlan:
    """Per-partial sharding for one mergeable sketch.

    Worker partials start from :meth:`Sketch.empty_like` — zero state
    sharing the sketch's randomness — so each partial is a pure delta of
    the updates its worker ingested and merging back into a sketch with
    *existing* state stays correct (nothing is double counted).
    """

    sketch: Sketch

    def make_partials(self, workers: int) -> list[Sketch]:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return [self.sketch.empty_like() for _ in range(workers)]


@dataclass
class SerialPlan:
    """No parallel decomposition known: deterministic in-process feeding."""

    estimator: Sketch
    reason: str = "estimator is neither a switching estimator nor mergeable"


ShardPlan = SwitchingShardPlan | MergeShardPlan | SerialPlan


def plan_shards(estimator: Sketch) -> ShardPlan:
    """Pick the sharding decomposition for ``estimator``.

    Robust wrappers built on sketch switching expose their inner
    :class:`SketchSwitchingEstimator` as ``_switcher``; the planner
    unwraps it so e.g. ``RobustDistinctElements`` fans out per copy.
    Additive switching (entropy) has a non-monotone band and stays on
    the serial fallback.
    """
    switcher = estimator if isinstance(
        estimator, SketchSwitchingEstimator
    ) else getattr(estimator, "_switcher", None)
    if isinstance(switcher, SketchSwitchingEstimator):
        inner = switcher._sketches
        return SwitchingShardPlan(
            switcher=switcher,
            universe=getattr(estimator, "n", None),
            filter_duplicates=all(s.duplicate_insensitive for s in inner),
            aggregate_once=all(s.aggregation_invariant for s in inner),
            unique_hint=all(_accepts_assume_unique(s) for s in inner),
        )
    if isinstance(estimator, Sketch) and estimator.mergeable:
        return MergeShardPlan(sketch=estimator)
    return SerialPlan(estimator=estimator)
