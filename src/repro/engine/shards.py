"""Shard planning: how an estimator's work splits across engine workers.

Sketch switching derives robustness from many independent copies of a
static sketch — a workload that is embarrassingly parallel *per copy*:
every copy must see every update, but no copy's state depends on any
other's, and the publish-band decision reads only the estimator's
*probe set* — the active copy under
:class:`~repro.core.disciplines.ActiveCopyDiscipline`, every copy under
the DP :class:`~repro.core.disciplines.PrivateAggregateDiscipline`
(whose all-copy probe step the executors fan out across whichever
workers own the probed copies).  That holds for **every** band policy
(multiplicative, additive, epoch) and both disciplines; they only
change how the coordinator resolves a boundary check, so the planner is
band- and discipline-agnostic and simply carries the estimator's
:class:`~repro.core.bands.BandPolicy` and
:class:`~repro.core.disciplines.ProbeDiscipline` into the plan.  A single mergeable
sketch parallelises differently — *per partial*: the stream is sliced,
each worker folds its slice into a private partial, and partials combine
through :meth:`repro.sketches.base.Sketch.merge`.

:func:`plan_shards` inspects an estimator and picks the plan:

* :class:`SwitchingShardPlan` — a
  :class:`~repro.core.sketch_switching.SwitchingEstimator` (possibly
  wrapped by a robust wrapper exposing ``_switcher``): copies fan out
  across workers, the coordinator keeps the protocol state.  This now
  includes the additive/entropy band — its crossing-chunk bisection
  coalesces transient excursions at cell granularity rather than being
  per-item exact (see :mod:`repro.core.bands`), a coordinator concern
  the plan doesn't care about.
* :class:`EpochShardPlan` — the heavy-hitters construction (Theorem
  6.5): a switching plan for the inner robust L2 tracker plus a ring of
  point-query copies fed uniformly, with the epoch clock on the
  coordinator.
* :class:`MergeShardPlan` — a mergeable sketch: per-partial sharding.
* :class:`SerialPlan` — everything else: the deterministic fallback
  (plain ``update_batch`` on the calling process).  Wrapped estimators
  whose inner switcher is absent or malformed land here *explicitly*
  (with a reason) rather than being driven through active-copy
  assumptions that don't hold for them.

The switching plan also carries the *shared-work hoists* that make the
sharded path cheaper than feeding each copy independently, even before
any process parallelism:

* chunk aggregation — dedupe/aggregate the chunk once instead of once
  per copy (valid when every inner sketch is ``aggregation_invariant``);
* first-occurrence filtering — drop items every live copy has already
  seen (valid when every inner sketch is ``duplicate_insensitive``: a
  re-occurring item provably cannot move any copy's state, hence cannot
  move any boundary band check).  The :class:`SeenFilter` tracking this
  must be reset whenever a switch replaces or burns a copy, because a
  restarted copy is born blank and re-occurrences are first occurrences
  *to it*; the protocol driver does exactly that.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

import numpy as np

from repro.core.bands import BandPolicy
from repro.core.copies import CopyManager, universe_licensed
from repro.core.sketch_switching import SwitchingEstimator
from repro.sketches.base import Sketch

#: Above this universe size the seen-filter switches from a dense boolean
#: mask (O(1) lookups) to sorted-array membership (O(log) via searchsorted).
DENSE_SEEN_LIMIT = 1 << 26


class SeenFilter:
    """Tracks which items every live sketch copy has seen since its birth.

    ``fresh(unique_items)`` returns the subset not yet marked;
    ``mark(unique_items)`` records a successfully committed chunk;
    ``reset()`` forgets everything (called after any switch, because the
    youngest copy was born mid-stream and must re-see later occurrences).
    """

    def __init__(self, universe: int | None):
        self._dense = (
            np.zeros(universe, dtype=bool)
            if universe is not None and 0 < universe <= DENSE_SEEN_LIMIT
            else None
        )
        self._sorted = np.zeros(0, dtype=np.int64)

    def fresh(self, unique_items: np.ndarray) -> np.ndarray:
        if len(unique_items) == 0:
            return unique_items
        if self._dense is not None:
            if (
                int(unique_items[0]) < 0
                or int(unique_items[-1]) >= self._dense.shape[0]
            ):
                # Items outside the declared universe: treat all as fresh
                # (correct, merely less effective).
                return unique_items
            return unique_items[~self._dense[unique_items]]
        if len(self._sorted) == 0:
            return unique_items
        pos = np.searchsorted(self._sorted, unique_items)
        pos[pos >= len(self._sorted)] = len(self._sorted) - 1
        return unique_items[self._sorted[pos] != unique_items]

    def mark(self, unique_items: np.ndarray) -> None:
        if len(unique_items) == 0:
            return
        if self._dense is not None:
            if (
                int(unique_items[0]) >= 0
                and int(unique_items[-1]) < self._dense.shape[0]
            ):
                self._dense[unique_items] = True
            return
        self._sorted = np.union1d(self._sorted, unique_items)

    def reset(self) -> None:
        if self._dense is not None:
            self._dense[:] = False
        self._sorted = np.zeros(0, dtype=np.int64)


def partition_copies(count: int, workers: int) -> list[list[int]]:
    """Split copy indices 0..count-1 into at most ``workers`` balanced shards.

    Contiguous and deterministic so the copy→worker assignment is stable
    across a session (the coordinator routes active-copy commands by it).
    Empty shards are dropped: more workers than copies is just fewer
    workers.
    """
    if count < 1:
        raise ValueError(f"copy count must be >= 1, got {count}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(workers, count)
    base, extra = divmod(count, workers)
    shards: list[list[int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


def _accepts_assume_unique(sketch: Sketch) -> bool:
    """Does this sketch's ``update_batch`` take the dedup hint keyword?"""
    try:
        return "assume_unique" in inspect.signature(sketch.update_batch).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False


@dataclass
class CopyHoists:
    """The shared-work hoists a set of uniform copies licenses."""

    #: Universe-size hint for the seen-filter (dense mask when small).
    universe: int | None = None
    #: All copies are duplicate-insensitive: first-occurrence filtering
    #: is exact.
    filter_duplicates: bool = False
    #: All copies are aggregation-invariant: the chunk can be aggregated
    #: once on the coordinator instead of once per copy.
    aggregate_once: bool = False
    #: ``update_batch`` accepts ``assume_unique=True`` (KMV): pre-deduped
    #: feeds skip the per-copy dedup entirely.
    unique_hint: bool = False

    @classmethod
    def licensed_by(cls, sketches, universe: int | None) -> "CopyHoists":
        return cls(
            universe=universe,
            filter_duplicates=all(s.duplicate_insensitive for s in sketches),
            aggregate_once=all(s.aggregation_invariant for s in sketches),
            unique_hint=all(_accepts_assume_unique(s) for s in sketches),
        )

    def make_seen_filter(self) -> SeenFilter | None:
        return SeenFilter(self.universe) if self.filter_duplicates else None


@dataclass
class SwitchingShardPlan:
    """Per-copy fan-out for a switching estimator (any band policy and
    any probe discipline)."""

    switcher: SwitchingEstimator
    hoists: CopyHoists

    @property
    def band(self) -> BandPolicy:
        return self.switcher.band

    @property
    def discipline(self):
        """The estimator's :class:`~repro.core.disciplines.ProbeDiscipline`."""
        return self.switcher.discipline

    @property
    def unique_hint(self) -> bool:
        return self.hoists.unique_hint

    @property
    def aggregate_once(self) -> bool:
        return self.hoists.aggregate_once

    @property
    def filter_duplicates(self) -> bool:
        return self.hoists.filter_duplicates

    @property
    def universe(self) -> int | None:
        return self.hoists.universe

    def shards(self, workers: int) -> list[list[int]]:
        return partition_copies(self.switcher.copies, workers)


@dataclass
class EpochShardPlan:
    """Theorem 6.5 fan-out: inner L2 switching plan + point-query ring.

    The wrapper (``RobustHeavyHitters``) keeps the epoch clock and the
    published snapshot on the coordinator; the ring copies are fed every
    chunk uniformly (no band probing) and one of them is fetched and
    frozen at each epoch boundary.  ``ring_hoists`` mirrors the
    switching hoists for the ring feeds (CountSketch is
    aggregation-invariant, so chunks aggregate once for the whole ring).
    """

    wrapper: Sketch
    l2_plan: SwitchingShardPlan
    ring: CopyManager
    ring_hoists: CopyHoists

    def ring_shards(self, workers: int) -> list[list[int]]:
        return partition_copies(self.ring.count, workers)


@dataclass
class MergeShardPlan:
    """Per-partial sharding for one mergeable sketch.

    Worker partials start from :meth:`Sketch.empty_like` — zero state
    sharing the sketch's randomness — so each partial is a pure delta of
    the updates its worker ingested and merging back into a sketch with
    *existing* state stays correct (nothing is double counted).
    """

    sketch: Sketch

    def make_partials(self, workers: int) -> list[Sketch]:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return [self.sketch.empty_like() for _ in range(workers)]


@dataclass
class SerialPlan:
    """No parallel decomposition known: deterministic in-process feeding."""

    estimator: Sketch
    reason: str = "estimator is neither a switching estimator nor mergeable"


ShardPlan = SwitchingShardPlan | EpochShardPlan | MergeShardPlan | SerialPlan


def _switching_plan(switcher: SwitchingEstimator, universe) -> SwitchingShardPlan:
    return SwitchingShardPlan(
        switcher=switcher,
        hoists=CopyHoists.licensed_by(switcher._sketches, universe),
    )


def plan_shards(estimator: Sketch) -> ShardPlan:
    """Pick the sharding decomposition for ``estimator``.

    Robust wrappers built on sketch switching expose their inner
    :class:`SwitchingEstimator` as ``_switcher`` (and delegate their
    entire ingestion to it); the planner unwraps it so e.g.
    ``RobustDistinctElements`` and ``RobustEntropy`` fan out per copy.
    The heavy-hitters wrapper exposes an inner L2 tracker (``_l2``) and
    a point-query ring (``_ring``) and gets the epoch plan.  A wrapper
    whose inner switcher is absent or malformed — a disabled tracker, a
    duck-typed stand-in without the switching contract — falls back to
    an explicit :class:`SerialPlan` instead of being driven through
    active-copy assumptions that no longer hold.
    """
    universe = getattr(estimator, "n", None)
    # Epoch wrappers first: they contain an L2 switcher one level deeper,
    # and must not be mistaken for a plain switching delegator.
    ring = getattr(estimator, "_ring", None)
    if isinstance(ring, CopyManager):
        l2 = getattr(estimator, "_l2", None)
        inner = getattr(l2, "_switcher", None)
        if not isinstance(inner, SwitchingEstimator):
            return SerialPlan(
                estimator=estimator,
                reason="epoch wrapper without a switching L2 tracker",
            )
        return EpochShardPlan(
            wrapper=estimator,
            l2_plan=_switching_plan(inner, getattr(l2, "n", universe)),
            ring=ring,
            ring_hoists=CopyHoists.licensed_by(ring.sketches, universe),
        )
    switcher = estimator if isinstance(
        estimator, SwitchingEstimator
    ) else getattr(estimator, "_switcher", None)
    if isinstance(switcher, SwitchingEstimator):
        return _switching_plan(switcher, universe)
    if hasattr(estimator, "_switcher"):
        # The wrapper advertises a switching delegate but it isn't one
        # (absent, disabled, or a stand-in): explicit serial fallback.
        return SerialPlan(
            estimator=estimator,
            reason="wrapper's inner switcher is absent or not a "
                   "SwitchingEstimator",
        )
    if isinstance(estimator, Sketch) and estimator.mergeable:
        return MergeShardPlan(sketch=estimator)
    return SerialPlan(estimator=estimator)


def source_mode_for(plan: ShardPlan, source, parallel: bool):
    """How a session should consume a chunk source: ``(mode, reason)``.

    The planner's spec-vs-bytes decision for ``api.ingest(source=...)``:

    * ``"spec"`` — a parallel switching session broadcasts the picklable
      spec and workers materialize chunks locally (no per-chunk staging);
    * ``"universe"`` — a serial switching session whose copy set
      licenses the counts-based fast path materializes coordinator-side
      but prepares chunks from ``bincount`` over the source's promised
      universe;
    * ``"bytes"`` — coordinator-side materialization through the
      ordinary staged-bytes path, with ``reason`` saying why (surfaced
      in ``IngestReport`` so the fallback is observable, not silent).

    ``mode`` is ``None`` when no source is involved.
    """
    if source is None:
        return None, None
    if not isinstance(plan, SwitchingShardPlan):
        return "bytes", (
            f"{type(plan).__name__} sessions have no spec-shipped path; "
            "shipping bytes"
        )
    if parallel and plan.switcher.copies > 1:
        return "spec", None
    copies = plan.switcher._copies
    if universe_licensed(copies, source.universe, source.unit_deltas):
        return "universe", None
    return "bytes", (
        "universe fast path not licensed (needs a known item universe, "
        "unit deltas, and a stacked copy group); shipping bytes"
    )
