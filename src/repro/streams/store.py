"""Columnar on-disk stream store: memmapped arrays feeding StreamChunk.

A stored stream is a directory::

    <path>/
        header.json   # format version, update count, dtype, stream params
        items.bin     # little-endian int64 item column
        deltas.bin    # little-endian int64 delta column (absent when all
                      # deltas are +1 — the insertion-only common case)

The column files are raw C-order arrays, so reading them back is an
``np.memmap`` — :meth:`ColumnarStreamStore.chunks` yields
:class:`~repro.streams.model.StreamChunk` views **zero-copy**: the chunk
arrays alias the memmap pages, the OS pages them in on first touch, and
nothing is deserialized.  This is the disk-resident twin of the chunked
generators: a 10^9-update stream replays through ``api.ingest`` (or the
engine) without ever materialising per-update Python objects *or* the
whole array in RAM.

Writing streams incrementally keeps peak memory at one chunk:
:class:`StreamWriter` appends chunk after chunk and seals the header on
close, and :func:`write_stream` is the one-shot convenience over it
(accepting any stream form the chunk adapters accept, including
generators).  ``api.ingest(..., spill_store=path)`` tees a live replay
through a :class:`StreamWriter` while feeding the estimator, so a
generated or remote stream becomes a replayable on-disk store as a side
effect of ingesting it.  Deltas are elided while every delta seen so far
is ``+1`` and the file is backfilled the moment a non-unit delta
appears, so insertion-only stores cost half the bytes with no caller
involvement.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.streams.model import StreamChunk, StreamParameters, chunk_updates

_FORMAT = "repro-columnar"
_VERSION = 1
_DTYPE = "<i8"

HEADER_FILE = "header.json"
ITEMS_FILE = "items.bin"
DELTAS_FILE = "deltas.bin"

#: Default replay/write granularity, matching api.ingest.
DEFAULT_CHUNK_SIZE = 65536


class StoreFormatError(ValueError):
    """The on-disk layout is not a readable columnar stream store."""


class StreamWriter:
    """Incremental columnar writer: append chunks, seal the header on close.

    The write-side twin of :class:`ColumnarStreamStore`: column files are
    appended chunk by chunk (peak memory = one chunk) and the header —
    which makes the directory a readable store — is written by
    :meth:`close`.  Closing after an interrupted ingest still yields a
    valid store containing everything appended so far.  Usable as a
    context manager; :func:`write_stream` is the one-shot convenience and
    ``api.ingest(spill_store=...)`` the live-tee entry point.
    """

    #: Backfill granularity when a late non-unit delta forces a deltas
    #: column into existence.
    _BACKFILL = DEFAULT_CHUNK_SIZE

    def __init__(
        self,
        path,
        params: StreamParameters | None = None,
        metadata: dict | None = None,
    ):
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._params = params
        self._metadata = metadata
        self.updates = 0
        self.unit_deltas = True
        self._items_f = open(self.path / ITEMS_FILE, "wb")
        self._deltas_f = None
        self._closed = False

    def append(self, items, deltas=None) -> int:
        """Append one chunk (arrays or a StreamChunk); returns its length."""
        if self._closed:
            raise ValueError(f"StreamWriter for {self.path} is closed")
        if deltas is None and hasattr(items, "items") and hasattr(items, "deltas"):
            items, deltas = items.items, items.deltas
        items = np.ascontiguousarray(items, dtype=_DTYPE)
        self._items_f.write(items.tobytes())
        if deltas is None:
            deltas = np.ones(len(items), dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=_DTYPE)
        if self.unit_deltas and not np.all(deltas == 1):
            self._start_deltas_column()
        if self._deltas_f is not None:
            self._deltas_f.write(deltas.tobytes())
        self.updates += len(items)
        return len(items)

    def _start_deltas_column(self) -> None:
        """First non-unit delta: backfill ones for everything already
        written, then start recording deltas."""
        self.unit_deltas = False
        self._deltas_f = open(self.path / DELTAS_FILE, "wb")
        ones = np.ones(min(self.updates, self._BACKFILL) or 1, dtype=_DTYPE)
        remaining = self.updates
        while remaining > 0:
            take = min(remaining, len(ones))
            self._deltas_f.write(ones[:take].tobytes())
            remaining -= take

    def abort(self) -> None:
        """Close the column files *without* writing a header.

        The directory stays unreadable (``ColumnarStreamStore`` raises
        :class:`StoreFormatError`), which is how a failed one-shot
        ``write_stream`` stays detectable.  The spill tee deliberately
        chooses :meth:`close` instead: a partially ingested replay is
        still worth keeping.
        """
        if self._closed:
            return
        self._closed = True
        self._close_files()

    def _close_files(self) -> None:
        self._items_f.close()
        if self._deltas_f is not None:
            self._deltas_f.close()

    def close(self) -> "ColumnarStreamStore":
        """Seal the store: flush columns, write the header, return it."""
        if self._closed:
            return ColumnarStreamStore(self.path)
        self._closed = True
        self._close_files()
        deltas_path = self.path / DELTAS_FILE
        if self.unit_deltas and deltas_path.exists():
            deltas_path.unlink()  # overwrite of a previously-turnstile store
        header = {
            "format": _FORMAT,
            "version": _VERSION,
            "dtype": _DTYPE,
            "updates": self.updates,
            "unit_deltas": self.unit_deltas,
        }
        if self._params is not None:
            header["params"] = {
                "n": self._params.n, "m": self._params.m, "M": self._params.M,
            }
        if self._metadata:
            header["metadata"] = self._metadata
        (self.path / HEADER_FILE).write_text(json.dumps(header, indent=2) + "\n")
        return ColumnarStreamStore(self.path)

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Flush-and-finalize on clean exit; fail loud on exception.

        A ``with`` block that raises mid-write aborts instead of
        sealing: the directory stays header-less (unreadable), so a
        truncated stream can never masquerade as a complete store.  The
        exception propagates.  Callers that *want* a partial stream
        sealed (the ``api.ingest`` spill tee) call :meth:`close`
        explicitly instead of relying on the context manager.
        """
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_stream(
    path,
    stream,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    params: StreamParameters | None = None,
    metadata: dict | None = None,
) -> "ColumnarStreamStore":
    """Write ``stream`` to ``path`` in columnar form; return the store.

    ``stream`` may be anything :func:`repro.streams.model.chunk_updates`
    accepts — plain items, ``(item, delta)`` pairs, ``Update`` tuples, a
    ``StreamChunk``, or an iterable of chunks (including generators,
    which are consumed incrementally).  ``params`` embeds the ``(n, m,
    M)`` regime in the header so a reader can validate or size
    estimators without rescanning the data.

    A source that raises mid-stream leaves the directory *header-less*
    (unreadable, so the failure stays detectable) rather than sealing a
    silently truncated store; the live-tee path
    (``api.ingest(spill_store=...)``) makes the opposite choice and
    seals what was drawn.
    """
    writer = StreamWriter(path, params=params, metadata=metadata)
    try:
        for chunk in chunk_updates(stream, chunk_size):
            writer.append(chunk)
    except BaseException:
        writer.abort()
        raise
    return writer.close()


class ColumnarStreamStore:
    """Read side: memmapped columns yielding zero-copy chunks."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        header_path = self.path / HEADER_FILE
        if not header_path.is_file():
            raise StoreFormatError(f"no {HEADER_FILE} in {self.path}")
        try:
            header = json.loads(header_path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreFormatError(f"unreadable header in {self.path}") from exc
        if header.get("format") != _FORMAT:
            raise StoreFormatError(
                f"{self.path} is not a {_FORMAT} store "
                f"(format={header.get('format')!r})"
            )
        if header.get("version", 0) > _VERSION:
            raise StoreFormatError(
                f"store version {header['version']} is newer than "
                f"supported version {_VERSION}"
            )
        self.header = header
        self.updates = int(header["updates"])
        self.unit_deltas = bool(header["unit_deltas"])
        self._items: np.memmap | None = None
        self._deltas: np.memmap | None = None
        self._ones: np.ndarray | None = None
        # Lazily opened memmaps are stamped with the opening pid: a
        # store forked into a worker process must not keep serving
        # column views through the parent's inherited mapping (closing
        # or remapping in either process would corrupt the other's
        # view), so the properties drop inherited handles and reopen
        # the worker's own read-only mapping on first post-fork access.
        self._map_pid = os.getpid()

    def _own_maps(self) -> None:
        """Drop memmaps inherited across ``fork``; reopen lazily."""
        if self._map_pid != os.getpid():
            self._items = None
            self._deltas = None
            self._map_pid = os.getpid()

    @property
    def params(self) -> StreamParameters | None:
        """The embedded (n, m, M) regime, if the writer recorded one."""
        p = self.header.get("params")
        if p is None:
            return None
        return StreamParameters(n=p["n"], m=p["m"], M=p["M"])

    @property
    def items(self) -> np.ndarray:
        """The full item column as a lazily opened read-only memmap."""
        self._own_maps()
        if self._items is None:
            if self.updates == 0:
                self._items = np.zeros(0, dtype=np.int64)
            else:
                self._items = np.memmap(
                    self.path / ITEMS_FILE, dtype=_DTYPE, mode="r",
                    shape=(self.updates,),
                )
        return self._items

    @property
    def deltas(self) -> np.ndarray | None:
        """The delta column, or ``None`` for a unit-insertion store."""
        if self.unit_deltas:
            return None
        self._own_maps()
        if self._deltas is None:
            self._deltas = np.memmap(
                self.path / DELTAS_FILE, dtype=_DTYPE, mode="r",
                shape=(self.updates,),
            )
        return self._deltas

    def _unit_run(self, count: int) -> np.ndarray:
        """A read-only +1 run, shared across chunks (never materialises
        a deltas column for insertion-only stores)."""
        if self._ones is None or len(self._ones) < count:
            ones = np.ones(max(count, 1), dtype=np.int64)
            ones.setflags(write=False)
            self._ones = ones
        return self._ones[:count]

    def __len__(self) -> int:
        return self.updates

    def chunk_count(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
        return -(-self.updates // chunk_size) if self.updates else 0

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE):
        """Yield the stream as zero-copy :class:`StreamChunk` views."""
        if chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
        items = self.items
        deltas = self.deltas
        for lo in range(0, self.updates, chunk_size):
            hi = min(lo + chunk_size, self.updates)
            yield StreamChunk(
                items[lo:hi],
                self._unit_run(hi - lo) if deltas is None else deltas[lo:hi],
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "insertion-only" if self.unit_deltas else "turnstile"
        return (
            f"ColumnarStreamStore({str(self.path)!r}, updates={self.updates}, "
            f"{kind})"
        )
