"""Columnar on-disk stream store: memmapped arrays feeding StreamChunk.

A stored stream is a directory::

    <path>/
        header.json   # format version, update count, dtype, stream params
        items.bin     # little-endian int64 item column
        deltas.bin    # little-endian int64 delta column (absent when all
                      # deltas are +1 — the insertion-only common case)

The column files are raw C-order arrays, so reading them back is an
``np.memmap`` — :meth:`ColumnarStreamStore.chunks` yields
:class:`~repro.streams.model.StreamChunk` views **zero-copy**: the chunk
arrays alias the memmap pages, the OS pages them in on first touch, and
nothing is deserialized.  This is the disk-resident twin of the chunked
generators: a 10^9-update stream replays through ``api.ingest`` (or the
engine) without ever materialising per-update Python objects *or* the
whole array in RAM.

Writing streams incrementally (:func:`write_stream` accepts any stream
form the chunk adapters accept, including generators) keeps peak memory
at one chunk.  Deltas are elided while every delta seen so far is ``+1``
and the file is backfilled the moment a non-unit delta appears, so
insertion-only stores cost half the bytes with no caller involvement.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.streams.model import StreamChunk, StreamParameters, chunk_updates

_FORMAT = "repro-columnar"
_VERSION = 1
_DTYPE = "<i8"

HEADER_FILE = "header.json"
ITEMS_FILE = "items.bin"
DELTAS_FILE = "deltas.bin"

#: Default replay/write granularity, matching api.ingest.
DEFAULT_CHUNK_SIZE = 65536


class StoreFormatError(ValueError):
    """The on-disk layout is not a readable columnar stream store."""


def write_stream(
    path,
    stream,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    params: StreamParameters | None = None,
    metadata: dict | None = None,
) -> "ColumnarStreamStore":
    """Write ``stream`` to ``path`` in columnar form; return the store.

    ``stream`` may be anything :func:`repro.streams.model.chunk_updates`
    accepts — plain items, ``(item, delta)`` pairs, ``Update`` tuples, a
    ``StreamChunk``, or an iterable of chunks (including generators,
    which are consumed incrementally).  ``params`` embeds the ``(n, m,
    M)`` regime in the header so a reader can validate or size
    estimators without rescanning the data.
    """
    path = pathlib.Path(path)
    path.mkdir(parents=True, exist_ok=True)
    items_path = path / ITEMS_FILE
    deltas_path = path / DELTAS_FILE
    updates = 0
    unit_deltas = True
    with open(items_path, "wb") as items_f:
        deltas_f = None
        try:
            for chunk in chunk_updates(stream, chunk_size):
                items_f.write(
                    np.ascontiguousarray(chunk.items, dtype=_DTYPE).tobytes()
                )
                if unit_deltas and not np.all(chunk.deltas == 1):
                    # First non-unit delta: backfill ones for everything
                    # already written, then start recording deltas.
                    unit_deltas = False
                    deltas_f = open(deltas_path, "wb")
                    ones = np.ones(
                        min(updates, chunk_size) or 1, dtype=_DTYPE
                    )
                    remaining = updates
                    while remaining > 0:
                        take = min(remaining, len(ones))
                        deltas_f.write(ones[:take].tobytes())
                        remaining -= take
                if deltas_f is not None:
                    deltas_f.write(
                        np.ascontiguousarray(
                            chunk.deltas, dtype=_DTYPE
                        ).tobytes()
                    )
                updates += len(chunk)
        finally:
            if deltas_f is not None:
                deltas_f.close()
    if unit_deltas and deltas_path.exists():
        deltas_path.unlink()  # overwrite of a previously-turnstile store
    header = {
        "format": _FORMAT,
        "version": _VERSION,
        "dtype": _DTYPE,
        "updates": updates,
        "unit_deltas": unit_deltas,
    }
    if params is not None:
        header["params"] = {"n": params.n, "m": params.m, "M": params.M}
    if metadata:
        header["metadata"] = metadata
    (path / HEADER_FILE).write_text(json.dumps(header, indent=2) + "\n")
    return ColumnarStreamStore(path)


class ColumnarStreamStore:
    """Read side: memmapped columns yielding zero-copy chunks."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        header_path = self.path / HEADER_FILE
        if not header_path.is_file():
            raise StoreFormatError(f"no {HEADER_FILE} in {self.path}")
        try:
            header = json.loads(header_path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreFormatError(f"unreadable header in {self.path}") from exc
        if header.get("format") != _FORMAT:
            raise StoreFormatError(
                f"{self.path} is not a {_FORMAT} store "
                f"(format={header.get('format')!r})"
            )
        if header.get("version", 0) > _VERSION:
            raise StoreFormatError(
                f"store version {header['version']} is newer than "
                f"supported version {_VERSION}"
            )
        self.header = header
        self.updates = int(header["updates"])
        self.unit_deltas = bool(header["unit_deltas"])
        self._items: np.memmap | None = None
        self._deltas: np.memmap | None = None
        self._ones: np.ndarray | None = None

    @property
    def params(self) -> StreamParameters | None:
        """The embedded (n, m, M) regime, if the writer recorded one."""
        p = self.header.get("params")
        if p is None:
            return None
        return StreamParameters(n=p["n"], m=p["m"], M=p["M"])

    @property
    def items(self) -> np.ndarray:
        """The full item column as a lazily opened read-only memmap."""
        if self._items is None:
            if self.updates == 0:
                self._items = np.zeros(0, dtype=np.int64)
            else:
                self._items = np.memmap(
                    self.path / ITEMS_FILE, dtype=_DTYPE, mode="r",
                    shape=(self.updates,),
                )
        return self._items

    @property
    def deltas(self) -> np.ndarray | None:
        """The delta column, or ``None`` for a unit-insertion store."""
        if self.unit_deltas:
            return None
        if self._deltas is None:
            self._deltas = np.memmap(
                self.path / DELTAS_FILE, dtype=_DTYPE, mode="r",
                shape=(self.updates,),
            )
        return self._deltas

    def _unit_run(self, count: int) -> np.ndarray:
        """A read-only +1 run, shared across chunks (never materialises
        a deltas column for insertion-only stores)."""
        if self._ones is None or len(self._ones) < count:
            ones = np.ones(max(count, 1), dtype=np.int64)
            ones.setflags(write=False)
            self._ones = ones
        return self._ones[:count]

    def __len__(self) -> int:
        return self.updates

    def chunk_count(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
        return -(-self.updates // chunk_size) if self.updates else 0

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE):
        """Yield the stream as zero-copy :class:`StreamChunk` views."""
        if chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
        items = self.items
        deltas = self.deltas
        for lo in range(0, self.updates, chunk_size):
            hi = min(lo + chunk_size, self.updates)
            yield StreamChunk(
                items[lo:hi],
                self._unit_run(hi - lo) if deltas is None else deltas[lo:hi],
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "insertion-only" if self.unit_deltas else "turnstile"
        return (
            f"ColumnarStreamStore({str(self.path)!r}, updates={self.updates}, "
            f"{kind})"
        )
