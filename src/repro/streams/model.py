"""Data stream model: updates, stream classes, and parameter regimes.

The paper (Section 2) models a stream of length ``m`` over a domain ``[n]``
as a sequence of updates ``(a_t, Delta_t)`` with ``a_t in [n]`` and
``Delta_t in Z``; the frequency vector is ``f_i = sum_{t: a_t = i} Delta_t``.
Throughout it is assumed that ``|f^(t)|_inf <= M`` at all times and
``log(mM) = Theta(log n)``.

Three stream classes appear:

* **insertion-only** — all ``Delta_t > 0`` (most of the paper's results);
* **turnstile** — arbitrary signs (Theorem 4.3, restricted to bounded
  flip-number classes);
* **alpha-bounded deletion** — turnstile where the stream never deletes more
  than a ``(1 - 1/alpha)`` fraction of the Fp mass it inserted (Section 8).
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np


class Update(NamedTuple):
    """A single stream update ``(item, delta)``."""

    item: int
    delta: int


@dataclass(frozen=True)
class StreamChunk:
    """A contiguous run of updates as aligned arrays — the batched-ingestion
    currency of the codebase.

    ``items[t]`` and ``deltas[t]`` are the t-th update of the chunk; the
    arrays are what :meth:`repro.sketches.base.Sketch.update_batch`
    consumes directly, with no per-update Python objects in between.
    Iterating a chunk yields :class:`Update` tuples in stream order, so
    per-item consumers (the adversarial game, the equivalence tests) can
    treat a chunked stream exactly like a flat one.
    """

    items: np.ndarray
    deltas: np.ndarray

    def __post_init__(self) -> None:
        items = np.ascontiguousarray(self.items, dtype=np.int64)
        deltas = np.ascontiguousarray(self.deltas, dtype=np.int64)
        if items.ndim != 1 or deltas.shape != items.shape:
            raise ValueError(
                f"items/deltas must be aligned 1-d arrays, got shapes "
                f"{np.shape(self.items)} and {np.shape(self.deltas)}"
            )
        object.__setattr__(self, "items", items)
        object.__setattr__(self, "deltas", deltas)

    @classmethod
    def from_updates(cls, updates: Iterable[Update]) -> "StreamChunk":
        """Pack a sequence of updates (or plain items/pairs) into arrays."""
        pairs = as_updates(updates)
        if not pairs:
            return cls(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        arr = np.asarray(pairs, dtype=np.int64)
        return cls(arr[:, 0].copy(), arr[:, 1].copy())

    @classmethod
    def insertions(cls, items) -> "StreamChunk":
        """A unit-insertion chunk (the simplified insertion-only form)."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        return cls(items, np.ones(items.shape, dtype=np.int64))

    def __len__(self) -> int:
        return int(self.items.shape[0])

    def __iter__(self) -> Iterator[Update]:
        for item, delta in zip(self.items.tolist(), self.deltas.tolist()):
            yield Update(item, delta)

    @property
    def insertion_only(self) -> bool:
        return bool(len(self) == 0 or int(self.deltas.min()) > 0)

    def split(self, at: int) -> tuple["StreamChunk", "StreamChunk"]:
        """(prefix, suffix) around position ``at`` (prefix excludes it)."""
        return (
            StreamChunk(self.items[:at], self.deltas[:at]),
            StreamChunk(self.items[at:], self.deltas[at:]),
        )


def chunk_updates(updates, size: int) -> Iterator[StreamChunk]:
    """Slice a stream (items / pairs / Updates / chunks) into StreamChunks.

    This is the ``chunks(size)`` adapter: oblivious replay feeds the
    resulting chunks to ``update_batch``, while the adversarial game keeps
    consuming the same stream per :class:`Update` (adaptivity requires
    round granularity — the adversary sees R_t after every update — so the
    game never batches).
    """
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    if isinstance(updates, StreamChunk):
        for start in range(0, len(updates), size):
            yield StreamChunk(
                updates.items[start:start + size],
                updates.deltas[start:start + size],
            )
        return
    buffer: list[Update] = []
    for u in updates:
        if isinstance(u, StreamChunk):
            # Re-chunk an already-chunked stream: flush, then slice.
            if buffer:
                yield StreamChunk.from_updates(buffer)
                buffer = []
            yield from chunk_updates(u, size)
            continue
        buffer.append(u)
        if len(buffer) >= size:
            yield StreamChunk.from_updates(buffer)
            buffer = []
    if buffer:
        yield StreamChunk.from_updates(buffer)


def iter_updates(chunks: Iterable[StreamChunk | Update]) -> Iterator[Update]:
    """Flatten chunks back to per-:class:`Update` iteration (game adapter)."""
    for chunk in chunks:
        if isinstance(chunk, StreamChunk):
            yield from chunk
        else:
            yield chunk


class StreamModel(enum.Enum):
    """Which update signs a stream (or an algorithm) permits."""

    INSERTION_ONLY = "insertion_only"
    TURNSTILE = "turnstile"
    BOUNDED_DELETION = "bounded_deletion"

    @property
    def allows_deletions(self) -> bool:
        return self is not StreamModel.INSERTION_ONLY


@dataclass(frozen=True)
class StreamParameters:
    """The (n, m, M) regime of Section 2.

    Parameters
    ----------
    n:
        Universe size; items are integers in ``[0, n)``.
    m:
        Stream length (number of updates).
    M:
        Bound on ``|f^(t)|_inf`` maintained at every prefix.

    The class provides the derived quantities that the robustification
    formulas consume: ``log2 n``, the dynamic range ``T`` of the tracked
    functions, and the standing assumption check ``log(mM) = O(log n)``.
    """

    n: int
    m: int
    M: int = 1 << 20

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"universe size n must be >= 2, got {self.n}")
        if self.m < 1:
            raise ValueError(f"stream length m must be >= 1, got {self.m}")
        if self.M < 1:
            raise ValueError(f"frequency bound M must be >= 1, got {self.M}")

    @property
    def log2_n(self) -> float:
        return math.log2(self.n)

    @property
    def log2_mM(self) -> float:
        return math.log2(self.m * self.M)

    def fp_value_range(self, p: float) -> tuple[float, float]:
        """(min nonzero, max) of ``|f|_p^p`` over conforming streams.

        Used as the ``T`` of Proposition 3.4 / Lemma 3.8: for ``p > 0`` the
        moment of a nonzero integer vector is at least 1 and at most
        ``M^p * n``; for ``p = 0`` it is at least 1 and at most ``n``.
        """
        if p < 0:
            raise ValueError(f"p must be >= 0, got {p}")
        if p == 0:
            return 1.0, float(self.n)
        return 1.0, float(self.M) ** p * self.n

    def validate_item(self, item: int) -> None:
        if not 0 <= item < self.n:
            raise ValueError(f"item {item} outside universe [0, {self.n})")


def as_updates(items_or_updates) -> list[Update]:
    """Normalise a stream given as items, pairs, or Updates to ``[Update]``.

    The insertion-only model is "often presented with the simplified
    definition" of a plain item sequence (Section 2); this helper accepts
    that form (each item becomes ``(item, +1)``) as well as explicit pairs.
    """
    out: list[Update] = []
    for u in items_or_updates:
        if isinstance(u, Update):
            out.append(u)
        elif isinstance(u, tuple):
            item, delta = u
            out.append(Update(int(item), int(delta)))
        else:
            out.append(Update(int(u), 1))
    return out
