"""Data stream model: updates, stream classes, and parameter regimes.

The paper (Section 2) models a stream of length ``m`` over a domain ``[n]``
as a sequence of updates ``(a_t, Delta_t)`` with ``a_t in [n]`` and
``Delta_t in Z``; the frequency vector is ``f_i = sum_{t: a_t = i} Delta_t``.
Throughout it is assumed that ``|f^(t)|_inf <= M`` at all times and
``log(mM) = Theta(log n)``.

Three stream classes appear:

* **insertion-only** — all ``Delta_t > 0`` (most of the paper's results);
* **turnstile** — arbitrary signs (Theorem 4.3, restricted to bounded
  flip-number classes);
* **alpha-bounded deletion** — turnstile where the stream never deletes more
  than a ``(1 - 1/alpha)`` fraction of the Fp mass it inserted (Section 8).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import NamedTuple


class Update(NamedTuple):
    """A single stream update ``(item, delta)``."""

    item: int
    delta: int


class StreamModel(enum.Enum):
    """Which update signs a stream (or an algorithm) permits."""

    INSERTION_ONLY = "insertion_only"
    TURNSTILE = "turnstile"
    BOUNDED_DELETION = "bounded_deletion"

    @property
    def allows_deletions(self) -> bool:
        return self is not StreamModel.INSERTION_ONLY


@dataclass(frozen=True)
class StreamParameters:
    """The (n, m, M) regime of Section 2.

    Parameters
    ----------
    n:
        Universe size; items are integers in ``[0, n)``.
    m:
        Stream length (number of updates).
    M:
        Bound on ``|f^(t)|_inf`` maintained at every prefix.

    The class provides the derived quantities that the robustification
    formulas consume: ``log2 n``, the dynamic range ``T`` of the tracked
    functions, and the standing assumption check ``log(mM) = O(log n)``.
    """

    n: int
    m: int
    M: int = 1 << 20

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"universe size n must be >= 2, got {self.n}")
        if self.m < 1:
            raise ValueError(f"stream length m must be >= 1, got {self.m}")
        if self.M < 1:
            raise ValueError(f"frequency bound M must be >= 1, got {self.M}")

    @property
    def log2_n(self) -> float:
        return math.log2(self.n)

    @property
    def log2_mM(self) -> float:
        return math.log2(self.m * self.M)

    def fp_value_range(self, p: float) -> tuple[float, float]:
        """(min nonzero, max) of ``|f|_p^p`` over conforming streams.

        Used as the ``T`` of Proposition 3.4 / Lemma 3.8: for ``p > 0`` the
        moment of a nonzero integer vector is at least 1 and at most
        ``M^p * n``; for ``p = 0`` it is at least 1 and at most ``n``.
        """
        if p < 0:
            raise ValueError(f"p must be >= 0, got {p}")
        if p == 0:
            return 1.0, float(self.n)
        return 1.0, float(self.M) ** p * self.n

    def validate_item(self, item: int) -> None:
        if not 0 <= item < self.n:
            raise ValueError(f"item {item} outside universe [0, {self.n})")


def as_updates(items_or_updates) -> list[Update]:
    """Normalise a stream given as items, pairs, or Updates to ``[Update]``.

    The insertion-only model is "often presented with the simplified
    definition" of a plain item sequence (Section 2); this helper accepts
    that form (each item becomes ``(item, +1)``) as well as explicit pairs.
    """
    out: list[Update] = []
    for u in items_or_updates:
        if isinstance(u, Update):
            out.append(u)
        elif isinstance(u, tuple):
            item, delta = u
            out.append(Update(int(item), int(delta)))
        else:
            out.append(Update(int(u), 1))
    return out
