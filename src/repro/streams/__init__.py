"""Stream model, exact frequency vectors, workload generators, validators,
and the columnar on-disk stream store."""

from repro.streams.frequency import FrequencyVector
from repro.streams.generators import (
    bounded_deletion_stream,
    distinct_ramp_chunks,
    distinct_ramp_stream,
    phased_support_stream,
    planted_heavy_hitters_stream,
    turnstile_wave_stream,
    uniform_stream,
    uniform_stream_chunks,
    zipfian_stream,
    zipfian_stream_chunks,
)
from repro.streams.model import (
    StreamChunk,
    StreamModel,
    StreamParameters,
    Update,
    as_updates,
    chunk_updates,
    iter_updates,
)
from repro.streams.sources import (
    ChunkSource,
    GeneratorChunkSource,
    StoreChunkSource,
    as_chunk_source,
    source_from_spec,
)
from repro.streams.store import ColumnarStreamStore, StreamWriter, write_stream
from repro.streams.validators import (
    StreamValidationError,
    check_bounded_deletion,
    function_trajectory,
    validate_bounded_deletion,
    validate_insertion_only,
    validate_parameters,
)

__all__ = [
    "ChunkSource",
    "GeneratorChunkSource",
    "StoreChunkSource",
    "as_chunk_source",
    "source_from_spec",
    "ColumnarStreamStore",
    "StreamWriter",
    "FrequencyVector",
    "write_stream",
    "bounded_deletion_stream",
    "distinct_ramp_chunks",
    "distinct_ramp_stream",
    "phased_support_stream",
    "planted_heavy_hitters_stream",
    "turnstile_wave_stream",
    "uniform_stream",
    "uniform_stream_chunks",
    "zipfian_stream",
    "zipfian_stream_chunks",
    "StreamChunk",
    "StreamModel",
    "StreamParameters",
    "Update",
    "as_updates",
    "chunk_updates",
    "iter_updates",
    "StreamValidationError",
    "check_bounded_deletion",
    "function_trajectory",
    "validate_bounded_deletion",
    "validate_insertion_only",
    "validate_parameters",
]
