"""Chunk sources: picklable stream *descriptions* with local materializers.

A :class:`ChunkSource` separates **describing** a stream from
**materializing** it.  The description — :meth:`ChunkSource.spec` — is a
small picklable dict (a generator name + parameters + seed + chunk
geometry, or a :class:`~repro.streams.store.ColumnarStreamStore` path +
row range); :meth:`ChunkSource.chunks` turns that description into the
actual :class:`~repro.streams.model.StreamChunk` sequence wherever the
spec happens to be.

That split is what lets the process engine ship *specs instead of
bytes*: the coordinator broadcasts the spec once at session start, every
worker rebuilds the source locally via :func:`source_from_spec`, and the
per-chunk coordinator traffic shrinks from megabytes of staged arrays to
a bare advance command.  Generator-backed sources regenerate chunks from
the same seed through the same chunked generator — NumPy draws are
bit-for-bit identical whether drawn monolithically or chunk by chunk, so
every worker sees exactly the stream the coordinator would have staged.
Store-backed sources memmap their *own* read-only view of the column
files post-fork and slice rows directly (zero-copy, page-cache shared).

Sequentiality contract: :meth:`chunks` materializes the stream **in
order** — generator state advances chunk by chunk, so there is no random
access.  The switching protocol drives chunks strictly in order, and
boundary/bisect replay works positionally *within* the current chunk, so
sequential materialization is all the engines need.
:meth:`chunk_lengths` states the chunk geometry up front without
materializing anything, which is how the coordinator drives workers
through a spec-shipped session while holding no stream data at all.
"""

from __future__ import annotations

import pathlib
from abc import ABC, abstractmethod
from collections.abc import Iterator

import numpy as np

from repro.streams.generators import CHUNKED_GENERATORS, SEEDLESS_CHUNKED
from repro.streams.model import StreamChunk
from repro.streams.store import DEFAULT_CHUNK_SIZE, ColumnarStreamStore

__all__ = [
    "ChunkSource",
    "GeneratorChunkSource",
    "StoreChunkSource",
    "source_from_spec",
    "as_chunk_source",
]


class ChunkSource(ABC):
    """A stream described by a picklable spec plus a local materializer."""

    #: Total number of updates the source yields.
    total: int
    #: Materialization granularity (last chunk may be shorter).
    chunk_size: int
    #: Item universe size: every item is in ``[0, universe)`` — or
    #: ``None`` when the source cannot promise a bound.  A known universe
    #: licenses the serial engine's counts-based prepare fast path.
    universe: int | None
    #: True when every delta is +1 (insertion-only with unit weights).
    unit_deltas: bool

    @abstractmethod
    def spec(self) -> dict:
        """The picklable description; ``source_from_spec`` round-trips it."""

    @abstractmethod
    def chunks(self) -> Iterator[StreamChunk]:
        """Materialize the stream, strictly in order."""

    def chunk_lengths(self) -> list[int]:
        """Per-chunk lengths, computed without materializing anything."""
        sizes = []
        remaining = self.total
        while remaining > 0:
            take = min(self.chunk_size, remaining)
            sizes.append(take)
            remaining -= take
        return sizes

    def __len__(self) -> int:
        return self.total


def _check_geometry(m: int, chunk_size: int) -> None:
    if m < 0:
        raise ValueError(f"stream length must be >= 0, got {m}")
    if chunk_size < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk_size}")


class GeneratorChunkSource(ChunkSource):
    """A synthetic stream described by (generator name, params, seed).

    ``name`` selects a chunked generator from
    :data:`repro.streams.generators.CHUNKED_GENERATORS`.  Seeded
    generators rebuild their RNG as ``np.random.default_rng(seed)`` on
    every :meth:`chunks` call, so materialization is repeatable and
    identical on every worker that holds the spec.
    """

    unit_deltas = True

    def __init__(
        self,
        name: str,
        n: int,
        m: int,
        seed: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        **params,
    ):
        if name not in CHUNKED_GENERATORS:
            known = ", ".join(sorted(CHUNKED_GENERATORS))
            raise ValueError(f"unknown chunked generator {name!r} (have: {known})")
        _check_geometry(m, chunk_size)
        if name in SEEDLESS_CHUNKED:
            if seed is not None:
                raise ValueError(f"generator {name!r} is deterministic; seed must be None")
        elif seed is None:
            raise ValueError(f"generator {name!r} needs a seed to be spec-shippable")
        self.name = name
        self.n = int(n)
        self.total = int(m)
        self.seed = seed
        self.chunk_size = int(chunk_size)
        self.params = dict(params)
        self.universe = self.n

    def spec(self) -> dict:
        return {
            "kind": "generator",
            "name": self.name,
            "n": self.n,
            "m": self.total,
            "seed": self.seed,
            "chunk_size": self.chunk_size,
            "params": dict(self.params),
        }

    def chunks(self) -> Iterator[StreamChunk]:
        fn = CHUNKED_GENERATORS[self.name]
        if self.name in SEEDLESS_CHUNKED:
            return fn(self.n, self.total, chunk_size=self.chunk_size, **self.params)
        rng = np.random.default_rng(self.seed)
        return fn(self.n, self.total, rng, chunk_size=self.chunk_size, **self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GeneratorChunkSource({self.name!r}, n={self.n}, m={self.total}, "
            f"seed={self.seed}, chunk_size={self.chunk_size})"
        )


class StoreChunkSource(ChunkSource):
    """A row range of an on-disk columnar store, materialized by memmap.

    The spec carries only the path and row range; every consumer —
    including each forked worker — opens its **own**
    :class:`ColumnarStreamStore` and memmaps its own read-only view, so
    no file handles cross the fork boundary and chunk views stay
    zero-copy (the OS shares the pages).
    """

    def __init__(
        self,
        path,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        start: int = 0,
        stop: int | None = None,
    ):
        store = ColumnarStreamStore(path)
        if stop is None:
            stop = store.updates
        if not 0 <= start <= stop <= store.updates:
            raise ValueError(
                f"row range [{start}, {stop}) out of bounds for "
                f"{store.updates} updates"
            )
        _check_geometry(stop - start, chunk_size)
        self.path = pathlib.Path(path)
        self.start = int(start)
        self.stop = int(stop)
        self.total = self.stop - self.start
        self.chunk_size = int(chunk_size)
        self.unit_deltas = store.unit_deltas
        params = store.params
        self.universe = params.n if params is not None else None

    def spec(self) -> dict:
        return {
            "kind": "store",
            "path": str(self.path),
            "chunk_size": self.chunk_size,
            "start": self.start,
            "stop": self.stop,
        }

    def chunks(self) -> Iterator[StreamChunk]:
        store = ColumnarStreamStore(self.path)
        items = store.items
        deltas = store.deltas
        for lo in range(self.start, self.stop, self.chunk_size):
            hi = min(lo + self.chunk_size, self.stop)
            yield StreamChunk(
                items[lo:hi],
                store._unit_run(hi - lo) if deltas is None else deltas[lo:hi],
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StoreChunkSource({str(self.path)!r}, rows=[{self.start}, "
            f"{self.stop}), chunk_size={self.chunk_size})"
        )


def source_from_spec(spec: dict) -> ChunkSource:
    """Rebuild a :class:`ChunkSource` from its picklable spec.

    This is the worker-side entry point: the process engine broadcasts
    ``source.spec()`` once per session and each worker materializes
    through the source this returns.
    """
    kind = spec.get("kind")
    if kind == "generator":
        return GeneratorChunkSource(
            spec["name"],
            n=spec["n"],
            m=spec["m"],
            seed=spec["seed"],
            chunk_size=spec["chunk_size"],
            **spec.get("params", {}),
        )
    if kind == "store":
        return StoreChunkSource(
            spec["path"],
            chunk_size=spec["chunk_size"],
            start=spec["start"],
            stop=spec["stop"],
        )
    raise ValueError(f"unknown chunk-source spec kind {kind!r}")


def as_chunk_source(obj, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Coerce ``obj`` to a :class:`ChunkSource`, or return ``None``.

    Accepts a :class:`ChunkSource` (returned as-is), a
    :class:`ColumnarStreamStore` or a store path (wrapped in a
    :class:`StoreChunkSource`).  Anything else — ad-hoc iterables,
    materialized arrays — returns ``None``: those streams have no
    picklable description, so the planner ships bytes instead and
    surfaces the reason in the ingest report.
    """
    if isinstance(obj, ChunkSource):
        return obj
    if isinstance(obj, ColumnarStreamStore):
        return StoreChunkSource(obj.path, chunk_size=chunk_size)
    if isinstance(obj, (str, pathlib.Path)):
        try:
            return StoreChunkSource(obj, chunk_size=chunk_size)
        except (OSError, ValueError):
            return None
    return None
