"""Synthetic workload generators.

The paper evaluates no datasets (it is a theory paper), but its introduction
motivates the algorithms with database query optimization, network traffic
logs, and financial streams.  These generators produce the corresponding
synthetic stream families used by the experiment harness:

* ``uniform_stream`` / ``zipfian_stream`` — classic static workloads;
* ``distinct_ramp_stream`` — fresh items, drives F0/Fp monotonically (the
  worst case for flip number);
* ``planted_heavy_hitters_stream`` — known heavy set over noise floor
  (heavy-hitter experiments);
* ``phased_support_stream`` — disjoint support phases (entropy swings);
* ``bounded_deletion_stream`` — alpha-bounded-deletion streams built to
  satisfy Definition 8.1 *by construction*;
* ``turnstile_wave_stream`` — insert/delete waves with a controlled Fp flip
  number (the Theorem 4.3 class ``S_lambda``).

All generators return ``list[Update]`` and take an explicit numpy
``Generator`` so experiments are reproducible.

For production-scale oblivious replay there are array-native *chunked*
twins (``*_stream_chunks``) that yield :class:`StreamChunk` batches
without ever materialising per-update Python objects — the memory and
throughput foundation of the batched ingestion pipeline.  A chunked
generator with the same seed produces the same *distribution* as its
list twin; ``distinct_ramp_chunks`` is deterministic and produces the
identical stream.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamChunk, Update


def uniform_stream(n: int, m: int, rng: np.random.Generator) -> list[Update]:
    """m insertions drawn uniformly from [n]."""
    items = rng.integers(0, n, size=m)
    return [Update(int(a), 1) for a in items]


def zipfian_stream(
    n: int, m: int, rng: np.random.Generator, s: float = 1.2
) -> list[Update]:
    """m insertions from a Zipf(s) distribution over [n].

    Zipfian data is the canonical "skewed" workload in the streaming
    literature (frequency moments measure exactly this skew, cf. the
    parallel-databases motivation [12] cited in Section 1.1).
    """
    if s <= 0:
        raise ValueError(f"zipf exponent must be positive, got {s}")
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** s
    weights /= weights.sum()
    items = rng.choice(n, size=m, p=weights)
    return [Update(int(a), 1) for a in items]


def distinct_ramp_stream(n: int, m: int) -> list[Update]:
    """Insert items 0, 1, 2, ... — F0 grows by one per update.

    This stream achieves the flip-number upper bound of Corollary 3.5 up to
    constants, so it is the stress workload for both robustification
    frameworks (it forces the maximum number of sketch switches).
    """
    return [Update(t % n, 1) for t in range(m)]


def planted_heavy_hitters_stream(
    n: int,
    m: int,
    rng: np.random.Generator,
    heavy_items: int = 8,
    heavy_mass: float = 0.5,
) -> list[Update]:
    """Noise floor plus ``heavy_items`` planted items carrying ``heavy_mass``.

    The heavy items are 0..heavy_items-1; noise is uniform over the rest.
    With the default split each heavy item receives about
    ``heavy_mass * m / heavy_items`` updates, comfortably above the
    ``eps * |f|_2`` threshold for moderate eps.
    """
    if not 0 < heavy_mass < 1:
        raise ValueError(f"heavy_mass must be in (0,1), got {heavy_mass}")
    if not 0 < heavy_items < n:
        raise ValueError(f"need 0 < heavy_items < n, got {heavy_items}")
    out: list[Update] = []
    for _ in range(m):
        if rng.random() < heavy_mass:
            out.append(Update(int(rng.integers(0, heavy_items)), 1))
        else:
            out.append(Update(int(rng.integers(heavy_items, n)), 1))
    return out


def phased_support_stream(
    n: int, m: int, rng: np.random.Generator, phases: int = 4
) -> list[Update]:
    """Phases with disjoint supports and varying skew.

    Early phases hammer a few items (low entropy), later phases spread
    uniformly (high entropy): the stream sweeps the entropy range, which is
    the regime the robust entropy tracker must follow.
    """
    if phases < 1:
        raise ValueError(f"phases must be >= 1, got {phases}")
    out: list[Update] = []
    block = n // phases
    per_phase = m // phases
    for ph in range(phases):
        lo = ph * block
        width = max(1, int(block * (ph + 1) / phases))
        items = lo + rng.integers(0, width, size=per_phase)
        out.extend(Update(int(a), 1) for a in items)
    return out


def bounded_deletion_stream(
    n: int,
    m: int,
    rng: np.random.Generator,
    alpha: float = 4.0,
    p: float = 1.0,
) -> list[Update]:
    """An Fp alpha-bounded-deletion stream (Definition 8.1), by construction.

    Each step is a unit insert of a random item, or — when doing so provably
    preserves ``F_p(f) >= F_p(h) / alpha`` — a unit delete of an item with
    positive frequency.  ``h`` is the absolute-value stream's vector, which
    the generator tracks alongside ``f``.  Deletions are attempted with the
    maximum sustainable rate for the requested alpha.
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    f = FrequencyVector()
    h = FrequencyVector()
    # Fraction of deletes that keeps F1(f) ~ F1(h)/alpha in steady state:
    # inserts I, deletes D: (I-D) >= (I+D)/alpha  =>  D/I <= (a-1)/(a+1).
    delete_rate = (alpha - 1.0) / (alpha + 1.0) * 0.9
    out: list[Update] = []
    positive: list[int] = []  # items known to have f_i > 0 (may be stale)
    for _ in range(m):
        do_delete = positive and rng.random() < delete_rate
        if do_delete:
            # Pick a random positive item; drop stale entries lazily.
            while positive:
                idx = int(rng.integers(0, len(positive)))
                cand = positive[idx]
                if f[cand] > 0:
                    break
                positive[idx] = positive[-1]
                positive.pop()
            else:
                do_delete = False
            if do_delete:
                # Verify the alpha property survives this deletion.
                fi = f[cand]
                new_fp = f.fp(p) - abs(fi) ** p + abs(fi - 1) ** p
                new_hp = h.fp(p) - h[cand] ** p + (h[cand] + 1) ** p
                if new_fp >= 1.0 and new_fp * alpha >= new_hp:
                    f.update(cand, -1)
                    h.update(cand, 1)
                    out.append(Update(cand, -1))
                    continue
        item = int(rng.integers(0, n))
        f.update(item, 1)
        h.update(item, 1)
        positive.append(item)
        out.append(Update(item, 1))
    return out


# ----------------------------------------------------------------------
# Chunked (array-native) generators for batched oblivious replay
# ----------------------------------------------------------------------

def _chunk_sizes(m: int, chunk_size: int) -> Iterator[int]:
    if m < 0:
        raise ValueError(f"stream length must be >= 0, got {m}")
    if chunk_size < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
    remaining = m
    while remaining > 0:
        take = min(chunk_size, remaining)
        yield take
        remaining -= take


def uniform_stream_chunks(
    n: int, m: int, rng: np.random.Generator, chunk_size: int = 65536
) -> Iterator[StreamChunk]:
    """m uniform insertions, yielded as arrays ``chunk_size`` at a time."""
    for take in _chunk_sizes(m, chunk_size):
        yield StreamChunk.insertions(rng.integers(0, n, size=take))


def zipfian_stream_chunks(
    n: int,
    m: int,
    rng: np.random.Generator,
    s: float = 1.2,
    chunk_size: int = 65536,
) -> Iterator[StreamChunk]:
    """m Zipf(s) insertions as chunks (weights computed once, not per chunk)."""
    if s <= 0:
        raise ValueError(f"zipf exponent must be positive, got {s}")
    weights = 1.0 / np.arange(1, n + 1, dtype=float) ** s
    weights /= weights.sum()
    for take in _chunk_sizes(m, chunk_size):
        yield StreamChunk.insertions(rng.choice(n, size=take, p=weights))


def distinct_ramp_chunks(
    n: int, m: int, chunk_size: int = 65536
) -> Iterator[StreamChunk]:
    """The :func:`distinct_ramp_stream` updates, chunked; identical stream."""
    produced = 0
    for take in _chunk_sizes(m, chunk_size):
        yield StreamChunk.insertions(
            np.arange(produced, produced + take, dtype=np.int64) % n
        )
        produced += take


#: Spec-shippable chunked generators, by name: the registry
#: :class:`repro.streams.sources.GeneratorChunkSource` materializes
#: through.  Every entry takes ``(n, m, [rng,] chunk_size=..., **params)``
#: and regenerates bit-for-bit from the same seed regardless of where it
#: runs — that is the property that lets the process engine ship the
#: spec instead of the bytes.
CHUNKED_GENERATORS = {
    "uniform": uniform_stream_chunks,
    "zipfian": zipfian_stream_chunks,
    "distinct-ramp": distinct_ramp_chunks,
}

#: Registry entries that are deterministic (no RNG argument).
SEEDLESS_CHUNKED = frozenset({"distinct-ramp"})


def turnstile_wave_stream(
    n: int, m: int, rng: np.random.Generator, waves: int = 4
) -> list[Update]:
    """Insert/delete waves producing ~2*waves Fp flips.

    Each wave inserts a fresh block of items then deletes most of it again,
    so any Fp moment rises and collapses ``waves`` times.  This is the hard
    turnstile instance of [25] cited after Theorem 4.3 (flip number about
    twice the insertion-only one per wave), and the class ``S_lambda`` that
    Theorem 4.3's algorithm is promised.
    """
    if waves < 1:
        raise ValueError(f"waves must be >= 1, got {waves}")
    out: list[Update] = []
    per_wave = m // waves
    ins = per_wave // 2
    for w in range(waves):
        base = (w * ins) % max(1, n - ins)
        inserted: list[int] = []
        for j in range(ins):
            item = base + (j % max(1, min(ins, n - base)))
            inserted.append(item)
            out.append(Update(item, 1))
        dels = min(per_wave - ins, max(0, len(inserted) - 1))
        order = rng.permutation(len(inserted))[:dels]
        out.extend(Update(inserted[int(k)], -1) for k in order)
    return out
