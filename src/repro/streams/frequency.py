"""Exact frequency vectors — the ground truth the adversarial game checks.

``FrequencyVector`` maintains the sparse exact vector ``f`` of a stream and
answers every query the paper studies: ``F0`` (distinct elements), ``Fp``
moments, ``Lp`` norms, Shannon entropy, and heavy hitters.  The adversarial
game (:mod:`repro.adversary.game`) uses it as the referee; the deterministic
baselines in :mod:`repro.sketches.exact` wrap it as an "algorithm" whose
space grows as Omega(n) — the Table 1 deterministic column.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np


class FrequencyVector:
    """Sparse exact frequency vector with incremental moment maintenance.

    Maintains ``F1 = sum_i f_i`` incrementally and everything else on
    demand.  Deletions are allowed (turnstile); queries on an all-zero
    vector return the paper's conventions (``F0 = 0``, ``H = 0``).
    """

    def __init__(self) -> None:
        self._f: defaultdict[int, int] = defaultdict(int)
        self._f1_signed = 0  # sum of deltas (equals F1 for non-negative f)
        self._updates = 0

    def update(self, item: int, delta: int = 1) -> None:
        """Apply one stream update ``(item, delta)``."""
        if delta == 0:
            return
        new = self._f[item] + delta
        if new == 0:
            del self._f[item]
        else:
            self._f[item] = new
        self._f1_signed += delta
        self._updates += 1

    def update_batch(self, items, deltas=None) -> None:
        """Apply a chunk of updates aggregated per distinct item.

        The final vector is identical to applying the chunk per item (the
        frequency vector is order-insensitive); ``updates_processed``
        counts the chunk's individual updates, matching the per-item loop
        for nonzero deltas.
        """
        items = np.ascontiguousarray(items, dtype=np.int64)
        if len(items) == 0:
            return
        if deltas is None:
            deltas = np.ones(items.shape, dtype=np.int64)
        else:
            deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        nonzero = deltas != 0
        items, deltas = items[nonzero], deltas[nonzero]
        if len(items) == 0:
            return
        unique, inverse = np.unique(items, return_inverse=True)
        summed = np.bincount(inverse, weights=deltas, minlength=len(unique))
        f = self._f
        for item, delta in zip(unique.tolist(), summed.astype(np.int64).tolist()):
            if delta == 0:
                continue  # cancelling updates within the chunk: no net effect
            new = f[item] + delta
            if new == 0:
                del f[item]
            else:
                f[item] = new
        self._f1_signed += int(deltas.sum())
        self._updates += int(len(items))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __getitem__(self, item: int) -> int:
        return self._f.get(item, 0)

    @property
    def support(self) -> set[int]:
        """Items with nonzero frequency."""
        return set(self._f.keys())

    @property
    def support_size(self) -> int:
        return len(self._f)

    @property
    def updates_processed(self) -> int:
        return self._updates

    def f0(self) -> int:
        """Number of distinct elements ``|{i : f_i != 0}|``."""
        return len(self._f)

    def f1(self) -> int:
        """``sum_i |f_i|`` (equals the signed sum when f is non-negative)."""
        return sum(abs(v) for v in self._f.values())

    def fp(self, p: float) -> float:
        """The moment ``F_p = sum_i |f_i|^p`` with the convention 0^0 = 0."""
        if p < 0:
            raise ValueError(f"p must be >= 0, got {p}")
        if p == 0:
            return float(len(self._f))
        return float(sum(abs(v) ** p for v in self._f.values()))

    def lp(self, p: float) -> float:
        """The norm ``|f|_p = F_p^(1/p)`` (p > 0)."""
        if p <= 0:
            raise ValueError(f"norm order p must be > 0, got {p}")
        return self.fp(p) ** (1.0 / p)

    def linf(self) -> int:
        """``|f|_inf`` — what the model bounds by M."""
        if not self._f:
            return 0
        return max(abs(v) for v in self._f.values())

    def shannon_entropy(self, base: float = 2.0) -> float:
        """Empirical Shannon entropy ``H(f) = -sum p_i log p_i``.

        ``p_i = |f_i| / |f|_1``; an all-zero vector has entropy 0 by
        convention.
        """
        f1 = self.f1()
        if f1 == 0:
            return 0.0
        h = 0.0
        for v in self._f.values():
            pi = abs(v) / f1
            h -= pi * math.log(pi)
        return h / math.log(base)

    def renyi_entropy(self, alpha: float, base: float = 2.0) -> float:
        """alpha-Renyi entropy ``H_a = log(|x|_a^a / |x|_1^a) / (1 - a)``."""
        if alpha <= 0 or alpha == 1.0:
            raise ValueError(f"Renyi order must be positive and != 1, got {alpha}")
        f1 = self.f1()
        if f1 == 0:
            return 0.0
        fa = self.fp(alpha)
        return (math.log(fa) - alpha * math.log(f1)) / ((1 - alpha) * math.log(base))

    def heavy_hitters(self, threshold: float) -> set[int]:
        """Items with ``|f_i| >= threshold``."""
        return {i for i, v in self._f.items() if abs(v) >= threshold}

    def l2_heavy_hitters(self, eps: float) -> set[int]:
        """The L2 guarantee's target set: ``|f_i| >= eps * |f|_2``."""
        return self.heavy_hitters(eps * self.lp(2))

    def merge(self, other: "FrequencyVector") -> None:
        """Add another vector's frequencies (``f + g`` coordinate-wise).

        The merged vector equals the one a serial pass over both streams
        would produce; used by the engine's per-partial sharding of the
        exact baselines.
        """
        f = self._f
        for item, value in other._f.items():
            new = f[item] + value
            if new == 0:
                del f[item]
            else:
                f[item] = new
        self._f1_signed += other._f1_signed
        self._updates += other._updates

    def copy(self) -> "FrequencyVector":
        out = FrequencyVector()
        out._f = defaultdict(int, self._f)
        out._f1_signed = self._f1_signed
        out._updates = self._updates
        return out

    def to_dict(self) -> dict[int, int]:
        return dict(self._f)

    def __len__(self) -> int:
        return len(self._f)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FrequencyVector(support={len(self._f)}, f1={self.f1()})"
