"""Stream validators — check model conformance before an experiment runs.

The theorems are promises about streams in a given class (insertion-only,
|f|_inf <= M, alpha-bounded deletion, lambda-bounded flip number).  These
validators verify a concrete stream is actually in the class, so experiment
results can't be silently invalidated by a generator bug.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.streams.frequency import FrequencyVector
from repro.streams.model import StreamParameters, Update


class StreamValidationError(ValueError):
    """A stream violated the model class it was claimed to be in."""


def validate_insertion_only(updates: Iterable[Update]) -> None:
    """Raise unless every delta is strictly positive (Section 2)."""
    for t, u in enumerate(updates):
        if u.delta <= 0:
            raise StreamValidationError(
                f"update {t} has delta={u.delta}; insertion-only requires > 0"
            )


def validate_parameters(updates: Iterable[Update], params: StreamParameters) -> None:
    """Check items in [0, n), |f^(t)|_inf <= M at every prefix, length <= m."""
    f = FrequencyVector()
    count = 0
    for t, u in enumerate(updates):
        params.validate_item(u.item)
        f.update(u.item, u.delta)
        if abs(f[u.item]) > params.M:
            raise StreamValidationError(
                f"|f_{u.item}| = {abs(f[u.item])} > M = {params.M} at step {t}"
            )
        count += 1
    if count > params.m:
        raise StreamValidationError(f"stream length {count} exceeds m = {params.m}")


def check_bounded_deletion(
    updates: Sequence[Update], alpha: float, p: float = 1.0
) -> bool:
    """Does the stream satisfy Definition 8.1 at every prefix?

    ``F_p(f^(t)) >= F_p(h^(t)) / alpha`` where h is the absolute-value
    stream.  The all-zero prefix trivially satisfies it.
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    f = FrequencyVector()
    h = FrequencyVector()
    for u in updates:
        f.update(u.item, u.delta)
        h.update(u.item, abs(u.delta))
        hp = h.fp(p)
        if hp > 0 and f.fp(p) * alpha < hp * (1 - 1e-12):
            return False
    return True


def validate_bounded_deletion(
    updates: Sequence[Update], alpha: float, p: float = 1.0
) -> None:
    """Raise unless the stream is Fp alpha-bounded-deletion."""
    if not check_bounded_deletion(updates, alpha, p):
        raise StreamValidationError(
            f"stream violates the F_{p} {alpha}-bounded-deletion property"
        )


def function_trajectory(updates: Iterable[Update], fn) -> list[float]:
    """Evaluate ``fn(f^(t))`` after every prefix; fn takes a FrequencyVector.

    Used by the flip-number experiments: combine with
    :func:`repro.core.flip_number.measured_flip_number`.
    """
    f = FrequencyVector()
    out: list[float] = []
    for u in updates:
        f.update(u.item, u.delta)
        out.append(float(fn(f)))
    return out
