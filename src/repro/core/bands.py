"""Band policies: the publish-band decision of every switching protocol.

Each robustness construction in the paper runs the same loop — feed all
copies, compare the published value against the current estimate, and
burn/rotate a copy when the comparison fails — and differs only in *how*
the comparison and the re-published value are computed:

* Algorithm 1 / Theorem 4.1 (F0, Fp, L2): the **multiplicative** band
  ``published in (1 ± eps/2) * estimate`` with ``[.]_{eps/2}`` rounding
  (powers of ``1 + eps/2``);
* Theorem 7.3 (entropy): the **additive** band
  ``|published - estimate| <= eps/2`` with rounding to multiples of
  ``eps/2`` (the multiplicative machinery applied to ``g = 2^H`` and
  expressed in the exponent);
* Theorem 6.5 (heavy hitters): the **epoch** band — the stateful
  epsilon-rounding of Definition 3.1 applied to the robust L2 estimate,
  whose re-publications partition time into the ``Theta(eps^-1 log n)``
  epochs of Corollary 3.5.

A :class:`BandPolicy` owns exactly those three rules — the band test,
the published-value rounding, and the bisect-comparability contract —
and nothing else: copy lifecycle lives in :mod:`repro.core.copies`, the
chunked/sharded drive loop in :mod:`repro.core.sketch_switching` and
:mod:`repro.engine.executor`.  A new robustness scheme (DP aggregation a
la Hassidim et al. 2020, importance sampling) is one new policy, not a
new hand-rolled loop.

Policies are small frozen dataclasses: hashable, picklable (the process
engine ships them to workers inside scan commands), and comparable.

The *bisectable* contract
-------------------------
Crossing chunks are resolved by snapshot bisection of the active copy,
which treats an in-band cell boundary as a clean prefix.
``bisectable=True`` promises that treatment is *exact*: once a band
check has passed in band, the first later crossing within an oblivious
run is unique and one-sided, so bisection pins the per-item switch
position.  This holds for the multiplicative and epoch bands over the
monotone norm-like quantities they are applied to (the band edges only
move toward the published value).  The additive band over entropy is
**not** bisectable — H oscillates — so the same treatment is instead the
documented *coalescing* rule at every granularity the protocol checks
the band (chunk boundaries and bisect cells alike): a transient exit
that fully reverts between two checks is coalesced away, while
trajectories monotone between checks still resolve per-item exactly
(the band is an interval).  Oblivious replay accepts this; the
adversarial game always runs per item.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.rounding import round_to_power


def relative_within(published: float, estimate: float, width: float) -> bool:
    """Is ``published`` inside ``(1 ± width)`` of ``estimate`` (sign-aware)?

    The single comparison underlying the multiplicative and epoch bands
    (and Definition 3.1's stateful rounding).  ``sorted`` keeps the test
    correct for negative estimates.
    """
    lo, hi = sorted(((1 - width) * estimate, (1 + width) * estimate))
    return lo <= published <= hi


class BandPolicy(abc.ABC):
    """The switch predicate + publication rule of one robustness scheme."""

    #: Short policy name, surfaced by shard plans and ingest reports.
    name: str = "band"

    #: Whether bisection's clean-prefix treatment is exact (see the
    #: module docstring for the contract); when False it is the
    #: coalescing rule applied at bisect-cell granularity.
    bisectable: bool = False

    @abc.abstractmethod
    def within(self, published: float, estimate: float) -> bool:
        """Does the published value still cover the fresh estimate?"""

    def crossed(self, published: float, estimate: float) -> bool:
        """The switch predicate: has the estimate left the publish band?"""
        return not self.within(published, estimate)

    @abc.abstractmethod
    def publish(self, estimate: float) -> float:
        """Round a fresh estimate for publication (information hiding)."""

    def publish_aggregate(self, estimate: float) -> float:
        """Rounding for *privately aggregated* publications.

        The DP probe discipline publishes a noisy aggregate over all
        copies; rounding is free post-processing under DP and keeps the
        flip-number accounting identical to the active-copy path, so the
        default is the band's own :meth:`publish`.  Bands whose rounding
        assumes a sign (the multiplicative/epoch power rounding over
        monotone non-negative quantities) clamp the Laplace tail that
        can push a near-zero aggregate negative.
        """
        return self.publish(estimate)


@dataclass(frozen=True)
class MultiplicativeBand(BandPolicy):
    """Algorithm 1's band: ``published in (1 ± eps/2) estimate``.

    Publications are ``[estimate]_{eps/2}`` — the nearest signed power of
    ``(1 + eps/2)`` (Definition 3.7), with ``[0] = 0``.
    """

    eps: float
    name = "multiplicative"
    bisectable = True

    def __post_init__(self):
        if not 0 < self.eps < 1:
            raise ValueError(f"eps must be in (0,1), got {self.eps}")

    def within(self, published: float, estimate: float) -> bool:
        return relative_within(published, estimate, self.eps / 2)

    def publish(self, estimate: float) -> float:
        if estimate == 0:
            return 0.0
        return round_to_power(estimate, self.eps / 2)

    def publish_aggregate(self, estimate: float) -> float:
        """Power rounding with the negative Laplace tail clamped to 0.

        The multiplicative band is applied to monotone non-negative
        quantities (F0, Fp, L2); a noisy aggregate that lands below zero
        carries no signal and publishes as 0 rather than as a signed
        power.
        """
        return self.publish(max(0.0, estimate))


@dataclass(frozen=True)
class AdditiveBand(BandPolicy):
    """Theorem 7.3's band: ``|published - estimate| <= eps/2``.

    Publications round to multiples of ``eps/2``; additive eps on H is
    multiplicative ``2^(±eps)`` on ``g = 2^H``, so the flip-number bound
    of Proposition 7.2 carries over unchanged.  Entropy is not monotone,
    hence ``bisectable=False``: crossing-chunk bisection coalesces
    transient excursions at cell granularity (the module docstring's
    contract) instead of being per-item exact.
    """

    eps: float
    name = "additive"
    bisectable = False

    def __post_init__(self):
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")

    def within(self, published: float, estimate: float) -> bool:
        return abs(published - estimate) <= self.eps / 2

    def publish(self, estimate: float) -> float:
        step = self.eps / 2
        return round(estimate / step) * step


@dataclass(frozen=True)
class EpochBand(BandPolicy):
    """Theorem 6.5's epoch clock: Definition 3.1 rounding of the L2 track.

    ``within`` uses the full ``(1 ± eps)`` width and ``publish`` rounds
    to powers of ``(1 + eps)`` — each re-publication opens a new epoch,
    and Corollary 3.5 bounds the epoch count by the flip number.  The
    first observation always publishes (there is no epoch zero): callers
    represent that with ``published=None`` and :meth:`crossed` treats it
    as an immediate crossing.
    """

    eps: float
    name = "epoch"
    bisectable = True

    def __post_init__(self):
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")

    def within(self, published: float | None, estimate: float) -> bool:
        if published is None:
            return False
        return relative_within(published, estimate, self.eps)

    def publish(self, estimate: float) -> float:
        if estimate == 0:
            return 0.0
        return round_to_power(estimate, self.eps)

    def publish_aggregate(self, estimate: float) -> float:
        """Same clamp as the multiplicative band (monotone L2 track)."""
        return self.publish(max(0.0, estimate))


#: The Section 6 construction tracks the L2 norm; alias for discoverability.
L2Band = EpochBand
