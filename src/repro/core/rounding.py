"""epsilon-rounding (Definitions 3.1 and 3.7).

The rounding technique is the information-hiding half of both
robustification frameworks: publishing only powers of ``(1 + eps)``, and
only *changing* the published value when forced, limits what the adversary
learns about the algorithm's randomness from its outputs.

``round_to_power(x, eps)`` implements ``[x]_eps`` — the signed power of
``(1 + eps)`` closest to x in multiplicative terms (with ``[0]_eps = 0``).
:class:`RoundedSequence` implements the stateful epsilon-rounding of an
output sequence: keep the previous published value while it remains a
``(1 ± eps)`` approximation of the raw value, otherwise re-round.
"""

from __future__ import annotations

import math


def round_to_power(x: float, eps: float) -> float:
    """The value ``[x]_eps``: nearest signed power of (1+eps), or 0.

    For x > 0 returns ``(1+eps)^l`` with integer l minimizing
    ``max(y/x, x/y)``; for x < 0 returns ``-[-x]_eps``; ``[0]_eps = 0``.
    The result is always a ``(1 + eps/2)``-multiplicative approximation
    of x (Section 3).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if x == 0:
        return 0.0
    sign = 1.0 if x > 0 else -1.0
    mag = abs(x)
    log_step = math.log1p(eps)
    ell = mag and math.log(mag) / log_step
    lo = math.floor(ell)
    hi = lo + 1
    y_lo = (1.0 + eps) ** lo
    y_hi = (1.0 + eps) ** hi
    # Choose the candidate with smaller multiplicative distance.
    if max(y_lo / mag, mag / y_lo) <= max(y_hi / mag, mag / y_hi):
        return sign * y_lo
    return sign * y_hi


def num_rounded_values(eps: float, value_range: float) -> int:
    """How many values ``[x]_eps`` can take for |x| in [1/T, T] (plus zero).

    This is the ``O(eps^-1 log T)`` count that Lemma 3.8's union bound
    multiplies per flip: powers of (1+eps) between 1/T and T, both signs,
    and zero.
    """
    if value_range < 1:
        raise ValueError(f"value range T must be >= 1, got {value_range}")
    if value_range == 1:
        return 3
    powers = 2 * math.ceil(math.log(value_range) / math.log1p(eps)) + 1
    return 2 * powers + 1


class RoundedSequence:
    """Stateful epsilon-rounding of a real output sequence (Definition 3.1).

    ``push(y)`` returns the published value: the previous published value
    if it is still within ``(1 ± eps)`` of y, else ``[y]_eps``.
    ``changes`` counts how many times the published value moved — the
    quantity Lemma 3.3 bounds by the flip number.
    """

    def __init__(self, eps: float):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.eps = eps
        self._current: float | None = None
        self.changes = 0

    @property
    def current(self) -> float | None:
        """Last published value (None before the first push)."""
        return self._current

    def push(self, y: float) -> float:
        if self._current is None:
            self._current = round_to_power(y, self.eps)
            self.changes += 1
            return self._current
        if self._within(self._current, y):
            return self._current
        self._current = round_to_power(y, self.eps)
        self.changes += 1
        return self._current

    def _within(self, published: float, y: float) -> bool:
        """Is ``published`` in ``[(1-eps) y, (1+eps) y]`` (sign-aware)?"""
        lo, hi = sorted(((1.0 - self.eps) * y, (1.0 + self.eps) * y))
        return lo <= published <= hi
