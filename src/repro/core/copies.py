"""Copy lifecycle for the switching protocols: allocate, burn, restart.

Every switching construction pays its robustness budget in *copies* —
independent instances of a static sketch, one active at a time.  The
:class:`CopyManager` owns that lifecycle and nothing else:

* **allocation** — ``copies`` instances from a factory, seeded through
  one ``SeedSequence.spawn`` pass so the independence assumption of
  Lemma 3.6 holds uniformly (plus one extra child generator kept as the
  fresh-randomness pool for replacements).  :meth:`CopyManager.grouped`
  allocates *heterogeneous copy groups* instead — contiguous index
  ranges each built by its own factory, one seeding pass across all of
  them — which is what the difference-estimator ladder
  (:mod:`repro.core.ladder`) uses: cheap difference-estimator tiers in
  the low groups, the strong checkpoint sketches in the last.  Grouped
  sets have no burn order (``advance`` raises); their lifecycle is
  per-group :meth:`refresh`, driven by a group-aware discipline;
* **burn-and-advance** — plain Algorithm 1 mode walks forward through
  the copy list and raises :class:`SketchExhaustedError` (or clamps)
  when the flip budget runs out; restart mode (Theorem 4.1) treats the
  list as a ring, replacing each burned slot with a freshly seeded
  instance;
* **replacement seeding** — :meth:`replacement_rng` derives each
  restarted copy's generator from the fresh pool with the same
  ``spawn_rngs`` derivation that seeded the initial copies.  Both the
  serial estimator and the engine's sharded drivers draw replacements
  from here *on the coordinator*, which is what makes restarted copies —
  and therefore published outputs — bit-for-bit identical across
  execution modes;
* **stacked copy groups** — homogeneous groups of a stackable sketch
  (CountMin, CountSketch, AMS) fuse their array state into one
  :class:`~repro.sketches.stacking.SketchStack` per group: one stacked
  array for all k copies, one shared per-chunk hash pass, one
  vectorized ``query_all``.  The original sketch objects stay installed
  in :attr:`CopyManager.sketches` as *templates* whose array attributes
  are views into the stack, so per-item updates and individual queries
  keep working unchanged, and every result is bit-for-bit identical to
  the per-object path.  Any code that swaps a copy object while stacks
  are live must go through :meth:`CopyManager.install`.

The band decision itself lives in :mod:`repro.core.bands`; the drive
loop in :mod:`repro.core.sketch_switching`.  :class:`LocalCopyBackend`
is the in-process realisation of the copy-backend interface the drive
loop talks to (the process engine provides the forked-worker twin).
"""

from __future__ import annotations

import numpy as np

from repro.core.ladder import require_count
from repro.obs import (
    NULL_TELEMETRY,
    CopyBurnEvent,
    CopyRetireEvent,
    RingAdvanceEvent,
)
from repro.sketches.base import Sketch, SketchFactory, spawn_rngs


class SketchExhaustedError(RuntimeError):
    """All sketch copies were burned: the flip-number budget was exceeded.

    Under the theorems' preconditions this happens only with probability
    delta; in experiments it signals an undersized ``copies`` parameter.
    """


class CopyManager:
    """Owns the copies of one switching estimator and their lifecycle.

    Parameters
    ----------
    factory:
        Builds one independent static tracker per call.
    copies:
        Instance count: the flip-number bound in plain mode, or the
        Theorem 4.1 ring size in restart mode.
    rng:
        Seeds the copies (and the fresh-randomness replacement pool).
    restart:
        Ring mode: burned slots are replaced instead of abandoned.
    on_exhausted:
        Plain-mode behaviour when every copy is burned: ``"raise"``
        (default) or ``"clamp"`` (keep the last copy active).
    stacked:
        Whether eligible homogeneous groups fuse their array state into
        stacked copy groups (the default).  ``False`` forces the
        per-object path — the bit-for-bit twin the equivalence suite and
        the bench gates compare against.
    """

    def __init__(
        self,
        factory: SketchFactory,
        copies: int,
        rng: np.random.Generator,
        restart: bool = False,
        on_exhausted: str = "raise",
        stacked: bool = True,
    ):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if on_exhausted not in ("raise", "clamp"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.factory = factory
        self.restart = restart
        self.on_exhausted = on_exhausted
        #: Telemetry hub for the whole switching stack: the estimator,
        #: the disciplines, and the ladder all bind to this manager, so
        #: installing an enabled bundle here makes every protocol seam
        #: observable.  Defaults to the no-op singleton.
        self.telemetry = NULL_TELEMETRY
        rngs = spawn_rngs(rng, copies + 1)
        self._fresh_rng = rngs[copies]
        self.sketches: list[Sketch] = [factory(r) for r in rngs[:copies]]
        #: Contiguous (lo, hi) index range per copy group; one group for
        #: the homogeneous manager, tiers-then-strong for grouped sets.
        self.group_slices: tuple[tuple[int, int], ...] = ((0, copies),)
        self._group_factories: tuple[SketchFactory, ...] = (factory,)
        #: Monotone activation counter; the active slot is ``rho % count``.
        self.rho = 0
        self._stack_enabled = stacked
        self._build_stacks()

    @classmethod
    def grouped(
        cls,
        groups,
        rng: np.random.Generator,
        on_exhausted: str = "raise",
        stacked: bool = True,
    ) -> "CopyManager":
        """Allocate heterogeneous copy groups: ``[(factory, count), ...]``.

        All copies across all groups are seeded through **one**
        ``spawn_rngs`` pass (plus the shared fresh pool), so the
        Lemma 3.6 independence argument is uniform across groups exactly
        as it is across a homogeneous set.  Groups occupy contiguous
        index ranges in declaration order; the convention of the
        difference ladder is cheap tiers first, strong group last.
        Grouped sets have no burn order — :meth:`advance` raises — and
        no restart ring; their lifecycle is per-group :meth:`refresh`.
        """
        specs = list(groups)
        if not specs:
            raise ValueError("need at least one copy group")
        for g, (_, count) in enumerate(specs):
            require_count(f"group {g} copy count", count)
        specs = [(factory, int(count)) for factory, count in specs]
        total = sum(count for _, count in specs)
        self = cls.__new__(cls)
        self.restart = False
        if on_exhausted not in ("raise", "clamp"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.on_exhausted = on_exhausted
        self.telemetry = NULL_TELEMETRY
        rngs = spawn_rngs(rng, total + 1)
        self._fresh_rng = rngs[total]
        self.sketches = []
        slices = []
        start = 0
        for factory, count in specs:
            self.sketches.extend(
                factory(r) for r in rngs[start:start + count]
            )
            slices.append((start, start + count))
            start += count
        self.group_slices = tuple(slices)
        self._group_factories = tuple(factory for factory, _ in specs)
        #: The strong (last) group's factory; ungrouped surfaces that
        #: build whole-set replacements must go through `factory_for`.
        self.factory = self._group_factories[-1]
        self.rho = 0
        self._stack_enabled = stacked
        self._build_stacks()
        return self

    # -- stacked copy groups --------------------------------------------

    def _build_stacks(self) -> None:
        """Fuse each eligible homogeneous group into a sketch stack.

        A group qualifies when it has at least two copies of one
        stackable sketch class; ``make_stack`` adopts the copies' arrays
        into one stacked block and rebinds them as plane views.  The
        copies stay in :attr:`sketches` as templates.
        """
        self.stacks: dict[int, "SketchStack"] = {}
        self._plane_of: dict[int, tuple[int, int]] = {}
        if not self._stack_enabled:
            return
        for g, (lo, hi) in enumerate(self.group_slices):
            if hi - lo < 2:
                continue
            group = self.sketches[lo:hi]
            cls = type(group[0])
            if not getattr(cls, "stackable", False):
                continue
            if any(type(s) is not cls for s in group):
                continue
            stack = cls.make_stack(group)
            if stack is None:
                continue
            self.stacks[g] = stack
            for plane, idx in enumerate(range(lo, hi)):
                self._plane_of[idx] = (g, plane)

    def stack_plan(self, indices):
        """Split copy indices into per-stack plane runs plus leftovers.

        Returns ``(parts, rest)``: ``parts`` is a list of
        ``(stack, planes, positions)`` triples — ``positions`` being the
        offsets of those copies inside ``indices`` so callers can
        reassemble per-copy results in request order — and ``rest`` the
        ``(position, index)`` pairs served by the object path.
        """
        parts: dict[int, tuple] = {}
        rest: list[tuple[int, int]] = []
        for pos, idx in enumerate(indices):
            hit = self._plane_of.get(idx)
            if hit is None:
                rest.append((pos, idx))
                continue
            g, plane = hit
            entry = parts.get(g)
            if entry is None:
                entry = parts[g] = (self.stacks[g], [], [])
            entry[1].append(plane)
            entry[2].append(pos)
        return list(parts.values()), rest

    def install(self, idx: int, sketch: Sketch) -> None:
        """Install ``sketch`` as the copy at ``idx``, stack-aware.

        The single sanctioned swap point while stacks are live: the
        incoming sketch's array state is copied into its plane and its
        array attribute rebound to the plane view, keeping template and
        stack coherent.  Falls back to a plain list assignment for
        unstacked copies.
        """
        hit = self._plane_of.get(idx)
        if hit is not None:
            g, plane = hit
            self.stacks[g].install(plane, sketch)
        self.sketches[idx] = sketch

    def unstack(self) -> None:
        """Detach every stack, returning all copies to owned arrays.

        The process engine calls this before forking so each worker
        inherits plain per-object copies of its shard; :meth:`restack`
        rebuilds the stacks after the workers' results are collected.
        """
        for stack in self.stacks.values():
            stack.detach()
        self.stacks = {}
        self._plane_of = {}

    def restack(self) -> None:
        """Rebuild stacks over the current copies (no-op if already live)."""
        if not self.stacks:
            self._build_stacks()

    @property
    def count(self) -> int:
        return len(self.sketches)

    @property
    def group_count(self) -> int:
        return len(self.group_slices)

    def group_indices(self, group: int) -> tuple[int, ...]:
        """The contiguous copy indices of one group."""
        lo, hi = self.group_slices[group]
        return tuple(range(lo, hi))

    def factory_for(self, idx: int) -> SketchFactory:
        """The factory that builds (and rebuilds) the copy at ``idx``."""
        if not 0 <= idx < len(self.sketches):
            raise IndexError(f"copy index {idx} out of range")
        for (lo, hi), factory in zip(self.group_slices,
                                     self._group_factories):
            if lo <= idx < hi:
                return factory
        return self.factory  # pragma: no cover - slices always cover

    @property
    def active_index(self) -> int:
        return self.rho % len(self.sketches)

    @property
    def active(self) -> Sketch:
        return self.sketches[self.active_index]

    def replacement_rng(self) -> np.random.Generator:
        """Derive the next restarted copy's RNG from the fresh pool.

        Uses the same ``spawn_rngs`` derivation that seeded the initial
        copies, keeping the independence argument (Lemma 3.6) uniform
        across original and restarted instances.  The engine's parallel
        driver calls this on the coordinator so the RNG sequence — and
        therefore every restarted copy — is bit-for-bit the serial one.
        """
        return spawn_rngs(self._fresh_rng, 1)[0]

    def estimate_all(self, indices=None) -> np.ndarray:
        """Query a set of copies (default: all), in index order.

        The probe surface of the aggregate disciplines: the DP framework
        reads every copy's estimate per decision instead of the active
        one's.  Returns a float64 array; stacked groups answer with one
        vectorized ``query_all`` reduction instead of k Python calls
        (bit-for-bit the same values).  In-process only; the engines
        read sharded copies through their backend's probe ops.
        """
        if indices is None:
            indices = range(len(self.sketches))
        idxs = list(indices)
        if not self.stacks:
            return np.array(
                [self.sketches[i].query() for i in idxs], dtype=np.float64
            )
        out = np.empty(len(idxs), dtype=np.float64)
        parts, rest = self.stack_plan(idxs)
        for stack, planes, positions in parts:
            if len(planes) > 1:
                out[positions] = stack.query_all()[planes]
            else:
                out[positions[0]] = stack.sketches[planes[0]].query()
        for pos, idx in rest:
            out[pos] = self.sketches[idx].query()
        return out

    def retire(self, idx: int, replace=None) -> None:
        """Retire one copy: replace it with a freshly seeded instance.

        The DP disciplines' lifecycle primitive — unlike
        :meth:`advance`, retirement does not move the active cursor or
        consume the plain-mode flip budget; the slot is simply reborn.
        ``replace(index, rng)`` installs the rebuilt copy wherever it
        lives (the engines pass their backend's replace); the RNG is
        always derived here, on the coordinator.
        """
        rng = self.replacement_rng()
        if replace is None:
            self.install(idx, self.factory_for(idx)(rng))
        else:
            replace(idx, rng)
        tele = self.telemetry
        if tele.enabled:
            tele.emit(CopyRetireEvent(index=idx))
            tele.metrics.counter(
                "copies_retired_total", "copies reborn via retire/refresh"
            ).inc()

    def refresh(self, indices=None, replace=None) -> None:
        """Retire a set of copies (default: all), in index order.

        Used by :class:`~repro.core.disciplines.PrivateAggregateDiscipline`
        when the sparse-vector budget is exhausted: the whole copy set is
        reborn and the guarantee window restarts.  Deterministic across
        execution modes because each retirement draws its RNG through
        :meth:`replacement_rng` in index order.
        """
        if indices is None:
            indices = range(len(self.sketches))
        for idx in indices:
            self.retire(idx, replace=replace)

    def advance(self, switches: int, replace=None) -> None:
        """Burn the active copy and activate the next.

        ``replace(index, rng)`` builds and installs the restarted copy;
        the default builds it locally via the factory.  The engine passes
        its backend's replace so the instance is constructed wherever the
        burned copy lives (possibly a worker process) from a
        coordinator-derived RNG.  ``switches`` only feeds the exhaustion
        message.
        """
        if len(self.group_slices) > 1:
            raise RuntimeError(
                "grouped copy sets have no burn order; drive them with a "
                "group-aware discipline (difference ladder / private "
                "aggregate), not active-copy switching"
            )
        tele = self.telemetry
        if self.restart:
            burned = self.rho % len(self.sketches)
            rng = self.replacement_rng()
            if replace is None:
                self.install(burned, self.factory(rng))
            else:
                replace(burned, rng)
            self.rho += 1
            if tele.enabled:
                tele.emit(RingAdvanceEvent(slot=burned, rho=self.rho))
                tele.metrics.counter(
                    "copies_burned_total", "copies burned by switches"
                ).inc()
            return
        if self.rho + 1 >= len(self.sketches):
            if self.on_exhausted == "raise":
                raise SketchExhaustedError(
                    f"all {len(self.sketches)} copies burned after "
                    f"{switches} switches; flip-number budget exceeded"
                )
            return  # clamp: keep using the last copy
        if tele.enabled:
            tele.emit(CopyBurnEvent(index=self.rho % len(self.sketches)))
            tele.metrics.counter(
                "copies_burned_total", "copies burned by switches"
            ).inc()
        self.rho += 1


class LocalCopyBackend:
    """In-process copy backend: feeds and snapshots act on the manager.

    One of the two realisations of the copy-backend interface the
    switching protocol drives (the other lives in
    :mod:`repro.engine.executor` and shards the copies across forked
    workers).  Methods come in two groups: *probed-copy probe/search*
    ops, which snapshot/feed/step the copies the estimator's probe
    discipline reads (the active copy alone under
    :class:`~repro.core.disciplines.ActiveCopyDiscipline`, every copy
    under the private-aggregate discipline) — ``probes`` is always a
    tuple of copy indices — and *non-probed* fan-out feeds, whose
    ``exclude`` is the same tuple (empty for uniform fan-outs such as
    the heavy-hitters ring).

    When the manager carries stacked copy groups, the bulk feeds route
    through the stacks: a staged chunk is aggregated and hashed **once**
    per stack (``prepare``) and the resulting columns are reused across
    the probe feed, the non-probed fan-out, and any replay catch-ups
    over the same arrays — the shared hash pass that makes k copies cost
    one kernel invocation instead of k call chains.  Results are
    bit-for-bit those of the per-object path.
    """

    def __init__(self, copies: CopyManager, unique_hint: bool = False):
        self._copies = copies
        self._unique_hint = unique_hint
        self._items: np.ndarray | None = None
        self._deltas: np.ndarray | None = None
        self._sub: tuple[np.ndarray, np.ndarray | None] | None = None
        self._sub_unique = False
        #: Stack of per-probe snapshot records:
        #: {"stacks": [(stack, saved)], "objects": [(idx, snapshot)]}
        self._snap_stack: list[dict] = []
        #: Prepared-chunk cache: one aggregation + stacked hash pass per
        #: staged array region per stack, reused across probe/feed ops.
        self._prep: dict[tuple, object] = {}

    @property
    def capacity(self) -> int:
        return 1 << 62  # no buffer to overflow

    def stage(self, items: np.ndarray, deltas: np.ndarray) -> None:
        self._items, self._deltas = items, deltas
        self._prep.clear()

    def stage_sub(self, items, deltas, assume_unique: bool) -> None:
        """Stage a pre-processed (deduped/aggregated) feed without probing.

        Used by uniform fan-outs that have no copy to probe (the
        heavy-hitters ring): ``feed_others_sub(())`` then feeds every
        copy the staged arrays.
        """
        self._sub = (items, deltas)
        self._sub_unique = assume_unique
        self._prep.clear()

    def _feed_one(self, sketch: Sketch, items, deltas, assume_unique) -> None:
        if assume_unique and self._unique_hint:
            sketch.update_batch(items, deltas, assume_unique=True)
        else:
            sketch.update_batch(items, deltas)

    def _prepared(self, key: tuple, stack, items, deltas):
        prep = self._prep.get(key)
        if prep is None:
            prep = stack.prepare(items, deltas)
            self._prep[key] = prep
        return prep

    def _raw_prepared(self, stack, lo: int, hi: int):
        """Prepared chunk for ``raw[lo:hi]``, hashing each chunk once.

        Subranges (crossing-search bisection, catch-up replays) are
        derived from one full-chunk ``prepare`` by gathering the slice's
        hash columns (:meth:`SketchStack.subset`), so a crossing costs
        one stacked hash pass instead of one per bisection round.
        """
        key = ("raw", id(stack), lo, hi)
        prep = self._prep.get(key)
        if prep is not None:
            return prep
        full_len = len(self._items)
        if lo == 0 and hi == full_len:
            prep = stack.prepare(self._items, self._deltas)
        else:
            full_key = ("raw", id(stack), 0, full_len)
            full = self._prep.get(full_key)
            if full is None:
                full = stack.prepare(self._items, self._deltas)
                self._prep[full_key] = full
            prep = stack.subset(
                full, self._items[lo:hi], self._deltas[lo:hi]
            )
        self._prep[key] = prep
        return prep

    def _snapshot_probes(self, probes: tuple[int, ...]) -> dict:
        """Composite snapshot: stacked planes as one array copy each."""
        parts, rest = self._copies.stack_plan(probes)
        return {
            "stacks": [(stack, stack.save(planes)) for stack, planes, _ in parts],
            "objects": [
                (idx, self._copies.sketches[idx].snapshot()) for _, idx in rest
            ],
        }

    # -- probed-copy probe/search ops -----------------------------------

    def probe_sub(
        self, items, deltas, assume_unique: bool, probes: tuple[int, ...]
    ) -> np.ndarray:
        self._sub = (items, deltas)
        self._sub_unique = assume_unique
        self._prep.clear()
        copies = self._copies
        ys = np.empty(len(probes), dtype=np.float64)
        if not copies.stacks:
            snaps = []
            for pos, idx in enumerate(probes):
                sk = copies.sketches[idx]
                snaps.append((idx, sk.snapshot()))
                self._feed_one(sk, items, deltas, assume_unique)
                ys[pos] = sk.query()
            self._snap_stack.append({"stacks": [], "objects": snaps})
            return ys
        parts, rest = copies.stack_plan(probes)
        record = {"stacks": [], "objects": []}
        for stack, planes, positions in parts:
            record["stacks"].append((stack, stack.save(planes)))
            prep = self._prepared(("sub", id(stack)), stack, items, deltas)
            stack.feed(prep, planes)
            if len(planes) > 1:
                ys[positions] = stack.query_all()[planes]
            else:
                ys[positions[0]] = stack.sketches[planes[0]].query()
        for pos, idx in rest:
            sk = copies.sketches[idx]
            record["objects"].append((idx, sk.snapshot()))
            self._feed_one(sk, items, deltas, assume_unique)
            ys[pos] = sk.query()
        self._snap_stack.append(record)
        return ys

    def probe_raw(self, probes: tuple[int, ...]) -> np.ndarray:
        self._sub = None
        copies = self._copies
        items, deltas = self._items, self._deltas
        ys = np.empty(len(probes), dtype=np.float64)
        if not copies.stacks:
            snaps = []
            for pos, idx in enumerate(probes):
                sk = copies.sketches[idx]
                snaps.append((idx, sk.snapshot()))
                sk.update_batch(items, deltas)
                ys[pos] = sk.query()
            self._snap_stack.append({"stacks": [], "objects": snaps})
            return ys
        parts, rest = copies.stack_plan(probes)
        record = {"stacks": [], "objects": []}
        for stack, planes, positions in parts:
            record["stacks"].append((stack, stack.save(planes)))
            prep = self._raw_prepared(stack, 0, len(items))
            stack.feed(prep, planes)
            if len(planes) > 1:
                ys[positions] = stack.query_all()[planes]
            else:
                ys[positions[0]] = stack.sketches[planes[0]].query()
        for pos, idx in rest:
            sk = copies.sketches[idx]
            record["objects"].append((idx, sk.snapshot()))
            sk.update_batch(items, deltas)
            ys[pos] = sk.query()
        self._snap_stack.append(record)
        return ys

    def keep_probed(self, probes: tuple[int, ...]) -> None:
        self._snap_stack.pop()

    def roll_probed(self, probes: tuple[int, ...]) -> None:
        record = self._snap_stack.pop()
        for stack, saved in record["stacks"]:
            stack.restore(saved)
        for idx, snap in record["objects"]:
            self._copies.install(idx, snap)

    def snap_probed(self, probes: tuple[int, ...]) -> None:
        self._snap_stack.append(self._snapshot_probes(probes))

    def feed_probed(
        self, lo: int, hi: int, probes: tuple[int, ...]
    ) -> np.ndarray:
        items, deltas = self._items[lo:hi], self._deltas[lo:hi]
        copies = self._copies
        ys = np.empty(len(probes), dtype=np.float64)
        if not copies.stacks:
            for pos, idx in enumerate(probes):
                sk = copies.sketches[idx]
                sk.update_batch(items, deltas)
                ys[pos] = sk.query()
            return ys
        parts, rest = copies.stack_plan(probes)
        for stack, planes, positions in parts:
            prep = self._raw_prepared(stack, lo, hi)
            stack.feed(prep, planes)
            if len(planes) > 1:
                ys[positions] = stack.query_all()[planes]
            else:
                ys[positions[0]] = stack.sketches[planes[0]].query()
        for pos, idx in rest:
            sk = copies.sketches[idx]
            sk.update_batch(items, deltas)
            ys[pos] = sk.query()
        return ys

    def step_probed(self, pos: int, probes: tuple[int, ...]) -> np.ndarray:
        item, delta = int(self._items[pos]), int(self._deltas[pos])
        copies = self._copies
        ys = np.empty(len(probes), dtype=np.float64)
        if not copies.stacks:
            for i, idx in enumerate(probes):
                sk = copies.sketches[idx]
                sk.update(item, delta)
                ys[i] = sk.query()
            return ys
        # Per-item mutation stays on the templates (in-place writes flow
        # through the plane views), but the per-copy query reductions
        # collapse into one stacked pass per group.
        parts, rest = copies.stack_plan(probes)
        for stack, planes, positions in parts:
            for p in planes:
                stack.sketches[p].update(item, delta)
            if len(planes) > 1:
                ys[positions] = stack.query_all()[planes]
            else:
                ys[positions[0]] = stack.sketches[planes[0]].query()
        for i, idx in rest:
            sk = copies.sketches[idx]
            sk.update(item, delta)
            ys[i] = sk.query()
        return ys

    def scan_probed(
        self, lo: int, hi: int, probe: int, published: float, band
    ) -> tuple[int, float] | None:
        """Per-item scan for the first band crossing in [lo, hi).

        Single-probe fast path (identity-decide disciplines only): the
        band predicate is applied where the copy lives, with no
        round-trip per item.  Aggregating disciplines scan through
        :meth:`step_probed` with the decision made by the protocol.
        """
        sk = self._copies.sketches[probe]
        items = self._items[lo:hi].tolist()
        deltas = self._deltas[lo:hi].tolist()
        for off, (item, delta) in enumerate(zip(items, deltas)):
            sk.update(item, delta)
            y = sk.query()
            if band.crossed(published, y):
                return lo + off, y
        return None

    # -- non-probed copies ----------------------------------------------

    def feed_others_sub(self, exclude: tuple[int, ...]) -> None:
        items, deltas = self._sub
        copies = self._copies
        if not copies.stacks:
            excluded = set(exclude)
            for idx, s in enumerate(copies.sketches):
                if idx not in excluded:
                    self._feed_one(s, items, deltas, self._sub_unique)
            return
        excluded = set(exclude)
        others = [i for i in range(copies.count) if i not in excluded]
        parts, rest = copies.stack_plan(others)
        for stack, planes, _ in parts:
            prep = self._prepared(("sub", id(stack)), stack, items, deltas)
            stack.feed(prep, planes)
        for _, idx in rest:
            self._feed_one(copies.sketches[idx], items, deltas, self._sub_unique)

    def feed_others_raw(self, exclude: tuple[int, ...]) -> None:
        self.catch_up(0, len(self._items), exclude)

    def catch_up(self, lo: int, hi: int, exclude: tuple[int, ...]) -> None:
        items, deltas = self._items[lo:hi], self._deltas[lo:hi]
        copies = self._copies
        if not copies.stacks:
            excluded = set(exclude)
            for idx, s in enumerate(copies.sketches):
                if idx not in excluded:
                    s.update_batch(items, deltas)
            return
        excluded = set(exclude)
        others = [i for i in range(copies.count) if i not in excluded]
        parts, rest = copies.stack_plan(others)
        for stack, planes, _ in parts:
            prep = self._raw_prepared(stack, lo, hi)
            stack.feed(prep, planes)
        for _, idx in rest:
            copies.sketches[idx].update_batch(items, deltas)

    def replace(self, idx: int, rng: np.random.Generator) -> None:
        self._copies.install(idx, self._copies.factory_for(idx)(rng))

    def fetch(self, idx: int) -> Sketch:
        """The copy at ``idx`` (epoch wrappers snapshot it for publishing)."""
        return self._copies.sketches[idx]

    def collect_into(self, copies: CopyManager) -> None:
        pass  # copies never left the manager

    def close(self) -> None:
        self._snap_stack.clear()
        self._prep.clear()
        self._items = self._deltas = self._sub = None


#: Cap on resident universe-column elements (planes * rows * universe)
#: per stack before the counts-based fast path declines to engage; at 16
#: bytes per element the default is ~64 MB.
UNIVERSE_PREP_CAP = 4_000_000


def universe_licensed(
    copies: CopyManager,
    universe: int | None,
    unit_deltas: bool,
    cap: int = UNIVERSE_PREP_CAP,
) -> bool:
    """Whether the counts-based serial fast path applies to this copy set.

    Requires a known item universe, unit insertions (so a chunk's
    ``bincount`` support *is* its sorted distinct-item set — cancelling
    deltas would drop zero-sum items the aggregation path keeps), at
    least one stacked copy group whose stack supports universe columns,
    and a universe small enough that the resident columns stay under
    ``cap`` elements.
    """
    if universe is None or universe < 1 or not unit_deltas:
        return False
    if not copies.stacks:
        return False
    return any(
        getattr(stack, "supports_universe", False)
        and stack.planes * getattr(stack, "rows", 1) * universe <= cap
        for stack in copies.stacks.values()
    )


class UniverseLocalBackend(LocalCopyBackend):
    """Serial copy backend specialised for a known item universe.

    When a :class:`~repro.streams.sources.ChunkSource` promises every
    item lies in ``[0, universe)`` with unit deltas, the per-chunk
    aggregation pipeline collapses: the stacked hash columns for the
    *whole universe* are evaluated once per session
    (``SketchStack.prepare_universe``), and every prepared chunk —
    boundary probe, non-probed fan-out, bisection subrange, catch-up —
    becomes an ``np.bincount`` over the staged slice plus a column
    gather at the nonzero support (``prepare_counts``).  That eliminates
    both the per-chunk ``np.unique`` sort and the per-chunk stacked hash
    pass of the bytes-shipped path while producing bit-for-bit identical
    preps: the sorted nonzero support of an insertion-only count vector
    equals ``np.unique`` of the slice, and the counts at the support
    equal the aggregated deltas.

    Bisection leaf scans get the same treatment: ``step_probed`` routes
    per-item updates through one fancy-indexed scatter-add across all
    probed planes (``step_item``) instead of k template ``update``
    calls, gated off when candidate tracking is live (heuristic state
    the fast path does not mirror).

    Stacks that do not support universe columns — and any overweight
    universe — fall back per-stack to the inherited prepare path, so
    mixing stacked and unstacked groups stays correct.
    """

    def __init__(
        self, copies: CopyManager, universe: int, unique_hint: bool = False
    ):
        super().__init__(copies, unique_hint=unique_hint)
        if universe < 1:
            raise ValueError(f"universe must be >= 1, got {universe}")
        self.universe = int(universe)
        #: id(stack) -> universe columns (None = stack unsupported).
        self._ucols: dict[int, object] = {}
        #: id(stack) -> whether the vectorized leaf step is safe.
        self._fast: dict[int, bool] = {}
        #: (lo, hi) -> bincount of the staged slice over the universe.
        self._counts: dict[tuple[int, int], np.ndarray] = {}

    def _universe_cols(self, stack):
        cols = self._ucols.get(id(stack))
        if cols is None and id(stack) not in self._ucols:
            eligible = (
                getattr(stack, "supports_universe", False)
                and stack.planes * getattr(stack, "rows", 1) * self.universe
                <= UNIVERSE_PREP_CAP
            )
            cols = stack.prepare_universe(self.universe) if eligible else None
            self._ucols[id(stack)] = cols
        return cols

    def _step_fast(self, stack) -> bool:
        flag = self._fast.get(id(stack))
        if flag is None:
            flag = (
                self._universe_cols(stack) is not None
                and hasattr(stack, "step_item")
                and all(
                    getattr(s, "_track_candidates", 1) == 0
                    for s in stack.sketches
                )
            )
            self._fast[id(stack)] = flag
        return flag

    def _range_counts(self, lo: int, hi: int) -> np.ndarray:
        key = (lo, hi)
        counts = self._counts.get(key)
        if counts is None:
            counts = np.bincount(self._items[lo:hi], minlength=self.universe)
            if len(counts) > self.universe:
                raise ValueError(
                    f"staged chunk contains items >= universe {self.universe}; "
                    "the chunk source's universe promise is violated"
                )
            self._counts[key] = counts
        return counts

    def stage(self, items: np.ndarray, deltas: np.ndarray) -> None:
        super().stage(items, deltas)
        self._counts.clear()

    def _raw_prepared(self, stack, lo: int, hi: int):
        cols = self._universe_cols(stack)
        if cols is None:
            return super()._raw_prepared(stack, lo, hi)
        key = ("raw", id(stack), lo, hi)
        prep = self._prep.get(key)
        if prep is None:
            prep = stack.prepare_counts(cols, self._range_counts(lo, hi))
            self._prep[key] = prep
        return prep

    def step_probed(self, pos: int, probes: tuple[int, ...]) -> np.ndarray:
        copies = self._copies
        if not copies.stacks:
            return super().step_probed(pos, probes)
        item, delta = int(self._items[pos]), int(self._deltas[pos])
        ys = np.empty(len(probes), dtype=np.float64)
        parts, rest = copies.stack_plan(probes)
        for stack, planes, positions in parts:
            if self._step_fast(stack):
                stack.step_item(self._universe_cols(stack), item, delta, planes)
            else:
                for p in planes:
                    stack.sketches[p].update(item, delta)
            if len(planes) > 1:
                ys[positions] = stack.query_all()[planes]
            else:
                ys[positions[0]] = stack.sketches[planes[0]].query()
        for i, idx in rest:
            sk = copies.sketches[idx]
            sk.update(item, delta)
            ys[i] = sk.query()
        return ys

    def close(self) -> None:
        super().close()
        self._ucols.clear()
        self._fast.clear()
        self._counts.clear()
