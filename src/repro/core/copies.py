"""Copy lifecycle for the switching protocols: allocate, burn, restart.

Every switching construction pays its robustness budget in *copies* —
independent instances of a static sketch, one active at a time.  The
:class:`CopyManager` owns that lifecycle and nothing else:

* **allocation** — ``copies`` instances from a factory, seeded through
  one ``SeedSequence.spawn`` pass so the independence assumption of
  Lemma 3.6 holds uniformly (plus one extra child generator kept as the
  fresh-randomness pool for replacements).  :meth:`CopyManager.grouped`
  allocates *heterogeneous copy groups* instead — contiguous index
  ranges each built by its own factory, one seeding pass across all of
  them — which is what the difference-estimator ladder
  (:mod:`repro.core.ladder`) uses: cheap difference-estimator tiers in
  the low groups, the strong checkpoint sketches in the last.  Grouped
  sets have no burn order (``advance`` raises); their lifecycle is
  per-group :meth:`refresh`, driven by a group-aware discipline;
* **burn-and-advance** — plain Algorithm 1 mode walks forward through
  the copy list and raises :class:`SketchExhaustedError` (or clamps)
  when the flip budget runs out; restart mode (Theorem 4.1) treats the
  list as a ring, replacing each burned slot with a freshly seeded
  instance;
* **replacement seeding** — :meth:`replacement_rng` derives each
  restarted copy's generator from the fresh pool with the same
  ``spawn_rngs`` derivation that seeded the initial copies.  Both the
  serial estimator and the engine's sharded drivers draw replacements
  from here *on the coordinator*, which is what makes restarted copies —
  and therefore published outputs — bit-for-bit identical across
  execution modes.

The band decision itself lives in :mod:`repro.core.bands`; the drive
loop in :mod:`repro.core.sketch_switching`.  :class:`LocalCopyBackend`
is the in-process realisation of the copy-backend interface the drive
loop talks to (the process engine provides the forked-worker twin).
"""

from __future__ import annotations

import numpy as np

from repro.core.ladder import require_count
from repro.sketches.base import Sketch, SketchFactory, spawn_rngs


class SketchExhaustedError(RuntimeError):
    """All sketch copies were burned: the flip-number budget was exceeded.

    Under the theorems' preconditions this happens only with probability
    delta; in experiments it signals an undersized ``copies`` parameter.
    """


class CopyManager:
    """Owns the copies of one switching estimator and their lifecycle.

    Parameters
    ----------
    factory:
        Builds one independent static tracker per call.
    copies:
        Instance count: the flip-number bound in plain mode, or the
        Theorem 4.1 ring size in restart mode.
    rng:
        Seeds the copies (and the fresh-randomness replacement pool).
    restart:
        Ring mode: burned slots are replaced instead of abandoned.
    on_exhausted:
        Plain-mode behaviour when every copy is burned: ``"raise"``
        (default) or ``"clamp"`` (keep the last copy active).
    """

    def __init__(
        self,
        factory: SketchFactory,
        copies: int,
        rng: np.random.Generator,
        restart: bool = False,
        on_exhausted: str = "raise",
    ):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if on_exhausted not in ("raise", "clamp"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.factory = factory
        self.restart = restart
        self.on_exhausted = on_exhausted
        rngs = spawn_rngs(rng, copies + 1)
        self._fresh_rng = rngs[copies]
        self.sketches: list[Sketch] = [factory(r) for r in rngs[:copies]]
        #: Contiguous (lo, hi) index range per copy group; one group for
        #: the homogeneous manager, tiers-then-strong for grouped sets.
        self.group_slices: tuple[tuple[int, int], ...] = ((0, copies),)
        self._group_factories: tuple[SketchFactory, ...] = (factory,)
        #: Monotone activation counter; the active slot is ``rho % count``.
        self.rho = 0

    @classmethod
    def grouped(
        cls,
        groups,
        rng: np.random.Generator,
        on_exhausted: str = "raise",
    ) -> "CopyManager":
        """Allocate heterogeneous copy groups: ``[(factory, count), ...]``.

        All copies across all groups are seeded through **one**
        ``spawn_rngs`` pass (plus the shared fresh pool), so the
        Lemma 3.6 independence argument is uniform across groups exactly
        as it is across a homogeneous set.  Groups occupy contiguous
        index ranges in declaration order; the convention of the
        difference ladder is cheap tiers first, strong group last.
        Grouped sets have no burn order — :meth:`advance` raises — and
        no restart ring; their lifecycle is per-group :meth:`refresh`.
        """
        specs = list(groups)
        if not specs:
            raise ValueError("need at least one copy group")
        for g, (_, count) in enumerate(specs):
            require_count(f"group {g} copy count", count)
        specs = [(factory, int(count)) for factory, count in specs]
        total = sum(count for _, count in specs)
        self = cls.__new__(cls)
        self.restart = False
        if on_exhausted not in ("raise", "clamp"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.on_exhausted = on_exhausted
        rngs = spawn_rngs(rng, total + 1)
        self._fresh_rng = rngs[total]
        self.sketches = []
        slices = []
        start = 0
        for factory, count in specs:
            self.sketches.extend(
                factory(r) for r in rngs[start:start + count]
            )
            slices.append((start, start + count))
            start += count
        self.group_slices = tuple(slices)
        self._group_factories = tuple(factory for factory, _ in specs)
        #: The strong (last) group's factory; ungrouped surfaces that
        #: build whole-set replacements must go through `factory_for`.
        self.factory = self._group_factories[-1]
        self.rho = 0
        return self

    @property
    def count(self) -> int:
        return len(self.sketches)

    @property
    def group_count(self) -> int:
        return len(self.group_slices)

    def group_indices(self, group: int) -> tuple[int, ...]:
        """The contiguous copy indices of one group."""
        lo, hi = self.group_slices[group]
        return tuple(range(lo, hi))

    def factory_for(self, idx: int) -> SketchFactory:
        """The factory that builds (and rebuilds) the copy at ``idx``."""
        if not 0 <= idx < len(self.sketches):
            raise IndexError(f"copy index {idx} out of range")
        for (lo, hi), factory in zip(self.group_slices,
                                     self._group_factories):
            if lo <= idx < hi:
                return factory
        return self.factory  # pragma: no cover - slices always cover

    @property
    def active_index(self) -> int:
        return self.rho % len(self.sketches)

    @property
    def active(self) -> Sketch:
        return self.sketches[self.active_index]

    def replacement_rng(self) -> np.random.Generator:
        """Derive the next restarted copy's RNG from the fresh pool.

        Uses the same ``spawn_rngs`` derivation that seeded the initial
        copies, keeping the independence argument (Lemma 3.6) uniform
        across original and restarted instances.  The engine's parallel
        driver calls this on the coordinator so the RNG sequence — and
        therefore every restarted copy — is bit-for-bit the serial one.
        """
        return spawn_rngs(self._fresh_rng, 1)[0]

    def estimate_all(self, indices=None) -> list[float]:
        """Query a set of copies (default: all), in index order.

        The probe surface of the aggregate disciplines: the DP framework
        reads every copy's estimate per decision instead of the active
        one's.  In-process only; the engines read sharded copies through
        their backend's probe ops.
        """
        if indices is None:
            indices = range(len(self.sketches))
        return [self.sketches[i].query() for i in indices]

    def retire(self, idx: int, replace=None) -> None:
        """Retire one copy: replace it with a freshly seeded instance.

        The DP disciplines' lifecycle primitive — unlike
        :meth:`advance`, retirement does not move the active cursor or
        consume the plain-mode flip budget; the slot is simply reborn.
        ``replace(index, rng)`` installs the rebuilt copy wherever it
        lives (the engines pass their backend's replace); the RNG is
        always derived here, on the coordinator.
        """
        rng = self.replacement_rng()
        if replace is None:
            self.sketches[idx] = self.factory_for(idx)(rng)
        else:
            replace(idx, rng)

    def refresh(self, indices=None, replace=None) -> None:
        """Retire a set of copies (default: all), in index order.

        Used by :class:`~repro.core.disciplines.PrivateAggregateDiscipline`
        when the sparse-vector budget is exhausted: the whole copy set is
        reborn and the guarantee window restarts.  Deterministic across
        execution modes because each retirement draws its RNG through
        :meth:`replacement_rng` in index order.
        """
        if indices is None:
            indices = range(len(self.sketches))
        for idx in indices:
            self.retire(idx, replace=replace)

    def advance(self, switches: int, replace=None) -> None:
        """Burn the active copy and activate the next.

        ``replace(index, rng)`` builds and installs the restarted copy;
        the default builds it locally via the factory.  The engine passes
        its backend's replace so the instance is constructed wherever the
        burned copy lives (possibly a worker process) from a
        coordinator-derived RNG.  ``switches`` only feeds the exhaustion
        message.
        """
        if len(self.group_slices) > 1:
            raise RuntimeError(
                "grouped copy sets have no burn order; drive them with a "
                "group-aware discipline (difference ladder / private "
                "aggregate), not active-copy switching"
            )
        if self.restart:
            burned = self.rho % len(self.sketches)
            rng = self.replacement_rng()
            if replace is None:
                self.sketches[burned] = self.factory(rng)
            else:
                replace(burned, rng)
            self.rho += 1
            return
        if self.rho + 1 >= len(self.sketches):
            if self.on_exhausted == "raise":
                raise SketchExhaustedError(
                    f"all {len(self.sketches)} copies burned after "
                    f"{switches} switches; flip-number budget exceeded"
                )
            return  # clamp: keep using the last copy
        self.rho += 1


class LocalCopyBackend:
    """In-process copy backend: feeds and snapshots act on the manager.

    One of the two realisations of the copy-backend interface the
    switching protocol drives (the other lives in
    :mod:`repro.engine.executor` and shards the copies across forked
    workers).  Methods come in two groups: *probed-copy probe/search*
    ops, which snapshot/feed/step the copies the estimator's probe
    discipline reads (the active copy alone under
    :class:`~repro.core.disciplines.ActiveCopyDiscipline`, every copy
    under the private-aggregate discipline) — ``probes`` is always a
    tuple of copy indices — and *non-probed* fan-out feeds, whose
    ``exclude`` is the same tuple (empty for uniform fan-outs such as
    the heavy-hitters ring).
    """

    def __init__(self, copies: CopyManager, unique_hint: bool = False):
        self._copies = copies
        self._unique_hint = unique_hint
        self._items: np.ndarray | None = None
        self._deltas: np.ndarray | None = None
        self._sub: tuple[np.ndarray, np.ndarray | None] | None = None
        self._sub_unique = False
        #: Stack of per-probe snapshot lists: [[(idx, snapshot), ...], ...]
        self._snap_stack: list[list[tuple[int, Sketch]]] = []

    @property
    def capacity(self) -> int:
        return 1 << 62  # no buffer to overflow

    def stage(self, items: np.ndarray, deltas: np.ndarray) -> None:
        self._items, self._deltas = items, deltas

    def stage_sub(self, items, deltas, assume_unique: bool) -> None:
        """Stage a pre-processed (deduped/aggregated) feed without probing.

        Used by uniform fan-outs that have no copy to probe (the
        heavy-hitters ring): ``feed_others_sub(())`` then feeds every
        copy the staged arrays.
        """
        self._sub = (items, deltas)
        self._sub_unique = assume_unique

    def _feed_one(self, sketch: Sketch, items, deltas, assume_unique) -> None:
        if assume_unique and self._unique_hint:
            sketch.update_batch(items, deltas, assume_unique=True)
        else:
            sketch.update_batch(items, deltas)

    # -- probed-copy probe/search ops -----------------------------------

    def probe_sub(
        self, items, deltas, assume_unique: bool, probes: tuple[int, ...]
    ) -> list[float]:
        self._sub = (items, deltas)
        self._sub_unique = assume_unique
        snaps, ys = [], []
        for idx in probes:
            sk = self._copies.sketches[idx]
            snaps.append((idx, sk.snapshot()))
            self._feed_one(sk, items, deltas, assume_unique)
            ys.append(sk.query())
        self._snap_stack.append(snaps)
        return ys

    def probe_raw(self, probes: tuple[int, ...]) -> list[float]:
        self._sub = None
        snaps, ys = [], []
        for idx in probes:
            sk = self._copies.sketches[idx]
            snaps.append((idx, sk.snapshot()))
            sk.update_batch(self._items, self._deltas)
            ys.append(sk.query())
        self._snap_stack.append(snaps)
        return ys

    def keep_probed(self, probes: tuple[int, ...]) -> None:
        self._snap_stack.pop()

    def roll_probed(self, probes: tuple[int, ...]) -> None:
        for idx, snap in self._snap_stack.pop():
            self._copies.sketches[idx] = snap

    def snap_probed(self, probes: tuple[int, ...]) -> None:
        self._snap_stack.append(
            [(idx, self._copies.sketches[idx].snapshot()) for idx in probes]
        )

    def feed_probed(
        self, lo: int, hi: int, probes: tuple[int, ...]
    ) -> list[float]:
        items, deltas = self._items[lo:hi], self._deltas[lo:hi]
        ys = []
        for idx in probes:
            sk = self._copies.sketches[idx]
            sk.update_batch(items, deltas)
            ys.append(sk.query())
        return ys

    def step_probed(self, pos: int, probes: tuple[int, ...]) -> list[float]:
        item, delta = int(self._items[pos]), int(self._deltas[pos])
        ys = []
        for idx in probes:
            sk = self._copies.sketches[idx]
            sk.update(item, delta)
            ys.append(sk.query())
        return ys

    def scan_probed(
        self, lo: int, hi: int, probe: int, published: float, band
    ) -> tuple[int, float] | None:
        """Per-item scan for the first band crossing in [lo, hi).

        Single-probe fast path (identity-decide disciplines only): the
        band predicate is applied where the copy lives, with no
        round-trip per item.  Aggregating disciplines scan through
        :meth:`step_probed` with the decision made by the protocol.
        """
        sk = self._copies.sketches[probe]
        items = self._items[lo:hi].tolist()
        deltas = self._deltas[lo:hi].tolist()
        for off, (item, delta) in enumerate(zip(items, deltas)):
            sk.update(item, delta)
            y = sk.query()
            if band.crossed(published, y):
                return lo + off, y
        return None

    # -- non-probed copies ----------------------------------------------

    def feed_others_sub(self, exclude: tuple[int, ...]) -> None:
        items, deltas = self._sub
        excluded = set(exclude)
        for idx, s in enumerate(self._copies.sketches):
            if idx not in excluded:
                self._feed_one(s, items, deltas, self._sub_unique)

    def feed_others_raw(self, exclude: tuple[int, ...]) -> None:
        self.catch_up(0, len(self._items), exclude)

    def catch_up(self, lo: int, hi: int, exclude: tuple[int, ...]) -> None:
        items, deltas = self._items[lo:hi], self._deltas[lo:hi]
        excluded = set(exclude)
        for idx, s in enumerate(self._copies.sketches):
            if idx not in excluded:
                s.update_batch(items, deltas)

    def replace(self, idx: int, rng: np.random.Generator) -> None:
        self._copies.sketches[idx] = self._copies.factory_for(idx)(rng)

    def fetch(self, idx: int) -> Sketch:
        """The copy at ``idx`` (epoch wrappers snapshot it for publishing)."""
        return self._copies.sketches[idx]

    def collect_into(self, copies: CopyManager) -> None:
        pass  # copies never left the manager

    def close(self) -> None:
        self._snap_stack.clear()
        self._items = self._deltas = self._sub = None
