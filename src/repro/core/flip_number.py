"""Flip number (Definition 3.2): measurement and analytic bounds.

The flip number ``lambda_{eps,m}(g)`` — the longest chain of time steps on
which g changes by more than a (1 ± eps) factor — is the quantity both
robustification frameworks pay for: sketch switching keeps ``lambda``
copies, computation paths union-bounds over ``~ (eps^-1 log T)^lambda``
output sequences.

This module provides:

* :func:`measured_flip_number` — the exact flip number of a concrete value
  sequence, computed in O(m log m) as a longest-chain DP accelerated with
  value-indexed max-Fenwick trees (an O(m^2) reference DP,
  :func:`flip_number_dp`, serves as the test oracle);
* :func:`greedy_flip_lower_bound` — the cheap greedy chain (a valid chain,
  hence a lower bound; *not* always optimal);
* analytic bounds: Proposition 3.4 (monotone functions), Corollary 3.5
  (Fp moments), Proposition 7.2 (exponentiated entropy), Lemma 8.2
  (bounded-deletion Lp), and the cascaded-norm remark after Corollary 3.5.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Sequence


def _band(cur: float, eps: float) -> tuple[float, float]:
    """The closed interval [(1-eps) cur, (1+eps) cur], endpoints sorted."""
    a = (1.0 - eps) * cur
    b = (1.0 + eps) * cur
    return (a, b) if a <= b else (b, a)


def _flips(prev: float, cur: float, eps: float) -> bool:
    """Is ``prev`` outside ``[(1-eps) cur, (1+eps) cur]``?"""
    lo, hi = _band(cur, eps)
    return prev < lo or prev > hi


class _MaxFenwick:
    """Fenwick tree over ranks supporting prefix-max queries and point updates."""

    def __init__(self, size: int):
        self._tree = [0] * (size + 1)

    def update(self, idx: int, value: int) -> None:
        """Raise position ``idx`` (0-based) to at least ``value``."""
        i = idx + 1
        while i < len(self._tree):
            if self._tree[i] < value:
                self._tree[i] = value
            i += i & (-i)

    def prefix_max(self, count: int) -> int:
        """Max over the first ``count`` positions (0 if count <= 0)."""
        best = 0
        i = count
        while i > 0:
            if self._tree[i] > best:
                best = self._tree[i]
            i -= i & (-i)
        return best


def measured_flip_number(values: Sequence[float], eps: float) -> int:
    """The exact (eps, m)-flip number of a concrete sequence (Definition 3.2).

    Maximum k for which indices ``i_1 < ... < i_k`` exist with
    ``y_{i_{j-1}}`` outside ``(1 ± eps) y_{i_j}`` for all j = 2..k.

    Longest-chain DP: ``L[i] = 1 + max L[j]`` over earlier j whose value
    lies outside the band of value i.  The band condition is two value-range
    queries (``v_j < lo`` or ``v_j > hi``), answered by two max-Fenwick
    trees over the compressed value axis — O(m log m) total.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not values:
        return 0
    vals = [float(v) for v in values]
    uniq = sorted(set(vals))
    rank = {v: r for r, v in enumerate(uniq)}
    size = len(uniq)
    lo_tree = _MaxFenwick(size)  # prefix max over ascending value order
    hi_tree = _MaxFenwick(size)  # prefix max over descending value order
    best_overall = 0
    for v in vals:
        lo, hi = _band(v, eps)
        # Chains ending at this element extend any earlier element with
        # value strictly below lo ...
        below_count = bisect.bisect_left(uniq, lo)
        best = lo_tree.prefix_max(below_count)
        # ... or strictly above hi.
        above_count = size - bisect.bisect_right(uniq, hi)
        cand = hi_tree.prefix_max(above_count)
        if cand > best:
            best = cand
        length = best + 1
        r = rank[v]
        lo_tree.update(r, length)
        hi_tree.update(size - 1 - r, length)
        if length > best_overall:
            best_overall = length
    return best_overall


def flip_number_dp(values: Sequence[float], eps: float) -> int:
    """O(m^2) reference DP for the flip number — test oracle."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not values:
        return 0
    m = len(values)
    best = [1] * m
    for i in range(m):
        for j in range(i):
            if _flips(values[j], values[i], eps) and best[j] + 1 > best[i]:
                best[i] = best[j] + 1
    return max(best)


def greedy_flip_lower_bound(values: Sequence[float], eps: float) -> int:
    """Greedy chain length — a lower bound on the flip number.

    Optimal for monotone sequences (where a smaller anchor flips on
    everything a larger one does); can undercount on oscillating
    sequences, hence only a bound.  O(m).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not values:
        return 0
    count = 1
    anchor = float(values[0])
    for y in values[1:]:
        if _flips(anchor, float(y), eps):
            count += 1
            anchor = float(y)
    return count


def monotone_flip_number_bound(eps: float, value_min: float, value_max: float) -> int:
    """Proposition 3.4: monotone g with nonzero range [value_min, value_max].

    At most one power of (1+eps) can be crossed per flip, so the flip
    number is ``O(eps^-1 log T)`` — concretely
    ``ceil(log(value_max/value_min) / log(1+eps)) + 2`` (the +2 covers the
    initial zero and the first nonzero value).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if not 0 < value_min <= value_max:
        raise ValueError("need 0 < value_min <= value_max")
    return math.ceil(math.log(value_max / value_min) / math.log1p(eps)) + 2


def fp_flip_number_bound(eps: float, n: int, p: float, M: int = 1 << 20) -> int:
    """Corollary 3.5: flip number of ``|f|_p^p`` on insertion-only streams.

    ``O(eps^-1 log n)`` for p <= 2 and ``O(p eps^-1 log n)`` for p > 2,
    instantiated through Proposition 3.4 with T = max(n, M^p n).
    """
    if p < 0:
        raise ValueError(f"p must be >= 0, got {p}")
    t_max = float(n) if p == 0 else float(M) ** p * n
    return monotone_flip_number_bound(eps, 1.0, max(t_max, 1.0 + 1e-9))


def lp_norm_flip_number_bound(eps: float, n: int, p: float, M: int = 1 << 20) -> int:
    """Flip number of the *norm* ``|f|_p`` (what Theorems 4.1/6.5 track).

    A (1+eps) change of the norm is a (1+eps)^p change of the moment; the
    norm's range is [1, (M^p n)^(1/p)].
    """
    if p <= 0:
        raise ValueError(f"norm order p must be > 0, got {p}")
    t_max = (float(M) ** p * n) ** (1.0 / p)
    return monotone_flip_number_bound(eps, 1.0, max(t_max, 1.0 + 1e-9))


def entropy_flip_number_bound(eps: float, n: int, m: int, M: int = 1 << 20) -> int:
    """Proposition 7.2: flip number of ``g = 2^H`` on insertion-only streams.

    Follows the paper's arithmetic: with ``nu = eps/(4 log n log m)`` and
    ``beta = 1 + nu/(16 log(1/nu))``, a (1 ± eps) change of ``2^H`` forces
    ``|x|_1`` to grow by ``(1 + tau)`` with ``tau = Theta(eps (beta - 1))``;
    since ``|x|_1 <= Mn``, the count is ``log(Mn)/log(1+tau)`` —
    the O~(eps^-3 log^3) shape of the proposition.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    log_n = max(2.0, math.log2(n))
    log_m = max(2.0, math.log2(m))
    nu = eps / (4.0 * log_n * log_m)
    beta_minus_1 = nu / (16.0 * max(1.0, math.log(1.0 / nu)))
    tau = eps * beta_minus_1
    return math.ceil(math.log(float(M) * n) / math.log1p(tau)) + 2


def bounded_deletion_flip_number_bound(
    eps: float, n: int, p: float, alpha: float, M: int = 1 << 20
) -> int:
    """Lemma 8.2: flip number of ``|f|_p`` on alpha-bounded-deletion streams.

    Each flip forces the insertion-only companion mass ``|h|_p^p`` to grow
    by ``(1 + eps^p / alpha)``; ``|h|_p^p <= M^p n``, giving
    ``O(p alpha eps^-p log n)``.
    """
    if p < 1:
        raise ValueError(f"Lemma 8.2 requires p >= 1, got {p}")
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0,1), got {eps}")
    growth = eps**p / alpha
    return math.ceil(math.log(float(M) ** p * n) / math.log1p(growth)) + 2


def cascaded_norm_flip_number_bound(
    eps: float, n: int, d: int, p: float, k: float, M: int = 1 << 20
) -> int:
    """Flip number of the cascaded norm ``|A|_(p,k)`` (Section 3 remark).

    The cascaded norm of an insertion-only matrix stream is monotone with
    range poly(n d M), so Proposition 3.4 applies; we use the conservative
    envelope T = (M n d)^(max(1,k) max(1,p)).
    """
    if p <= 0 or k <= 0:
        raise ValueError("cascaded norm orders must be positive")
    t_max = (float(M) * n * d) ** (max(1.0, k) * max(1.0, p))
    return monotone_flip_number_bound(eps, 1.0, t_max)
