"""Probe disciplines: *how* a publish decision reads the copies.

The band policies of :mod:`repro.core.bands` decide *when* to switch and
*what* to publish; the copy manager of :mod:`repro.core.copies` owns the
copy lifecycle.  A :class:`ProbeDiscipline` is the third orthogonal axis
of the switching protocol: which copies a publish decision reads, how
their estimates collapse into one decision estimate, and what happens to
the copies when a publication occurs.

* :class:`ActiveCopyDiscipline` — the paper's Algorithm 1: the decision
  reads exactly the *active* copy, and every publication **burns** it
  (its randomness is now correlated with the adversary's view) and
  activates the next.  The robustness budget is paid linearly: one copy
  per switch (or a Theorem 4.1 restart-ring slot).

* :class:`PrivateAggregateDiscipline` — the differential-privacy
  framework of Hassidim et al. 2020 ("Adversarially Robust Streaming
  Algorithms via Differential Privacy"): the decision reads **all**
  live copies and publishes a *privately aggregated* estimate (a noisy
  median behind a sparse-vector/AboveThreshold epoch discipline).  No
  copy is burned on a switch — the Laplace noise, not retirement, hides
  each copy's randomness — so the same number of switches is supported
  by ``O(sqrt(lambda))`` copies instead of ``Theta(lambda)``: with ``k``
  copies, advanced composition lets each copy participate in ``~k^2``
  eps-DP aggregate answers before its privacy budget is exhausted.  The
  discipline accounts that budget explicitly and *retires* the copy set
  (refreshing every instance from the coordinator's replacement pool)
  only when the budget runs out — which a stream respecting the flip
  bound the budget was sized for never triggers.

* :class:`DifferenceAggregateDiscipline` — the Attias et al. 2022
  sharpening via difference estimators (:mod:`repro.core.ladder`): most
  publications are answered by the lowest live tier of a geometric
  ladder of cheap difference estimators — ``checkpoint + noisy
  difference`` — and charge that tier's own (cheap) budget; only when
  the accumulated difference out-grows the ladder does a publication
  read the strong copies, pay one sparse-vector charge, and open a
  fresh checkpoint window.  The strong budget is therefore spent per
  *checkpoint*, not per publication, so the same strong copy set
  supports a multiple of the publications — or equivalently fewer
  strong copies (and less space) support the same stream.

The protocol driver (:class:`~repro.core.sketch_switching
.SwitchingProtocol`) is discipline-agnostic: it asks the discipline
which copies a probe (and a crossing search) may read, collapses their
estimates through :meth:`ProbeDiscipline.decide`, and hands publication
side effects to :meth:`ProbeDiscipline.on_publish`.  Determinism across
execution paths (per-item, serial chunked, SerialEngine, ProcessEngine)
holds by the same argument as for bands and copies: every noise draw and
every replacement RNG derivation happens on the coordinator, keyed to
the publication count, which all paths agree on.

Reproduction notes on the DP mechanism
--------------------------------------
The sparse-vector discipline is implemented with *per-epoch* noise: one
relative Laplace perturbation ``nu ~ Lap(noise_scale)`` is drawn at each
publication (the AboveThreshold reset) and held fixed until the next —
the decision estimate within an epoch is ``median(copies) * (1 + nu)``.
Holding the comparison noise fixed between publications is what makes
the decision trajectory a deterministic function of the stream within an
epoch, so the chunked bisection machinery (and its band-policy
exactness/coalescing contract) applies to the DP path unchanged; it is
the standard SVT threshold-noise sharing, with the per-comparison noise
folded into the band width.  Post-processing (the band's publication
rounding) is free under DP.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Sequence

import numpy as np

from repro.core.bands import BandPolicy
from repro.core.copies import CopyManager
from repro.core.ladder import (
    STRONG,
    DifferenceLadder,
    default_difference_ladder,
    require_count,
    require_positive_finite,
)
from repro.obs import GenerationEvent, SvtChargeEvent

__all__ = [
    "ActiveCopyDiscipline",
    "DifferenceAggregateDiscipline",
    "PrivacyBudgetExhaustedError",
    "PrivateAggregateDiscipline",
    "ProbeDiscipline",
    "default_switch_budget",
    "dp_copy_count",
    "resolve_discipline",
]


# Budgeted-discipline parameter validation is shared with the ladder's
# tier specs (repro.core.ladder.require_positive_finite/require_count):
# NaN/inf/bool scales a plain `<= 0` comparison lets through, and
# fractional/bool budgets, are rejected eagerly at construction instead
# of failing deep inside the protocol at the first publication; NumPy
# scalars from sizing arithmetic pass.


def _svt_budget_fields(disc, charges: int) -> dict:
    """The sparse-vector generation accounting both budgeted disciplines
    share: ``charges`` is whatever each discipline pays its budget in —
    every publication for the private aggregate, strong checkpoints for
    the difference ladder."""
    budget = disc.switch_budget
    in_generation = (
        charges - disc.generations * budget
        if budget is not None
        else charges
    )
    spent = in_generation / budget if budget else 0.0
    return {
        "discipline": disc.name,
        "noise_scale": disc.noise_scale,
        "switch_budget": budget,
        "budget_spent": round(spent, 6),
        "budget_remaining": round(max(0.0, 1.0 - spent), 6),
        "generations": disc.generations,
    }


def _svt_exhausted(disc, charges: int) -> bool:
    """Has the current generation's sparse-vector budget run out?"""
    return charges - disc.generations * disc.switch_budget \
        >= disc.switch_budget


def _emit_svt_charge(tele, disc, charges: int, scope: str) -> None:
    """Trace one sparse-vector budget step (caller checked enabled)."""
    budget = disc.switch_budget or 0
    in_generation = charges - disc.generations * budget if budget else charges
    tele.emit(SvtChargeEvent(
        charges=in_generation,
        budget=budget,
        spent=in_generation / budget if budget else 0.0,
        scope=scope,
    ))
    tele.metrics.counter(
        "svt_charges_total", "sparse-vector budget steps spent"
    ).inc()


class PrivacyBudgetExhaustedError(RuntimeError):
    """Every copy's sparse-vector budget is spent: the flip bound the
    budget was sized for has been exceeded (``on_exhausted="raise"``)."""


class ProbeDiscipline(abc.ABC):
    """How the switching protocol reads copies to make publish decisions.

    One discipline instance belongs to one estimator: :meth:`bind` is
    called once when the estimator is built (or when a discipline is
    installed through ``api.ingest(discipline=...)``) and pins the
    discipline to that estimator's :class:`CopyManager`.
    """

    #: Short discipline name, surfaced by shard plans and ingest reports.
    name: str = "discipline"

    #: True when ``decide([y]) == y`` — a single-copy probe needs no
    #: coordinator-side aggregation, so the backend may resolve a
    #: per-item crossing scan where the copy lives (the worker-side
    #: ``ascan`` fast path).  Aggregating disciplines return their
    #: estimates to the coordinator instead.
    identity_decide: bool = True

    def bind(self, copies: CopyManager) -> None:
        """Attach to one estimator's copy manager (idempotent per manager)."""
        bound = getattr(self, "_bound", None)
        if bound is not None and bound is not copies:
            raise ValueError(
                f"{type(self).__name__} is already bound to another "
                f"estimator's copies; disciplines are not shareable"
            )
        self._bound = copies

    @abc.abstractmethod
    def probe_indices(self, copies: CopyManager) -> tuple[int, ...]:
        """The copy indices a publish decision — and therefore a
        crossing search — may read."""

    @abc.abstractmethod
    def decide(self, estimates: Sequence[float]) -> float:
        """Collapse the probed copies' estimates (aligned with
        :meth:`probe_indices`) into the decision estimate."""

    @abc.abstractmethod
    def publish(self, band: BandPolicy, estimate: float) -> float:
        """Round the decision estimate for publication."""

    @abc.abstractmethod
    def on_publish(
        self, copies: CopyManager, switches: int, replace=None
    ) -> None:
        """Copy-lifecycle side effects of one publication.

        ``replace(index, rng)`` installs a rebuilt copy wherever it
        lives (possibly a worker process); RNGs are always derived on
        the coordinator via :meth:`CopyManager.replacement_rng`.
        """

    def budget_state(self) -> dict | None:
        """Budget introspection for :class:`repro.api.IngestReport`
        (None for budget-free disciplines)."""
        return None


class ActiveCopyDiscipline(ProbeDiscipline):
    """Algorithm 1's discipline: probe the active copy, burn it on a switch.

    Bit-for-bit the pre-discipline protocol: the decision estimate *is*
    the active copy's estimate, publication applies the band's rounding,
    and every publication advances the copy manager (plain burn or
    Theorem 4.1 ring restart).
    """

    name = "active-copy"
    identity_decide = True

    def probe_indices(self, copies: CopyManager) -> tuple[int, ...]:
        return (copies.active_index,)

    def decide(self, estimates: Sequence[float]) -> float:
        return float(estimates[0])

    def publish(self, band: BandPolicy, estimate: float) -> float:
        return band.publish(estimate)

    def on_publish(
        self, copies: CopyManager, switches: int, replace=None
    ) -> None:
        copies.advance(switches, replace=replace)


def default_switch_budget(copies: int) -> int:
    """Publications ``copies`` instances support before SVT exhaustion.

    The advanced-composition accounting of Hassidim et al.: answering
    ``T`` adaptive eps0-DP aggregate queries costs each copy
    ``~sqrt(T) * eps0`` of budget, so ``k`` copies sized for per-answer
    privacy ``eps0 ~ 1/k`` support ``T ~ k^2`` publications — the
    inverse of the ``copies ~ sqrt(flips)`` sizing rule.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    return copies * copies


class PrivateAggregateDiscipline(ProbeDiscipline):
    """DP aggregate publishing: noisy median over all copies, SVT budget.

    Parameters
    ----------
    noise_scale:
        Relative Laplace scale ``b`` of the per-epoch perturbation: the
        decision estimate is ``median(copy estimates) * (1 + nu)`` with
        ``nu ~ Lap(b)`` redrawn at each publication.  Must sit well
        inside the band's inner accuracy budget (the DP wrappers default
        to ``eps/12``); a tail draw merely triggers one extra switch.
    switch_budget:
        Publications the copy set supports before the sparse-vector
        budget is exhausted.  Size it to the tracked function's flip
        bound; defaults to :func:`default_switch_budget` (``copies^2``)
        at bind time.
    on_exhausted:
        ``"retire"`` (default): on exhaustion, retire the whole copy set
        — every instance is refreshed from the coordinator's replacement
        pool — reset the budget, and open a new generation.  The
        guarantee window restarts (the estimate dips until the refreshed
        copies regrow their state), which is the documented degradation
        mode for streams that out-flip the provisioned budget.
        ``"raise"``: raise :class:`PrivacyBudgetExhaustedError` instead.
    rng:
        Coordinator-side noise generator.  Defaults (at bind) to a child
        spawned from the copy manager's fresh-randomness pool, so the
        noise stream — like replacement RNGs — is a pure function of the
        estimator's seed and its publication count.
    """

    name = "private-aggregate"
    identity_decide = False

    def __init__(
        self,
        noise_scale: float = 0.05,
        switch_budget: int | None = None,
        on_exhausted: str = "retire",
        rng: np.random.Generator | None = None,
    ):
        require_positive_finite("noise_scale", noise_scale)
        if switch_budget is not None:
            require_count("switch_budget", switch_budget)
        if on_exhausted not in ("retire", "raise"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.noise_scale = noise_scale
        self.switch_budget = switch_budget
        self.on_exhausted = on_exhausted
        self._rng = rng
        self._noise: float | None = None
        self.publications = 0
        self.generations = 0
        self._bound: CopyManager | None = None

    def bind(self, copies: CopyManager) -> None:
        rebind = getattr(self, "_bound", None) is copies
        super().bind(copies)
        if rebind:
            return
        if self.switch_budget is None:
            self.switch_budget = default_switch_budget(copies.count)
        if self._rng is None:
            # One child from the fresh pool; subsequent replacement
            # draws stay on the pool's own derivation chain.
            self._rng = copies.replacement_rng()
        self._noise = float(self._rng.laplace(0.0, self.noise_scale))

    def probe_indices(self, copies: CopyManager) -> tuple[int, ...]:
        return tuple(range(copies.count))

    def decide(self, estimates: Sequence[float]) -> float:
        if self._noise is None:
            raise RuntimeError(
                "PrivateAggregateDiscipline used before bind(); construct "
                "the estimator with discipline=... or call set_discipline"
            )
        # Probe paths deliver a float64 ndarray (CopyManager.estimate_all
        # and the backends now return arrays), so no conversion is needed.
        return float(np.median(estimates)) * (1.0 + self._noise)

    def publish(self, band: BandPolicy, estimate: float) -> float:
        return band.publish_aggregate(estimate)

    def on_publish(
        self, copies: CopyManager, switches: int, replace=None
    ) -> None:
        # AboveThreshold reset: fresh epoch noise, one budget step spent
        # by every copy (they all contributed to the released aggregate).
        self.publications += 1
        self._noise = float(self._rng.laplace(0.0, self.noise_scale))
        tele = copies.telemetry
        if tele.enabled:
            _emit_svt_charge(tele, self, self.publications, "publication")
        if not _svt_exhausted(self, self.publications):
            return
        if self.on_exhausted == "raise":
            raise PrivacyBudgetExhaustedError(
                f"sparse-vector budget exhausted after {self.publications} "
                f"publications (switch_budget={self.switch_budget}); the "
                f"stream out-flipped the provisioned bound"
            )
        copies.refresh(replace=replace)
        self.generations += 1
        if tele.enabled:
            tele.emit(GenerationEvent(
                generation=self.generations, copies=copies.count,
            ))
            tele.metrics.counter(
                "generation_retires_total",
                "whole-set rebirths on budget exhaustion",
            ).inc()

    def budget_state(self) -> dict:
        state = _svt_budget_fields(self, self.publications)
        state["publications"] = self.publications
        return state


class DifferenceAggregateDiscipline(ProbeDiscipline):
    """DP publishing through a difference-estimator ladder (Attias 2022).

    The third probe discipline: publications are answered by the lowest
    live tier of a :class:`~repro.core.ladder.DifferenceLadder` —
    ``checkpoint + (median(tier) - base) * (1 + nu)`` with tier-scale
    Laplace noise, charged against the tier's own budget — and only a
    publication at the top of the ladder reads the strong copy group,
    pays one sparse-vector charge (``switch_budget`` accounting exactly
    as in :class:`PrivateAggregateDiscipline`), re-anchors every tier's
    base, and opens a new checkpoint window.

    Probe sets follow the ladder: between checkpoints only the current
    tier's (small) copy group is probed — the strong copies and the
    other tiers ride along as batch-fed "others" — and the checkpoint
    publication probes **all** groups, because anchoring needs every
    group's aggregate at the same stream position.  The backends fan
    either probe set out to whichever workers own the copies.

    Parameters
    ----------
    ladder:
        The :class:`~repro.core.ladder.DifferenceLadder` (tier sizes,
        noise tiers, capacities, spans).  Defaults to
        :func:`~repro.core.ladder.default_difference_ladder`.
    noise_scale:
        Relative Laplace scale of *strong* (checkpoint) publications.
    switch_budget:
        Strong-group sparse-vector budget: checkpoint publications per
        generation.  Defaults to ``strong_copies ** 2`` at bind.
    on_exhausted:
        ``"retire"`` (default) refreshes the whole copy set and opens a
        new generation when the strong budget runs out; ``"raise"``
        raises :class:`PrivacyBudgetExhaustedError`.
    rng:
        Coordinator noise generator; defaults (at bind) to a child of
        the copy manager's fresh pool, so the noise stream is a pure
        function of the estimator seed and the publication count.
    """

    name = "difference-ladder"
    identity_decide = False

    def __init__(
        self,
        ladder: DifferenceLadder | None = None,
        noise_scale: float = 0.05,
        switch_budget: int | None = None,
        on_exhausted: str = "retire",
        rng: np.random.Generator | None = None,
    ):
        require_positive_finite("noise_scale", noise_scale)
        if switch_budget is not None:
            require_count("switch_budget", switch_budget)
        if on_exhausted not in ("retire", "raise"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.ladder = ladder if ladder is not None \
            else default_difference_ladder()
        if not isinstance(self.ladder, DifferenceLadder):
            raise ValueError(
                f"ladder must be a DifferenceLadder, got {ladder!r}"
            )
        self.noise_scale = noise_scale
        self.switch_budget = switch_budget
        self.on_exhausted = on_exhausted
        self._rng = rng
        self._noise: float | None = None
        #: Stash of the decide() call that precedes a publication:
        #: (level, per-tier medians | diff, decision estimate).
        self._last: tuple | None = None
        self.publications = 0
        #: Sparse-vector charges actually paid by the strong group.
        self.strong_charges = 0
        self.generations = 0
        self._bound: CopyManager | None = None

    def bind(self, copies: CopyManager) -> None:
        bound = getattr(self, "_bound", None)
        if bound is not None:
            # Raises on a different manager; a same-manager rebind is a
            # no-op (the ladder is already fitted).
            super().bind(copies)
            return
        # Fit the ladder *before* committing any bound state, so a
        # rejected manager (too few copies, mismatched groups) leaves
        # both the discipline and the ladder reusable.
        self.ladder.bind(copies, strong_noise_scale=self.noise_scale)
        super().bind(copies)
        if self.switch_budget is None:
            self.switch_budget = default_switch_budget(
                self.ladder.strong_count
            )
        if self._rng is None:
            self._rng = copies.replacement_rng()
        self._noise = float(
            self._rng.laplace(0.0, self._noise_scale_at(self.ladder.level))
        )

    def _noise_scale_at(self, level) -> float:
        if level is STRONG:
            return self.noise_scale
        return self.ladder.tiers[level].noise_scale

    def probe_indices(self, copies: CopyManager) -> tuple[int, ...]:
        level = self.ladder.level
        if level is STRONG:
            # Checkpoint epoch: every group, so anchoring reads all
            # aggregates at the publication position.
            return tuple(range(copies.count))
        lo, hi = self.ladder.tier_slice(level)
        return tuple(range(lo, hi))

    def decide(self, estimates: Sequence[float]) -> float:
        if self._noise is None:
            raise RuntimeError(
                "DifferenceAggregateDiscipline used before bind(); "
                "construct the estimator with discipline=... or call "
                "set_discipline"
            )
        lad = self.ladder
        # Already a float64 ndarray on every internal path; asarray is a
        # no-op there and only exists for external list callers.
        arr = np.asarray(estimates, dtype=np.float64)
        if lad.level is STRONG:
            tier_medians = [
                float(np.median(arr[slice(*lad.tier_slice(j))]))
                for j in range(len(lad.tiers))
            ]
            slo, shi = lad.strong_slice
            y = float(np.median(arr[slo:shi])) * (1.0 + self._noise)
            self._last = (STRONG, tier_medians, y)
            return y
        diff = float(np.median(arr)) - lad.bases[lad.level]
        y = lad.checkpoint + diff * (1.0 + self._noise)
        self._last = (lad.level, diff, y)
        return y

    def publish(self, band: BandPolicy, estimate: float) -> float:
        return band.publish_aggregate(estimate)

    def on_publish(
        self, copies: CopyManager, switches: int, replace=None
    ) -> None:
        # The protocol publishes immediately after the decide() at the
        # crossing position, so the stash is the deciding read.
        level, payload, y = self._last
        lad = self.ladder
        tele = copies.telemetry
        self.publications += 1
        if level is STRONG:
            self.strong_charges += 1
            if tele.enabled:
                _emit_svt_charge(tele, self, self.strong_charges, "strong")
            if _svt_exhausted(self, self.strong_charges):
                # The exhausting publication opens no window: the whole
                # copy set is reborn, so anchoring to pre-refresh state
                # would be meaningless (and would overstate the
                # `checkpoints` introspection counter).
                if self.on_exhausted == "raise":
                    raise PrivacyBudgetExhaustedError(
                        f"strong sparse-vector budget exhausted after "
                        f"{self.strong_charges} checkpoint publications "
                        f"(switch_budget={self.switch_budget}); the stream "
                        f"out-flipped the provisioned bound"
                    )
                copies.refresh(replace=replace)
                self.generations += 1
                lad.invalidate()
                if tele.enabled:
                    tele.emit(GenerationEvent(
                        generation=self.generations, copies=copies.count,
                    ))
                    tele.metrics.counter(
                        "generation_retires_total",
                        "whole-set rebirths on budget exhaustion",
                    ).inc()
            else:
                lad.anchor(y, payload)
        else:
            if lad.charge_tier(level, payload):
                # Tier budget exhausted: rebirth that tier's group alone;
                # the ladder already points at STRONG for re-anchoring.
                lo, hi = lad.tier_slice(level)
                copies.refresh(indices=range(lo, hi), replace=replace)
        self._noise = float(
            self._rng.laplace(0.0, self._noise_scale_at(lad.level))
        )

    def budget_state(self) -> dict:
        # The strong budget is paid in checkpoints, not publications.
        state = _svt_budget_fields(self, self.strong_charges)
        state["publications"] = self.publications
        state["strong_charges"] = self.strong_charges
        state["publications_per_charge"] = round(
            self.publications / self.strong_charges, 3
        ) if self.strong_charges else 0.0
        state.update(self.ladder.state())
        return state


def dp_copy_count(flips: int, constant: float = 2.0, floor: int = 4) -> int:
    """The DP framework's copy count ``O(sqrt(lambda))`` for flip bound
    ``lambda`` — versus sketch switching's ``Theta(lambda)``."""
    if flips < 1:
        raise ValueError(f"flip bound must be >= 1, got {flips}")
    return max(floor, math.ceil(constant * math.sqrt(flips)))


def resolve_discipline(spec) -> ProbeDiscipline | None:
    """Normalise a discipline spec: None, name string, or instance.

    ``None`` passes through (keep the estimator's own discipline);
    ``"active"``/``"active-copy"``, ``"private"``/
    ``"private-aggregate"``/``"dp"``, and ``"dp-diff"``/
    ``"difference"``/``"difference-ladder"`` build the named discipline
    with defaults; a :class:`ProbeDiscipline` instance passes through.
    """
    if spec is None or isinstance(spec, ProbeDiscipline):
        return spec
    if isinstance(spec, str):
        if spec in ("active", "active-copy"):
            return ActiveCopyDiscipline()
        if spec in ("private", "private-aggregate", "dp"):
            return PrivateAggregateDiscipline()
        if spec in ("dp-diff", "difference", "difference-ladder"):
            return DifferenceAggregateDiscipline()
    raise ValueError(
        f"unknown probe discipline {spec!r}; expected None, 'active', "
        f"'private', 'dp-diff', or a ProbeDiscipline instance"
    )
