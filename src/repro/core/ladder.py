"""Difference-estimator ladders (Attias et al. 2022) for DP publishing.

"A Framework for Adversarial Streaming via Differential Privacy and
Difference Estimators" (Attias, Cohen, Shechner, Stemmer 2022) sharpens
the Hassidim et al. 2020 framework with one observation: most
publications do not need a fresh read of the *strong* estimator at all.
Between two strong publications the tracked value moves by at most a
band step or two, so a cheap **difference estimator** — an instance that
only has to track ``f(stream) - f(prefix)`` accurately *relative to the
difference* — suffices, and its privacy cost is charged against its own
(cheap) budget tier instead of the strong copies' sparse-vector budget.

This module owns the ladder **structure and coordinator state**; the
protocol adapter lives in
:class:`repro.core.disciplines.DifferenceAggregateDiscipline`:

* the **strong checkpoint** — the last group of the copy set holds the
  full-accuracy sketches.  A publication answered there charges one
  sparse-vector budget step (exactly a PR-4
  :class:`~repro.core.disciplines.PrivateAggregateDiscipline`
  publication), records the published aggregate as the *checkpoint*
  value, and re-anchors every tier's *base* — the tier's raw aggregate
  at the checkpoint position;
* a **geometric ladder of tiers** — each tier is a small group of
  cheaper copies.  Within a checkpoint window, tier ``j`` answers
  publications with ``checkpoint + (median(tier) - base_j) * (1 + nu)``:
  the same sketch instances are read at both endpoints, so the endpoint
  errors are strongly correlated and the estimate is accurate relative
  to the *growth* since the checkpoint, not the absolute value.  A tier
  serves while the accumulated difference stays inside its **band
  share** (``span * checkpoint``) and its per-window publication
  ``capacity``; exceeding either promotes the ladder to the next tier,
  and past the last tier the next publication reads the strong group —
  one sparse-vector charge, a fresh checkpoint, and the ladder drops
  back to tier 0;
* **per-tier budgets** — a tier of ``k`` copies publishing with Laplace
  scale ``b`` supports ``~k^2 * (b / b_strong)^2`` answers by the same
  advanced-composition accounting that sizes the strong budget (noisier
  answers cost each copy proportionally less privacy).  Exhausting a
  tier's budget refreshes that tier's group alone and forces the next
  publication to re-checkpoint (the reborn tier's base is meaningless
  until re-anchored).

Determinism across execution paths holds by the PR-4 argument extended
per group: every promotion, anchoring, and budget decision is a pure
function of the decision estimates at publication positions, and every
noise/replacement RNG draw happens on the coordinator keyed to the
publication count — so per-item, chunked, SerialEngine, and
ProcessEngine replays agree bit for bit.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass

from repro.obs import (
    NULL_TELEMETRY,
    LadderAnchorEvent,
    LadderInvalidateEvent,
    LadderPromoteEvent,
)

__all__ = [
    "DifferenceLadder",
    "LadderTier",
    "default_difference_ladder",
    "require_count",
    "require_positive_finite",
]

#: Sentinel level: publications are answered by the strong group.
STRONG = None


def require_positive_finite(name: str, value: float) -> None:
    """Eager scale validation (shared with :mod:`repro.core.disciplines`).

    ``numbers.Real`` rather than ``(int, float)`` so NumPy scalars from
    sizing arithmetic (``np.ceil``/``np.sqrt``) pass; bools and NaN —
    which sail through plain comparisons — do not.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Real) \
            or not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, "
                         f"got {value!r}")


def require_count(name: str, value, minimum: int = 1) -> None:
    """Eager copy/budget-count validation (shared across disciplines)."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral) \
            or value < minimum:
        raise ValueError(f"{name} must be an int >= {minimum}, "
                         f"got {value!r}")


@dataclass(frozen=True)
class LadderTier:
    """One difference-estimator tier: a copy group + its budget terms.

    Parameters
    ----------
    copies:
        Copy-group size of this tier (its noisy median width).
    noise_scale:
        Relative Laplace scale of publications answered here.  Tiers are
        meant to be *noisier* than the strong group — that is what makes
        their per-answer privacy cost cheap.
    capacity:
        Publications this tier may answer per checkpoint window before
        the ladder promotes past it.
    span:
        The tier's band share: the accumulated |difference| (relative to
        the checkpoint value) this tier may cover.  Geometric across the
        ladder — each tier roughly doubles the previous one's span.
    budget:
        Lifetime publications before the tier's copy group is refreshed
        (None: derived at bind from ``copies`` and the noise ratio by
        the scaled advanced-composition rule).
    """

    copies: int
    noise_scale: float
    capacity: int
    span: float
    budget: int | None = None

    def __post_init__(self):
        require_count("tier copies", self.copies)
        require_positive_finite("tier noise_scale", self.noise_scale)
        require_count("tier capacity", self.capacity)
        require_positive_finite("tier span", self.span)
        if self.budget is not None:
            require_count("tier budget", self.budget)


class DifferenceLadder:
    """Coordinator state of one difference-estimator ladder.

    Owns the tier specs, the copy-group slices (resolved at bind), the
    checkpoint/base anchoring, and the promotion/budget bookkeeping.
    The discipline asks it which group to probe and tells it about each
    publication; it never touches a sketch itself.
    """

    def __init__(self, tiers, span_scale_floor: float = 1.0) -> None:
        self.tiers: tuple[LadderTier, ...] = tuple(tiers)
        if not self.tiers:
            raise ValueError("a difference ladder needs at least one tier")
        require_positive_finite("span_scale_floor", span_scale_floor)
        #: Absolute floor on the promotion scale ``max(|checkpoint|,
        #: floor)``.  The default of 1.0 suits counting-style quantities
        #: (F0, moments), where it stops a near-zero first checkpoint
        #: from promoting every publication; installing the ladder on a
        #: tracker whose values live below 1 wants a smaller floor, or
        #: the tier spans silently turn from band shares into absolute
        #: thresholds.
        self.span_scale_floor = span_scale_floor
        count = len(self.tiers)
        #: Current answering level: a tier index, or STRONG (None) when
        #: the next publication must read the strong group.  Starts at
        #: STRONG — the first publication anchors the first checkpoint.
        self.level: int | None = STRONG
        #: The strong reference value published at the last checkpoint.
        self.checkpoint: float | None = None
        #: Per-tier raw aggregate at the checkpoint position.
        self.bases: list[float] = [0.0] * count
        #: Publications answered per tier inside the current window.
        self.window_spent: list[int] = [0] * count
        #: Lifetime publications per tier since its last group refresh.
        self.tier_spent: list[int] = [0] * count
        self.tier_generations: list[int] = [0] * count
        #: Checkpoint windows opened so far (strong publications).
        self.checkpoints = 0
        #: Resolved per-tier lifetime budgets (set at bind).
        self.tier_budgets: list[int] | None = None
        self._bound = None
        self._slices: list[tuple[int, int]] | None = None
        self._strong: tuple[int, int] | None = None

    # -- binding ---------------------------------------------------------

    def bind(self, copies, strong_noise_scale: float) -> None:
        """Resolve tier/strong copy-group slices against one manager.

        A grouped manager (``CopyManager.grouped``) must carry exactly
        ``len(tiers) + 1`` groups (tiers in order, strong last) whose
        sizes match the tier specs.  A homogeneous manager is
        partitioned from the front — tier copies first, the remainder
        is the strong group — which is what lets
        ``api.ingest(discipline="dp-diff")`` install a ladder on any
        switching estimator (no space win then, but the budget win
        stands).

        One ladder belongs to one estimator: its checkpoint/base/budget
        state is coordinator state of that estimator's stream, so
        binding a second copy manager is rejected (mirroring the
        discipline-level not-shareable guard).  No state is committed
        until validation succeeds, so a failed bind leaves the ladder
        reusable against a corrected manager.
        """
        bound = getattr(self, "_bound", None)
        if bound is not None and bound is not copies:
            raise ValueError(
                "DifferenceLadder is already bound to another estimator's "
                "copies; ladders are not shareable — build one per "
                "estimator"
            )
        slices = list(copies.group_slices)
        want = [t.copies for t in self.tiers]
        if len(slices) == len(self.tiers) + 1:
            got = [hi - lo for lo, hi in slices[:-1]]
            if got != want:
                raise ValueError(
                    f"copy-group sizes {got} do not match the ladder's "
                    f"tier sizes {want}"
                )
            tier_slices = slices[:-1]
            strong = slices[-1]
        elif len(slices) == 1:
            start = 0
            tier_slices = []
            for t in self.tiers:
                tier_slices.append((start, start + t.copies))
                start += t.copies
            if start >= copies.count:
                raise ValueError(
                    f"ladder tiers need {start} copies plus a non-empty "
                    f"strong group; the manager only has {copies.count}"
                )
            strong = (start, copies.count)
        else:
            raise ValueError(
                f"copy manager has {len(slices)} groups; a "
                f"{len(self.tiers)}-tier ladder needs {len(self.tiers) + 1} "
                f"(tiers in order, strong last) or one homogeneous group"
            )
        self._bound = copies
        self._slices = tier_slices
        self._strong = strong
        self.tier_budgets = [
            t.budget if t.budget is not None
            else t.copies * t.copies * max(
                1, round((t.noise_scale / strong_noise_scale) ** 2)
            )
            for t in self.tiers
        ]

    @property
    def _telemetry(self):
        """The bound manager's telemetry hub (no-op until bind)."""
        bound = getattr(self, "_bound", None)
        return bound.telemetry if bound is not None else NULL_TELEMETRY

    @property
    def strong_slice(self) -> tuple[int, int]:
        if self._strong is None:
            raise RuntimeError("DifferenceLadder used before bind()")
        return self._strong

    @property
    def strong_count(self) -> int:
        lo, hi = self.strong_slice
        return hi - lo

    def tier_slice(self, level: int) -> tuple[int, int]:
        if self._slices is None:
            raise RuntimeError("DifferenceLadder used before bind()")
        return self._slices[level]

    # -- publication bookkeeping -----------------------------------------

    def anchor(self, checkpoint: float, tier_medians) -> None:
        """Open a new checkpoint window from a strong publication."""
        self.checkpoint = float(checkpoint)
        self.bases = [float(m) for m in tier_medians]
        self.window_spent = [0] * len(self.tiers)
        self.checkpoints += 1
        self.level = 0
        tele = self._telemetry
        if tele.enabled:
            tele.emit(LadderAnchorEvent(
                checkpoint=self.checkpoint, checkpoints=self.checkpoints,
            ))
            tele.metrics.counter(
                "ladder_anchors_total", "checkpoint windows opened"
            ).inc()

    def invalidate(self) -> None:
        """Full copy-set refresh: all anchors are stale; re-checkpoint."""
        tele = self._telemetry
        if tele.enabled:
            tele.emit(LadderInvalidateEvent(
                checkpoint=float(self.checkpoint or 0.0),
            ))
        self.level = STRONG
        self.checkpoint = None
        self.bases = [0.0] * len(self.tiers)
        self.window_spent = [0] * len(self.tiers)
        self.tier_spent = [0] * len(self.tiers)

    def charge_tier(self, level: int, diff: float) -> bool:
        """Account one publication answered at ``level``.

        Applies the promotion rules (band-share span and per-window
        capacity) and the tier's lifetime budget.  Returns True when the
        tier's budget is exhausted — the caller must refresh the tier's
        copy group, after which the ladder already points at STRONG (the
        reborn tier's base is meaningless until re-anchored).
        """
        tier = self.tiers[level]
        self.window_spent[level] += 1
        self.tier_spent[level] += 1
        if self.tier_spent[level] >= self.tier_budgets[level]:
            self.tier_spent[level] = 0
            self.tier_generations[level] += 1
            self.level = STRONG
            self._emit_promote(level, STRONG, "budget")
            return True
        scale = max(abs(self.checkpoint or 0.0), self.span_scale_floor)
        over_span = abs(diff) > tier.span * scale
        if over_span or self.window_spent[level] >= tier.capacity:
            nxt = level + 1
            self.level = nxt if nxt < len(self.tiers) else STRONG
            self._emit_promote(level, self.level,
                               "span" if over_span else "capacity")
        return False

    def _emit_promote(self, from_level, to_level, reason: str) -> None:
        tele = self._telemetry
        if tele.enabled:
            tele.emit(LadderPromoteEvent(
                from_level="strong" if from_level is STRONG else from_level,
                to_level="strong" if to_level is STRONG else to_level,
                reason=reason,
            ))
            tele.metrics.counter(
                "ladder_promotions_total", "tier handoffs by reason"
            ).inc()

    def state(self) -> dict:
        """Introspection payload folded into the discipline's budget dict."""
        return {
            "level": "strong" if self.level is STRONG else self.level,
            "checkpoints": self.checkpoints,
            "tier_copies": [t.copies for t in self.tiers],
            "tier_capacities": [t.capacity for t in self.tiers],
            "tier_budgets": list(self.tier_budgets or []),
            "tier_publications": list(self.tier_spent),
            "tier_generations": list(self.tier_generations),
        }


def default_difference_ladder() -> DifferenceLadder:
    """The stock two-tier geometric ladder.

    Tier 0 (cheapest, noisiest) serves small differences — up to 35% of
    the checkpoint value and 8 publications per window; tier 1 doubles
    the span at half the capacity and half the noise.  Past it, the
    strong group re-checkpoints.  Sized so a homogeneous copy set of
    ~10+ copies can host it (6 tier copies + the strong remainder).
    """
    return DifferenceLadder([
        LadderTier(copies=3, noise_scale=0.10, capacity=8, span=0.35),
        LadderTier(copies=3, noise_scale=0.05, capacity=4, span=0.70),
    ])
