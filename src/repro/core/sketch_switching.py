"""Sketch switching (Algorithm 1, Lemma 3.6) — the first generic framework.

Maintain ``lambda`` independent instances of a static strong tracker; only
one instance is *active* at a time.  The published output changes only when
the active instance's estimate drifts multiplicatively away from it; at
that moment the algorithm publishes the (eps/2)-rounded fresh estimate,
**burns** the active instance (its randomness is now correlated with the
adversary's view), and activates the next one.  Correctness: between
switches the adversary learns nothing about the active instance beyond the
already-published value, so each instance faces an (adaptively chosen but)
fixed stream, to which its static tracking guarantee applies; the flip
number bounds how many switches can ever happen.

Two modes:

* ``restart=False`` — verbatim Algorithm 1 with ``copies = lambda``;
* ``restart=True`` — the Theorem 4.1 optimization: a ring of
  ``O(eps^-1 log eps^-1)`` copies, each restarted after use.  A restarted
  copy only sees a suffix of the stream, but it is next activated after the
  tracked norm has grown by ``(1+eps/2)^copies``, at which point the missed
  prefix is an O(eps) fraction of the current mass.  Requires the tracked
  function to be a monotone norm-like quantity (true for the Fp/F0/L2 uses
  in the paper); do not combine with turnstile streams.

Both modes expose ``switches`` and ``space_bits`` so the experiments can
verify the switch count against the flip-number bound and account space.

Batched ingestion (``update_chunk`` / ``update_batch``): all copies are
fed a whole chunk through their vectorized ``update_batch`` and the
publish band is checked once at the chunk boundary.  If the boundary
estimate is still inside the band, nothing is published — which is
exactly what the per-item protocol would have concluded whenever the
tracked quantity is monotone (the band edges only move toward the
published value, so a crossing cannot appear and then un-appear inside a
chunk).  If the boundary estimate has left the band, the state is
restored from a snapshot taken before the batch feed and the chunk is
*bisected*: each half goes back through the same batched discipline, and
only leaf-sized runs (``REPLAY_LEAF`` updates) around the actual crossing
are replayed per item — so every mid-chunk switch, publication, burn, and
ring restart happens exactly as in the per-item protocol, at
``O(log chunk)`` extra batch feeds instead of a full per-item replay.
Published outputs and switch counts are bit-for-bit identical whenever
the inner sketches' ``update_batch`` reproduces the per-item state
exactly — true for the exact-state sketches (KMV, HLL, CountMin, F1,
the exact baselines); float-accumulating sketches (AMS, p-stable,
CountSketch) match only up to floating-point summation order, so a
boundary query within an ulp of the band edge can in principle resolve
differently than the per-item path.  The equivalence test in
``tests/test_batched_ingestion.py`` pins the exact-state case.  For
non-monotone trackers a transient band exit that fully reverts within
one chunk is coalesced away; the adversarial game therefore always runs
per item (adaptivity needs round granularity), and batching is reserved
for oblivious replay.

The parallel execution engine (:mod:`repro.engine`) drives the same
protocol with the copies sharded across worker processes: chunk feeds
fan out per copy, the publish-band check stays at chunk boundaries on
the coordinator, and a crossing chunk falls back to the identical bisect
discipline (the leaf run steps only the *active* copy per item — band
decisions depend on no other copy — then batch-catches the rest up to
the switch position).  The hooks it shares with the serial path are
:func:`within_band` and :meth:`SketchSwitchingEstimator._replacement_rng`,
so published outputs, switch counts, and restart RNG draws are identical
by construction.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.core.rounding import round_to_power
from repro.sketches.base import Sketch, SketchFactory, as_batch_arrays, spawn_rngs


def _unpack_chunk(items, deltas):
    """Accept a StreamChunk-like object or aligned arrays."""
    if deltas is None and hasattr(items, "items") and hasattr(items, "deltas"):
        return items.items, items.deltas
    return items, deltas


#: Below this many updates a crossing run is replayed per item instead of
#: bisected further; keeps recursion depth and snapshot count small while
#: bounding the per-item work triggered by one switch.
REPLAY_LEAF = 64


def within_band(published: float, estimate: float, eps: float) -> bool:
    """Is ``published`` inside ``(1 ± eps/2)`` of ``estimate``?

    The Algorithm 1 switch predicate, shared by the serial estimator and
    the execution engine's sharded drivers (:mod:`repro.engine.executor`)
    so both sides resolve a boundary check identically.
    """
    lo, hi = sorted(((1 - eps / 2) * estimate, (1 + eps / 2) * estimate))
    return lo <= published <= hi


class SketchExhaustedError(RuntimeError):
    """All sketch copies were burned: the flip-number budget was exceeded.

    Under the theorems' preconditions this happens only with probability
    delta; in experiments it signals an undersized ``copies`` parameter.
    """


def restart_ring_size(eps: float, constant: float = 2.0) -> int:
    """The Theorem 4.1 ring size Theta(eps^-1 log eps^-1).

    Sized so the norm grows by ``(1+eps/2)^size >= 100/eps`` between
    reuses of a slot, making the missed prefix an eps/100 fraction.
    """
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0,1), got {eps}")
    size = math.ceil(constant * math.log(100.0 / eps) / math.log1p(eps / 2))
    return max(4, size)


class SketchSwitchingEstimator(Sketch):
    """Algorithm 1: adversarially robust g-estimation by sketch switching.

    Parameters
    ----------
    factory:
        Builds one independent static tracker per call (already sized for
        the target (eps0, delta0) of Lemma 3.6).
    copies:
        Number of instances: the flip-number bound ``lambda_{eps/20,m}(g)``
        in plain mode, or the restart ring size in restart mode.
    eps:
        The overall approximation parameter; switches trigger when the
        published value leaves ``(1 ± eps/2)`` of the active estimate.
    rng:
        Seeds the independent copies.
    restart:
        Enable the Theorem 4.1 ring-restart optimization.
    on_exhausted:
        ``"raise"`` (default) raises :class:`SketchExhaustedError` when all
        copies are burned in plain mode; ``"clamp"`` keeps the last copy
        active (useful for measuring failure modes in experiments).
    """

    def __init__(
        self,
        factory: SketchFactory,
        copies: int,
        eps: float,
        rng: np.random.Generator,
        restart: bool = False,
        on_exhausted: str = "raise",
    ):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        if on_exhausted not in ("raise", "clamp"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.eps = eps
        self.restart = restart
        self.on_exhausted = on_exhausted
        self._rngs = spawn_rngs(rng, copies + 1)
        self._fresh_rng = self._rngs[copies]
        self._factory = factory
        self._sketches = [factory(r) for r in self._rngs[:copies]]
        self.supports_deletions = all(
            s.supports_deletions for s in self._sketches
        ) and not restart
        self._rho = 0
        self._published = 0.0
        self.switches = 0

    @property
    def copies(self) -> int:
        return len(self._sketches)

    @property
    def active_index(self) -> int:
        return self._rho

    def update(self, item: int, delta: int = 1) -> None:
        for s in self._sketches:
            s.update(item, delta)
        active = self._sketches[self._rho % len(self._sketches)]
        y = active.query()
        if self._within_band(y):
            return
        # Publish the rounded fresh estimate from the (now burned) active
        # copy, then advance.
        self._published = round_to_power(y, self.eps / 2) if y != 0 else 0.0
        self.switches += 1
        self._advance()

    def update_chunk(self, items, deltas=None) -> None:
        """Batched ingestion of one chunk (see the module docstring).

        Feeds every copy via its vectorized ``update_batch`` and checks
        the publish band once, at the chunk boundary.  A chunk whose
        boundary estimate crossed the band is replayed per item from a
        pre-feed snapshot, reproducing the per-item switch sequence
        exactly (including ring restarts and their RNG draws).
        """
        items, deltas = _unpack_chunk(items, deltas)
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        if len(items) <= REPLAY_LEAF:
            for item, delta in zip(items.tolist(), deltas.tolist()):
                self.update(item, delta)
            return
        snapshot = self._snapshot()
        for s in self._sketches:
            s.update_batch(items, deltas)
        active = self._sketches[self._rho % len(self._sketches)]
        if self._within_band(active.query()):
            return
        # The band was crossed somewhere inside this chunk: restore the
        # pre-chunk state and bisect, so only the leaf-sized run around
        # the crossing is replayed per item and switches land exactly
        # where the per-item protocol puts them.
        self._restore(snapshot)
        mid = len(items) // 2
        self.update_chunk(items[:mid], deltas[:mid])
        self.update_chunk(items[mid:], deltas[mid:])

    def update_batch(self, items, deltas=None) -> None:
        """Sketch-contract alias for :meth:`update_chunk`."""
        self.update_chunk(items, deltas)

    def _snapshot(self):
        return (
            [s.snapshot() for s in self._sketches],
            self._rho,
            self._published,
            self.switches,
            copy.deepcopy(self._fresh_rng),
        )

    def _restore(self, snapshot) -> None:
        sketches, rho, published, switches, fresh_rng = snapshot
        self._sketches = sketches
        self._rho = rho
        self._published = published
        self.switches = switches
        self._fresh_rng = fresh_rng

    def _within_band(self, y: float) -> bool:
        """Is the published value inside (1 ± eps/2) of the active estimate?"""
        return within_band(self._published, y, self.eps)

    def _replacement_rng(self) -> np.random.Generator:
        """Derive the next restarted copy's RNG from the fresh-randomness pool.

        Uses the same ``spawn_rngs`` derivation that seeded the initial
        copies, keeping the independence argument (Lemma 3.6) uniform
        across original and restarted instances.  The engine's parallel
        driver calls this on the coordinator so the RNG sequence — and
        therefore every restarted copy — is bit-for-bit the serial one.
        """
        return spawn_rngs(self._fresh_rng, 1)[0]

    def _advance(self) -> None:
        if self.restart:
            burned = self._rho % len(self._sketches)
            self._sketches[burned] = self._factory(self._replacement_rng())
            self._rho += 1
            return
        if self._rho + 1 >= len(self._sketches):
            if self.on_exhausted == "raise":
                raise SketchExhaustedError(
                    f"all {len(self._sketches)} copies burned after "
                    f"{self.switches} switches; flip-number budget exceeded"
                )
            return  # clamp: keep using the last copy
        self._rho += 1

    def query(self) -> float:
        return self._published

    def space_bits(self) -> int:
        return sum(s.space_bits() for s in self._sketches) + 128


class AdditiveSwitchingEstimator(Sketch):
    """Sketch switching for *additively* tracked functions (entropy).

    Identical protocol with the multiplicative band replaced by
    ``|published - estimate| <= eps/2`` and rounding to multiples of
    ``eps/2``.  Used by the robust entropy algorithm, where the paper's
    multiplicative machinery is applied to ``g = 2^H`` — additive eps on H
    is exactly multiplicative ``2^(+-eps)`` on g, so the flip-number bound
    of Proposition 7.2 carries over.
    """

    def __init__(
        self,
        factory: SketchFactory,
        copies: int,
        eps: float,
        rng: np.random.Generator,
        on_exhausted: str = "raise",
    ):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if on_exhausted not in ("raise", "clamp"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.eps = eps
        self.on_exhausted = on_exhausted
        self._sketches = [factory(r) for r in spawn_rngs(rng, copies)]
        self.supports_deletions = all(
            s.supports_deletions for s in self._sketches
        )
        self._rho = 0
        self._published = 0.0
        self.switches = 0

    @property
    def copies(self) -> int:
        return len(self._sketches)

    def update(self, item: int, delta: int = 1) -> None:
        for s in self._sketches:
            s.update(item, delta)
        y = self._sketches[min(self._rho, len(self._sketches) - 1)].query()
        if abs(self._published - y) <= self.eps / 2:
            return
        step = self.eps / 2
        self._published = round(y / step) * step
        self.switches += 1
        if self._rho + 1 >= len(self._sketches):
            if self.on_exhausted == "raise":
                raise SketchExhaustedError(
                    f"all {len(self._sketches)} copies burned after "
                    f"{self.switches} switches"
                )
        else:
            self._rho += 1

    def update_chunk(self, items, deltas=None) -> None:
        """Batched ingestion with the additive band checked per chunk.

        Same discipline as :meth:`SketchSwitchingEstimator.update_chunk`:
        batch-feed all copies, check ``|published - estimate| <= eps/2``
        at the boundary, and replay the crossing chunk per item from a
        snapshot.  Entropy is not monotone, so a transient band exit that
        fully reverts within a chunk is coalesced; oblivious replay
        accepts this (the adversarial game stays per item).
        """
        items, deltas = _unpack_chunk(items, deltas)
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        if len(items) <= REPLAY_LEAF:
            for item, delta in zip(items.tolist(), deltas.tolist()):
                self.update(item, delta)
            return
        snapshot = (
            [s.snapshot() for s in self._sketches],
            self._rho,
            self._published,
            self.switches,
        )
        for s in self._sketches:
            s.update_batch(items, deltas)
        y = self._sketches[min(self._rho, len(self._sketches) - 1)].query()
        if abs(self._published - y) <= self.eps / 2:
            return
        self._sketches, self._rho, self._published, self.switches = snapshot
        mid = len(items) // 2
        self.update_chunk(items[:mid], deltas[:mid])
        self.update_chunk(items[mid:], deltas[mid:])

    def update_batch(self, items, deltas=None) -> None:
        """Sketch-contract alias for :meth:`update_chunk`."""
        self.update_chunk(items, deltas)

    def query(self) -> float:
        return self._published

    def space_bits(self) -> int:
        return sum(s.space_bits() for s in self._sketches) + 128
