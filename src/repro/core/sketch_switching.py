"""Sketch switching (Algorithm 1, Lemma 3.6) — one protocol, many bands.

Every switching construction in the paper is the same loop: feed every
copy of a static tracker, compare the published value against the active
copy's estimate, and on a crossing publish a rounded fresh estimate,
**burn** the active copy (its randomness is now correlated with the
adversary's view), and activate the next one.  Correctness: between
switches the adversary learns nothing about the active instance beyond
the already-published value, so each instance faces an (adaptively
chosen but) fixed stream, to which its static tracking guarantee
applies; the flip number bounds how many switches can ever happen.

This module implements that loop **once**, layered over three orthogonal
pieces:

* :mod:`repro.core.bands` — the :class:`~repro.core.bands.BandPolicy`
  deciding *when* to switch and *what* to publish: multiplicative
  ``(1 ± eps/2)`` with power-of-``(1+eps/2)`` rounding (F0/Fp/L2),
  additive ``± eps/2`` with step rounding (entropy), or the epoch band
  driving the heavy-hitters construction;
* :mod:`repro.core.copies` — the :class:`~repro.core.copies.CopyManager`
  owning the copy lifecycle: allocation, burn-and-advance, the
  Theorem 4.1 restart ring, retirement, and replacement-RNG derivation;
* :mod:`repro.core.disciplines` — the
  :class:`~repro.core.disciplines.ProbeDiscipline` deciding *which
  copies* a publish decision reads and what a publication does to them:
  Algorithm 1's active-copy probe-and-burn, the DP framework's private
  aggregate over all copies (Hassidim et al. 2020) with sparse-vector
  budget accounting, or the difference-estimator ladder (Attias et al.
  2022, :mod:`repro.core.ladder`) whose probe set walks heterogeneous
  copy *groups* — the current cheap tier between checkpoints, every
  group at a checkpoint.

:class:`SwitchingEstimator` composes ``band + copies + discipline`` into
the paper's estimator; :class:`SketchSwitchingEstimator`
(multiplicative) and :class:`AdditiveSwitchingEstimator` (additive)
survive as thin aliases.  A new robustness scheme — DP aggregation over
all copies, importance sampling — is one new :class:`BandPolicy` and/or
one new :class:`~repro.core.disciplines.ProbeDiscipline`, not a fifth
hand-rolled loop (:mod:`repro.robust.dp` is the existence proof).

Two copy-budget modes:

* ``restart=False`` — verbatim Algorithm 1 with ``copies = lambda``;
* ``restart=True`` — the Theorem 4.1 optimization: a ring of
  ``O(eps^-1 log eps^-1)`` copies, each restarted after use.  A restarted
  copy only sees a suffix of the stream, but it is next activated after
  the tracked norm has grown by ``(1+eps/2)^copies``, at which point the
  missed prefix is an O(eps) fraction of the current mass.  Requires the
  tracked function to be a monotone norm-like quantity (true for the
  Fp/F0/L2 uses in the paper); do not combine with turnstile streams.

Batched ingestion (``update_chunk`` / ``update_batch``) drives the same
:class:`SwitchingProtocol` the execution engine uses, over an in-process
:class:`~repro.core.copies.LocalCopyBackend`: the discipline's *probe
set* is probed first (the active copy alone for Algorithm 1, every copy
for the DP aggregate), the publish band is checked once at the chunk
boundary, and the remaining copies receive one batch feed per clean
chunk.  A crossing chunk is rolled back and
resolved on the raw updates by snapshot bisection of the probed copies —
per-item exact for bisectable bands (multiplicative/epoch over monotone
quantities), cell-granularity coalescing for the additive band (see
:mod:`repro.core.bands`) — after which the remaining copies
batch-catch-up to each switch position.  Published outputs and switch counts are bit-for-bit identical
to the per-item protocol whenever the inner sketches' ``update_batch``
reproduces per-item state exactly (true for the exact-state sketches:
KMV, HLL, CountMin, F1, the exact baselines; float accumulators match up
to summation order).  For non-monotone trackers (entropy) a transient
band exit that fully reverts within one *clean* chunk is coalesced away
— the band is only consulted at the boundary — so the adversarial game
always runs per item (adaptivity needs round granularity) and batching
is reserved for oblivious replay.

The parallel execution engine (:mod:`repro.engine`) runs the identical
:class:`SwitchingProtocol` with the copies sharded across worker
processes; because serial chunked ingestion and both engines share one
drive loop, one band implementation, and one replacement-RNG derivation
(:meth:`CopyManager.replacement_rng`, always called on the coordinator),
their published outputs and switch counts agree by construction.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.bands import (
    AdditiveBand,
    BandPolicy,
    MultiplicativeBand,
    relative_within,
)
from repro.core.copies import (
    CopyManager,
    LocalCopyBackend,
    SketchExhaustedError,
)
from repro.core.disciplines import ActiveCopyDiscipline, ProbeDiscipline
from repro.obs import BandTestEvent, SwitchEvent
from repro.sketches.base import Sketch, SketchFactory, aggregate_batch, as_batch_arrays

__all__ = [
    "AdditiveSwitchingEstimator",
    "REPLAY_LEAF",
    "SketchExhaustedError",
    "SketchSwitchingEstimator",
    "SwitchingEstimator",
    "SwitchingProtocol",
    "restart_ring_size",
    "within_band",
]


def _unpack_chunk(items, deltas):
    """Accept a StreamChunk-like object or aligned arrays."""
    if deltas is None and hasattr(items, "items") and hasattr(items, "deltas"):
        return items.items, items.deltas
    return items, deltas


#: Below this many updates a crossing run is scanned per item instead of
#: bisected further; keeps recursion depth and snapshot count small while
#: bounding the per-item work triggered by one switch.
REPLAY_LEAF = 64


def within_band(published: float, estimate: float, eps: float) -> bool:
    """Is ``published`` inside ``(1 ± eps/2)`` of ``estimate``?

    The Algorithm 1 switch predicate; kept as a convenience alias of
    ``MultiplicativeBand(eps).within`` for existing callers.
    """
    return relative_within(published, estimate, eps / 2)


def restart_ring_size(eps: float, constant: float = 2.0) -> int:
    """The Theorem 4.1 ring size Theta(eps^-1 log eps^-1).

    Sized so the norm grows by ``(1+eps/2)^size >= 100/eps`` between
    reuses of a slot, making the missed prefix an eps/100 fraction.
    """
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0,1), got {eps}")
    size = math.ceil(constant * math.log(100.0 / eps) / math.log1p(eps / 2))
    return max(4, size)


class SwitchingEstimator(Sketch):
    """The generic switching estimator: ``band policy x copy manager``.

    Parameters
    ----------
    factory:
        Builds one independent static tracker per call (already sized for
        the target (eps0, delta0) of Lemma 3.6).  Ignored when ``copies``
        is a pre-built :class:`~repro.core.copies.CopyManager`.
    copies:
        Instance count (int) or a pre-built
        :class:`~repro.core.copies.CopyManager`.
    eps:
        Approximation parameter; only consulted when ``band`` is omitted
        (defaulting to the Algorithm 1 multiplicative band).
    rng:
        Seeds the copies (int form only).
    band:
        The :class:`~repro.core.bands.BandPolicy` deciding switches and
        publications.  Defaults to ``MultiplicativeBand(eps)``.
    discipline:
        The :class:`~repro.core.disciplines.ProbeDiscipline` deciding
        which copies a publish decision reads and what a publication
        does to them.  Defaults to the Algorithm 1
        :class:`~repro.core.disciplines.ActiveCopyDiscipline`.
    restart, on_exhausted:
        Copy-lifecycle knobs, forwarded to the
        :class:`~repro.core.copies.CopyManager` (int form only).
    stacked:
        Forwarded to the :class:`~repro.core.copies.CopyManager` (int
        form only): whether eligible homogeneous copy groups fuse into
        stacked arrays with a shared per-chunk hash pass.  ``False``
        forces the bit-for-bit-identical per-object path.
    """

    def __init__(
        self,
        factory: SketchFactory | None = None,
        copies: int | CopyManager = None,
        eps: float | None = None,
        rng: np.random.Generator | None = None,
        band: BandPolicy | None = None,
        discipline: ProbeDiscipline | None = None,
        restart: bool = False,
        on_exhausted: str = "raise",
        stacked: bool = True,
    ):
        if band is None:
            if eps is None:
                raise ValueError("provide a band policy or an eps")
            band = MultiplicativeBand(eps)
        self.band = band
        self.eps = getattr(band, "eps", eps)
        if isinstance(copies, CopyManager):
            self._copies = copies
        else:
            if factory is None or copies is None or rng is None:
                raise ValueError(
                    "provide factory/copies/rng, or a pre-built CopyManager"
                )
            self._copies = CopyManager(
                factory, copies, rng, restart=restart,
                on_exhausted=on_exhausted, stacked=stacked,
            )
        self.discipline = discipline if discipline is not None \
            else ActiveCopyDiscipline()
        self.discipline.bind(self._copies)
        self.supports_deletions = (
            all(s.supports_deletions for s in self._copies.sketches)
            and not self._copies.restart
        )
        self._published = 0.0
        self.switches = 0
        #: Any update ingested yet?  Guards set_discipline: a switch-free
        #: prefix still carries copy state (and observable publications)
        #: the new discipline's accounting would not cover.
        self._ingested = False

    def set_discipline(self, discipline: ProbeDiscipline) -> None:
        """Install a probe discipline (``api.ingest(discipline=...)``).

        Must happen before any updates: a mid-stream discipline change
        would mix two protocols' published-value semantics — and for the
        DP discipline, start the privacy-budget accounting over a
        history it never covered.
        """
        if self._ingested or self.switches or self._published:
            raise ValueError(
                "cannot change the probe discipline mid-stream; build the "
                "estimator with discipline=... instead"
            )
        discipline.bind(self._copies)
        self.discipline = discipline

    # -- compatibility / introspection surfaces --------------------------

    @property
    def copies(self) -> int:
        return self._copies.count

    @property
    def active_index(self) -> int:
        return self._copies.active_index

    @property
    def restart(self) -> bool:
        return self._copies.restart

    @property
    def on_exhausted(self) -> str:
        return self._copies.on_exhausted

    @property
    def _sketches(self) -> list[Sketch]:
        """The live copy list (tests and planners introspect it)."""
        return self._copies.sketches

    @property
    def _factory(self) -> SketchFactory:
        return self._copies.factory

    def _within_band(self, y: float) -> bool:
        """Is the published value still covering the active estimate?"""
        return self.band.within(self._published, y)

    def _replacement_rng(self) -> np.random.Generator:
        """Coordinator-side replacement seeding; see
        :meth:`CopyManager.replacement_rng`."""
        return self._copies.replacement_rng()

    # -- the per-item protocol -------------------------------------------

    def update(self, item: int, delta: int = 1) -> None:
        self._ingested = True
        for s in self._copies.sketches:
            s.update(item, delta)
        d = self.discipline
        y = d.decide(self._copies.estimate_all(d.probe_indices(self._copies)))
        if self.band.within(self._published, y):
            return
        # Publish the rounded decision estimate, then apply the
        # discipline's copy-lifecycle consequence (burn-and-advance for
        # the active-copy discipline, budget accounting for DP).
        self._published = d.publish(self.band, y)
        self.switches += 1
        d.on_publish(self._copies, self.switches)
        # Telemetry rides the switch branch only, so the in-band hot
        # path (the overwhelming majority of updates) pays nothing.
        tele = self._copies.telemetry
        if tele.enabled:
            tele.emit(SwitchEvent(
                published=self._published, estimate=y,
                switches=self.switches, discipline=d.name,
                band=self.band.name,
            ))
            tele.metrics.counter(
                "protocol_switches_total", "publications (copy switches)"
            ).inc()

    # -- chunked ingestion (the shared protocol, in-process) -------------

    def update_chunk(self, items, deltas=None) -> None:
        """Batched ingestion of one chunk (see the module docstring).

        Drives the same :class:`SwitchingProtocol` the execution engine
        uses, over an in-process backend and with no cross-chunk hoists:
        the active copy is probed, the band is checked at the boundary,
        and a crossing chunk is resolved exactly on the raw updates
        (including ring restarts and their RNG draws).
        """
        items, deltas = _unpack_chunk(items, deltas)
        backend = LocalCopyBackend(self._copies)
        try:
            SwitchingProtocol(self, backend).feed(items, deltas)
        finally:
            backend.close()

    def update_batch(self, items, deltas=None) -> None:
        """Sketch-contract alias for :meth:`update_chunk`."""
        self.update_chunk(items, deltas)

    def query(self) -> float:
        return self._published

    def space_bits(self) -> int:
        return sum(s.space_bits() for s in self._copies.sketches) + 128


class SketchSwitchingEstimator(SwitchingEstimator):
    """Algorithm 1 with the multiplicative ``(1 ± eps/2)`` band.

    Back-compat alias of ``SwitchingEstimator(band=MultiplicativeBand)``
    — the Theorem 4.1/5.1 configuration for F0/Fp/L2 tracking.
    """

    def __init__(
        self,
        factory: SketchFactory,
        copies: int,
        eps: float,
        rng: np.random.Generator,
        restart: bool = False,
        on_exhausted: str = "raise",
    ):
        super().__init__(
            factory, copies, eps, rng,
            band=MultiplicativeBand(eps),
            restart=restart, on_exhausted=on_exhausted,
        )


class AdditiveSwitchingEstimator(SwitchingEstimator):
    """Sketch switching for *additively* tracked functions (entropy).

    Back-compat alias of ``SwitchingEstimator(band=AdditiveBand)``: the
    identical protocol with ``|published - estimate| <= eps/2`` and
    rounding to multiples of ``eps/2``.  Used by the robust entropy
    algorithm, where the paper's multiplicative machinery is applied to
    ``g = 2^H`` — additive eps on H is exactly multiplicative
    ``2^(±eps)`` on g, so the flip-number bound of Proposition 7.2
    carries over.
    """

    def __init__(
        self,
        factory: SketchFactory,
        copies: int,
        eps: float,
        rng: np.random.Generator,
        on_exhausted: str = "raise",
    ):
        super().__init__(
            factory, copies, eps, rng,
            band=AdditiveBand(eps),
            on_exhausted=on_exhausted,
        )


# ----------------------------------------------------------------------
# The switching protocol driver (shared by serial chunking and engines)
# ----------------------------------------------------------------------


class SwitchingProtocol:
    """The chunk discipline of Algorithm 1 over a copy backend.

    Owns the protocol state transitions (published value, switch count,
    copy lifecycle consequences) on the coordinator; the backend owns
    the copies — in-process (:class:`~repro.core.copies.LocalCopyBackend`,
    used by ``update_chunk``) or sharded across forked workers
    (:mod:`repro.engine.executor`).  The estimator's
    :class:`~repro.core.disciplines.ProbeDiscipline` names the copies a
    band decision reads — the active copy alone for Algorithm 1, every
    copy for the DP private aggregate — so the driver probes *those*
    first and touches the remaining copies exactly once per clean chunk
    (or once per switch segment on a crossing chunk).

    The optional *hoists* — pre-aggregating each chunk once instead of
    once per copy, and dropping items every live copy has already seen —
    are supplied by the engine's shard planner, which verifies the inner
    sketches license them (``aggregation_invariant`` /
    ``duplicate_insensitive``); the serial ``update_chunk`` path runs
    with hoists off.
    """

    def __init__(
        self,
        estimator: SwitchingEstimator,
        backend,
        seen_filter=None,
        aggregate_once: bool = False,
        unique_hint: bool = False,
    ):
        self._sw = estimator
        self._band = estimator.band
        self._disc = estimator.discipline
        self._copies = estimator._copies
        self._backend = backend
        self._seen = seen_filter
        self._aggregate_once = aggregate_once
        self._unique_hint = unique_hint
        self._items: np.ndarray | None = None
        self._deltas: np.ndarray | None = None
        self._tele = estimator._copies.telemetry
        #: Cumulative per-phase wall seconds, measured once per chunk (and
        #: once per switch segment on crossing chunks): probing the
        #: discipline's read set, the boundary band test, the non-probed
        #: fan-out feed, and copy replacement/publication bookkeeping.
        #: Surfaced through the engine sessions into ``IngestReport``.
        self.timings: dict[str, float] = {
            "probe": 0.0, "band_test": 0.0, "feed": 0.0, "replace": 0.0,
        }

    def _probes(self) -> tuple[int, ...]:
        return self._disc.probe_indices(self._copies)

    # -- feeding --------------------------------------------------------

    def feed(self, items, deltas=None, aggregated=None) -> None:
        """Ingest one chunk.

        ``aggregated`` optionally passes a precomputed
        ``aggregate_batch(items, deltas)`` result so a caller feeding the
        same chunk to several protocol instances (the epoch session) pays
        the aggregation once; it is only consulted on the aggregate-once
        probe path and ignored when the chunk must be split.
        """
        items, deltas = _unpack_chunk(items, deltas)
        items, deltas = as_batch_arrays(items, deltas)
        cap = self._backend.capacity
        if len(items) > cap:
            aggregated = None  # splits invalidate the precomputed aggregate
        for lo in range(0, len(items), cap):
            self._feed_one(items[lo:lo + cap], deltas[lo:lo + cap],
                           aggregated)

    def _feed_one(
        self, items: np.ndarray, deltas: np.ndarray, aggregated=None
    ) -> None:
        count = len(items)
        if count == 0:
            return
        sw = self._sw
        sw._ingested = True
        self._backend.stage(items, deltas)
        self._items, self._deltas = items, deltas
        if count <= REPLAY_LEAF:
            # Tiny chunks replay per item with the band checked every
            # update (no chunk-level coalescing), like the per-item path.
            self._drive_raw(0, count)
            return
        timings = self.timings
        probes = self._probes()
        uniq = None
        probed_sub = True
        tick = time.perf_counter()
        if self._seen is not None and int(deltas.min()) > 0:
            uniq = np.unique(items)
            fresh = self._seen.fresh(uniq)
            if len(fresh) == 0:
                # Every live copy has seen every item here: no copy's
                # state — hence no band check — can change.
                timings["probe"] += time.perf_counter() - tick
                return
            ys = self._backend.probe_sub(fresh, None, True, probes)
        elif self._aggregate_once:
            agg_items, agg_deltas = (
                aggregated if aggregated is not None
                else aggregate_batch(items, deltas)
            )
            ys = self._backend.probe_sub(
                agg_items, agg_deltas, self._unique_hint, probes
            )
        else:
            probed_sub = False
            ys = self._backend.probe_raw(probes)
        tock = time.perf_counter()
        timings["probe"] += tock - tick
        y = self._disc.decide(ys)
        clean = self._band.within(sw._published, y)
        tick = time.perf_counter()
        timings["band_test"] += tick - tock
        tele = self._tele
        if tele.enabled:
            # One event per chunk boundary, never per item.
            tele.emit(BandTestEvent(
                clean=clean, published=sw._published, estimate=y,
            ))
            tele.metrics.counter(
                "protocol_band_tests_total", "chunk-boundary band tests"
            ).inc()
            if not clean:
                tele.metrics.counter(
                    "protocol_crossing_chunks_total",
                    "chunks resolved by exact replay",
                ).inc()
        if clean:
            # Clean chunk (the common case): the probed copies already
            # have it; give the others the same pre-processed feed.  An
            # all-copy probe (the DP discipline) leaves no others — skip
            # the guaranteed no-op rather than pay one feed command per
            # worker for it.
            self._backend.keep_probed(probes)
            if len(probes) < self._copies.count:
                if probed_sub:
                    self._backend.feed_others_sub(probes)
                else:
                    self._backend.feed_others_raw(probes)
            if uniq is not None:
                self._seen.mark(uniq)
            timings["feed"] += time.perf_counter() - tick
            return
        # Crossed somewhere inside: rewind the probed copies and resolve
        # the switch positions exactly on the raw updates.
        self._backend.roll_probed(probes)
        self._drive_raw(0, count)

    def feed_spec(self, count: int) -> None:
        """Ingest one chunk the coordinator never materializes.

        The spec-shipped twin of :meth:`feed`: the workers hold the
        chunk (regenerated or memmapped from a broadcast
        :class:`~repro.streams.sources.ChunkSource` spec), so the
        coordinator drives the protocol knowing only the chunk *length*.
        ``backend.stage_spec(count)`` advances every worker's local
        source by one chunk; from there the raw-region ops — boundary
        probe, fan-out feed, bisection, leaf steps — all work by
        position against the workers' local arrays, so this mirrors
        :meth:`_feed_one`'s raw branch op for op and stays bit-for-bit
        equivalent.  The coordinator-side hoists (seen filter,
        aggregate-once) need the arrays and are structurally off here;
        the planner never enables them for a spec session.
        """
        if count == 0:
            return
        if self._seen is not None or self._aggregate_once:
            raise RuntimeError(
                "spec-shipped chunks cannot run coordinator-side hoists; "
                "build the protocol with seen_filter=None, "
                "aggregate_once=False"
            )
        if count > self._backend.capacity:
            raise ValueError(
                f"spec chunk of {count} updates exceeds backend capacity "
                f"{self._backend.capacity}"
            )
        sw = self._sw
        sw._ingested = True
        self._backend.stage_spec(count)
        self._items = self._deltas = None
        if count <= REPLAY_LEAF:
            self._drive_raw(0, count)
            return
        timings = self.timings
        probes = self._probes()
        tick = time.perf_counter()
        ys = self._backend.probe_raw(probes)
        tock = time.perf_counter()
        timings["probe"] += tock - tick
        y = self._disc.decide(ys)
        clean = self._band.within(sw._published, y)
        tick = time.perf_counter()
        timings["band_test"] += tick - tock
        tele = self._tele
        if tele.enabled:
            tele.emit(BandTestEvent(
                clean=clean, published=sw._published, estimate=y,
            ))
            tele.metrics.counter(
                "protocol_band_tests_total", "chunk-boundary band tests"
            ).inc()
            if not clean:
                tele.metrics.counter(
                    "protocol_crossing_chunks_total",
                    "chunks resolved by exact replay",
                ).inc()
        if clean:
            self._backend.keep_probed(probes)
            if len(probes) < self._copies.count:
                self._backend.feed_others_raw(probes)
            timings["feed"] += time.perf_counter() - tick
            return
        self._backend.roll_probed(probes)
        self._drive_raw(0, count)

    def _drive_raw(self, lo: int, hi: int) -> None:
        """Resolve [lo, hi) exactly: locate each switch via the probed
        copies, then batch the remaining copies up to it.

        On entry no copy has seen [lo, hi).  The probed copies advance
        through :meth:`_search`; after each located switch the other
        copies catch up to the switch position in one feed and the
        protocol continues with the discipline's (possibly changed)
        probe set.
        """
        sw = self._sw
        timings = self.timings
        switches_before = sw.switches
        pos = lo
        while pos < hi:
            probes = self._probes()
            all_probed = len(probes) == self._copies.count
            tick = time.perf_counter()
            crossing = self._search(pos, hi, probes)
            tock = time.perf_counter()
            timings["probe"] += tock - tick
            if crossing is None:
                if not all_probed:
                    self._backend.catch_up(pos, hi, probes)
                    timings["feed"] += time.perf_counter() - tock
                break
            cpos, y = crossing
            if not all_probed:
                self._backend.catch_up(pos, cpos + 1, probes)
                now = time.perf_counter()
                timings["feed"] += now - tock
                tock = now
            sw._published = self._disc.publish(self._band, y)
            sw.switches += 1
            self._disc.on_publish(
                self._copies, sw.switches, replace=self._backend.replace
            )
            tele = self._tele
            if tele.enabled:
                tele.emit(SwitchEvent(
                    published=sw._published, estimate=y,
                    switches=sw.switches, discipline=self._disc.name,
                    band=self._band.name, position=cpos,
                ))
                tele.metrics.counter(
                    "protocol_switches_total", "publications (copy switches)"
                ).inc()
            timings["replace"] += time.perf_counter() - tock
            pos = cpos + 1
        if self._seen is not None and sw.switches != switches_before:
            # A switch invalidates the filter: a replacement (or newly
            # active) copy was born mid-chunk and must re-see later
            # occurrences of items the older copies already absorbed.
            self._seen.reset()

    def _search(
        self, lo: int, hi: int, probes: tuple[int, ...]
    ) -> tuple[int, float] | None:
        """First band crossing in [lo, hi), reading only the probe set.

        The first item is stepped **per item**, exactly as the protocol
        would: right after a switch the new decision estimate can sit
        outside the just-published band (independent copies disagree;
        fresh SVT noise shifts the aggregate), and the per-item protocol
        switches again immediately — an exit a batch probe would
        coalesce once the estimate moves back into the band.  The rest
        of the range goes through snapshot bisection of the probed
        copies, treating an in-band cell boundary as a clean prefix.
        For a *bisectable* band (multiplicative or epoch over a monotone
        tracked quantity) that treatment is exact: after one in-band
        check every later crossing is one-sided and unique, so bisection
        pins the per-item switch position — and it stays exact under the
        private-aggregate discipline, whose within-epoch decision
        estimate (a fixed-noise scaling of the median of monotone copy
        estimates) is itself monotone.  For a non-bisectable band
        (additive/entropy — H oscillates) it is the documented
        coalescing rule applied at bisect-cell granularity: a transient
        excursion that enters and fully exits the band inside a cell
        whose boundary lands in band is coalesced, just as at chunk
        boundaries; for trajectories monotone across each cell the
        result is still per-item exact (the band is an interval).
        Crossing chunks are rare, and only the probed copies pay the
        search.

        Returns ``(position, estimate)`` with the probed copies fed
        through ``position`` (or through ``hi - 1`` if no crossing).
        """
        sw = self._sw
        y = self._disc.decide(self._backend.step_probed(lo, probes))
        if self._band.crossed(sw._published, y):
            return lo, y
        if lo + 1 >= hi:
            return None
        return self._bisect(lo + 1, hi, probes)

    def _bisect(
        self, lo: int, hi: int, probes: tuple[int, ...]
    ) -> tuple[int, float] | None:
        """Bisect for the unique one-sided crossing; leaves scan per item."""
        sw = self._sw
        if hi - lo <= REPLAY_LEAF:
            return self._scan(lo, hi, probes)
        mid = (lo + hi) // 2
        self._backend.snap_probed(probes)
        y = self._disc.decide(self._backend.feed_probed(lo, mid, probes))
        if self._band.within(sw._published, y):
            self._backend.keep_probed(probes)
            return self._bisect(mid, hi, probes)
        self._backend.roll_probed(probes)
        return self._bisect(lo, mid, probes)

    def _scan(
        self, lo: int, hi: int, probes: tuple[int, ...]
    ) -> tuple[int, float] | None:
        """Per-item scan of a bisection leaf.

        Identity-decide disciplines with a single probed copy resolve
        the scan where the copy lives (one command, no per-item round
        trips); aggregating disciplines step the probe set per item and
        decide on the coordinator — leaves are at most ``REPLAY_LEAF``
        updates and crossing chunks are rare, so the round trips are
        bounded.
        """
        sw = self._sw
        if len(probes) == 1 and self._disc.identity_decide:
            return self._backend.scan_probed(
                lo, hi, probes[0], sw._published, self._band
            )
        for pos in range(lo, hi):
            y = self._disc.decide(self._backend.step_probed(pos, probes))
            if self._band.crossed(sw._published, y):
                return pos, y
        return None
