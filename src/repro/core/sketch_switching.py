"""Sketch switching (Algorithm 1, Lemma 3.6) — the first generic framework.

Maintain ``lambda`` independent instances of a static strong tracker; only
one instance is *active* at a time.  The published output changes only when
the active instance's estimate drifts multiplicatively away from it; at
that moment the algorithm publishes the (eps/2)-rounded fresh estimate,
**burns** the active instance (its randomness is now correlated with the
adversary's view), and activates the next one.  Correctness: between
switches the adversary learns nothing about the active instance beyond the
already-published value, so each instance faces an (adaptively chosen but)
fixed stream, to which its static tracking guarantee applies; the flip
number bounds how many switches can ever happen.

Two modes:

* ``restart=False`` — verbatim Algorithm 1 with ``copies = lambda``;
* ``restart=True`` — the Theorem 4.1 optimization: a ring of
  ``O(eps^-1 log eps^-1)`` copies, each restarted after use.  A restarted
  copy only sees a suffix of the stream, but it is next activated after the
  tracked norm has grown by ``(1+eps/2)^copies``, at which point the missed
  prefix is an O(eps) fraction of the current mass.  Requires the tracked
  function to be a monotone norm-like quantity (true for the Fp/F0/L2 uses
  in the paper); do not combine with turnstile streams.

Both modes expose ``switches`` and ``space_bits`` so the experiments can
verify the switch count against the flip-number bound and account space.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.rounding import round_to_power
from repro.sketches.base import Sketch, SketchFactory, spawn_rngs


class SketchExhaustedError(RuntimeError):
    """All sketch copies were burned: the flip-number budget was exceeded.

    Under the theorems' preconditions this happens only with probability
    delta; in experiments it signals an undersized ``copies`` parameter.
    """


def restart_ring_size(eps: float, constant: float = 2.0) -> int:
    """The Theorem 4.1 ring size Theta(eps^-1 log eps^-1).

    Sized so the norm grows by ``(1+eps/2)^size >= 100/eps`` between
    reuses of a slot, making the missed prefix an eps/100 fraction.
    """
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0,1), got {eps}")
    size = math.ceil(constant * math.log(100.0 / eps) / math.log1p(eps / 2))
    return max(4, size)


class SketchSwitchingEstimator(Sketch):
    """Algorithm 1: adversarially robust g-estimation by sketch switching.

    Parameters
    ----------
    factory:
        Builds one independent static tracker per call (already sized for
        the target (eps0, delta0) of Lemma 3.6).
    copies:
        Number of instances: the flip-number bound ``lambda_{eps/20,m}(g)``
        in plain mode, or the restart ring size in restart mode.
    eps:
        The overall approximation parameter; switches trigger when the
        published value leaves ``(1 ± eps/2)`` of the active estimate.
    rng:
        Seeds the independent copies.
    restart:
        Enable the Theorem 4.1 ring-restart optimization.
    on_exhausted:
        ``"raise"`` (default) raises :class:`SketchExhaustedError` when all
        copies are burned in plain mode; ``"clamp"`` keeps the last copy
        active (useful for measuring failure modes in experiments).
    """

    def __init__(
        self,
        factory: SketchFactory,
        copies: int,
        eps: float,
        rng: np.random.Generator,
        restart: bool = False,
        on_exhausted: str = "raise",
    ):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        if on_exhausted not in ("raise", "clamp"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.eps = eps
        self.restart = restart
        self.on_exhausted = on_exhausted
        self._rngs = spawn_rngs(rng, copies + 1)
        self._fresh_rng = self._rngs[copies]
        self._factory = factory
        self._sketches = [factory(r) for r in self._rngs[:copies]]
        self.supports_deletions = all(
            s.supports_deletions for s in self._sketches
        ) and not restart
        self._rho = 0
        self._published = 0.0
        self.switches = 0

    @property
    def copies(self) -> int:
        return len(self._sketches)

    @property
    def active_index(self) -> int:
        return self._rho

    def update(self, item: int, delta: int = 1) -> None:
        for s in self._sketches:
            s.update(item, delta)
        active = self._sketches[self._rho % len(self._sketches)]
        y = active.query()
        if self._within_band(y):
            return
        # Publish the rounded fresh estimate from the (now burned) active
        # copy, then advance.
        self._published = round_to_power(y, self.eps / 2) if y != 0 else 0.0
        self.switches += 1
        self._advance()

    def _within_band(self, y: float) -> bool:
        """Is the published value inside (1 ± eps/2) of the active estimate?"""
        lo, hi = sorted(((1 - self.eps / 2) * y, (1 + self.eps / 2) * y))
        return lo <= self._published <= hi

    def _advance(self) -> None:
        if self.restart:
            burned = self._rho % len(self._sketches)
            self._sketches[burned] = self._factory(
                np.random.default_rng(int(self._fresh_rng.integers(0, 2**62)))
            )
            self._rho += 1
            return
        if self._rho + 1 >= len(self._sketches):
            if self.on_exhausted == "raise":
                raise SketchExhaustedError(
                    f"all {len(self._sketches)} copies burned after "
                    f"{self.switches} switches; flip-number budget exceeded"
                )
            return  # clamp: keep using the last copy
        self._rho += 1

    def query(self) -> float:
        return self._published

    def space_bits(self) -> int:
        return sum(s.space_bits() for s in self._sketches) + 128


class AdditiveSwitchingEstimator(Sketch):
    """Sketch switching for *additively* tracked functions (entropy).

    Identical protocol with the multiplicative band replaced by
    ``|published - estimate| <= eps/2`` and rounding to multiples of
    ``eps/2``.  Used by the robust entropy algorithm, where the paper's
    multiplicative machinery is applied to ``g = 2^H`` — additive eps on H
    is exactly multiplicative ``2^(+-eps)`` on g, so the flip-number bound
    of Proposition 7.2 carries over.
    """

    def __init__(
        self,
        factory: SketchFactory,
        copies: int,
        eps: float,
        rng: np.random.Generator,
        on_exhausted: str = "raise",
    ):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if on_exhausted not in ("raise", "clamp"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.eps = eps
        self.on_exhausted = on_exhausted
        self._sketches = [factory(r) for r in spawn_rngs(rng, copies)]
        self.supports_deletions = all(
            s.supports_deletions for s in self._sketches
        )
        self._rho = 0
        self._published = 0.0
        self.switches = 0

    @property
    def copies(self) -> int:
        return len(self._sketches)

    def update(self, item: int, delta: int = 1) -> None:
        for s in self._sketches:
            s.update(item, delta)
        y = self._sketches[min(self._rho, len(self._sketches) - 1)].query()
        if abs(self._published - y) <= self.eps / 2:
            return
        step = self.eps / 2
        self._published = round(y / step) * step
        self.switches += 1
        if self._rho + 1 >= len(self._sketches):
            if self.on_exhausted == "raise":
                raise SketchExhaustedError(
                    f"all {len(self._sketches)} copies burned after "
                    f"{self.switches} switches"
                )
        else:
            self._rho += 1

    def query(self) -> float:
        return self._published

    def space_bits(self) -> int:
        return sum(s.space_bits() for s in self._sketches) + 128
