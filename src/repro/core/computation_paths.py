"""Computation paths (Lemma 3.8) — the second generic framework.

Keep a *single* instance of the static algorithm, but instantiated at a
tiny failure probability ``delta_0``, and publish only the epsilon-rounded
output sequence (Definition 3.7).  Because the rounded output changes at
most ``lambda`` times and takes one of ``O(eps^-1 log T)`` values per
change, a deterministic adversary's entire interaction is determined by
one of

    |S| = C(m, lambda) * O(eps^-1 log T)^lambda

fixed streams; union-bounding the static guarantee over S makes the single
instance simultaneously correct on every stream the adversary could
possibly produce.  The framework pays in ``log(1/delta_0) ~ lambda *
log(m eps^-1 log T)`` — a win exactly when the base algorithm's cost
depends mildly on delta (Theorems 1.2/4.2/4.3/4.4).

:func:`paths_log2_count` computes ``log2 |S|`` exactly;
:func:`required_delta0` divides the target delta by it in log space (the
numbers are astronomically small — e.g. ``n^{-(1/eps) log n}`` — so
experiments size base sketches from ``log2(1/delta_0)``, never from the
raw float, which would underflow).
"""

from __future__ import annotations

import math

from repro.core.rounding import RoundedSequence, num_rounded_values
from repro.sketches.base import Sketch


def paths_log2_count(m: int, flip_number: int, eps: float, value_range: float) -> float:
    """log2 of the number of adversarial computation paths |S|.

    ``log2 C(m, lambda) + lambda * log2 K`` with K the rounded-value count
    for outputs in [1/T, T] (Lemma 3.8's counting argument).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    lam = min(max(flip_number, 1), m)
    log2_binom = (
        math.lgamma(m + 1) - math.lgamma(lam + 1) - math.lgamma(m - lam + 1)
    ) / math.log(2)
    k = num_rounded_values(eps, value_range)
    return log2_binom + lam * math.log2(k)


def required_log2_delta0(
    delta: float, m: int, flip_number: int, eps: float, value_range: float
) -> float:
    """log2 of the per-path failure probability delta_0 = delta / |S|."""
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.log2(delta) - paths_log2_count(m, flip_number, eps, value_range)


def required_delta0(
    delta: float, m: int, flip_number: int, eps: float, value_range: float,
    floor: float = 1e-300,
) -> float:
    """delta_0 as a float, clamped away from underflow.

    Experiments that size a base sketch via ``log(1/delta_0)`` should use
    :func:`required_log2_delta0` directly; this convenience form exists
    for the moderate regimes where the float is representable.
    """
    log2_d0 = required_log2_delta0(delta, m, flip_number, eps, value_range)
    if log2_d0 < math.log2(floor):
        return floor
    return 2.0**log2_d0


class ComputationPathsEstimator(Sketch):
    """Lemma 3.8 wrapper: one low-delta instance behind epsilon-rounding.

    The caller builds ``sketch`` with failure probability ``delta_0``
    (see :func:`required_log2_delta0`); the wrapper contributes the
    Definition 3.7 output discipline that makes the union bound valid.
    """

    def __init__(self, sketch: Sketch, eps: float):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.eps = eps
        self._inner = sketch
        self._rounder = RoundedSequence(eps)
        self.supports_deletions = sketch.supports_deletions

    @property
    def changes(self) -> int:
        """How many times the published value moved (<= flip number whp)."""
        return max(0, self._rounder.changes - 1)

    def update(self, item: int, delta: int = 1) -> None:
        self._inner.update(item, delta)
        self._rounder.push(self._inner.query())

    def update_batch(self, items, deltas=None) -> None:
        """Batched ingestion: one rounder push per chunk.

        The inner sketch consumes the whole chunk vectorized; the
        epsilon-rounded output sequence is sampled at chunk boundaries,
        which can only *coarsen* the published sequence (``changes`` never
        exceeds the per-item count — the union-bound argument is over the
        rounded sequence, so fewer observed values never hurts it).  Used
        for oblivious replay; the adversarial game runs per item.
        """
        self._inner.update_batch(items, deltas)
        self._rounder.push(self._inner.query())

    def query(self) -> float:
        current = self._rounder.current
        return 0.0 if current is None else current

    def space_bits(self) -> int:
        return self._inner.space_bits() + 128
