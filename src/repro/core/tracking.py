"""Strong tracking wrappers (Definition 2.1).

Both robustification frameworks consume *strong trackers*: static
algorithms whose estimate is (1 ± eps)-correct at **every** step
``t in [m]`` simultaneously, with probability 1 - delta.  The paper's
instantiations ([6] for F0, [7] for Fp) are constant-factor-optimal
constructions; as documented in DESIGN.md we realise the same contract
generically:

* :func:`union_bound_delta` — footnote 1's one-shot -> tracking reduction:
  run the one-shot sketch at per-query failure ``delta / m`` and union
  bound over the stream positions;
* :class:`MedianTracker` — median amplification over independent copies,
  driving a constant-failure sketch's error probability to
  ``exp(-Omega(copies))``.

The wrappers preserve linearity properties of the base sketch (a median of
turnstile sketches supports deletions), which the turnstile theorems need.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.base import Sketch, SketchFactory, spawn_rngs


def union_bound_delta(delta: float, m: int) -> float:
    """Per-step failure probability for a whole-stream guarantee of delta."""
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    if m < 1:
        raise ValueError(f"stream length must be >= 1, got {m}")
    return delta / m


def median_copies(delta: float, base_failure: float = 1.0 / 3.0,
                  constant: float = 1.0) -> int:
    """Copies needed so the median fails w.p. <= delta.

    If each copy fails w.p. ``base_failure < 1/2``, the median of R copies
    fails w.p. ``exp(-2 R (1/2 - base_failure)^2)`` (Hoeffding), so
    ``R = O(log(1/delta))``.
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    if not 0 < base_failure < 0.5:
        raise ValueError(f"base failure must be in (0, 1/2), got {base_failure}")
    gap = 0.5 - base_failure
    r = math.ceil(constant * math.log(1.0 / delta) / (2.0 * gap * gap))
    r = max(1, r)
    return r if r % 2 == 1 else r + 1


class MedianTracker(Sketch):
    """Median of independent copies of a base sketch.

    Turns a constant-probability estimator into a ``1 - delta`` one with
    ``O(log 1/delta)`` copies.  ``supports_deletions`` is inherited from
    the copies (all copies are built by the same factory).
    """

    def __init__(self, factory: SketchFactory, copies: int,
                 rng: np.random.Generator):
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        self._sketches = [factory(r) for r in spawn_rngs(rng, copies)]
        self.supports_deletions = all(
            s.supports_deletions for s in self._sketches
        )

    @property
    def copies(self) -> int:
        return len(self._sketches)

    def update(self, item: int, delta: int = 1) -> None:
        for s in self._sketches:
            s.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        """Feed the chunk to every copy via its vectorized path."""
        for s in self._sketches:
            s.update_batch(items, deltas)

    def query(self) -> float:
        return float(np.median([s.query() for s in self._sketches]))

    def space_bits(self) -> int:
        return sum(s.space_bits() for s in self._sketches)
