"""The paper's contribution: flip numbers, rounding, and the two frameworks.

The switching framework is layered: :mod:`repro.core.bands` owns the
publish-band policies (multiplicative, additive, epoch),
:mod:`repro.core.copies` the copy lifecycle (allocation, burn, restart
ring, retirement), :mod:`repro.core.disciplines` the probe disciplines
(active-copy probe-and-burn vs the DP private aggregate over all
copies), and :mod:`repro.core.sketch_switching` composes them into the
one switching protocol every robust wrapper and execution engine drives.
"""

from repro.core.bands import (
    AdditiveBand,
    BandPolicy,
    EpochBand,
    L2Band,
    MultiplicativeBand,
    relative_within,
)
from repro.core.computation_paths import (
    ComputationPathsEstimator,
    paths_log2_count,
    required_delta0,
    required_log2_delta0,
)
from repro.core.flip_number import (
    bounded_deletion_flip_number_bound,
    cascaded_norm_flip_number_bound,
    entropy_flip_number_bound,
    flip_number_dp,
    fp_flip_number_bound,
    greedy_flip_lower_bound,
    lp_norm_flip_number_bound,
    measured_flip_number,
    monotone_flip_number_bound,
)
from repro.core.copies import CopyManager, LocalCopyBackend
from repro.core.disciplines import (
    ActiveCopyDiscipline,
    DifferenceAggregateDiscipline,
    PrivacyBudgetExhaustedError,
    PrivateAggregateDiscipline,
    ProbeDiscipline,
    default_switch_budget,
    dp_copy_count,
    resolve_discipline,
)
from repro.core.ladder import (
    DifferenceLadder,
    LadderTier,
    default_difference_ladder,
)
from repro.core.rounding import RoundedSequence, num_rounded_values, round_to_power
from repro.core.sketch_switching import (
    AdditiveSwitchingEstimator,
    SketchExhaustedError,
    SketchSwitchingEstimator,
    SwitchingEstimator,
    SwitchingProtocol,
    restart_ring_size,
    within_band,
)
from repro.core.tracking import MedianTracker, median_copies, union_bound_delta

__all__ = [
    "ActiveCopyDiscipline",
    "AdditiveBand",
    "BandPolicy",
    "CopyManager",
    "DifferenceAggregateDiscipline",
    "DifferenceLadder",
    "LadderTier",
    "default_difference_ladder",
    "PrivacyBudgetExhaustedError",
    "PrivateAggregateDiscipline",
    "ProbeDiscipline",
    "default_switch_budget",
    "dp_copy_count",
    "resolve_discipline",
    "EpochBand",
    "L2Band",
    "LocalCopyBackend",
    "MultiplicativeBand",
    "SwitchingEstimator",
    "SwitchingProtocol",
    "relative_within",
    "within_band",
    "ComputationPathsEstimator",
    "paths_log2_count",
    "required_delta0",
    "required_log2_delta0",
    "bounded_deletion_flip_number_bound",
    "cascaded_norm_flip_number_bound",
    "entropy_flip_number_bound",
    "flip_number_dp",
    "fp_flip_number_bound",
    "greedy_flip_lower_bound",
    "lp_norm_flip_number_bound",
    "measured_flip_number",
    "monotone_flip_number_bound",
    "RoundedSequence",
    "num_rounded_values",
    "round_to_power",
    "AdditiveSwitchingEstimator",
    "SketchExhaustedError",
    "SketchSwitchingEstimator",
    "restart_ring_size",
    "MedianTracker",
    "median_copies",
    "union_bound_delta",
]
