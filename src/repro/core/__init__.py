"""The paper's contribution: flip numbers, rounding, and the two frameworks."""

from repro.core.computation_paths import (
    ComputationPathsEstimator,
    paths_log2_count,
    required_delta0,
    required_log2_delta0,
)
from repro.core.flip_number import (
    bounded_deletion_flip_number_bound,
    cascaded_norm_flip_number_bound,
    entropy_flip_number_bound,
    flip_number_dp,
    fp_flip_number_bound,
    greedy_flip_lower_bound,
    lp_norm_flip_number_bound,
    measured_flip_number,
    monotone_flip_number_bound,
)
from repro.core.rounding import RoundedSequence, num_rounded_values, round_to_power
from repro.core.sketch_switching import (
    AdditiveSwitchingEstimator,
    SketchExhaustedError,
    SketchSwitchingEstimator,
    restart_ring_size,
)
from repro.core.tracking import MedianTracker, median_copies, union_bound_delta

__all__ = [
    "ComputationPathsEstimator",
    "paths_log2_count",
    "required_delta0",
    "required_log2_delta0",
    "bounded_deletion_flip_number_bound",
    "cascaded_norm_flip_number_bound",
    "entropy_flip_number_bound",
    "flip_number_dp",
    "fp_flip_number_bound",
    "greedy_flip_lower_bound",
    "lp_norm_flip_number_bound",
    "measured_flip_number",
    "monotone_flip_number_bound",
    "RoundedSequence",
    "num_rounded_values",
    "round_to_power",
    "AdditiveSwitchingEstimator",
    "SketchExhaustedError",
    "SketchSwitchingEstimator",
    "restart_ring_size",
    "MedianTracker",
    "median_copies",
    "union_bound_delta",
]
