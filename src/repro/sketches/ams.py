"""Alon–Matias–Szegedy F2 sketches.

Two variants, matching the two roles AMS plays in the paper:

* :class:`AMSFullSketch` — the *fully independent* sketch of Section 9:
  an explicit matrix ``S in R^{t x n}`` of i.i.d. Rademacher entries scaled
  by ``t^{-1/2}``, estimate ``|Sf|_2^2``.  This is the attack target of
  Theorem 9.1 (footnote 10: the attack is shown against the fully
  independent variant, which is only *stronger* than 4-wise AMS).

* :class:`AMSSketch` — the classical space-efficient estimator [3]:
  4-wise independent sign hashes, means of groups of rows, median of group
  means.  This is the static F2 algorithm the robust wrappers transform.

Both are linear sketches and therefore support turnstile updates.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.hashing.kwise import KWiseSignHash
from repro.sketches.base import (
    Sketch,
    aggregate_batch,
    as_batch_arrays,
    spawn_rngs,
)
from repro.sketches.stacking import SketchStack, stack_rows


class AMSFullSketch(Sketch):
    """Fully independent AMS: ``S`` stored explicitly, estimate ``|Sf|^2``.

    Parameters
    ----------
    t:
        Number of rows; the static guarantee is a (1 ± eps) estimate with
        constant probability for ``t = Theta(1/eps^2)``.
    n:
        Universe size (the matrix has ``n`` columns).
    rng:
        Source of the Rademacher entries.

    Notes
    -----
    ``space_bits`` charges only the sketch vector ``y = Sf`` (t words): in
    the streaming model the matrix is random-oracle/PRG-derived state, and
    the attack of Section 9 does not depend on how S is stored.  The
    explicit matrix here is a simulation device.
    """

    supports_deletions = True
    aggregation_invariant = True

    def __init__(self, t: int, n: int, rng: np.random.Generator):
        if t < 1:
            raise ValueError(f"rows t must be >= 1, got {t}")
        if n < 1:
            raise ValueError(f"universe n must be >= 1, got {n}")
        self.t = t
        self.n = n
        signs = rng.integers(0, 2, size=(t, n)).astype(np.float64) * 2.0 - 1.0
        self._S = signs / math.sqrt(t)
        self._y = np.zeros(t, dtype=np.float64)

    def update(self, item: int, delta: int = 1) -> None:
        if not 0 <= item < self.n:
            raise ValueError(f"item {item} outside [0, {self.n})")
        self._y += self._S[:, item] * float(delta)

    def update_batch(self, items, deltas=None) -> None:
        """Linear-sketch batch: ``y += S[:, items] @ deltas`` on aggregates.

        Identical to the per-item path up to floating-point summation
        order (the matmul accumulates per column, the loop per update).
        """
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        if int(items.min()) < 0 or int(items.max()) >= self.n:
            raise ValueError(f"batch contains items outside [0, {self.n})")
        unique, summed = aggregate_batch(items, deltas)
        self._y += self._S[:, unique] @ summed.astype(np.float64)

    def snapshot(self) -> "AMSFullSketch":
        """Cheap snapshot: share the (fixed) matrix S, copy the sketch y."""
        clone = copy.copy(self)
        clone._y = self._y.copy()
        return clone

    def merge(self, other: "AMSFullSketch") -> None:
        """Add another partial's sketch vector (``S(f + g) = Sf + Sg``)."""
        if not isinstance(other, AMSFullSketch) or other._y.shape != self._y.shape:
            raise ValueError("can only merge AMSFull partials of the same shape")
        self._y += other._y

    def empty_like(self) -> "AMSFullSketch":
        """Zero sketch vector, same projection matrix S."""
        clone = copy.copy(self)
        clone._y = np.zeros_like(self._y)
        return clone

    def query(self) -> float:
        """The AMS estimate ``|Sf|_2^2`` of ``F2 = |f|_2^2``."""
        return float(self._y @ self._y)

    def column(self, item: int) -> np.ndarray:
        """The column ``S e_item`` (used by the attack's analysis/tests)."""
        return self._S[:, item].copy()

    def space_bits(self) -> int:
        return self.t * 64


class AMSSketch(Sketch):
    """Classical AMS with 4-wise signs and median-of-means amplification.

    ``groups`` independent groups of ``rows_per_group`` rows each; a row
    maintains ``y_r = sum_i f_i s_r(i)`` with a 4-wise sign hash ``s_r``.
    The estimate is the median over groups of the mean of ``y_r^2`` within
    the group — a (1 ± eps) approximation of F2 with failure probability
    ``exp(-Omega(groups))`` when ``rows_per_group = Theta(1/eps^2)``.
    """

    supports_deletions = True
    aggregation_invariant = True
    stackable = True

    @classmethod
    def make_stack(cls, sketches):
        return AMSStack(sketches)

    def __init__(
        self,
        rows_per_group: int,
        groups: int,
        rng: np.random.Generator,
        sign_independence: int = 4,
    ):
        if rows_per_group < 1 or groups < 1:
            raise ValueError("rows_per_group and groups must both be >= 1")
        self.rows_per_group = rows_per_group
        self.groups = groups
        total = rows_per_group * groups
        self._signs = [
            KWiseSignHash(sign_independence, r) for r in spawn_rngs(rng, total)
        ]
        self._y = np.zeros(total, dtype=np.float64)
        # Simulation-only memos of per-item sign columns (not charged).
        # The dict serves the scalar path; the batched path uses a dense
        # item-indexed int8 matrix so gathers stay in NumPy.
        self._sign_cache: dict[int, np.ndarray] = {}
        self._batch_cols: np.ndarray | None = None  # (capacity, total) int8
        self._batch_seen: np.ndarray | None = None
        #: Dense-cache budget in int8 entries (~64 MB); batches over larger
        #: universes fall back to the dict memo.
        self._dense_cache_limit = 64 * (1 << 20)

    @classmethod
    def for_accuracy(
        cls, eps: float, delta: float, rng: np.random.Generator,
        mean_constant: float = 6.0, median_constant: float = 4.0,
    ) -> "AMSSketch":
        """Size the sketch for a (1 ± eps) estimate w.p. 1 - delta.

        ``rows_per_group = mean_constant / eps^2`` (Chebyshev) and
        ``groups = median_constant * ln(1/delta)`` (Chernoff on the median).
        """
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        rows = max(1, math.ceil(mean_constant / eps**2))
        groups = max(1, math.ceil(median_constant * math.log(1.0 / delta)))
        # An even group count makes the median an average of two central
        # values; keep it odd for a clean order statistic.
        if groups % 2 == 0:
            groups += 1
        return cls(rows, groups, rng)

    def update(self, item: int, delta: int = 1) -> None:
        col = self._sign_cache.get(item)
        if col is None:
            col = np.array([s(item) for s in self._signs], dtype=np.float64)
            self._sign_cache[item] = col
        self._y += col * float(delta)

    def _signs_matrix(self, items: np.ndarray) -> np.ndarray:
        """(len(items), total_rows) ±1 sign matrix, vectorized per family."""
        cols = np.empty((len(items), len(self._y)), dtype=np.float64)
        for j, sign in enumerate(self._signs):
            cols[:, j] = sign.sign_many(items)
        return cols

    def _columns_many(self, items: np.ndarray) -> np.ndarray:
        """(len(items), total_rows) sign matrix for *non-negative* items.

        Uncached items are hashed one sign family at a time but vectorized
        across the whole batch, so each item is still hashed exactly once
        over its lifetime — the same amortized cost as the per-item path,
        paid in array-sized strides.  Small universes use a dense
        item-indexed int8 memo so the gather itself is a NumPy fancy
        index; larger ones fall back to the per-item dict memo.
        """
        total = len(self._y)
        max_item = int(items.max())
        if (max_item + 1) * total <= self._dense_cache_limit:
            if self._batch_cols is None or self._batch_cols.shape[0] <= max_item:
                capacity = max(2 * (max_item + 1), 1024)
                cols = np.zeros((capacity, total), dtype=np.int8)
                seen = np.zeros(capacity, dtype=bool)
                if self._batch_cols is not None:
                    cols[: self._batch_cols.shape[0]] = self._batch_cols
                    seen[: self._batch_seen.shape[0]] = self._batch_seen
                self._batch_cols, self._batch_seen = cols, seen
            fresh = items[~self._batch_seen[items]]
            if len(fresh):
                self._batch_cols[fresh] = self._signs_matrix(fresh).astype(
                    np.int8
                )
                self._batch_seen[fresh] = True
            return self._batch_cols[items].astype(np.float64)
        cols = np.empty((len(items), total), dtype=np.float64)
        missing = []
        for pos, item in enumerate(items.tolist()):
            cached = self._sign_cache.get(item)
            if cached is None:
                missing.append(pos)
            else:
                cols[pos] = cached
        if missing:
            cols[missing] = self._signs_matrix(items[missing])
            for pos in missing:
                self._sign_cache[int(items[pos])] = cols[pos].copy()
        return cols

    def update_batch(self, items, deltas=None) -> None:
        """Batch the linear map: one matmul per chunk instead of m adds.

        Identical to the per-item path up to floating-point summation
        order.
        """
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        if int(items.min()) < 0:
            raise ValueError("AMS items must be non-negative")
        unique, summed = aggregate_batch(items, deltas)
        cols = self._columns_many(unique)
        self._y += cols.T @ summed.astype(np.float64)

    def snapshot(self) -> "AMSSketch":
        """Cheap snapshot: copy the counters, share the sign memos.

        The memo caches hold deterministic values derived from the fixed
        hash functions, so sharing them between the live sketch and a
        snapshot is safe — any writer stores the same entries.
        """
        clone = copy.copy(self)
        clone._y = self._y.copy()
        return clone

    def merge(self, other: "AMSSketch") -> None:
        """Add another partial's counter vector (the sketch map is linear)."""
        if not isinstance(other, AMSSketch) or other._y.shape != self._y.shape:
            raise ValueError("can only merge AMS partials of the same shape")
        self._y += other._y

    def empty_like(self) -> "AMSSketch":
        """Zero counters, same sign hashes and memo caches."""
        clone = copy.copy(self)
        clone._y = np.zeros_like(self._y)
        return clone

    def query(self) -> float:
        sq = self._y * self._y
        means = sq.reshape(self.groups, self.rows_per_group).mean(axis=1)
        return float(np.median(means))

    def query_l2(self) -> float:
        """Estimate of the norm ``|f|_2`` (sqrt of the F2 estimate)."""
        return math.sqrt(max(self.query(), 0.0))

    def space_bits(self) -> int:
        counters = len(self._y) * 64
        hashes = sum(s.space_bits() for s in self._signs)
        return counters + hashes


class _AMSPrep:
    """A chunk aggregated once; per-plane sign columns gather lazily."""

    __slots__ = ("unique", "summed_f", "cols")

    def __init__(self, unique, summed_f):
        self.unique = unique
        self.summed_f = summed_f
        self.cols = {}  # plane -> (distinct, total) float64 sign columns


class AMSStack(SketchStack):
    """Stacked accumulators for k AMS copies: one ``(k, total_rows)``
    float64 block with vectorized median-of-means over all planes.

    The per-plane matmul ``y += cols.T @ summed`` is kept at exactly the
    object path's shapes so BLAS accumulation order (and hence the bits)
    cannot change; the shared work is the chunk aggregation/validation,
    the stacked snapshot, and the one-pass ``query_all`` reduction.  Sign
    columns amortize through each template's dense memo, exactly as on
    the object path.
    """

    def _adopt(self):
        first = self.sketches[0]
        self.rows_per_group = first.rows_per_group
        self.groups = first.groups
        total = len(first._y)
        for s in self.sketches:
            if s.rows_per_group != self.rows_per_group or s.groups != self.groups:
                raise ValueError("cannot stack AMS copies of mixed shape")
        self.total = total
        self.ys = stack_rows([s._y for s in self.sketches])
        for p, s in enumerate(self.sketches):
            s._y = self.ys[p]

    def prepare(self, items, deltas=None):
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return None
        if int(items.min()) < 0:
            raise ValueError("AMS items must be non-negative")
        unique, summed = aggregate_batch(items, deltas)
        return _AMSPrep(unique, summed.astype(np.float64))

    def feed(self, prepared, planes) -> None:
        if prepared is None:
            return
        for p in planes:
            cols = prepared.cols.get(p)
            if cols is None:
                cols = self.sketches[p]._columns_many(prepared.unique)
                prepared.cols[p] = cols
            self.ys[p] += cols.T @ prepared.summed_f

    def query_all(self) -> np.ndarray:
        sq = self.ys * self.ys
        means = sq.reshape(self.planes, self.groups, self.rows_per_group).mean(
            axis=2
        )
        return np.median(means, axis=1)

    def install(self, plane: int, sketch) -> None:
        if sketch._y.shape != self.ys[plane].shape:
            raise ValueError("cannot install an AMS sketch of different shape")
        self.ys[plane] = sketch._y
        sketch._y = self.ys[plane]
        self.sketches[plane] = sketch

    def save(self, planes):
        sel = np.asarray(list(planes), dtype=np.intp)
        return sel, self.ys[sel]

    def restore(self, saved) -> None:
        sel, ys = saved
        self.ys[sel] = ys

    def detach(self) -> None:
        for p, s in enumerate(self.sketches):
            s._y = self.ys[p].copy()
