"""Static Shannon-entropy estimators (Section 7 substrates).

Two static estimators, matching the two citations the robust entropy
theorem builds on:

* :class:`CliffordCosmaSketch` — the maximally-skewed 1-stable sketch of
  [11]: ``y_j = sum_i f_i X_ij`` with ``X ~ S(alpha=1, beta=-1,
  scale=pi/2)``.  The Laplace-transform identity (verified numerically to
  <0.1% during development, see tests)

      E[exp(t X)] = exp(t ln t + t ln(pi/2))

  gives ``E[exp(y_j / F1)] = exp(ln(pi/2) - H_nats)``, so

      H_hat = ln(pi/2) - ln(mean_j exp(y_j / F1))      (in nats)

  is an additively accurate estimator with k = Theta(1/eps^2) rows.

* :class:`RenyiEntropyEstimator` — the [21]/[23] route used by the paper's
  flip-number analysis (Proposition 7.1): estimate ``F_alpha`` with a
  p-stable sketch at ``alpha = 1 + mu/(16 log(1/mu))`` and output
  ``H_alpha = (log F_alpha - alpha log F1) / (1 - alpha)``.

Both consume the exact F1 counter (footnote 3: F1 is a trivial
deterministic counter).
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.sketches.base import Sketch, aggregate_batch, as_batch_arrays
from repro.sketches.stable import PStableSketch, item_keyed_generator

#: ln E[e^{tX}] = t ln t + KAPPA * t for the CMS kernel used below.
_LOG_MGF_SHIFT = math.log(math.pi / 2.0)


def sample_skewed_stable(rng: np.random.Generator, size: int) -> np.ndarray:
    """Maximally skewed (beta = -1) standard 1-stable, scale pi/2.

    CMS kernel for alpha = 1:
        X = (pi/2 + b*theta) tan(theta)
            - b * ln( (pi/2) W cos(theta) / (pi/2 + b*theta) ),   b = -1.
    """
    theta = rng.uniform(-math.pi / 2, math.pi / 2, size)
    w = rng.exponential(1.0, size)
    return _cms_skewed(theta, w)


def _cms_skewed(theta: np.ndarray, w: np.ndarray) -> np.ndarray:
    beta = -1.0
    a = math.pi / 2 + beta * theta
    return a * np.tan(theta) - beta * np.log(
        (math.pi / 2) * np.maximum(w, 1e-300) * np.cos(theta) / a
    )


class CliffordCosmaSketch(Sketch):
    """Additive-eps Shannon entropy via maximally skewed 1-stable sums.

    Parameters
    ----------
    k:
        Number of projections; additive error ~ c/sqrt(k) nats.
    seed:
        Oracle seed deriving the projection entries on demand (the sketch
        stores counters + seed, mirroring the random-oracle model in which
        [23]-style results are stated).
    base:
        Logarithm base of the reported entropy (2 = bits).
    """

    supports_deletions = True
    # update_batch aggregates per distinct item internally (the linear
    # map consumes integer delta sums), so pre-aggregated chunks land in
    # bit-identical state — licensing the engine's aggregate-once hoist,
    # the shared-work win behind the entropy engine path.
    aggregation_invariant = True

    def __init__(self, k: int, seed: int, base: float = 2.0,
                 cache_columns: bool = True):
        if k < 1:
            raise ValueError(f"row count k must be >= 1, got {k}")
        self.k = k
        self.base = base
        self.seed = seed
        self._y = np.zeros(k, dtype=np.float64)
        self._f1 = 0
        self._cache: dict[int, np.ndarray] | None = {} if cache_columns else None

    @classmethod
    def for_accuracy(
        cls, eps: float, delta: float, rng: np.random.Generator,
        constant: float = 4.0, **kwargs,
    ) -> "CliffordCosmaSketch":
        """k = constant/eps^2 * ln(1/delta) rows for additive eps w.p. 1-d."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        k = max(3, math.ceil(constant / eps**2 * max(1.0, math.log(1.0 / delta))))
        return cls(k, seed=int(rng.integers(0, 2**62)), **kwargs)

    def _column(self, item: int) -> np.ndarray:
        if self._cache is not None and item in self._cache:
            return self._cache[item]
        gen = item_keyed_generator(self.seed, item, salt=0x5EED_C0DE)
        theta = gen.uniform(-math.pi / 2, math.pi / 2, self.k)
        w = gen.exponential(1.0, self.k)
        col = _cms_skewed(theta, np.maximum(w, 1e-300))
        if self._cache is not None:
            self._cache[item] = col
        return col

    def update(self, item: int, delta: int = 1) -> None:
        self._y += self._column(item) * float(delta)
        self._f1 += delta

    def update_batch(self, items, deltas=None) -> None:
        """Batch the linear map over per-distinct-item aggregates."""
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        unique, summed = aggregate_batch(items, deltas)
        cols = np.stack([self._column(item) for item in unique.tolist()])
        self._y += cols.T @ summed.astype(np.float64)
        self._f1 += int(summed.sum())

    def snapshot(self) -> "CliffordCosmaSketch":
        """Cheap snapshot: copy the counters, share the seeded memo."""
        clone = copy.copy(self)
        clone._y = self._y.copy()
        return clone

    def query(self) -> float:
        """Current additive-eps estimate of H(f) in ``base`` units."""
        if self._f1 <= 0:
            return 0.0
        z = self._y / float(self._f1)
        # Log-mean-exp for numerical stability: entropy of near-degenerate
        # streams drives y/F1 towards large values.
        zmax = float(np.max(z))
        log_mean = zmax + math.log(float(np.mean(np.exp(z - zmax))))
        h_nats = _LOG_MGF_SHIFT - log_mean
        return max(0.0, h_nats / math.log(self.base))

    def space_bits(self) -> int:
        return self.k * 64 + 128 + 64  # counters + seed + F1 counter


class RenyiEntropyEstimator(Sketch):
    """H_alpha = (log F_alpha - alpha log F1)/(1 - alpha) via p-stable Fp.

    The [21] route (Proposition 7.1): choosing alpha close enough to 1
    makes H_alpha an additive-eps proxy for H.  The 1/(1-alpha) factor
    amplifies the multiplicative F_alpha error, which is exactly why the
    paper's robust entropy bound carries extra 1/eps and log n factors.
    """

    supports_deletions = True

    def __init__(self, alpha: float, k: int, seed: int, base: float = 2.0):
        if not 0 < alpha <= 2 or alpha == 1.0:
            raise ValueError(f"alpha must be in (0,2] \\ {{1}}, got {alpha}")
        self.alpha = alpha
        self.base = base
        self._fa = PStableSketch(alpha, k, seed, return_moment=True)
        self._f1 = 0

    @classmethod
    def proposition_71_alpha(cls, eps: float, n: int, m: int) -> float:
        """The alpha of Proposition 7.1: 1 + mu/(16 log(1/mu)), mu=eps/(4 log m)."""
        mu = eps / (4.0 * max(2.0, math.log2(m)))
        return 1.0 + mu / (16.0 * max(1.0, math.log(1.0 / mu)))

    def update(self, item: int, delta: int = 1) -> None:
        self._fa.update(item, delta)
        self._f1 += delta

    def query(self) -> float:
        if self._f1 <= 0:
            return 0.0
        fa = max(self._fa.query(), 1e-300)
        h = (math.log(fa) - self.alpha * math.log(self._f1)) / (1.0 - self.alpha)
        return max(0.0, h / math.log(self.base))

    def space_bits(self) -> int:
        return self._fa.space_bits() + 64
