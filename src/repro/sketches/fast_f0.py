"""Algorithm 2: fast static distinct-elements estimation (Lemma 5.2).

The paper introduces this estimator because its update time depends only
poly-log-logarithmically on the failure probability delta — which is what
makes the computation-paths transformation (Lemma 3.8, delta ~ n^{-(1/eps)
log n}) affordable.  Structure:

* lists ``L_0 .. L_t``, t = Theta(log n);
* a d-wise independent hash ``H : [n] -> [2^ell]`` with n^2 <= 2^ell <= n^3
  and ``d = Theta(log log n + log 1/delta)``;
* an update ``a`` lands in level j with ``2^(ell-j-1) <= H(a) < 2^(ell-j)``
  (probability 2^-(j+1)) and is stored in ``L_j`` unless the list already
  saturated at ``B = Theta(eps^-2 (log log n + log 1/delta))`` entries, in
  which case the list was deleted forever;
* the estimate is ``|L_i| * 2^(i+1)`` for the largest level i with
  ``|L_i| >= B/5``; while no list has saturated the union of the lists is
  the exact distinct count (every item lands in exactly one list), which
  also implements the paper's "store the first O(d/eps) items exactly"
  small-regime trick.

Update cost is one d-wise hash evaluation; with ``batch=True`` evaluations
are buffered and amortised through the multipoint evaluator
(:class:`repro.hashing.multipoint.BatchedHasher`), the Proposition 5.3
schedule the paper uses to reach O(log^2 log log n) amortised time.  The
buffered items are counted exactly while pending, so the estimate is never
stale by more than the additive d the paper's proof budgets for.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.field import MERSENNE_P
from repro.hashing.kwise import KWiseHash
from repro.hashing.multipoint import BatchedHasher
from repro.sketches.base import Sketch


class FastF0Sketch(Sketch):
    """Level-list distinct elements estimator (paper Algorithm 2)."""

    supports_deletions = False

    def __init__(
        self,
        n: int,
        eps: float,
        delta: float,
        rng: np.random.Generator,
        batch: bool = False,
        capacity_constant: float = 48.0,
    ):
        if n < 2:
            raise ValueError(f"universe size must be >= 2, got {n}")
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        self.n = n
        self.eps = eps
        self.delta = delta

        log2n = max(1.0, math.log2(n))
        # Output range [2^ell] with n^2 <= 2^ell <= n^3.
        self._ell = min(61, max(2, math.ceil(2.0 * log2n) + 1))
        self._levels = max(2, math.ceil(log2n) + 2)
        # d-wise independence: d = Theta(log log n + log 1/delta).
        self.d = max(
            2,
            math.ceil(math.log2(max(2.0, log2n)) + math.log2(1.0 / delta)),
        )
        # List capacity B = Theta(eps^-2 (log log n + log 1/delta)).  The
        # constant is sized so the estimation threshold B/5 is ~ 10/eps^2
        # even at moderate delta: the chosen level's relative error is
        # ~ sqrt(5/B), and the selection rule ("largest list above B/5")
        # needs the threshold to concentrate, not merely be populated.
        self.B = max(
            10,
            math.ceil(
                capacity_constant
                / eps**2
                * (math.log2(max(2.0, log2n)) + math.log2(1.0 / delta))
                / 4.0
            ),
        )
        self._hash = KWiseHash(self.d, rng, out_bits=self._ell)
        self._lists: list[set[int] | None] = [set() for _ in range(self._levels)]
        self._any_saturated = False
        self._batcher: BatchedHasher | None = None
        self._pending_exact: set[int] = set()
        if batch:
            coeffs = [int(c) for c in rng.integers(0, MERSENNE_P, size=self.d)]
            # Reuse the same polynomial as the direct hash is not possible
            # post-construction; the batched mode owns its own coefficients.
            self._batch_shift = 61 - self._ell
            self._batcher = BatchedHasher(coeffs, batch_size=self.d)

    def _level_of(self, h: int) -> int:
        """j with 2^(ell-j-1) <= h < 2^(ell-j); h = 0 maps to the deepest level."""
        if h <= 0:
            return self._levels - 1
        j = self._ell - 1 - h.bit_length() + 1
        return min(max(j, 0), self._levels - 1)

    def _ingest(self, item: int, h: int) -> None:
        lst = self._lists[self._level_of(h)]
        if lst is None:
            return
        lst.add(item)
        if len(lst) > self.B:
            self._lists[self._level_of(h)] = None
            self._any_saturated = True

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("FastF0 requires non-negative updates")
        if delta == 0:
            return
        if self._batcher is None:
            self._ingest(item, self._hash(item))
            return
        self._pending_exact.add(item)
        for ready_item, value in self._batcher.push(item):
            self._pending_exact.discard(ready_item)
            self._ingest(ready_item, value >> self._batch_shift)

    def query(self) -> float:
        pending = len(self._pending_exact)
        if not self._any_saturated:
            # Exact small regime: every item sits in exactly one live list.
            live = sum(len(lst) for lst in self._lists if lst is not None)
            # Pending items may duplicate list contents; both sets are
            # item-id sets so the union is exact.
            if pending:
                stored = set().union(
                    *(lst for lst in self._lists if lst is not None)
                )
                return float(len(stored | self._pending_exact))
            return float(live)
        threshold = self.B / 5.0
        for j in range(self._levels - 1, -1, -1):
            lst = self._lists[j]
            if lst is not None and len(lst) >= threshold:
                return float(len(lst) * (1 << (j + 1)) + pending)
        # No unsaturated list is populated enough; fall back to the
        # shallowest live list (rare; happens only for adversarially tiny B).
        for j in range(self._levels):
            lst = self._lists[j]
            if lst is not None and lst:
                return float(len(lst) * (1 << (j + 1)) + pending)
        return float(pending)

    def space_bits(self) -> int:
        item_bits = 64
        stored = sum(len(lst) for lst in self._lists if lst is not None)
        pending = len(self._pending_exact)
        return (
            (stored + pending) * item_bits
            + self._levels  # saturation bitmap
            + self._hash.space_bits()
        )
