"""Sampling in adversarial streams (the Ben-Eliezer–Yogev [5] substrate).

The paper's positive starting point (Section 1): "a recent work of
Ben-Eliezer and Yogev showed that random sampling is quite robust in the
adaptive adversarial setting, albeit with a slightly larger sample size."
This module reproduces that phenomenon:

* :class:`ReservoirSampler` / :class:`BernoulliSampler` — the classic
  static samplers, with fraction-query surfaces;
* :func:`adaptive_oversampling_factor` — the [5]-style blow-up: to keep a
  *class* of queries simultaneously accurate against an adaptive adversary,
  multiply the static sample size by ``O(log |Q| + log 1/delta)`` (the
  union bound over the query class replaces the single-query bound —
  cheap, which is [5]'s message);
* :class:`AdaptiveFractionOracle` — the overfitting demonstration: an
  adversary that sees the sample can always construct a *post-hoc* query
  on which the sample is totally unrepresentative (estimate 0, truth ~1).
  Robustness is only possible relative to a query class fixed in advance,
  which is exactly how [5] states it.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.sketches.base import Sketch


class ReservoirSampler(Sketch):
    """Uniform k-sample over the items seen so far (Vitter's Algorithm R).

    ``query`` returns the current sample size; :meth:`estimate_fraction`
    answers relative-frequency queries over the stream *items* (with
    multiplicity: each unit update is one population element).
    """

    supports_deletions = False

    def __init__(self, k: int, rng: np.random.Generator):
        if k < 1:
            raise ValueError(f"sample size k must be >= 1, got {k}")
        self.k = k
        self._rng = rng
        self._sample: list[int] = []
        self._seen = 0

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("sampling requires non-negative updates")
        for _ in range(delta):
            self._seen += 1
            if len(self._sample) < self.k:
                self._sample.append(item)
            else:
                j = int(self._rng.integers(0, self._seen))
                if j < self.k:
                    self._sample[j] = item

    @property
    def sample(self) -> list[int]:
        """The current sample (what an adaptive adversary observes)."""
        return list(self._sample)

    def estimate_fraction(self, predicate: Callable[[int], bool]) -> float:
        """Estimated fraction of stream elements satisfying ``predicate``."""
        if not self._sample:
            return 0.0
        return sum(1 for x in self._sample if predicate(x)) / len(self._sample)

    def query(self) -> float:
        return float(len(self._sample))

    def space_bits(self) -> int:
        return max(64, len(self._sample) * 64)


class BernoulliSampler(Sketch):
    """Keep each stream element independently with probability ``rate``."""

    supports_deletions = False

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0 < rate <= 1:
            raise ValueError(f"rate must be in (0,1], got {rate}")
        self.rate = rate
        self._rng = rng
        self._sample: list[int] = []
        self._seen = 0

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("sampling requires non-negative updates")
        for _ in range(delta):
            self._seen += 1
            if self._rng.random() < self.rate:
                self._sample.append(item)

    @property
    def sample(self) -> list[int]:
        return list(self._sample)

    def estimate_fraction(self, predicate: Callable[[int], bool]) -> float:
        if not self._sample:
            return 0.0
        return sum(1 for x in self._sample if predicate(x)) / len(self._sample)

    def estimate_count(self, predicate: Callable[[int], bool]) -> float:
        """Estimated number of stream elements satisfying ``predicate``."""
        return sum(1 for x in self._sample if predicate(x)) / self.rate

    def query(self) -> float:
        return float(len(self._sample))

    def space_bits(self) -> int:
        return max(64, len(self._sample) * 64)


def static_sample_size(eps: float, delta: float) -> int:
    """Additive-eps fraction estimation for ONE fixed query (Hoeffding)."""
    if not 0 < eps < 1 or not 0 < delta < 1:
        raise ValueError("eps and delta must be in (0,1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * eps * eps))


def adaptive_oversampling_factor(num_queries: int, delta: float) -> float:
    """The [5]-style blow-up for a size-``num_queries`` query class.

    An adaptive adversary can steer the stream toward whichever query
    currently looks worst, so the guarantee must hold for *all* queries
    simultaneously: the union bound multiplies the ``log(1/delta)`` term
    by ``log(|Q|/delta) / log(1/delta)``.  For constant delta the sample
    grows by a ``Theta(log |Q|)`` factor — "slightly larger", as the
    paper says.
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.log(2.0 * num_queries / delta) / math.log(2.0 / delta)


def adaptive_sample_size(eps: float, delta: float, num_queries: int) -> int:
    """Sample size keeping ``num_queries`` fixed queries eps-accurate whp,
    even when the stream adapts to the published sample."""
    return math.ceil(
        static_sample_size(eps, delta)
        * adaptive_oversampling_factor(num_queries, delta)
    )


class AdaptiveFractionOracle:
    """The overfitting counterexample: post-hoc queries defeat any sample.

    Given any published sample S of a stream with N distinct inserted
    items, the query "is x in (stream minus S)?" has true fraction
    ``(N - |S|) / N`` (close to 1) but sample estimate exactly 0.  This is
    why [5] — and every robust-streaming statement — fixes the query
    (class) *before* the stream: adaptivity over an unbounded query class
    is information-theoretically hopeless.
    """

    @staticmethod
    def post_hoc_query(inserted: set[int], sample: list[int]):
        """The adversarial predicate chosen after seeing the sample."""
        sampled = set(sample)
        return lambda x: x in inserted and x not in sampled

    @staticmethod
    def gap(inserted: set[int], sample: list[int]) -> tuple[float, float]:
        """(true fraction, sample estimate) for the post-hoc query."""
        if not inserted:
            return 0.0, 0.0
        sampled = set(sample)
        true_frac = len(inserted - sampled) / len(inserted)
        est = sum(1 for x in sample if x in inserted and x not in sampled)
        est_frac = est / len(sample) if sample else 0.0
        return true_frac, est_frac
