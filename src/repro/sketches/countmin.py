"""CountMin sketch — an extra point-query baseline.

Not used by the paper's theorems (CountSketch is), but included because its
one-sided error makes it the cleanest *attackable* point-query sketch: the
adaptive collision attack in :mod:`repro.adversary.attacks` inflates a
victim's CountMin estimate without bound, a second concrete instance — in
the spirit of Section 9 — of a classic static sketch failing adaptively.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.kwise import KWiseHash
from repro.sketches.base import PointQuerySketch, spawn_rngs


class CountMinSketch(PointQuerySketch):
    """CountMin with ``rows`` pairwise bucket hashes over ``width`` counters.

    Point query = min over rows (never an underestimate for insertion-only
    streams); overestimate is at most ``eps * |f|_1`` with probability
    ``1 - delta`` for ``width = e/eps`` and ``rows = ln(1/delta)``.
    """

    supports_deletions = False

    def __init__(self, width: int, rows: int, rng: np.random.Generator):
        if width < 1 or rows < 1:
            raise ValueError("width and rows must both be >= 1")
        self.width = width
        self.rows = rows
        self._hashes = [KWiseHash(2, r, out_bits=61) for r in spawn_rngs(rng, rows)]
        self._table = np.zeros((rows, width), dtype=np.int64)
        self._f1 = 0

    @classmethod
    def for_accuracy(
        cls, eps: float, delta: float, rng: np.random.Generator
    ) -> "CountMinSketch":
        """Standard (eps, delta) sizing: width e/eps, rows ln(1/delta)."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        width = max(2, math.ceil(math.e / eps))
        rows = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width, rows, rng)

    def _bucket(self, r: int, item: int) -> int:
        return self._hashes[r](item) % self.width

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("CountMin requires non-negative updates")
        for r in range(self.rows):
            self._table[r, self._bucket(r, item)] += delta
        self._f1 += delta

    def point_query(self, item: int) -> float:
        return float(
            min(self._table[r, self._bucket(r, item)] for r in range(self.rows))
        )

    def query(self) -> float:
        """Returns F1 (exact) — CountMin's 'global' query surface."""
        return float(self._f1)

    def space_bits(self) -> int:
        return self.rows * self.width * 64 + sum(
            h.space_bits() for h in self._hashes
        )
