"""CountMin sketch — an extra point-query baseline.

Not used by the paper's theorems (CountSketch is), but included because its
one-sided error makes it the cleanest *attackable* point-query sketch: the
adaptive collision attack in :mod:`repro.adversary.attacks` inflates a
victim's CountMin estimate without bound, a second concrete instance — in
the spirit of Section 9 — of a classic static sketch failing adaptively.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.hashing.kwise import KWiseHash, hash_many_stacked
from repro.sketches.base import (
    PointQuerySketch,
    aggregate_batch,
    as_batch_arrays,
    spawn_rngs,
)
from repro.sketches.stacking import SketchStack, stack_rows


class CountMinSketch(PointQuerySketch):
    """CountMin with ``rows`` pairwise bucket hashes over ``width`` counters.

    Point query = min over rows (never an underestimate for insertion-only
    streams); overestimate is at most ``eps * |f|_1`` with probability
    ``1 - delta`` for ``width = e/eps`` and ``rows = ln(1/delta)``.
    """

    supports_deletions = False
    aggregation_invariant = True
    stackable = True

    @classmethod
    def make_stack(cls, sketches):
        return CountMinStack(sketches)

    def __init__(self, width: int, rows: int, rng: np.random.Generator):
        if width < 1 or rows < 1:
            raise ValueError("width and rows must both be >= 1")
        self.width = width
        self.rows = rows
        self._hashes = [KWiseHash(2, r, out_bits=61) for r in spawn_rngs(rng, rows)]
        self._table = np.zeros((rows, width), dtype=np.int64)
        self._f1 = 0

    @classmethod
    def for_accuracy(
        cls, eps: float, delta: float, rng: np.random.Generator
    ) -> "CountMinSketch":
        """Standard (eps, delta) sizing: width e/eps, rows ln(1/delta)."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        width = max(2, math.ceil(math.e / eps))
        rows = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width, rows, rng)

    def _bucket(self, r: int, item: int) -> int:
        return self._hashes[r](item) % self.width

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("CountMin requires non-negative updates")
        for r in range(self.rows):
            self._table[r, self._bucket(r, item)] += delta
        self._f1 += delta

    def update_batch(self, items, deltas=None) -> None:
        """Vectorized ingestion: hash whole arrays, scatter-add per row.

        CountMin is linear, so aggregating the chunk per distinct item
        first leaves the final table identical to the per-item loop.
        """
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        if np.any(deltas < 0):
            raise ValueError("CountMin requires non-negative updates")
        unique, summed = aggregate_batch(items, deltas)
        width = np.uint64(self.width)
        for r, h in enumerate(self._hashes):
            buckets = (h.hash_many(unique) % width).astype(np.intp)
            # bincount beats np.add.at by a wide margin; float64 partial
            # sums are exact far beyond any conforming stream's counts.
            row = np.bincount(buckets, weights=summed, minlength=self.width)
            self._table[r] += row.astype(np.int64)
        self._f1 += int(summed.sum())

    def snapshot(self) -> "CountMinSketch":
        """Cheap snapshot: share the hashes, copy the counter table."""
        clone = copy.copy(self)
        clone._table = self._table.copy()
        return clone

    def merge(self, other: "CountMinSketch") -> None:
        """Add another partial's counters (CountMin is linear in the stream)."""
        if not isinstance(other, CountMinSketch) or other._table.shape != self._table.shape:
            raise ValueError("can only merge CountMin partials of the same shape")
        self._table += other._table
        self._f1 += other._f1

    def empty_like(self) -> "CountMinSketch":
        """Zero counters, same hash functions."""
        clone = copy.copy(self)
        clone._table = np.zeros_like(self._table)
        clone._f1 = 0
        return clone

    def point_query(self, item: int) -> float:
        return float(
            min(self._table[r, self._bucket(r, item)] for r in range(self.rows))
        )

    def point_query_batch(self, items) -> np.ndarray:
        """Min over rows of the hashed counters, for a whole array of items."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        if len(items) == 0:
            return np.zeros(0, dtype=np.float64)
        width = np.uint64(self.width)
        estimates = np.empty((self.rows, len(items)), dtype=np.int64)
        for r, h in enumerate(self._hashes):
            buckets = (h.hash_many(items) % width).astype(np.intp)
            estimates[r] = self._table[r, buckets]
        return estimates.min(axis=0).astype(np.float64)

    def query(self) -> float:
        """Returns F1 (exact) — CountMin's 'global' query surface."""
        return float(self._f1)

    def space_bits(self) -> int:
        return self.rows * self.width * 64 + sum(
            h.space_bits() for h in self._hashes
        )


class _CountMinPrep:
    """A chunk aggregated and hashed once, ready to feed any plane subset."""

    __slots__ = ("unique", "summed", "buckets", "f1")

    def __init__(self, unique, summed, buckets, f1):
        self.unique = unique  # sorted distinct items (np.unique order)
        self.summed = summed
        self.buckets = buckets  # (planes, rows, distinct) bucket columns
        self.f1 = f1


class CountMinStack(SketchStack):
    """Stacked counter tables for k CountMin copies: one ``(k, rows, width)``
    int64 block, one shared bucket-hash pass per chunk, one flat bincount
    to scatter into any subset of planes."""

    def _adopt(self):
        first = self.sketches[0]
        self.rows, self.width = first.rows, first.width
        for s in self.sketches:
            if s.rows != self.rows or s.width != self.width:
                raise ValueError("cannot stack CountMin copies of mixed shape")
        self.tables = stack_rows([s._table for s in self.sketches])
        for p, s in enumerate(self.sketches):
            s._table = self.tables[p]

    def prepare(self, items, deltas=None):
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return None
        if np.any(deltas < 0):
            raise ValueError("CountMin requires non-negative updates")
        unique, summed = aggregate_batch(items, deltas)
        hashes = [h for s in self.sketches for h in s._hashes]
        buckets = (
            hash_many_stacked(hashes, unique) % np.uint64(self.width)
        ).astype(np.intp)
        return _CountMinPrep(
            unique, summed,
            buckets.reshape(self.planes, self.rows, -1), int(summed.sum()),
        )

    def subset(self, prepared, items, deltas=None):
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return None
        if np.any(deltas < 0):
            raise ValueError("CountMin requires non-negative updates")
        unique, summed = aggregate_batch(items, deltas)
        # Every distinct item of the slice is in the full chunk's sorted
        # unique array; gather its bucket columns instead of re-hashing.
        idx = np.searchsorted(prepared.unique, unique)
        return _CountMinPrep(
            unique, summed, prepared.buckets[:, :, idx], int(summed.sum())
        )

    def feed(self, prepared, planes) -> None:
        if prepared is None:
            return
        sel = np.asarray(list(planes), dtype=np.intp)
        if len(sel) == 0:
            return
        distinct = prepared.buckets.shape[2]
        rows = len(sel) * self.rows
        flat = prepared.buckets[sel].reshape(rows, distinct)
        flat = flat + np.arange(rows, dtype=np.intp)[:, None] * self.width
        # One bincount over all (plane, row) blocks: flat indices are
        # disjoint per block and C-order keeps items in stream order per
        # bin, so per-bin float accumulation matches the per-row bincount
        # of the object path exactly.
        counts = np.bincount(
            flat.ravel(),
            weights=np.broadcast_to(prepared.summed, (rows, distinct)).ravel(),
            minlength=rows * self.width,
        )
        self.tables[sel] += counts.reshape(
            len(sel), self.rows, self.width
        ).astype(np.int64)
        for p in sel.tolist():
            self.sketches[p]._f1 += prepared.f1

    def query_all(self) -> np.ndarray:
        return np.array([float(s._f1) for s in self.sketches], dtype=np.float64)

    def install(self, plane: int, sketch) -> None:
        if sketch._table.shape != self.tables[plane].shape:
            raise ValueError("cannot install a CountMin of different shape")
        self.tables[plane] = sketch._table
        sketch._table = self.tables[plane]
        self.sketches[plane] = sketch

    def save(self, planes):
        sel = np.asarray(list(planes), dtype=np.intp)
        return sel, self.tables[sel], [self.sketches[p]._f1 for p in sel.tolist()]

    def restore(self, saved) -> None:
        sel, tables, f1s = saved
        self.tables[sel] = tables
        for p, f1 in zip(sel.tolist(), f1s):
            self.sketches[p]._f1 = f1

    def detach(self) -> None:
        for p, s in enumerate(self.sketches):
            s._table = self.tables[p].copy()
