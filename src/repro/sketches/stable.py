"""p-stable sketches for Fp estimation, 0 < p <= 2 (Indyk / [27]).

The static algorithm behind Theorems 4.1/4.2/4.3: maintain ``k`` linear
projections ``y_j = sum_i f_i X_ij`` with i.i.d. standard symmetric
p-stable ``X_ij``; then ``|y_j|`` is distributed as ``|f|_p |X|``, so

    Lp_hat = median_j |y_j| / median(|X_p|)

is a (1 ± eps) estimate of the norm with k = Theta(1/eps^2) rows.

Sampling uses the Chambers–Mallows–Stuck transform

    X = sin(p * theta) / cos(theta)^{1/p}
        * (cos((1-p) * theta) / W)^{(1-p)/p},

theta ~ U(-pi/2, pi/2), W ~ Exp(1), which produces the S1-parameterised
standard stable (verified against scipy's ``levy_stable``; for p = 2 it
yields N(0, 2) and for p = 1 a standard Cauchy).

Derandomization note: [27] replaces the i.i.d. matrix with Nisan's PRG /
k-wise independence.  We derive the column ``X_{*,i}`` deterministically
from ``(sketch seed, item i)`` with a counter-based Philox PRF — the
streaming-standard simulation of that derandomization — so the stored
state is the ``k`` counters plus a seed, which is what ``space_bits``
charges.
"""

from __future__ import annotations

import copy
import math
from functools import lru_cache

import numpy as np

from repro.sketches.base import Sketch, aggregate_batch, as_batch_arrays

_KEY_MASK = (1 << 64) - 1
_ITEM_SALT = 0x9E3779B97F4A7C15  # golden-ratio mix to decorrelate small items


def item_keyed_generator(seed: int, item: int, salt: int = 0) -> np.random.Generator:
    """Deterministic per-(seed, item) generator via counter-based Philox.

    Philox is a PRF from (key, counter) to random words, so keying it with
    the sketch seed and the item id yields a reproducible, independent
    random column per item without storing any of it — exactly the PRG
    derandomization role.
    """
    key = np.array(
        [
            (seed ^ salt) & _KEY_MASK,
            (item * _ITEM_SALT + 0x632BE59BD9B4E019) & _KEY_MASK,
        ],
        dtype=np.uint64,
    )
    return np.random.Generator(np.random.Philox(key=key))


def sample_symmetric_stable(
    p: float, rng: np.random.Generator, size: int
) -> np.ndarray:
    """CMS sampler for the standard symmetric p-stable law (S1, scale 1)."""
    if not 0 < p <= 2:
        raise ValueError(f"stability index p must be in (0, 2], got {p}")
    theta = rng.uniform(-math.pi / 2, math.pi / 2, size)
    w = rng.exponential(1.0, size)
    return _cms_symmetric(p, theta, w)


def _cms_symmetric(p: float, theta: np.ndarray, w: np.ndarray) -> np.ndarray:
    if p == 1.0:
        return np.tan(theta)
    if p == 2.0:
        # Closed-form p=2 limit of the CMS kernel: sin(2t)/cos(t)^(1/2) *
        # (cos(-t)/W)^(-1/2) = 2 sin(t) sqrt(W), which is N(0, 2).
        return 2.0 * np.sin(theta) * np.sqrt(np.maximum(w, 1e-300))
    return _cms_general(p, theta, w)


def _cms_general(p: float, theta: np.ndarray, w: np.ndarray) -> np.ndarray:
    return (
        np.sin(p * theta)
        / np.cos(theta) ** (1.0 / p)
        * (np.cos((1.0 - p) * theta) / np.maximum(w, 1e-300)) ** ((1.0 - p) / p)
    )


@lru_cache(maxsize=64)
def stable_median_abs(p: float) -> float:
    """median(|X|) for standard symmetric p-stable X — the estimator scale.

    Computed by a large fixed-seed Monte Carlo (relative error ~1e-3, well
    inside the eps regimes the experiments use).  Known anchors:
    p=1 -> tan(pi/4) = 1; p=2 -> sqrt(2) * Phi^-1(3/4) ~ 0.95387.
    """
    if p == 1.0:
        return 1.0
    rng = np.random.default_rng(123456789)
    samples = sample_symmetric_stable(p, rng, 2_000_000)
    return float(np.median(np.abs(samples)))


class PStableSketch(Sketch):
    """Linear p-stable sketch estimating the Lp norm (or Fp moment).

    Parameters
    ----------
    p:
        Stability index in (0, 2].
    k:
        Number of projections; relative error ~ c/sqrt(k).
    seed:
        Oracle seed deriving the projection matrix entries on demand.
    return_moment:
        If True, ``query`` returns ``Fp = |f|_p^p``; otherwise the norm.
    cache_columns:
        Simulation speed knob: memoise the per-item projection column.
        Does not affect the charged space (a native implementation
        regenerates entries from the seed, as [27] does via a PRG).
    """

    supports_deletions = True
    # update_batch aggregates per distinct item internally, so feeding a
    # pre-aggregated chunk lands in bit-identical state (integer delta
    # sums scale each column exactly once either way) — licensing the
    # engine's aggregate-once hoist.
    aggregation_invariant = True

    def __init__(
        self,
        p: float,
        k: int,
        seed: int,
        return_moment: bool = False,
        cache_columns: bool = True,
    ):
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        if k < 1:
            raise ValueError(f"row count k must be >= 1, got {k}")
        self.p = p
        self.k = k
        self.seed = seed
        self.return_moment = return_moment
        self._y = np.zeros(k, dtype=np.float64)
        self._scale = stable_median_abs(p)
        self._cache: dict[int, np.ndarray] | None = {} if cache_columns else None

    @classmethod
    def for_accuracy(
        cls,
        p: float,
        eps: float,
        delta: float,
        rng: np.random.Generator,
        constant: float = 8.0,
        **kwargs,
    ) -> "PStableSketch":
        """k = constant/eps^2 * ln(1/delta) rows for (1 ± eps) w.p. 1-delta."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        k = max(3, math.ceil(constant / eps**2 * max(1.0, math.log(1.0 / delta))))
        return cls(p, k, seed=int(rng.integers(0, 2**62)), **kwargs)

    def _column(self, item: int) -> np.ndarray:
        if self._cache is not None and item in self._cache:
            return self._cache[item]
        gen = item_keyed_generator(self.seed, item)
        theta = gen.uniform(-math.pi / 2, math.pi / 2, self.k)
        w = gen.exponential(1.0, self.k)
        col = _cms_symmetric(self.p, theta, np.maximum(w, 1e-300))
        if self._cache is not None:
            self._cache[item] = col
        return col

    def update(self, item: int, delta: int = 1) -> None:
        self._y += self._column(item) * float(delta)

    def update_batch(self, items, deltas=None) -> None:
        """Batch the linear map over per-distinct-item aggregates.

        Columns come from the same seeded memo as the per-item path, so
        the state matches up to floating-point summation order.
        """
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        unique, summed = aggregate_batch(items, deltas)
        cols = np.stack([self._column(item) for item in unique.tolist()])
        self._y += cols.T @ summed.astype(np.float64)

    def snapshot(self) -> "PStableSketch":
        """Cheap snapshot: copy the counters, share the seeded memo."""
        clone = copy.copy(self)
        clone._y = self._y.copy()
        return clone

    def query(self) -> float:
        norm = float(np.median(np.abs(self._y))) / self._scale
        return norm**self.p if self.return_moment else norm

    def space_bits(self) -> int:
        # k counters plus the oracle seed; the projection entries are
        # recomputed from the seed (PRG derandomization, see module docs).
        return self.k * 64 + 128
