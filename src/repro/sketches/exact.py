"""Exact (deterministic) baselines — the Table 1 "Deterministic" column.

Each class wraps the exact :class:`~repro.streams.frequency.FrequencyVector`
behind the :class:`~repro.sketches.base.Sketch` interface.  Their
``space_bits`` grow with the support size, making concrete the Omega(n)
deterministic lower bounds ([9] for Fp, [26] for L2 heavy hitters, the
reduction of [21] for entropy) that motivate randomized — and hence
potentially non-robust — algorithms in the first place.

Being deterministic, these are trivially adversarially robust; the
experiments use them both as referees and as the expensive-but-robust
baseline that the paper's wrappers undercut.
"""

from __future__ import annotations

import copy
import math

from repro.sketches.base import PointQuerySketch, Sketch
from repro.streams.frequency import FrequencyVector

#: Bits charged per stored (item, count) entry: a log n identifier plus a
#: log M counter, both rounded to a 64-bit word as a C implementation would.
_ENTRY_BITS = 128


class _MergeableExactMixin:
    """Shared engine support: the exact baselines merge by vector addition."""

    aggregation_invariant = True

    def merge(self, other) -> None:
        if type(other) is not type(self):
            raise ValueError(
                f"can only merge {type(self).__name__} partials"
            )
        self._f.merge(other._f)

    def empty_like(self):
        clone = copy.copy(self)
        clone._f = FrequencyVector()
        return clone


class ExactDistinctCounter(_MergeableExactMixin, Sketch):
    """Deterministic F0: store the support set.  Space Theta(F0 * log n)."""

    supports_deletions = True

    def __init__(self) -> None:
        self._f = FrequencyVector()

    def update(self, item: int, delta: int = 1) -> None:
        self._f.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        self._f.update_batch(items, deltas)

    def snapshot(self):
        clone = copy.copy(self)
        clone._f = self._f.copy()
        return clone

    def query(self) -> float:
        return float(self._f.f0())

    def space_bits(self) -> int:
        return max(64, self._f.support_size * 64)


class ExactMomentCounter(_MergeableExactMixin, Sketch):
    """Deterministic Fp (any p >= 0): store the whole frequency vector."""

    supports_deletions = True

    def __init__(self, p: float, return_norm: bool = False) -> None:
        if p < 0:
            raise ValueError(f"p must be >= 0, got {p}")
        self.p = p
        self.return_norm = return_norm and p > 0
        self._f = FrequencyVector()

    def update(self, item: int, delta: int = 1) -> None:
        self._f.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        self._f.update_batch(items, deltas)

    def snapshot(self):
        clone = copy.copy(self)
        clone._f = self._f.copy()
        return clone

    def query(self) -> float:
        return self._f.lp(self.p) if self.return_norm else self._f.fp(self.p)

    def space_bits(self) -> int:
        return max(64, self._f.support_size * _ENTRY_BITS)


class ExactEntropyCounter(_MergeableExactMixin, Sketch):
    """Deterministic Shannon entropy from the full frequency vector."""

    supports_deletions = True

    def __init__(self, base: float = 2.0) -> None:
        self.base = base
        self._f = FrequencyVector()

    def update(self, item: int, delta: int = 1) -> None:
        self._f.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        self._f.update_batch(items, deltas)

    def snapshot(self):
        clone = copy.copy(self)
        clone._f = self._f.copy()
        return clone

    def query(self) -> float:
        return self._f.shannon_entropy(self.base)

    def space_bits(self) -> int:
        return max(64, self._f.support_size * _ENTRY_BITS)


class ExactHeavyHitters(_MergeableExactMixin, PointQuerySketch):
    """Deterministic Lp heavy hitters from the full vector.

    ``query()`` returns the number of items at or above the threshold
    ``eps * |f|_p``; :meth:`heavy_hitters` returns the set itself.
    """

    supports_deletions = True

    def __init__(self, eps: float, p: float = 2.0) -> None:
        if not 0 < eps <= 1:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        if p <= 0:
            raise ValueError(f"p must be > 0, got {p}")
        self.eps = eps
        self.p = p
        self._f = FrequencyVector()

    def update(self, item: int, delta: int = 1) -> None:
        self._f.update(item, delta)

    def update_batch(self, items, deltas=None) -> None:
        self._f.update_batch(items, deltas)

    def snapshot(self):
        clone = copy.copy(self)
        clone._f = self._f.copy()
        return clone

    def point_query(self, item: int) -> float:
        return float(self._f[item])

    def heavy_hitters(self) -> set[int]:
        return self._f.heavy_hitters(self.eps * self._f.lp(self.p))

    def query(self) -> float:
        return float(len(self.heavy_hitters()))

    def space_bits(self) -> int:
        return max(64, self._f.support_size * _ENTRY_BITS)


def deterministic_f0_lower_bound_bits(n: int) -> int:
    """The Omega(n) bits of [9] for deterministic F0 (Table 1, row 1)."""
    return n


def deterministic_l2hh_lower_bound_bits(n: int) -> int:
    """The Omega(sqrt(n)) bits of [26] for deterministic insertion-only L2 HH."""
    return int(math.isqrt(n))
