"""KMV (k minimum values / bottom-k) distinct elements sketch.

The static F0 estimator the robust wrappers build on.  We use KMV rather
than reimplementing Blasiok's constant-optimal tracker [6] because KMV
provides the same *interface* — a (1 ± eps) F0 estimate at every step with
failure probability controlled by k — and, crucially for Theorem 10.1, the
same structural property the paper's cryptographic transformation needs:

    "when given an element that appeared before, [the algorithm] does not
     change its state at all (with probability 1)."

A KMV state is the set of k smallest hash values seen; re-inserting any
previously seen item never changes it.  :meth:`state_fingerprint` exposes
the state so tests can verify this property directly.

The estimator: with v_k the k-th smallest normalised hash in [0,1),
``F0_hat = (k - 1) / v_k``; below k distinct hashes the count is exact.
Hashing uses a high-independence polynomial family (k-wise, default 8) so
no random-oracle assumption is needed for the static guarantee.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.hashing.kwise import KWiseHash
from repro.sketches.base import Sketch, as_batch_arrays

_HASH_RANGE = float(1 << 61)


class KMVSketch(Sketch):
    """Bottom-k distinct elements estimator."""

    supports_deletions = False
    duplicate_insensitive = True
    aggregation_invariant = True

    def __init__(self, k: int, rng: np.random.Generator, independence: int = 8):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = k
        self._hash = KWiseHash(independence, rng, out_bits=61)
        # Sorted list of the k smallest distinct hash values seen so far.
        self._mins: list[int] = []

    @classmethod
    def for_accuracy(
        cls, eps: float, delta: float, rng: np.random.Generator,
        constant: float = 4.0,
    ) -> "KMVSketch":
        """k = constant / eps^2 * ln(1/delta) for a (1 ± eps) estimate.

        KMV's relative error is ~ 1/sqrt(k) per the standard analysis; the
        ln(1/delta) factor buys the tail (in place of median amplification,
        which would break the duplicate-insensitivity property).
        """
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        k = max(2, math.ceil(constant / eps**2 * max(1.0, math.log(1.0 / delta))))
        return cls(k, rng)

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("KMV requires non-negative updates")
        if delta == 0:
            return
        h = self._hash(item)
        mins = self._mins
        if len(mins) == self.k and h >= mins[-1]:
            return  # not among the k smallest: state unchanged
        # Binary search for the insertion point; skip exact duplicates.
        lo, hi = 0, len(mins)
        while lo < hi:
            mid = (lo + hi) // 2
            if mins[mid] < h:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(mins) and mins[lo] == h:
            return  # duplicate item (or hash collision): state unchanged
        mins.insert(lo, h)
        if len(mins) > self.k:
            mins.pop()

    def update_batch(self, items, deltas=None, *, assume_unique: bool = False) -> None:
        """Vectorized ingestion: hash the chunk, merge the k smallest.

        The KMV state is *exactly* the set of the k smallest distinct hash
        values seen, which is order-insensitive — the merged state is
        bit-for-bit identical to the per-item loop.  ``assume_unique``
        skips the internal dedup when the caller guarantees the items are
        already distinct (the execution engine dedups a chunk once before
        fanning it out to many copies).
        """
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        if np.any(deltas < 0):
            raise ValueError("KMV requires non-negative updates")
        items = items[deltas > 0]
        if len(items) == 0:
            return
        if not assume_unique:
            # Duplicate-insensitivity: only distinct items can move the
            # state, so dedupe before paying for the hash evaluations.
            items = np.unique(items)
        hashes = self._hash.hash_many(items)
        mins = self._mins
        if len(mins) == self.k:
            # Saturated: values at or above the current k-th minimum can
            # never enter the state; drop them before the merge sort.
            hashes = hashes[hashes < np.uint64(mins[-1])]
            if len(hashes) == 0:
                return
        if mins:
            hashes = np.concatenate(
                [np.asarray(mins, dtype=np.uint64), hashes]
            )
        merged = np.unique(hashes)[: self.k]
        self._mins = merged.tolist()

    def snapshot(self) -> "KMVSketch":
        """Cheap snapshot: share the immutable hash, copy the min-list."""
        clone = copy.copy(self)
        clone._mins = list(self._mins)
        return clone

    def merge(self, other: "KMVSketch") -> None:
        """Union the bottom-k sets and keep the k smallest (idempotent).

        The state is the set of the k smallest distinct hash values seen,
        so the merged state equals the serial state bit for bit (partials
        must share the same hash function).
        """
        if not isinstance(other, KMVSketch) or other.k != self.k:
            raise ValueError("can only merge KMV partials with the same k")
        if not other._mins:
            return
        merged = np.unique(
            np.asarray(self._mins + other._mins, dtype=np.uint64)
        )[: self.k]
        self._mins = merged.tolist()

    def empty_like(self) -> "KMVSketch":
        """Empty bottom-k set, same hash function."""
        clone = copy.copy(self)
        clone._mins = []
        return clone

    def query(self) -> float:
        mins = self._mins
        if len(mins) < self.k:
            return float(len(mins))  # exact in the small regime
        v_k = mins[-1] / _HASH_RANGE
        if v_k <= 0.0:
            return float(self.k)
        return (self.k - 1) / v_k

    def state_fingerprint(self) -> tuple[int, ...]:
        """The full state, for duplicate-insensitivity tests (Thm 10.1)."""
        return tuple(self._mins)

    def space_bits(self) -> int:
        return self.k * 64 + self._hash.space_bits()
