"""The trivial deterministic F1 counter.

Footnote 3 of the paper: "there is a trivial O(log n)-bit insertion only F1
estimation algorithm: keeping a counter for sum_t Delta_t."  It is exact,
deterministic, and therefore adversarially robust for free — which is why
F1 is excluded from the deterministic lower bounds and why the entropy
estimators can consume an exact F1 value.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.sketches.base import Sketch


class F1Counter(Sketch):
    """Exact ``F1 = sum_t Delta_t`` in one counter (insertion-only).

    In the turnstile model the signed sum still equals ``|f|_1`` whenever
    the vector stays non-negative (e.g. bounded-deletion streams that never
    drive a coordinate negative), which is how the robust entropy and
    bounded-deletion algorithms use it.
    """

    supports_deletions = True
    aggregation_invariant = True

    def __init__(self) -> None:
        self._sum = 0

    def update(self, item: int, delta: int = 1) -> None:
        self._sum += delta

    def update_batch(self, items, deltas=None) -> None:
        """A chunk contributes its delta sum; items are irrelevant to F1."""
        if deltas is None:
            self._sum += int(np.asarray(items, dtype=np.int64).shape[0])
        else:
            self._sum += int(np.asarray(deltas, dtype=np.int64).sum())

    def snapshot(self) -> "F1Counter":
        return copy.copy(self)

    def merge(self, other: "F1Counter") -> None:
        """Counters add."""
        if not isinstance(other, F1Counter):
            raise ValueError("can only merge F1Counter partials")
        self._sum += other._sum

    def empty_like(self) -> "F1Counter":
        return F1Counter()

    def query(self) -> float:
        return float(self._sum)

    def space_bits(self) -> int:
        return 64
