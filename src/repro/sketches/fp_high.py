"""Fp estimation for p > 2 via level-set subsampling (the [14] substrate).

Theorem 4.4 black-boxes a static insertion-only Fp estimator for p > 2
with space ``n^{1-2/p} poly(eps^-1, log n)``.  The construction family
behind that bound (Indyk–Woodruff and its descendants, incl. [14]) is:

* subsample the universe at geometric rates 2^0, 2^-1, ..., 2^-L;
* at each level run a CountSketch to recover the items that are heavy
  *within the subsampled substream*;
* estimate ``F_p = sum_l 2^l * sum(|f_hat_i|^p)`` over items first
  recovered at level l, so each weight class of coordinates is counted at
  the level where it becomes recoverable, scaled by its inverse sampling
  probability.

We implement exactly that skeleton.  The full [14] analysis adds
level-specific thresholding to make every weight class concentrate; our
recovery rule (top candidates above a per-level noise floor) keeps the
same space shape ``L x CountSketch(n^{1-2/p}-ish width)`` and is accurate
on the skewed workloads where high moments are used (data-skew
measurement, [12]), which is what the Table 1 row-3 experiment exercises.
DESIGN.md records this as a documented substitution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.kwise import KWiseHash
from repro.sketches.base import Sketch, spawn_rngs
from repro.sketches.countsketch import CountSketch


class HighMomentSketch(Sketch):
    """Level-set subsampling estimator of ``F_p``, p > 2."""

    supports_deletions = False

    def __init__(
        self,
        p: float,
        n: int,
        width: int,
        rows: int,
        rng: np.random.Generator,
        candidates_per_level: int = 32,
        noise_constant: float = 2.0,
    ):
        if p <= 2:
            raise ValueError(f"HighMomentSketch requires p > 2, got {p}")
        if n < 2:
            raise ValueError(f"universe size must be >= 2, got {n}")
        self.p = p
        self.n = n
        self.levels = max(1, math.ceil(math.log2(n)) + 1)
        self._noise_constant = noise_constant
        children = spawn_rngs(rng, self.levels + 1)
        self._level_hash = KWiseHash(2, children[0], out_bits=61)
        self._sketches = [
            CountSketch(width, rows, children[l + 1],
                        track_candidates=candidates_per_level)
            for l in range(self.levels)
        ]

    @classmethod
    def for_accuracy(
        cls, p: float, n: int, eps: float, rng: np.random.Generator,
        width_constant: float = 4.0, rows: int = 5,
    ) -> "HighMomentSketch":
        """Width ~ n^{1-2/p}/eps^2 per level — the [14] space shape."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        width = max(4, math.ceil(width_constant * n ** (1.0 - 2.0 / p) / eps**2))
        return cls(p, n, width, rows, rng)

    def _max_level(self, item: int) -> int:
        """Deepest level the item survives to (geometric subsampling).

        Item i reaches level l iff hash(i) < 2^61 / 2^l; levels are nested.
        """
        h = self._level_hash(item)
        if h <= 0:
            return self.levels - 1
        depth = 61 - h.bit_length()
        return min(depth, self.levels - 1)

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("HighMomentSketch requires non-negative updates")
        deepest = self._max_level(item)
        for l in range(deepest + 1):
            self._sketches[l].update(item, delta)

    def query(self) -> float:
        covered: set[int] = set()
        total = 0.0
        for l, cs in enumerate(self._sketches):
            f2 = max(cs.f2_estimate(), 0.0)
            # Per-level recoverability floor: CountSketch error is about
            # sqrt(F2(level)/width) per coordinate.
            floor = self._noise_constant * math.sqrt(f2 / cs.width) if f2 else 0.0
            for item in cs.heavy_hitters(floor):
                if item in covered:
                    continue
                est = abs(cs.point_query(item))
                if est <= floor:
                    continue
                covered.add(item)
                total += (2.0**l) * est**self.p
        return total

    def query_norm(self) -> float:
        """The Lp norm ``F_p^{1/p}``."""
        return self.query() ** (1.0 / self.p)

    def space_bits(self) -> int:
        return self._level_hash.space_bits() + sum(
            cs.space_bits() for cs in self._sketches
        )
