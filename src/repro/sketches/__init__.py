"""Static sketches: the non-robust algorithms the paper robustifies.

Exact deterministic baselines, the AMS/CountSketch/CountMin/Misra–Gries
frequency sketches, KMV / fast-level-list / HyperLogLog distinct-elements
estimators, p-stable Fp sketches, the p>2 level-set estimator, and the two
entropy sketches.
"""

from repro.sketches.ams import AMSFullSketch, AMSSketch
from repro.sketches.base import PointQuerySketch, Sketch, SketchFactory, spawn_rngs
from repro.sketches.cascaded import (
    CascadedNormSketch,
    ExactCascadedNorm,
    RobustCascadedNorm,
    flatten_index,
    unflatten_index,
)
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.entropy import (
    CliffordCosmaSketch,
    RenyiEntropyEstimator,
    sample_skewed_stable,
)
from repro.sketches.exact import (
    ExactDistinctCounter,
    ExactEntropyCounter,
    ExactHeavyHitters,
    ExactMomentCounter,
    deterministic_f0_lower_bound_bits,
    deterministic_l2hh_lower_bound_bits,
)
from repro.sketches.f1 import F1Counter
from repro.sketches.fast_f0 import FastF0Sketch
from repro.sketches.fp_high import HighMomentSketch
from repro.sketches.hll import HyperLogLog
from repro.sketches.kmv import KMVSketch
from repro.sketches.misra_gries import MisraGries
from repro.sketches.sampling import (
    AdaptiveFractionOracle,
    BernoulliSampler,
    ReservoirSampler,
    adaptive_oversampling_factor,
    adaptive_sample_size,
    static_sample_size,
)
from repro.sketches.stable import (
    PStableSketch,
    sample_symmetric_stable,
    stable_median_abs,
)

__all__ = [
    "AMSFullSketch",
    "AMSSketch",
    "PointQuerySketch",
    "Sketch",
    "SketchFactory",
    "spawn_rngs",
    "CascadedNormSketch",
    "ExactCascadedNorm",
    "RobustCascadedNorm",
    "flatten_index",
    "unflatten_index",
    "AdaptiveFractionOracle",
    "BernoulliSampler",
    "ReservoirSampler",
    "adaptive_oversampling_factor",
    "adaptive_sample_size",
    "static_sample_size",
    "CountMinSketch",
    "CountSketch",
    "CliffordCosmaSketch",
    "RenyiEntropyEstimator",
    "sample_skewed_stable",
    "ExactDistinctCounter",
    "ExactEntropyCounter",
    "ExactHeavyHitters",
    "ExactMomentCounter",
    "deterministic_f0_lower_bound_bits",
    "deterministic_l2hh_lower_bound_bits",
    "F1Counter",
    "FastF0Sketch",
    "HighMomentSketch",
    "HyperLogLog",
    "KMVSketch",
    "MisraGries",
    "PStableSketch",
    "sample_symmetric_stable",
    "stable_median_abs",
]
