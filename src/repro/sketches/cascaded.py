"""Cascaded norms of matrix streams (the Section 3 remark after Cor 3.5).

For a matrix ``A`` receiving coordinate-wise updates, the (p, k) cascaded
norm is ``|A|_(p,k) = ( sum_i ( sum_j |A_ij|^k )^(p/k) )^(1/p)`` — the Lp
norm of the vector of row Lk norms.  The paper notes that Proposition 3.4
applies to cascaded norms of insertion-only matrix streams (they are
monotone with poly(n d M) range), so both robustification frameworks
carry over, using e.g. the static cascaded sketches of [24].

This module provides the pieces needed to exercise that remark end to
end:

* :class:`ExactCascadedNorm` — exact baseline;
* :class:`CascadedNormSketch` — a simplified static estimator: one
  p-stable row-norm sketch per *touched* row (faithful interface, not
  [24]'s nested-sketch space bound; documented substitution);
* :class:`RobustCascadedNorm` — sketch switching over the above with the
  :func:`repro.core.flip_number.cascaded_norm_flip_number_bound` budget.

Matrix entries are addressed through flattened item ids
``item = row * num_cols + col`` so everything speaks the standard stream
``Update`` vocabulary.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.sketch_switching import SketchSwitchingEstimator, restart_ring_size
from repro.sketches.base import Sketch, spawn_rngs
from repro.sketches.stable import PStableSketch
from repro.streams.frequency import FrequencyVector


def flatten_index(row: int, col: int, num_cols: int) -> int:
    """Matrix coordinate -> stream item id."""
    if col < 0 or col >= num_cols:
        raise ValueError(f"column {col} outside [0, {num_cols})")
    if row < 0:
        raise ValueError(f"row must be >= 0, got {row}")
    return row * num_cols + col


def unflatten_index(item: int, num_cols: int) -> tuple[int, int]:
    """Stream item id -> matrix coordinate."""
    return divmod(item, num_cols)


class ExactCascadedNorm(Sketch):
    """Exact ``|A|_(p,k)`` from the full matrix (deterministic baseline)."""

    supports_deletions = True

    def __init__(self, p: float, k: float, num_cols: int):
        if p <= 0 or k <= 0:
            raise ValueError("cascaded orders p, k must be positive")
        if num_cols < 1:
            raise ValueError(f"num_cols must be >= 1, got {num_cols}")
        self.p = p
        self.k = k
        self.num_cols = num_cols
        self._rows: dict[int, FrequencyVector] = {}

    def update(self, item: int, delta: int = 1) -> None:
        row, col = unflatten_index(item, self.num_cols)
        if row not in self._rows:
            self._rows[row] = FrequencyVector()
        self._rows[row].update(col, delta)

    def query(self) -> float:
        total = 0.0
        for vec in self._rows.values():
            row_norm = vec.lp(self.k)
            total += row_norm**self.p
        return total ** (1.0 / self.p)

    def space_bits(self) -> int:
        entries = sum(v.support_size for v in self._rows.values())
        return max(64, entries * 128)


class CascadedNormSketch(Sketch):
    """Static (p, k) cascaded-norm estimator via per-row Lk sketches.

    Each touched row gets a small p-stable Lk sketch; the query combines
    the row-norm estimates with the outer Lp sum.  The interface and
    estimator structure match [24]; the space grows with the number of
    touched rows rather than [24]'s nested-sketch bound — recorded as a
    substitution in DESIGN.md (the robustness wrapper consumes only the
    tracking interface, which is what the Section 3 remark needs).
    """

    supports_deletions = True

    def __init__(
        self,
        p: float,
        k: float,
        num_cols: int,
        rows_per_sketch: int,
        rng: np.random.Generator,
    ):
        if not 0 < k <= 2:
            raise ValueError(f"inner order k must be in (0, 2], got {k}")
        if p <= 0:
            raise ValueError(f"outer order p must be positive, got {p}")
        self.p = p
        self.k = k
        self.num_cols = num_cols
        self.rows_per_sketch = rows_per_sketch
        self._seed_rng = rng
        self._sketches: dict[int, PStableSketch] = {}

    def _row_sketch(self, row: int) -> PStableSketch:
        sketch = self._sketches.get(row)
        if sketch is None:
            sketch = PStableSketch(
                self.k, self.rows_per_sketch,
                seed=int(self._seed_rng.integers(0, 2**62)),
            )
            self._sketches[row] = sketch
        return sketch

    def update(self, item: int, delta: int = 1) -> None:
        row, col = unflatten_index(item, self.num_cols)
        self._row_sketch(row).update(col, delta)

    def query(self) -> float:
        total = 0.0
        for sketch in self._sketches.values():
            total += sketch.query() ** self.p
        return total ** (1.0 / self.p)

    def space_bits(self) -> int:
        return max(64, sum(s.space_bits() for s in self._sketches.values()))


class RobustCascadedNorm(Sketch):
    """Adversarially robust cascaded-norm tracking (Section 3 remark).

    Sketch switching over :class:`CascadedNormSketch` copies with the
    Proposition 3.4 flip budget instantiated for cascaded norms.
    """

    supports_deletions = False

    def __init__(
        self,
        p: float,
        k: float,
        num_rows: int,
        num_cols: int,
        m: int,
        eps: float,
        rng: np.random.Generator,
        copies: int | None = None,
        rows_per_sketch: int | None = None,
    ):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        self.p = p
        self.k = k
        self.num_cols = num_cols
        self.eps = eps
        if copies is None:
            copies = restart_ring_size(eps, constant=1.0)
        if rows_per_sketch is None:
            rows_per_sketch = max(16, math.ceil(24.0 / (eps * eps)))
        inner_rows = rows_per_sketch

        def factory(child: np.random.Generator) -> CascadedNormSketch:
            return CascadedNormSketch(p, k, num_cols, inner_rows, child)

        self._switcher = SketchSwitchingEstimator(
            factory, copies=copies, eps=eps, rng=rng, restart=True
        )

    @property
    def switches(self) -> int:
        return self._switcher.switches

    def update(self, item: int, delta: int = 1) -> None:
        self._switcher.update(item, delta)

    def update_entry(self, row: int, col: int, delta: int = 1) -> None:
        """Matrix-coordinate convenience wrapper."""
        self.update(flatten_index(row, col, self.num_cols), delta)

    def query(self) -> float:
        return self._switcher.query()

    def space_bits(self) -> int:
        return self._switcher.space_bits()
