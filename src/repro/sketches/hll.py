"""HyperLogLog — an extra static F0 baseline (ablation only).

Not part of the paper; included so the distinct-elements experiments can
show the robustification wrappers are agnostic to the base sketch (any
(eps, delta) tracker plugs in).  Standard Flajolet et al. construction:
``2^b`` registers storing the max leading-zero rank, harmonic-mean
estimator with the alpha_m bias constant and linear-counting small-range
correction.

Like KMV, HLL's state is duplicate-insensitive (a repeated item can never
raise a register), so it is also a valid base for the Theorem 10.1
cryptographic transformation.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.hashing.kwise import KWiseHash
from repro.sketches.base import Sketch, as_batch_arrays


def _bit_length_vec(x: np.ndarray) -> np.ndarray:
    """``int.bit_length`` for a ``uint64`` array (exact, no float round-trip)."""
    out = np.zeros(x.shape, dtype=np.int64)
    v = x.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = v >= (np.uint64(1) << np.uint64(shift))
        out[big] += shift
        v[big] >>= np.uint64(shift)
    out += (v > 0).astype(np.int64)
    return out


class HyperLogLog(Sketch):
    """HLL with 2^b registers over a 61-bit hash."""

    supports_deletions = False
    duplicate_insensitive = True
    aggregation_invariant = True

    def __init__(self, b: int, rng: np.random.Generator):
        if not 4 <= b <= 18:
            raise ValueError(f"register exponent b must be in [4, 18], got {b}")
        self.b = b
        self.m_registers = 1 << b
        self._registers = np.zeros(self.m_registers, dtype=np.uint8)
        self._hash = KWiseHash(8, rng, out_bits=61)
        self._alpha = self._alpha_m(self.m_registers)

    @staticmethod
    def _alpha_m(m: int) -> float:
        if m == 16:
            return 0.673
        if m == 32:
            return 0.697
        if m == 64:
            return 0.709
        return 0.7213 / (1.0 + 1.079 / m)

    @classmethod
    def for_accuracy(cls, eps: float, rng: np.random.Generator) -> "HyperLogLog":
        """Standard error 1.04/sqrt(2^b) <= eps."""
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        b = max(4, min(18, math.ceil(2 * math.log2(1.04 / eps))))
        return cls(b, rng)

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("HyperLogLog requires non-negative updates")
        if delta == 0:
            return
        h = self._hash(item)
        idx = h & (self.m_registers - 1)
        rest = h >> self.b
        # Rank = leading-zero count of the remaining bits + 1.
        width = 61 - self.b
        rank = width - rest.bit_length() + 1
        if rank > self._registers[idx]:
            self._registers[idx] = rank

    def update_batch(self, items, deltas=None) -> None:
        """Vectorized ingestion via scatter-max.

        Registers hold per-bucket maxima, which are order-insensitive, so
        the batched state is bit-for-bit identical to the per-item loop.
        """
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        if np.any(deltas < 0):
            raise ValueError("HyperLogLog requires non-negative updates")
        items = items[deltas > 0]
        if len(items) == 0:
            return
        hashes = self._hash.hash_many(items)
        idx = (hashes & np.uint64(self.m_registers - 1)).astype(np.intp)
        rest = hashes >> np.uint64(self.b)
        ranks = (61 - self.b) - _bit_length_vec(rest) + 1
        np.maximum.at(self._registers, idx, ranks.astype(np.uint8))

    def snapshot(self) -> "HyperLogLog":
        """Cheap snapshot: share the hash, copy the register array."""
        clone = copy.copy(self)
        clone._registers = self._registers.copy()
        return clone

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise maximum (idempotent; exact vs. the serial state)."""
        if not isinstance(other, HyperLogLog) or other.b != self.b:
            raise ValueError("can only merge HLL partials with the same b")
        np.maximum(self._registers, other._registers, out=self._registers)

    def empty_like(self) -> "HyperLogLog":
        """Zero registers, same hash function."""
        clone = copy.copy(self)
        clone._registers = np.zeros_like(self._registers)
        return clone

    def query(self) -> float:
        m = self.m_registers
        inv_sum = float(np.sum(np.exp2(-self._registers.astype(np.float64))))
        raw = self._alpha * m * m / inv_sum
        if raw <= 2.5 * m:
            zeros = int(np.count_nonzero(self._registers == 0))
            if zeros:
                return m * math.log(m / zeros)  # linear counting
        return raw

    def space_bits(self) -> int:
        return self.m_registers * 6 + self._hash.space_bits()
