"""CountSketch [10] — static L2 point queries and heavy hitters (Lemma 6.4).

``rows`` independent (bucket, sign) hash pairs over a table of ``width``
counters per row.  The point query for item i is the median over rows of
``sign_r(i) * C[r, bucket_r(i)]``; with ``width = Theta(1/eps^2)`` and
``rows = Theta(log(n/delta))`` every coordinate is recovered to within
``eps * |f|_2`` with probability 1 - delta — the (eps, delta) point query
problem of Definition 6.2, which is how Theorem 6.5 consumes it.

The sketch also tracks a candidate heap of items seen in the stream so it
can propose heavy hitters without an external candidate list.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.hashing.kwise import (
    KWiseHash,
    KWiseSignHash,
    hash_many_stacked,
    sign_many_stacked,
)
from repro.sketches.base import (
    PointQuerySketch,
    aggregate_batch,
    as_batch_arrays,
    spawn_rngs,
)
from repro.sketches.stacking import SketchStack, stack_rows


class CountSketch(PointQuerySketch):
    """CountSketch table with median-of-rows point queries."""

    supports_deletions = True
    aggregation_invariant = True
    stackable = True

    @classmethod
    def make_stack(cls, sketches):
        return CountSketchStack(sketches)

    def __init__(
        self,
        width: int,
        rows: int,
        rng: np.random.Generator,
        track_candidates: int = 64,
        cache_items: bool = True,
    ):
        if width < 1 or rows < 1:
            raise ValueError("width and rows must both be >= 1")
        self.width = width
        self.rows = rows
        child = spawn_rngs(rng, 2 * rows)
        self._buckets = [KWiseHash(2, child[2 * r], out_bits=61) for r in range(rows)]
        self._signs = [KWiseSignHash(4, child[2 * r + 1]) for r in range(rows)]
        self._table = np.zeros((rows, width), dtype=np.float64)
        self._track_candidates = track_candidates
        self._candidates: dict[int, None] = {}
        self._row_idx = np.arange(rows)
        # Simulation-only memo of per-item (bucket, sign) vectors; a native
        # implementation recomputes them, so space_bits does not charge it.
        self._item_cache: dict[int, tuple[np.ndarray, np.ndarray]] | None = (
            {} if cache_items else None
        )

    @classmethod
    def for_accuracy(
        cls, eps: float, delta: float, n: int, rng: np.random.Generator,
        width_constant: float = 3.0, rows_constant: float = 2.0,
    ) -> "CountSketch":
        """Size for the (eps, delta) point query problem over universe [n].

        ``width = width_constant / eps^2``, ``rows = rows_constant *
        log2(n/delta)`` — the Lemma 6.4 parameterization
        ``O(eps^-2 log n log(n/delta))`` bits.
        """
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0,1), got {eps}")
        width = max(2, math.ceil(width_constant / eps**2))
        rows = max(1, math.ceil(rows_constant * math.log2(max(2.0, n / delta))))
        if rows % 2 == 0:
            rows += 1
        return cls(width, rows, rng)

    def _bucket(self, r: int, item: int) -> int:
        return self._buckets[r](item) % self.width

    def _vectors(self, item: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-item bucket and sign vectors across all rows (memoised)."""
        if self._item_cache is not None:
            cached = self._item_cache.get(item)
            if cached is not None:
                return cached
        buckets = np.array(
            [self._bucket(r, item) for r in range(self.rows)], dtype=np.intp
        )
        signs = np.array(
            [self._signs[r](item) for r in range(self.rows)], dtype=np.float64
        )
        if self._item_cache is not None:
            self._item_cache[item] = (buckets, signs)
        return buckets, signs

    def _vectors_many(self, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(len(items), rows) bucket and sign matrices, sharing the memo.

        Cached rows are gathered from ``_item_cache``; the rest are hashed
        in one vectorized pass per row and written back to the cache, so
        the per-item and batched paths always agree.
        """
        count = len(items)
        buckets = np.empty((count, self.rows), dtype=np.intp)
        signs = np.empty((count, self.rows), dtype=np.float64)
        cache = self._item_cache
        if cache is None:
            missing = list(range(count))
        else:
            missing = []
            for pos, item in enumerate(items.tolist()):
                cached = cache.get(item)
                if cached is None:
                    missing.append(pos)
                else:
                    buckets[pos] = cached[0]
                    signs[pos] = cached[1]
        if missing:
            fresh = items[missing]
            width = np.uint64(self.width)
            for r in range(self.rows):
                buckets[missing, r] = (
                    self._buckets[r].hash_many(fresh) % width
                ).astype(np.intp)
                signs[missing, r] = self._signs[r].sign_many(fresh)
            if cache is not None:
                for pos in missing:
                    cache[int(items[pos])] = (
                        buckets[pos].copy(), signs[pos].copy()
                    )
        return buckets, signs

    def update(self, item: int, delta: int = 1) -> None:
        buckets, signs = self._vectors(item)
        self._table[self._row_idx, buckets] += signs * float(delta)
        if self._track_candidates:
            self._candidates[item] = None
            if len(self._candidates) > 4 * self._track_candidates:
                self._prune_candidates()

    def update_batch(self, items, deltas=None) -> None:
        """Vectorized ingestion; linear, so per-item aggregation is exact.

        Candidate bookkeeping prunes once per chunk instead of every
        fourth insertion — the tracked *set* may differ from the per-item
        path (candidates are heuristic state), the table never does.
        """
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        unique, summed = aggregate_batch(items, deltas)
        buckets, signs = self._vectors_many(unique)
        weighted = signs * summed[:, None].astype(np.float64)
        for r in range(self.rows):
            self._table[r] += np.bincount(
                buckets[:, r], weights=weighted[:, r], minlength=self.width
            )
        if self._track_candidates:
            for item in unique.tolist():
                self._candidates[item] = None
            if len(self._candidates) > 4 * self._track_candidates:
                self._prune_candidates()

    def _prune_candidates(self) -> None:
        candidates = list(self._candidates)
        scores = np.abs(self.point_query_batch(candidates))
        order = np.argsort(-scores, kind="stable")[: self._track_candidates]
        self._candidates = {candidates[int(pos)]: None for pos in order}

    def snapshot(self) -> "CountSketch":
        """Cheap snapshot: share hashes and memo, copy table/candidates."""
        clone = copy.copy(self)
        clone._table = self._table.copy()
        clone._candidates = dict(self._candidates)
        return clone

    def merge(self, other: "CountSketch") -> None:
        """Add another partial's table (linear); union the candidate sets.

        The merged table equals the serial one up to float summation
        order; candidates are heuristic state, so the union may differ
        from the serial candidate set the same way batched pruning does.
        """
        if not isinstance(other, CountSketch) or other._table.shape != self._table.shape:
            raise ValueError("can only merge CountSketch partials of the same shape")
        self._table += other._table
        self._candidates.update(other._candidates)
        if self._track_candidates and len(self._candidates) > 4 * self._track_candidates:
            self._prune_candidates()

    def empty_like(self) -> "CountSketch":
        """Zero table and no candidates, same hash functions and memo."""
        clone = copy.copy(self)
        clone._table = np.zeros_like(self._table)
        clone._candidates = {}
        return clone

    def point_query(self, item: int) -> float:
        buckets, signs = self._vectors(item)
        return float(np.median(signs * self._table[self._row_idx, buckets]))

    def point_query_batch(self, items) -> np.ndarray:
        """Median-over-rows estimates for a whole array of items."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        if len(items) == 0:
            return np.zeros(0, dtype=np.float64)
        buckets, signs = self._vectors_many(items)
        gathered = np.empty((len(items), self.rows), dtype=np.float64)
        for r in range(self.rows):
            gathered[:, r] = self._table[r, buckets[:, r]]
        return np.median(signs * gathered, axis=1)

    def f2_estimate(self) -> float:
        """Median over rows of the row's squared mass — an AMS-style F2.

        Each CountSketch row is itself an AMS row partitioned into buckets,
        so ``sum_b C[r,b]^2`` estimates F2; the median over rows
        concentrates.  Used by the heavy-hitter threshold logic.
        """
        row_mass = (self._table * self._table).sum(axis=1)
        return float(np.median(row_mass))

    def heavy_hitters(self, threshold: float) -> set[int]:
        """Tracked candidates whose point estimate clears ``threshold``."""
        self._prune_candidates()
        return {i for i in self._candidates if abs(self.point_query(i)) >= threshold}

    def query(self) -> float:
        return self.f2_estimate()

    def space_bits(self) -> int:
        table = self.rows * self.width * 64
        hashes = sum(h.space_bits() for h in self._buckets) + sum(
            s.space_bits() for s in self._signs
        )
        candidates = self._track_candidates * 64
        return table + hashes + candidates


class _CountSketchPrep:
    """A chunk aggregated, bucket-hashed and sign-weighted for all planes."""

    __slots__ = ("unique", "buckets", "signs", "weighted")

    def __init__(self, unique, buckets, signs, weighted):
        self.unique = unique  # sorted distinct items (np.unique order)
        self.buckets = buckets  # (planes, rows, distinct) bucket columns
        self.signs = signs  # (planes, rows, distinct) +-1.0 sign columns
        self.weighted = weighted  # (planes, rows, distinct) sign * delta


class CountSketchStack(SketchStack):
    """Stacked tables for k CountSketch copies: one ``(k, rows, width)``
    float64 block, one shared bucket + sign hash pass per chunk, and one
    weighted bincount to scatter into any subset of planes.  Candidate
    bookkeeping stays on the per-plane templates (it is heuristic scalar
    state), exactly mirroring ``update_batch``."""

    supports_universe = True

    def _adopt(self):
        first = self.sketches[0]
        self.rows, self.width = first.rows, first.width
        for s in self.sketches:
            if s.rows != self.rows or s.width != self.width:
                raise ValueError("cannot stack CountSketch copies of mixed shape")
        self.tables = stack_rows([s._table for s in self.sketches])
        for p, s in enumerate(self.sketches):
            s._table = self.tables[p]

    def prepare(self, items, deltas=None):
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return None
        unique, summed = aggregate_batch(items, deltas)
        buckets = [h for s in self.sketches for h in s._buckets]
        signs = [g for s in self.sketches for g in s._signs]
        cols = (
            hash_many_stacked(buckets, unique) % np.uint64(self.width)
        ).astype(np.intp)
        shape = (self.planes, self.rows, len(unique))
        sign_cols = sign_many_stacked(signs, unique).reshape(shape)
        weighted = sign_cols * summed.astype(np.float64)
        return _CountSketchPrep(unique, cols.reshape(shape), sign_cols, weighted)

    def prepare_universe(self, universe: int):
        """Bucket/sign columns for all of ``[0, universe)``, hashed once.

        Returned as a :class:`_CountSketchPrep` whose ``unique`` is the
        full identity ``arange(universe)`` and whose ``weighted`` is
        unset — :meth:`prepare_counts` gathers per-chunk supports out of
        it, and :meth:`step_item` single items.  This trades
        ``planes * rows * universe * 16`` bytes (held for the session)
        for never hashing or sorting a chunk again.
        """
        ids = np.arange(universe, dtype=np.int64)
        buckets = [h for s in self.sketches for h in s._buckets]
        signs = [g for s in self.sketches for g in s._signs]
        cols = (
            hash_many_stacked(buckets, ids) % np.uint64(self.width)
        ).astype(np.intp)
        shape = (self.planes, self.rows, universe)
        sign_cols = sign_many_stacked(signs, ids).reshape(shape)
        return _CountSketchPrep(ids, cols.reshape(shape), sign_cols, None)

    def prepare_counts(self, ucols, counts):
        """Prepared chunk from a dense count vector over the universe.

        For an insertion-only chunk, ``np.nonzero(counts)`` is exactly
        ``np.unique(items)`` and ``counts`` at the support is exactly
        ``aggregate_batch``'s summed deltas, so the result equals
        :meth:`prepare` bit for bit while skipping both the sort and the
        hash pass.
        """
        support = np.nonzero(counts)[0]
        if len(support) == 0:
            return None
        cols = ucols.buckets[:, :, support]
        sign_cols = ucols.signs[:, :, support]
        weighted = sign_cols * counts[support].astype(np.float64)
        return _CountSketchPrep(
            support.astype(np.int64), cols, sign_cols, weighted
        )

    def step_item(self, ucols, item, delta, planes) -> None:
        """One per-item update across a set of planes, via universe columns.

        The same scatter-adds ``CountSketch.update`` issues — one cell
        per (plane, row), no duplicate targets — grouped into a single
        fancy-indexed add.  Candidate bookkeeping is *not* mirrored;
        callers gate on ``_track_candidates == 0``.
        """
        sel = np.asarray(list(planes), dtype=np.intp)
        if len(sel) == 0:
            return
        buckets = ucols.buckets[sel, :, item]
        signs = ucols.signs[sel, :, item]
        rows = np.arange(self.rows)
        self.tables[sel[:, None], rows[None, :], buckets] += signs * float(delta)

    def subset(self, prepared, items, deltas=None):
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return None
        unique, summed = aggregate_batch(items, deltas)
        # Gather the slice's bucket/sign columns from the full chunk's
        # hash pass; sign * delta is exact (+-1.0 times an integer-valued
        # float), so the recombined weights match a fresh prepare bit for
        # bit.
        idx = np.searchsorted(prepared.unique, unique)
        cols = prepared.buckets[:, :, idx]
        sign_cols = prepared.signs[:, :, idx]
        weighted = sign_cols * summed.astype(np.float64)
        return _CountSketchPrep(unique, cols, sign_cols, weighted)

    def feed(self, prepared, planes) -> None:
        if prepared is None:
            return
        sel = np.asarray(list(planes), dtype=np.intp)
        if len(sel) == 0:
            return
        distinct = prepared.buckets.shape[2]
        rows = len(sel) * self.rows
        flat = prepared.buckets[sel].reshape(rows, distinct)
        flat = flat + np.arange(rows, dtype=np.intp)[:, None] * self.width
        counts = np.bincount(
            flat.ravel(),
            weights=prepared.weighted[sel].ravel(),
            minlength=rows * self.width,
        )
        self.tables[sel] += counts.reshape(len(sel), self.rows, self.width)
        unique_items = prepared.unique.tolist()
        for p in sel.tolist():
            sketch = self.sketches[p]
            if sketch._track_candidates:
                for item in unique_items:
                    sketch._candidates[item] = None
                if len(sketch._candidates) > 4 * sketch._track_candidates:
                    sketch._prune_candidates()

    def query_all(self) -> np.ndarray:
        row_mass = (self.tables * self.tables).sum(axis=2)
        return np.median(row_mass, axis=1)

    def install(self, plane: int, sketch) -> None:
        if sketch._table.shape != self.tables[plane].shape:
            raise ValueError("cannot install a CountSketch of different shape")
        self.tables[plane] = sketch._table
        sketch._table = self.tables[plane]
        self.sketches[plane] = sketch

    def save(self, planes):
        sel = np.asarray(list(planes), dtype=np.intp)
        return (
            sel,
            self.tables[sel],
            [dict(self.sketches[p]._candidates) for p in sel.tolist()],
        )

    def restore(self, saved) -> None:
        sel, tables, candidates = saved
        self.tables[sel] = tables
        for p, cands in zip(sel.tolist(), candidates):
            self.sketches[p]._candidates = cands

    def detach(self) -> None:
        for p, s in enumerate(self.sketches):
            s._table = self.tables[p].copy()
