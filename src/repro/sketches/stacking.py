"""Stacked array state for homogeneous groups of sketch copies.

The robustness constructions of Section 3 pay for adversarial robustness
in *copies*: a switching estimator keeps k independent instances of the
same static sketch and feeds every stream chunk to most of them.  With
the per-object representation that is k Python call chains per chunk —
k aggregations, k hash passes, k scatter-adds — even though the copies
differ only in their hash coefficients.

A :class:`SketchStack` stores the array state of one homogeneous copy
group as a single stacked NumPy array (one plane per copy) and turns the
per-copy loops into single kernels:

* ``prepare`` aggregates a chunk once and evaluates the hash columns for
  **all** planes in one stacked Horner sweep
  (:func:`repro.hashing.field.poly_eval_stacked`);
* ``feed`` scatter-adds a prepared chunk into any subset of planes;
* ``query_all`` reduces the whole stack to per-copy estimates in one
  vectorized pass.

The original sketch objects stay alive as *templates*: each template's
mutable array attribute is rebound to a view of its plane, so per-item
updates, point queries, snapshots, and scalar bookkeeping keep working
unchanged — in-place NumPy writes flow through the view into the stack.
Everything a stack computes is bit-for-bit identical to running the same
operations through the per-object path; the equivalence suite in
``tests/test_stacked_groups.py`` enforces this.

A sketch opts in by setting :attr:`repro.sketches.base.Sketch.stackable`
and implementing ``make_stack``.  Qualifying requires:

* array-valued mutable state of fixed shape (a counter table or
  accumulator vector) that all bulk updates mutate *in place*;
* hash families of equal degree across copies, so the stacked Horner
  sweep is well-formed;
* aggregation-invariant batch semantics, so one shared per-chunk
  aggregation feeds every plane.

List- or set-shaped state (KMV's sample list, MisraGries' counter map)
does not stack; those sketches keep the object path.
"""

from __future__ import annotations

import abc

import numpy as np


class SketchStack(abc.ABC):
    """Stacked state for a contiguous homogeneous group of sketch copies.

    Subclasses adopt the templates' arrays into one ``(planes, ...)``
    stack at construction and rebind each template's array attribute to
    its plane view.  All mutation of stacked state must go through the
    stack (``feed``/``install``/``restore``) or through in-place NumPy
    writes on a template's view; rebinding a template's array attribute
    outside :meth:`install` silently detaches it from the stack.
    """

    #: Whether :meth:`prepare_universe` / :meth:`prepare_counts` are
    #: implemented (the counts-based serial fast path checks this).
    supports_universe = False

    def __init__(self, sketches):
        self.sketches = list(sketches)
        if not self.sketches:
            raise ValueError("a sketch stack needs at least one copy")
        self._adopt()

    @property
    def planes(self) -> int:
        return len(self.sketches)

    @abc.abstractmethod
    def _adopt(self) -> None:
        """Stack the templates' arrays and rebind them as plane views."""

    @abc.abstractmethod
    def prepare(self, items, deltas):
        """Aggregate a chunk and hash it once for all planes.

        Returns an opaque prepared-chunk object that :meth:`feed` can
        scatter into any subset of planes; the whole point is that one
        ``prepare`` is reused across probe, feed-others, and catch-up
        passes over the same staged chunk.  Must perform the same input
        validation, in the same order, as the sketch's ``update_batch``.
        """

    def prepare_universe(self, universe: int):
        """Hash columns for *every* item of ``[0, universe)``, or ``None``.

        A stack that supports counts-based preparation returns an opaque
        columns object covering the whole item universe — one hash pass
        per session instead of one per chunk.  :meth:`prepare_counts`
        then builds prepared chunks from a dense count vector without
        sorting or re-hashing anything.  The base implementation returns
        ``None`` (unsupported), which keeps the per-chunk prepare path.
        """
        return None

    def prepare_counts(self, ucols, counts):
        """Prepared chunk from universe columns plus a dense count vector.

        ``counts[i]`` is the summed delta of item ``i`` over the chunk
        (``np.bincount`` of the chunk's items); ``ucols`` comes from
        :meth:`prepare_universe`.  The result is bit-for-bit the
        :meth:`prepare` of the same chunk: the nonzero support of an
        insertion-only count vector *is* the sorted distinct-item set,
        and the gathered hash columns are the same hash evaluations.
        Only stacks whose :meth:`prepare_universe` returns non-``None``
        implement this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support counts-based prepare"
        )

    def subset(self, prepared, items, deltas):
        """Prepared chunk for a *subrange* of an already-prepared chunk.

        ``prepared`` must be the result of :meth:`prepare` over a chunk
        of which ``items``/``deltas`` is a contiguous slice.  Subclasses
        whose prepare does per-plane hashing override this to gather the
        subrange's hash columns out of the full-chunk pass instead of
        re-hashing (every distinct item of the slice already has its
        columns in ``prepared``) — the crossing-search bisection requests
        many nested subranges of one staged chunk, so this turns
        O(log chunk) hash passes per crossing into one.  The default just
        re-prepares; results are bit-for-bit identical either way.
        """
        return self.prepare(items, deltas)

    @abc.abstractmethod
    def feed(self, prepared, planes) -> None:
        """Scatter a prepared chunk into the given plane indices.

        Bit-for-bit identical to calling ``update_batch`` on each of the
        selected templates with the chunk the prepared object was built
        from.
        """

    @abc.abstractmethod
    def query_all(self) -> np.ndarray:
        """Per-plane estimates as one float64 array.

        ``query_all()[p]`` equals ``self.sketches[p].query()``
        bit-for-bit — same reduction ops applied per plane.
        """

    @abc.abstractmethod
    def install(self, plane: int, sketch) -> None:
        """Make ``sketch`` the template for ``plane``.

        Copies the incoming sketch's array state into the plane and
        rebinds its array attribute to the plane view.  This is the only
        sanctioned way to swap a copy (retire, restart-ring advance,
        rollback replacement, worker collect) while a stack is live.
        """

    @abc.abstractmethod
    def save(self, planes):
        """Snapshot the given planes (stacked array copy + scalar state)."""

    @abc.abstractmethod
    def restore(self, saved) -> None:
        """Undo the planes covered by a :meth:`save` snapshot in place.

        Restores array *and* scalar/auxiliary state onto the existing
        templates; template object identity is preserved, which no
        caller observes (the object path swaps in snapshot clones that
        share hashes with the originals).
        """

    @abc.abstractmethod
    def detach(self) -> None:
        """Give every template ownership of its state; kill the stack.

        After ``detach`` each template holds a private copy of its plane
        and the stack must not be used again.  The process engine calls
        this before forking so workers inherit plain per-object copies.
        """


def stack_rows(arrays) -> np.ndarray:
    """Stack equal-shape arrays into one owned ``(planes, ...)`` block."""
    return np.stack([np.asarray(a) for a in arrays], axis=0)
