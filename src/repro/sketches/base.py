"""Common sketch interfaces.

Every estimator in the repository — static sketch, deterministic baseline,
or robust wrapper — satisfies the same small contract so the adversarial
game, the tracking wrappers, and the benchmark harness can treat them
uniformly:

* ``update(item, delta)`` — process one stream update;
* ``update_batch(items, deltas)`` — process a whole chunk of updates at
  once.  The base-class implementation is a per-item loop, so every sketch
  supports it; the hot sketches (CountMin, CountSketch, AMS, Misra–Gries,
  KMV, HLL, F1, the exact baselines) override it with NumPy-vectorized
  implementations that hash whole arrays through the k-wise families.
  For *linear and order-insensitive* sketches the batched state is
  identical to the per-item state; order-sensitive summaries (Misra–Gries)
  document their aggregation semantics in place.  The batched path is the
  ingestion surface for **oblivious** stream replay; the adversarial game
  stays per-item because adaptivity requires round granularity (the
  adversary observes the published output after every update);
* ``merge(other)`` — fold another instance's state into this one, for
  sketches whose state forms a commutative monoid (linear sketches add
  their tables; KMV/HLL take unions/maxima of their summaries).  The
  parallel execution engine (:mod:`repro.engine`) shards a stream across
  worker processes as per-worker *partials* and merges them back; the
  merged state equals the serial state exactly for integer/union state
  and up to float summation order for float accumulators.  Sketches that
  cannot merge (order-sensitive summaries such as Misra–Gries) simply
  don't override it; :attr:`Sketch.mergeable` reports the capability;
* ``query()`` — current response to the fixed query Q (tracking semantics:
  callable after every update);
* ``space_bits()`` — explicit accounting of the bits a C implementation of
  the same state would store;
* ``process_update(item, delta)`` — convenience combining the two, matching
  the round structure of the adversarial game (the algorithm outputs its
  response R_t after every update).

Factories: the robustification wrappers of Section 3 need many independent
copies of a static sketch.  A ``SketchFactory`` is any callable taking a
``numpy.random.Generator`` and returning a fresh sketch; helper
:func:`spawn_rngs` derives independent child generators.
"""

from __future__ import annotations

import abc
import copy
from collections.abc import Callable

import numpy as np

#: A callable producing a fresh, independently seeded sketch.
SketchFactory = Callable[[np.random.Generator], "Sketch"]


def as_batch_arrays(items, deltas=None) -> tuple[np.ndarray, np.ndarray]:
    """Normalise batch inputs to aligned ``int64`` arrays.

    ``deltas=None`` means unit insertions (the "simplified definition" of
    the insertion-only model).
    """
    items = np.ascontiguousarray(items, dtype=np.int64)
    if deltas is None:
        deltas = np.ones(items.shape, dtype=np.int64)
    else:
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if deltas.shape != items.shape:
            raise ValueError(
                f"items/deltas shape mismatch: {items.shape} vs {deltas.shape}"
            )
    return items, deltas


def aggregate_batch(
    items: np.ndarray, deltas: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse a batch to (unique items, summed deltas).

    Linear sketches and frequency vectors are insensitive to this
    aggregation; it turns per-update work into per-distinct-item work,
    which is the main structural win of batched ingestion on skewed
    streams.
    """
    unique, inverse = np.unique(items, return_inverse=True)
    summed = np.bincount(inverse, weights=deltas, minlength=len(unique))
    return unique, summed.astype(np.int64)


class Sketch(abc.ABC):
    """Abstract streaming estimator with tracking semantics."""

    #: Whether the sketch tolerates negative deltas (turnstile updates).
    supports_deletions: bool = False

    #: Whether the state depends only on the *set* of items ever inserted
    #: (with positive delta) — true for KMV and HLL, whose docstrings prove
    #: it.  The execution engine exploits this to drop re-occurring items
    #: from a chunk before fanning it out to many copies.
    duplicate_insensitive: bool = False

    #: Whether ``update_batch(aggregate_batch(chunk))`` lands in the same
    #: state as ``update_batch(chunk)`` — true for linear sketches (which
    #: aggregate internally anyway) and for duplicate-insensitive ones,
    #: false for order-sensitive summaries (Misra–Gries).  Lets the engine
    #: aggregate a chunk once instead of once per fanned-out copy.
    aggregation_invariant: bool = False

    #: Whether homogeneous copy groups of this sketch can fuse their array
    #: state into a :class:`repro.sketches.stacking.SketchStack` — one
    #: stacked array and one shared per-chunk hash pass for all k copies.
    #: Requires fixed-shape array state mutated strictly in place, equal
    #: hash degrees across copies, and aggregation-invariant batches;
    #: sketches with list/set-shaped state (KMV, Misra–Gries) stay on the
    #: per-object path.  Opting in means also overriding :meth:`make_stack`.
    stackable: bool = False

    @classmethod
    def make_stack(cls, sketches):
        """Build a :class:`~repro.sketches.stacking.SketchStack` over copies.

        Returns ``None`` when the group cannot be stacked (the default for
        every sketch that does not opt in via :attr:`stackable`).
        """
        return None

    @abc.abstractmethod
    def update(self, item: int, delta: int = 1) -> None:
        """Process one stream update."""

    def update_batch(self, items, deltas=None) -> None:
        """Process a chunk of updates.

        Fallback implementation: a per-item loop, semantically identical
        to calling :meth:`update` on each pair in order.  Subclasses
        override this with vectorized kernels.
        """
        items, deltas = as_batch_arrays(items, deltas)
        for item, delta in zip(items.tolist(), deltas.tolist()):
            self.update(item, delta)

    def snapshot(self) -> "Sketch":
        """An independent copy of the current state.

        The chunked sketch-switching path snapshots every copy before a
        batch feed so a chunk that crosses the publish band can be rolled
        back and replayed exactly.  The default is a generic deepcopy;
        hot sketches override it to share immutable members (hash
        functions, projection matrices, deterministic memo caches) and
        copy only the mutable counters, which makes snapshots O(state)
        array copies instead of a Python object walk.
        """
        return copy.deepcopy(self)

    def merge(self, other: "Sketch") -> None:
        """Fold ``other``'s state into this sketch (commutative, associative).

        Both operands must be *partials of the same sketch*: built from the
        same randomness (hash functions, sign matrices), each having
        ingested a disjoint part of the stream.  Mergeable sketches
        override this; the default declares the capability absent.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support merging"
        )

    def empty_like(self) -> "Sketch":
        """A zero-state partial sharing this sketch's randomness.

        The engine's per-partial sharding starts every worker from
        ``empty_like()``, so each partial is a pure delta and merging
        back into a sketch with *existing* state stays correct (nothing
        is double counted).  Mergeable sketches implement this alongside
        :meth:`merge`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support empty partials"
        )

    @property
    def mergeable(self) -> bool:
        """Whether this sketch overrides :meth:`merge` and :meth:`empty_like`."""
        return (
            type(self).merge is not Sketch.merge
            and type(self).empty_like is not Sketch.empty_like
        )

    @abc.abstractmethod
    def query(self) -> float:
        """Current response to the query (may be called after every update)."""

    @abc.abstractmethod
    def space_bits(self) -> int:
        """Bits of state a native implementation of this sketch would store."""

    def process_update(self, item: int, delta: int = 1) -> float:
        """One adversarial-game round: ingest the update, publish R_t."""
        if delta < 0 and not self.supports_deletions:
            raise ValueError(
                f"{type(self).__name__} is insertion-only but got delta={delta}"
            )
        self.update(item, delta)
        return self.query()


class PointQuerySketch(Sketch):
    """Sketches that additionally answer per-coordinate frequency queries."""

    @abc.abstractmethod
    def point_query(self, item: int) -> float:
        """Estimate of ``f_item``."""

    def point_query_batch(self, items) -> np.ndarray:
        """Vectorized point queries; fallback loops over :meth:`point_query`."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        return np.array(
            [self.point_query(i) for i in items.tolist()], dtype=np.float64
        )

    def estimate_vector(self, items) -> dict[int, float]:
        """Point-query a batch of items (vectorized where available)."""
        items = np.ascontiguousarray(list(items), dtype=np.int64)
        estimates = self.point_query_batch(items)
        return dict(zip(items.tolist(), estimates.tolist()))


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` so copies made by the robust wrappers share
    no randomness — the independence assumption of Lemmas 3.6 and 3.8.
    """
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is None:  # generator built without a SeedSequence
        seeds = rng.integers(0, 2**63, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
