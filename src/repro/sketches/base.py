"""Common sketch interfaces.

Every estimator in the repository — static sketch, deterministic baseline,
or robust wrapper — satisfies the same small contract so the adversarial
game, the tracking wrappers, and the benchmark harness can treat them
uniformly:

* ``update(item, delta)`` — process one stream update;
* ``query()`` — current response to the fixed query Q (tracking semantics:
  callable after every update);
* ``space_bits()`` — explicit accounting of the bits a C implementation of
  the same state would store;
* ``process_update(item, delta)`` — convenience combining the two, matching
  the round structure of the adversarial game (the algorithm outputs its
  response R_t after every update).

Factories: the robustification wrappers of Section 3 need many independent
copies of a static sketch.  A ``SketchFactory`` is any callable taking a
``numpy.random.Generator`` and returning a fresh sketch; helper
:func:`spawn_rngs` derives independent child generators.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

import numpy as np

#: A callable producing a fresh, independently seeded sketch.
SketchFactory = Callable[[np.random.Generator], "Sketch"]


class Sketch(abc.ABC):
    """Abstract streaming estimator with tracking semantics."""

    #: Whether the sketch tolerates negative deltas (turnstile updates).
    supports_deletions: bool = False

    @abc.abstractmethod
    def update(self, item: int, delta: int = 1) -> None:
        """Process one stream update."""

    @abc.abstractmethod
    def query(self) -> float:
        """Current response to the query (may be called after every update)."""

    @abc.abstractmethod
    def space_bits(self) -> int:
        """Bits of state a native implementation of this sketch would store."""

    def process_update(self, item: int, delta: int = 1) -> float:
        """One adversarial-game round: ingest the update, publish R_t."""
        if delta < 0 and not self.supports_deletions:
            raise ValueError(
                f"{type(self).__name__} is insertion-only but got delta={delta}"
            )
        self.update(item, delta)
        return self.query()


class PointQuerySketch(Sketch):
    """Sketches that additionally answer per-coordinate frequency queries."""

    @abc.abstractmethod
    def point_query(self, item: int) -> float:
        """Estimate of ``f_item``."""

    def estimate_vector(self, items) -> dict[int, float]:
        """Point-query a batch of items."""
        return {i: self.point_query(i) for i in items}


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` so copies made by the robust wrappers share
    no randomness — the independence assumption of Lemmas 3.6 and 3.8.
    """
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is None:  # generator built without a SeedSequence
        seeds = rng.integers(0, 2**63, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
