"""Misra–Gries summary [32] — deterministic L1 heavy hitters.

The paper cites Misra–Gries as the deterministic ``O(eps^-1 log n)`` L1
heavy-hitters algorithm, and notes that instantiating it at
``eps = n^{-1/2}`` gives the deterministic ``O(sqrt(n) log n)``-space
insertion-only **L2** heavy hitters baseline (Section 1.1, Heavy Hitters) —
nearly matched by the Omega(sqrt n) lower bound of [26].  Both roles appear
in the Table 1 heavy-hitters experiment.

Deterministic, hence adversarially robust by definition.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.sketches.base import PointQuerySketch, aggregate_batch, as_batch_arrays


class MisraGries(PointQuerySketch):
    """k-counter Misra–Gries summary.

    Every item's count is underestimated by at most ``F1 / (k + 1)``; with
    ``k = ceil(2/eps)`` this yields the (eps * F1)-threshold L1 heavy
    hitters guarantee.
    """

    supports_deletions = False

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"counter budget k must be >= 1, got {k}")
        self.k = k
        self._counters: dict[int, int] = {}
        self._f1 = 0

    @classmethod
    def for_l1_accuracy(cls, eps: float) -> "MisraGries":
        """Counters for the threshold tau = eps * F1 with slack tau/2."""
        if not 0 < eps <= 1:
            raise ValueError(f"eps must be in (0,1], got {eps}")
        return cls(max(1, math.ceil(2.0 / eps)))

    @classmethod
    def for_l2_baseline(cls, n: int) -> "MisraGries":
        """The deterministic L2-guarantee instantiation: eps = n^(-1/2).

        Uses |f|_1 <= sqrt(n) |f|_2, so an (n^{-1/2} F1)-guarantee implies
        an L2 guarantee — at Theta(sqrt n) counters.
        """
        return cls(max(1, 2 * math.isqrt(n)))

    def update(self, item: int, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError("Misra-Gries requires non-negative updates")
        self._f1 += delta
        remaining = delta
        if item in self._counters:
            self._counters[item] += remaining
            return
        if len(self._counters) < self.k:
            self._counters[item] = remaining
            return
        # Decrement-all step, batched: subtract the largest amount that
        # keeps every counter non-negative, up to `remaining`.
        dec = min(remaining, min(self._counters.values()))
        if dec > 0:
            self._counters = {
                i: c - dec for i, c in self._counters.items() if c > dec
            }
        remaining -= dec
        if remaining > 0:
            if len(self._counters) < self.k:
                self._counters[item] = remaining
            # else: remaining mass is absorbed by further decrements; for
            # unit-delta streams (the common case) this branch never loops.

    def update_batch(self, items, deltas=None) -> None:
        """Chunk ingestion via per-distinct-item aggregation.

        Misra–Gries is order-sensitive, so the batched summary is the one
        obtained by replaying the chunk *aggregated by item* (one weighted
        update per distinct item) rather than in arrival order.  Both are
        valid MG summaries of the same frequency vector — the
        ``F1/(k+1)`` underestimate bound depends only on F1, not on the
        arrival order — but the counter sets may differ from the per-item
        loop.  On skewed streams this turns m dict operations into
        (distinct items) dict operations.
        """
        items, deltas = as_batch_arrays(items, deltas)
        if len(items) == 0:
            return
        if np.any(deltas < 0):
            raise ValueError("Misra-Gries requires non-negative updates")
        unique, summed = aggregate_batch(items, deltas)
        for item, delta in zip(unique.tolist(), summed.tolist()):
            if delta > 0:
                self.update(item, delta)

    def snapshot(self) -> "MisraGries":
        """Cheap snapshot: copy the counter dict."""
        clone = copy.copy(self)
        clone._counters = dict(self._counters)
        return clone

    def point_query(self, item: int) -> float:
        return float(self._counters.get(item, 0))

    def underestimate_bound(self) -> float:
        """Every estimate is within ``F1/(k+1)`` below the true count."""
        return self._f1 / (self.k + 1)

    def heavy_hitters(self, threshold: float) -> set[int]:
        """All items with estimated count above threshold - F1/(k+1)."""
        slack = self.underestimate_bound()
        return {
            i for i, c in self._counters.items() if c >= threshold - slack
        }

    def query(self) -> float:
        return float(len(self._counters))

    def space_bits(self) -> int:
        return max(64, len(self._counters) * 128)
