"""Adversarial game loop, adversary protocol, and concrete attacks."""

from repro.adversary.ams_attack import AMSAttackAdversary, run_ams_attack
from repro.adversary.attacks import (
    CountMinInflationAttack,
    EstimateProbingAdversary,
    VictimPointQueryGame,
)
from repro.adversary.base import Adversary, RandomAdversary, StaticAdversary
from repro.adversary.game import (
    AdversarialGame,
    GameResult,
    additive_error_judge,
    relative_error_judge,
)

__all__ = [
    "AMSAttackAdversary",
    "run_ams_attack",
    "CountMinInflationAttack",
    "EstimateProbingAdversary",
    "VictimPointQueryGame",
    "Adversary",
    "RandomAdversary",
    "StaticAdversary",
    "AdversarialGame",
    "GameResult",
    "additive_error_judge",
    "relative_error_judge",
]
